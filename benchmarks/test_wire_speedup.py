"""Acceptance benchmark of the leaner wire format (:mod:`repro.gateway`).

Two claims over a live TCP gateway, recorded into ``BENCH_wire.json``:

* ``float32_wire`` — a client that opts into ``dtype="float32"`` moves
  roughly **half the sample bytes** of the float64 default for the same
  request load (gated <= 0.55x, the shrinking payload amortising the fixed
  per-frame headers), while every reply stays bitwise-equal to the float64
  evaluation of the float32-quantised stimulus — the upcast happens once,
  at the gateway's edge, never inside the numerics.
* ``chunked_streaming`` — a stimulus far beyond ``max_frame_bytes`` streams
  through ``REQUEST_CHUNK``/``RESULT_CHUNK`` frames instead of being
  refused: the round trip must split into multiple chunk frames each within
  the frame budget, and the reassembled reply must be bitwise-equal to a
  direct in-process ``CompiledModel.evaluate`` of the same rows.

Run directly for a report::

    python -m pytest benchmarks/test_wire_speedup.py -q -s
"""

import os
import tempfile
import time

import numpy as np
import pytest

from repro.gateway import Gateway, GatewayClient, protocol
from repro.runtime import ModelRegistry, compile_model
from repro.rvf.hammerstein import HammersteinBranch, HammersteinModel
from repro.rvf.residues import PartialFractionFunction
from repro.serve import ModelServer, ServePolicy
from repro.tft.state_estimator import StateEstimator

from .artifacts import record_benchmark

#: Requests in the float32-vs-float64 load (acceptance: >= 1000).
N_REQUESTS = 1024
#: Samples per request in that load.
N_STEPS = 512
#: Samples in the long streaming stimulus — at 8 B/sample this is ~1.6 MB
#: of float64 payload against a 256 KiB frame budget, forcing a multi-frame
#: chunk stream in both directions.
N_LONG_STEPS = 200_000
#: Frame budget for the streaming section.
MAX_FRAME_BYTES = 256 << 10


def _model(tau: float = 1.0) -> HammersteinModel:
    """A small synthetic Hammerstein model (compiles in microseconds)."""
    def pf(poles, coeffs, const):
        return PartialFractionFunction(np.asarray(poles, complex),
                                       np.asarray(coeffs, complex), const)

    gain = pf([-2.0 + 0.5j], [0.3 + 0.1j], 1.2)
    pair = pf([-1.5 + 0.2j], [0.2 - 0.05j], 0.4 + 0.2j)
    real = pf([-1.0], [0.15], 0.2)
    branches = [
        HammersteinBranch(pole=(-3e7 + 1e8j) * tau, residue_function=pair,
                          static_function=pair.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=True),
        HammersteinBranch(pole=-5e7 * tau, residue_function=real,
                          static_function=real.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=False),
    ]
    return HammersteinModel(
        branches=branches, gain_function=gain,
        static_function=gain.antiderivative().with_value_at(0.5, 0.3),
        state_estimator=StateEstimator(), dc_input=0.5, dc_output=0.3)


def _registry():
    registry = ModelRegistry(tempfile.mkdtemp(prefix="wire-bench-"))
    compiled = compile_model(_model(), dt=1e-9, input_range=(0.0, 1.0))
    return registry, compiled, registry.save(compiled)


def _stimuli(n_requests: int, n_steps: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 0.5 + 0.3 * rng.uniform(-1.0, 1.0, (n_requests, n_steps))


def _wire_bytes(key: str, stimuli: np.ndarray, dtype: int) -> int:
    """Encoded request bytes for a whole load at one wire dtype."""
    return sum(
        sum(len(frame) for frame in protocol.encode_request_frames(
            i, key, row, dtype=dtype))
        for i, row in enumerate(stimuli, start=1))


class TestLeanerWireFormat:
    def test_float32_moves_half_the_bytes_and_stays_bitwise(self, capsys):
        registry, compiled, key = _registry()
        stimuli = _stimuli(N_REQUESTS, N_STEPS)
        requests = [(key, row) for row in stimuli]
        # The float32 contract: the gateway upcasts once at the edge, so the
        # reply equals the float64 pipeline run on the quantised stimulus,
        # quantised once more on the way back out.
        quantised = stimuli.astype(np.float32).astype(np.float64)
        direct32 = compiled.evaluate(quantised).astype(np.float32) \
            .astype(np.float64)
        direct64 = compiled.evaluate(stimuli)

        bytes64 = _wire_bytes(key, stimuli, protocol.DTYPE_FLOAT64)
        bytes32 = _wire_bytes(key, stimuli, protocol.DTYPE_FLOAT32)
        ratio = bytes32 / bytes64

        policy = ServePolicy(max_batch=64, max_wait=5e-3, n_workers=2)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                with GatewayClient(*gateway.address, timeout=600.0,
                                   dtype="float64") as client:
                    client.submit_many(requests[:8])    # warm caches/workers
                    start = time.perf_counter()
                    out64 = client.submit_many(requests)
                    s64 = time.perf_counter() - start
                with GatewayClient(*gateway.address, timeout=600.0,
                                   dtype="float32") as client:
                    client.submit_many(requests[:8])
                    start = time.perf_counter()
                    out32 = client.submit_many(requests)
                    s32 = time.perf_counter() - start
            stats = server.stats()

        with capsys.disabled():
            print(f"\n[wire] {N_REQUESTS} requests x {N_STEPS} steps: "
                  f"float64 {bytes64 / 1e6:.1f} MB / {s64 * 1e3:.0f} ms, "
                  f"float32 {bytes32 / 1e6:.1f} MB / {s32 * 1e3:.0f} ms "
                  f"({ratio:.2f}x the bytes) on {os.cpu_count()} core(s)")

        record_benchmark("BENCH_wire.json", "float32_wire", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "cpu_count": os.cpu_count(),
            "request_bytes_float64": bytes64,
            "request_bytes_float32": bytes32,
            "bytes_ratio": ratio,
            "float64_s": s64,
            "float32_s": s32,
            "float64_requests_per_s": N_REQUESTS / s64,
            "float32_requests_per_s": N_REQUESTS / s32,
        })

        # Gate 1: float32 halves the sample payload (headers amortised).
        assert ratio <= 0.55, (
            f"float32 frames carry {ratio:.2f}x the bytes of float64 "
            f"(expected <= 0.55x)")
        # Gate 2: float64 replies bitwise-equal to the direct evaluation.
        np.testing.assert_array_equal(np.vstack(out64), direct64)
        # Gate 3: float32 replies bitwise-equal to the float64 pipeline on
        # the f4-quantised stimulus — precision is lost at the edges only.
        np.testing.assert_array_equal(np.vstack(out32), direct32)
        assert stats.n_failed == 0

    def test_long_stimulus_streams_in_chunks(self, capsys):
        registry, compiled, key = _registry()
        stimulus = _stimuli(1, N_LONG_STEPS, seed=2)[0]
        direct = compiled.evaluate(stimulus)

        frames = protocol.encode_request_frames(
            1, key, stimulus, max_frame_bytes=MAX_FRAME_BYTES)
        n_chunks = len(frames)
        assert n_chunks > 1, "stimulus fit one frame; raise N_LONG_STEPS"
        # Each payload fits the budget (the 4-byte length prefix rides on
        # top — the gateway's limit bounds what follows the prefix).
        assert all(len(f) - protocol.LENGTH_PREFIX.size <= MAX_FRAME_BYTES
                   for f in frames)

        policy = ServePolicy(max_batch=4, max_wait=2e-3, n_workers=2,
                             max_frame_bytes=MAX_FRAME_BYTES)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                with GatewayClient(*gateway.address, timeout=600.0,
                                   max_frame_bytes=MAX_FRAME_BYTES) as client:
                    client.submit(key, stimulus[:256])  # warm caches/workers
                    start = time.perf_counter()
                    streamed = client.submit(key, stimulus)
                    seconds = time.perf_counter() - start
            counters = gateway.stats()
            stats = server.stats()

        mb = stimulus.nbytes / 1e6
        with capsys.disabled():
            print(f"[wire] streaming: {N_LONG_STEPS} samples ({mb:.1f} MB) "
                  f"across {n_chunks} chunk frames of <= "
                  f"{MAX_FRAME_BYTES >> 10} KiB round-tripped in "
                  f"{seconds * 1e3:.0f} ms")

        record_benchmark("BENCH_wire.json", "chunked_streaming", {
            "n_samples": N_LONG_STEPS,
            "payload_mb": mb,
            "max_frame_bytes": MAX_FRAME_BYTES,
            "n_request_chunks": n_chunks,
            "round_trip_s": seconds,
            "frames_in": counters["n_frames_in"],
            "frames_out": counters["n_frames_out"],
        })

        # Gate 1: the reply is bitwise-equal to the in-process evaluation —
        # chunk reassembly is lossless in both directions.
        np.testing.assert_array_equal(streamed, direct)
        # Gate 2: the gateway actually saw a multi-frame stream (and sent
        # one back — the reply payload is as long as the stimulus).
        assert counters["n_frames_in"] > n_chunks   # warm-up + chunk stream
        assert counters["n_frames_out"] > n_chunks  # reply streamed too
        assert stats.n_failed == 0


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
