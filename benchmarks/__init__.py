"""Benchmark package (one module per paper figure/table plus ablations)."""
