"""Acceptance benchmark of the compiled model runtime (:mod:`repro.runtime`).

The serving claim of the surrogate-model flow: once the paper's output-buffer
model is compiled, a batch of >= 1000 stimuli must evaluate at least **50x
faster** than re-simulating those stimuli through the full transistor-level
transient engine.  The full-engine cost is measured on a sample of the batch
and scaled (running all 1000 transients would take tens of seconds for no
extra information); the compiled batch is timed in full.  A sampled accuracy
cross-check guards against benchmarking a model that has drifted into
nonsense.

Run directly for a report::

    python -m pytest benchmarks/test_runtime_speedup.py -q -s
"""

import time

import numpy as np
import pytest

from repro.analysis import batched_waveform_errors
from repro.circuit import TransientOptions, transient_analysis
from repro.circuit.waveforms import Sine
from repro.circuits import build_output_buffer
from repro.runtime import compile_model

from .artifacts import record_benchmark

#: Batch size of the serving benchmark (acceptance: >= 1000).
N_STIMULI = 1000
#: Samples per stimulus; with the training sine's dt this spans ~1.7 periods.
N_STEPS = 256
#: Full transients actually run to estimate the per-stimulus engine cost.
N_REFERENCE = 4


class TestBatchedRuntimeSpeedup:
    def test_batched_model_at_least_50x_faster_than_engine(self, capsys,
                                                           rvf_extraction):
        model = rvf_extraction.model
        tft = rvf_extraction.tft
        dt = 1.0 / (2e6 * 150)                      # training transient's step
        states = tft.state_axis()
        lo, hi = float(states.min()), float(states.max())
        compiled = compile_model(model, dt=dt, input_range=(lo, hi))

        # A family of in-excursion sine stimuli with randomised amplitude,
        # frequency and phase (fixed seed: the benchmark must be stable).
        rng = np.random.default_rng(0)
        offset = 0.5 * (lo + hi)
        amps = rng.uniform(0.2, 0.45 * (hi - lo), N_STIMULI)
        freqs = rng.uniform(1e6, 4e6, N_STIMULI)
        phases = rng.uniform(0.0, 2.0 * np.pi, N_STIMULI)
        times = compiled.time_axis(N_STEPS)
        stimuli = offset + amps[:, None] * np.sin(
            2.0 * np.pi * freqs[:, None] * times[None, :] + phases[:, None])

        # Serving path: the whole batch in one lock-step evaluation.
        compiled.evaluate(stimuli[:2])              # warm-up (allocations)
        batch_start = time.perf_counter()
        served = compiled.evaluate(stimuli)
        batch_seconds = time.perf_counter() - batch_start

        # Engine path: full transistor-level transients on a sample, scaled.
        t_stop = float(times[-1])
        sample_seconds = []
        sampled_refs = []
        for k in range(N_REFERENCE):
            waveform = Sine(offset, float(amps[k]), float(freqs[k]),
                            phase=float(phases[k]))
            system = build_output_buffer(input_waveform=waveform).build()
            system.compile("auto")
            start = time.perf_counter()
            result = transient_analysis(system, TransientOptions(
                t_stop=t_stop, dt=dt))
            sample_seconds.append(time.perf_counter() - start)
            sampled_refs.append(np.interp(times, result.times,
                                          result.outputs[:, 0]))
        per_sim = float(np.mean(sample_seconds))
        engine_seconds = per_sim * N_STIMULI
        speedup = engine_seconds / batch_seconds

        errors = batched_waveform_errors(np.vstack(sampled_refs),
                                         served[:N_REFERENCE])
        with capsys.disabled():
            print(f"\n[runtime batch] {N_STIMULI} stimuli x {N_STEPS} steps: "
                  f"batched model {batch_seconds * 1e3:.1f} ms, full engine "
                  f"{per_sim * 1e3:.1f} ms/sim -> est. {engine_seconds:.1f} s "
                  f"({speedup:.0f}x); sampled accuracy "
                  f"{errors.max_relative_rmse():.2e} relative RMSE")

        record_benchmark("BENCH_runtime.json", "batched_buffer_serving", {
            "n_stimuli": N_STIMULI,
            "n_steps": N_STEPS,
            "batch_ms": batch_seconds * 1e3,
            "engine_ms_per_sim": per_sim * 1e3,
            "engine_s_estimated": engine_seconds,
            "speedup": speedup,
            "n_reference_sims": N_REFERENCE,
            "sampled_max_relative_rmse": errors.max_relative_rmse(),
            "n_branches": compiled.n_branches,
            "n_states": compiled.n_states,
        })

        # The served outputs must still track the engine on the sampled
        # stimuli — a fast wrong model is not a surrogate.
        assert errors.max_relative_rmse() < 0.05
        assert speedup >= 50.0, (
            f"batched runtime only {speedup:.1f}x faster than the engine")


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
