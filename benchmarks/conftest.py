"""Shared fixtures for the benchmark harness.

Every figure/table of the paper's evaluation is regenerated from the same
training data: the four-stage output buffer driven by one period of the
low-frequency high-amplitude sine (~100 Jacobian snapshots).  The expensive
artefacts (training transient, TFT transform, extracted models, bit-pattern
reference transient) are computed once per session and shared.
"""

import numpy as np
import pytest

from repro.baselines import CaffeineOptions, extract_caffeine_model
from repro.circuit import TransientOptions, transient_analysis
from repro.circuits import build_output_buffer, buffer_test_pattern, buffer_training_waveform
from repro.rvf import RVFOptions, extract_rvf_model, simulate_hammerstein
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft

#: Error bound used throughout the paper's evaluation.
ERROR_BOUND = 1e-3


@pytest.fixture(scope="session")
def buffer_training():
    """Training trajectory of the output buffer (paper Section IV)."""
    waveform = buffer_training_waveform()
    circuit = build_output_buffer(input_waveform=waveform)
    system = circuit.build()
    trajectory = SnapshotTrajectory(system)
    period = 1.0 / waveform.frequency
    result = transient_analysis(system, TransientOptions(t_stop=period, dt=period / 150),
                                snapshot_callback=trajectory)
    return {"circuit": circuit, "system": system, "trajectory": trajectory,
            "transient": result, "waveform": waveform}


@pytest.fixture(scope="session")
def buffer_tft(buffer_training):
    """TFT hyperplane of the buffer (the data behind Fig. 6)."""
    return extract_tft(buffer_training["trajectory"],
                       default_frequency_grid(1.0, 10e9, 4), max_snapshots=110)


@pytest.fixture(scope="session")
def rvf_extraction(buffer_tft):
    """RVF model of the buffer (Fig. 7 / Table I row 1)."""
    return extract_rvf_model(buffer_tft, RVFOptions(error_bound=ERROR_BOUND))


@pytest.fixture(scope="session")
def caffeine_extraction(buffer_tft):
    """CAFFEINE baseline model of the buffer (Fig. 8 / Table I row 2)."""
    return extract_caffeine_model(buffer_tft, error_bound=ERROR_BOUND,
                                  caffeine_options=CaffeineOptions(generations=25))


@pytest.fixture(scope="session")
def bitpattern_reference():
    """Transistor-level reference response to the 2.5 GS/s bit pattern (Fig. 9)."""
    pattern = buffer_test_pattern(n_bits=24, bit_rate=2.5e9)
    circuit = build_output_buffer(input_waveform=pattern, name="buffer_bitpattern")
    system = circuit.build()
    result = transient_analysis(system, TransientOptions(t_stop=pattern.duration, dt=10e-12))
    return {"pattern": pattern, "result": result}


@pytest.fixture(scope="session")
def model_responses(rvf_extraction, caffeine_extraction, bitpattern_reference):
    """Bit-pattern responses of both extracted models (Fig. 9 traces)."""
    reference = bitpattern_reference["result"]
    responses = {}
    for name, extraction in (("rvf", rvf_extraction), ("caffeine", caffeine_extraction)):
        responses[name] = simulate_hammerstein(extraction.model, reference.times,
                                               reference.inputs[:, 0])
    return responses
