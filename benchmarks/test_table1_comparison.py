"""Table I: RVF vs CAFFEINE comparison (accuracy, build time, speed-up, automation).

Reproduction targets (shapes, not absolute values):

* the RVF model is clearly more accurate than CAFFEINE both on the hyperplane
  (RMSE in dB) and in the time domain,
* both extracted models evaluate much faster than the transistor-level
  transient (the paper's 7x / 12x speed-ups; the Python/Python ratio here is
  larger but the ordering is what matters),
* model build times are modest (the paper: minutes on 2013 hardware),
* the RVF flow is fully automated, the CAFFEINE flow is not.
"""

import numpy as np

from repro.analysis import (
    ComparisonTable,
    ModelComparisonRow,
    surface_rmse_db,
    time_domain_rmse,
)


def _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                 bitpattern_reference, model_responses):
    reference = bitpattern_reference["result"]
    data = buffer_tft.siso_response()
    table = ComparisonTable()
    for name, extraction, automated in (("RVF", rvf_extraction, True),
                                        ("CAFF", caffeine_extraction, False)):
        response = model_responses[name.lower() if name == "RVF" else "caffeine"]
        table.add(ModelComparisonRow(
            name=name,
            surface_rmse_db=surface_rmse_db(data, extraction.model_surface()),
            time_domain_rmse=time_domain_rmse(reference.outputs[:, 0], response.outputs),
            build_time_s=extraction.model.metadata.build_time_seconds,
            speedup=reference.wall_time / response.wall_time,
            fully_automated=automated,
        ))
    return table


def test_table_renders_both_rows(buffer_tft, rvf_extraction, caffeine_extraction,
                                 bitpattern_reference, model_responses):
    table = _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                         bitpattern_reference, model_responses)
    text = table.render()
    print("\n" + text)
    assert "RVF" in text and "CAFF" in text


def test_rvf_wins_on_hyperplane_rmse(buffer_tft, rvf_extraction, caffeine_extraction,
                                     bitpattern_reference, model_responses):
    table = _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                         bitpattern_reference, model_responses)
    rvf, caff = table.rows
    # Paper: -62 dB vs -22 dB.
    assert rvf.surface_rmse_db < caff.surface_rmse_db - 6.0
    assert table.best_by_accuracy().name == "RVF"


def test_rvf_wins_on_time_domain_rmse(buffer_tft, rvf_extraction, caffeine_extraction,
                                      bitpattern_reference, model_responses):
    table = _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                         bitpattern_reference, model_responses)
    rvf, caff = table.rows
    # Paper: 0.0098 vs 0.0138.
    assert rvf.time_domain_rmse <= caff.time_domain_rmse * 1.1


def test_both_models_much_faster_than_spice(buffer_tft, rvf_extraction, caffeine_extraction,
                                            bitpattern_reference, model_responses):
    table = _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                         bitpattern_reference, model_responses)
    for row in table.rows:
        assert row.speedup > 5.0          # paper: 7x and 12x


def test_build_times_are_modest(buffer_tft, rvf_extraction, caffeine_extraction,
                                bitpattern_reference, model_responses):
    table = _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                         bitpattern_reference, model_responses)
    for row in table.rows:
        assert row.build_time_s < 120.0   # paper: 2 and 7 minutes on 2013 hardware


def test_automation_column(buffer_tft, rvf_extraction, caffeine_extraction,
                           bitpattern_reference, model_responses):
    table = _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                         bitpattern_reference, model_responses)
    rvf, caff = table.rows
    assert rvf.fully_automated and not caff.fully_automated


def test_benchmark_full_table_generation(benchmark, buffer_tft, rvf_extraction,
                                         caffeine_extraction, bitpattern_reference,
                                         model_responses):
    table = benchmark(lambda: _build_table(buffer_tft, rvf_extraction, caffeine_extraction,
                                           bitpattern_reference, model_responses))
    assert len(table.rows) == 2
