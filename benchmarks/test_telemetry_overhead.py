"""Acceptance benchmark of the push-telemetry stack (:mod:`repro.telemetry`).

Three claims, recorded into ``BENCH_telemetry.json``:

* ``live_subscriber_overhead`` — serving >= 1000 requests with telemetry
  enabled **and a live events subscriber draining the stream** must stay
  within **5%** of the telemetry-disabled throughput (no subscriber, so
  publish sites skip event construction entirely).  Trials are interleaved
  (plain, subscribed, plain, subscribed, ...) and compared on min-times so
  machine noise hits both sides alike.  The subscribed runs double as the
  trace-chain acceptance: every request's trace id must appear in its
  ``RequestSubmitted``, then in a ``BatchClosed`` and a ``BatchServed``.
* ``aggregator_overhead`` — the same gate for the PR 9 consumer tier: a
  live :class:`~repro.telemetry.MetricsAggregator` folding the stream into
  windows (trace pairing, percentile summaries, republication) must also
  stay within 5%, measured with the same interleaved-load IQ-mean
  methodology.
* ``record_replay`` — a :class:`~repro.telemetry.RunRecorder` journals a
  1000-request session into a :class:`~repro.telemetry.RunStore`; replaying
  the recorded schedule against a fresh server re-serves every request
  bitwise-identically.

Run directly for a report::

    python -m pytest benchmarks/test_telemetry_overhead.py -q -s
"""

import os
import tempfile
import threading
import time

import numpy as np

from repro.runtime import ModelRegistry, compile_model
from repro.rvf.hammerstein import HammersteinBranch, HammersteinModel
from repro.rvf.residues import PartialFractionFunction
from repro.serve import ModelServer, ServePolicy
from repro.telemetry import (
    BatchClosed,
    BatchServed,
    MetricsAggregator,
    RequestSubmitted,
    RunRecorder,
    RunStore,
)
from repro.tft.state_estimator import StateEstimator

from .artifacts import record_benchmark

#: Request count of the measured load (acceptance: >= 1000).
N_REQUESTS = 1000
#: Samples per request — heavy enough that per-request evaluation (identical
#: work in both modes) dominates scheduler jitter, which otherwise swamps
#: the few-percent effect this gate measures.
N_STEPS = 1024
#: Timed loads per mode, alternated load-by-load (plain, subscribed,
#: plain, ...) on ONE shared server.  The gate compares the two modes'
#: interquartile means: alternation cancels slow machine drift, sharing the
#: server removes worker-spawn variance, and trimming the quartiles rejects
#: scheduler outliers in *either* direction (a lucky fast plain load would
#: poison a min-based ratio just as surely as an unlucky slow subscribed
#: one).
N_LOADS = 10
#: Warm-up submissions per server instance (excluded from timing).
N_WARMUP = 8
#: The overhead gate: subscribed min-time <= 1.05x the plain min-time.
OVERHEAD_GATE = 1.05
#: Serving policy under test (matches the serve benchmark's shape).
POLICY = ServePolicy(max_batch=64, max_wait=10e-3, n_workers=2)
FUTURE_TIMEOUT = 60.0


def _model(tau: float = 1.0) -> HammersteinModel:
    """A small synthetic Hammerstein model (compiles in microseconds)."""
    def pf(poles, coeffs, const):
        return PartialFractionFunction(np.asarray(poles, complex),
                                       np.asarray(coeffs, complex), const)

    gain = pf([-2.0 + 0.5j], [0.3 + 0.1j], 1.2)
    pair = pf([-1.5 + 0.2j], [0.2 - 0.05j], 0.4 + 0.2j)
    real = pf([-1.0], [0.15], 0.2)
    branches = [
        HammersteinBranch(pole=(-3e7 + 1e8j) * tau, residue_function=pair,
                          static_function=pair.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=True),
        HammersteinBranch(pole=-5e7 * tau, residue_function=real,
                          static_function=real.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=False),
    ]
    return HammersteinModel(
        branches=branches, gain_function=gain,
        static_function=gain.antiderivative().with_value_at(0.5, 0.3),
        state_estimator=StateEstimator(), dc_input=0.5, dc_output=0.3)


def _stimuli(n_requests: int = N_REQUESTS, n_steps: int = N_STEPS,
             seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 0.5 + 0.3 * rng.standard_normal((n_requests, n_steps))


def _time_load(server, key, stimuli):
    """Submit the full load and gather every reply; returns (seconds, rows)."""
    start = time.perf_counter()
    futures = [server.submit(key, row) for row in stimuli]
    served = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
    return time.perf_counter() - start, served


def _subscribed_load(server, key, stimuli, events):
    """One timed load with a live subscriber draining the event stream.

    The drainer is a coalescing consumer: it takes the first event of a
    burst, lets the rest of the burst build for a moment, then drains it in
    one lock hop.  An event-at-a-time consumer would instead force a thread
    wakeup per published event — measuring the consumer's scheduling style,
    not the telemetry cost.
    """
    subscription = server.telemetry.subscribe(maxsize=1 << 17)
    stop = threading.Event()

    def drain():
        while not stop.is_set():
            event = subscription.get(timeout=0.05)
            if event is None:
                continue
            events.append(event)
            time.sleep(0.01)
            events.extend(subscription.drain())

    drainer = threading.Thread(target=drain, daemon=True)
    drainer.start()
    seconds, served = _time_load(server, key, stimuli)
    stop.set()
    drainer.join(timeout=10.0)
    events.extend(subscription.drain())
    n_dropped = subscription.n_dropped
    subscription.close()
    assert n_dropped == 0, (
        f"telemetry subscriber dropped {n_dropped} events — "
        "enlarge the benchmark subscription queue")
    return seconds, served


def _aggregated_load(server, key, stimuli):
    """One timed load with a live MetricsAggregator folding the stream."""
    aggregator = MetricsAggregator(server.telemetry, window_s=0.25,
                                   n_windows=256,
                                   max_batch=POLICY.max_batch,
                                   maxsize=1 << 17, republish=False)
    seconds, served = _time_load(server, key, stimuli)
    aggregator.close()
    assert aggregator.n_dropped == 0, (
        f"aggregator dropped {aggregator.n_dropped} events — enlarge the "
        "benchmark subscription queue")
    return seconds, served, aggregator.report()


class TestTelemetryOverhead:
    def test_live_subscriber_overhead_within_5pct(self, capsys):
        registry = ModelRegistry(tempfile.mkdtemp(prefix="telemetry-bench-"))
        compiled = compile_model(_model(), dt=1e-9, input_range=(0.0, 1.0))
        key = registry.save(compiled)
        stimuli = _stimuli()
        direct = compiled.evaluate(stimuli)

        plain_times, subscribed_times = [], []
        chain_events = []
        with ModelServer(registry, POLICY) as server:
            warm = [server.submit(key, row) for row in stimuli[:N_WARMUP]]
            for future in warm:
                future.result(FUTURE_TIMEOUT)
            for load in range(N_LOADS):
                seconds, served = _time_load(server, key, stimuli)
                np.testing.assert_array_equal(served, direct)
                plain_times.append(seconds)
                chain_events = []
                seconds, served = _subscribed_load(server, key, stimuli,
                                                   chain_events)
                np.testing.assert_array_equal(served, direct)
                subscribed_times.append(seconds)

        def iq_mean(times):
            trim = len(times) // 4
            kept = sorted(times)[trim:len(times) - trim]
            return sum(kept) / len(kept)

        plain_s = iq_mean(plain_times)
        subscribed_s = iq_mean(subscribed_times)
        overhead = subscribed_s / plain_s
        throughput = N_REQUESTS / subscribed_s

        # Trace-chain acceptance on the last subscribed run: every one of
        # its requests shows up in a closed and a served batch.
        submitted = {e.trace_id for e in chain_events
                     if isinstance(e, RequestSubmitted)}
        closed = {t for e in chain_events if isinstance(e, BatchClosed)
                  for t in e.trace_ids}
        served_ids = {t for e in chain_events if isinstance(e, BatchServed)
                      for t in e.trace_ids}
        assert len(submitted) == N_REQUESTS
        assert submitted == closed == served_ids, (
            f"trace chain broken: {len(submitted)} submitted, "
            f"{len(closed)} closed, {len(served_ids)} served")

        with capsys.disabled():
            print(f"\n[telemetry] {N_REQUESTS} requests x {N_STEPS} steps, "
                  f"{N_LOADS} alternated loads per mode: plain IQ-mean "
                  f"{plain_s * 1e3:.0f} ms, live subscriber IQ-mean "
                  f"{subscribed_s * 1e3:.0f} ms ({overhead:.3f}x, "
                  f"{throughput:.0f} req/s); {len(chain_events)} events "
                  f"drained on the last load, trace chain complete for "
                  f"{len(submitted)} requests")

        record_benchmark("BENCH_telemetry.json", "live_subscriber_overhead", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "n_loads_per_mode": N_LOADS,
            "cpu_count": os.cpu_count(),
            "policy": {"max_batch": POLICY.max_batch,
                       "max_wait_s": POLICY.max_wait,
                       "n_workers": POLICY.n_workers},
            "plain_s_iq_mean": plain_s,
            "subscribed_s_iq_mean": subscribed_s,
            "plain_s_all": plain_times,
            "subscribed_s_all": subscribed_times,
            "overhead_x": overhead,
            "overhead_gate_x": OVERHEAD_GATE,
            "subscribed_requests_per_s": throughput,
            "n_events_drained": len(chain_events),
            "trace_chain_complete": True,
        })

        # The gate: a live subscriber costs at most 5% throughput.
        assert overhead <= OVERHEAD_GATE, (
            f"live events subscriber costs {(overhead - 1) * 100:.1f}% "
            f"(> {(OVERHEAD_GATE - 1) * 100:.0f}%) of serve throughput")

    def test_metrics_aggregator_overhead_within_5pct(self, capsys):
        """The windowed-metrics consumer inherits the 5% overhead gate."""
        registry = ModelRegistry(tempfile.mkdtemp(prefix="telemetry-bench-"))
        compiled = compile_model(_model(), dt=1e-9, input_range=(0.0, 1.0))
        key = registry.save(compiled)
        stimuli = _stimuli(seed=3)
        direct = compiled.evaluate(stimuli)

        plain_times, aggregated_times = [], []
        report = None
        with ModelServer(registry, POLICY) as server:
            warm = [server.submit(key, row) for row in stimuli[:N_WARMUP]]
            for future in warm:
                future.result(FUTURE_TIMEOUT)
            for load in range(N_LOADS):
                seconds, served = _time_load(server, key, stimuli)
                np.testing.assert_array_equal(served, direct)
                plain_times.append(seconds)
                seconds, served, report = _aggregated_load(
                    server, key, stimuli)
                np.testing.assert_array_equal(served, direct)
                aggregated_times.append(seconds)

        def iq_mean(times):
            trim = len(times) // 4
            kept = sorted(times)[trim:len(times) - trim]
            return sum(kept) / len(kept)

        plain_s = iq_mean(plain_times)
        aggregated_s = iq_mean(aggregated_times)
        overhead = aggregated_s / plain_s

        # Aggregation acceptance on the last load: the fold covered the
        # whole session with complete trace pairing.
        assert report.n_submitted == N_REQUESTS
        assert report.n_served == N_REQUESTS
        assert report.n_unmatched == 0
        assert report.n_subscriber_dropped == 0
        assert report.e2e_latency.count == N_REQUESTS
        assert 0.0 < report.fill_ratio <= 1.0

        with capsys.disabled():
            print(f"\n[telemetry] {N_REQUESTS} requests x {N_STEPS} steps, "
                  f"{N_LOADS} alternated loads per mode: plain IQ-mean "
                  f"{plain_s * 1e3:.0f} ms, live aggregator IQ-mean "
                  f"{aggregated_s * 1e3:.0f} ms ({overhead:.3f}x); last "
                  f"fold: {report.n_windows} windows, e2e p95 "
                  f"{report.e2e_latency.p95 * 1e3:.2f} ms, fill "
                  f"{report.fill_ratio * 100.0:.0f}%")

        record_benchmark("BENCH_telemetry.json", "aggregator_overhead", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "n_loads_per_mode": N_LOADS,
            "cpu_count": os.cpu_count(),
            "window_s": 0.25,
            "plain_s_iq_mean": plain_s,
            "aggregated_s_iq_mean": aggregated_s,
            "plain_s_all": plain_times,
            "aggregated_s_all": aggregated_times,
            "overhead_x": overhead,
            "overhead_gate_x": OVERHEAD_GATE,
            "last_report": report.as_dict(),
        })

        assert overhead <= OVERHEAD_GATE, (
            f"live metrics aggregator costs {(overhead - 1) * 100:.1f}% "
            f"(> {(OVERHEAD_GATE - 1) * 100:.0f}%) of serve throughput")

    def test_record_replay_1000_requests_bitwise(self, capsys, tmp_path):
        """A journaled 1000-request session replays bitwise-identically."""
        registry = ModelRegistry(tempfile.mkdtemp(prefix="telemetry-bench-"))
        compiled = compile_model(_model(), dt=1e-9, input_range=(0.0, 1.0))
        key = registry.save(compiled)
        stimuli = _stimuli(seed=7)
        store = RunStore(tmp_path / "runs.db")

        with ModelServer(registry, POLICY) as server:
            with RunRecorder(server.telemetry, store, name="bench-session",
                             stats_source=lambda: server.stats().as_dict(),
                             snapshot_interval=0.2,
                             maxsize=1 << 17) as recorder:
                start = time.perf_counter()
                futures = [server.submit(key, row) for row in stimuli]
                recorded = np.vstack([f.result(FUTURE_TIMEOUT)
                                      for f in futures])
                record_s = time.perf_counter() - start
            n_dropped = recorder.n_dropped
        assert n_dropped == 0

        run = store.runs()[-1]
        assert run.closed
        schedule = list(store.replay(run.run_id))
        assert len(schedule) == N_REQUESTS
        # The journal preserved submission order: trace ids ascend with it.
        trace_ids = [entry.trace_id for entry in schedule]
        assert trace_ids == sorted(trace_ids)
        assert all(entry.key == key and entry.n_steps == N_STEPS
                   for entry in schedule)

        # Re-serve the recorded schedule against a fresh server: schedule
        # position i is submission i, whose stimulus is row i.
        with ModelServer(registry, POLICY) as server:
            futures = [server.submit(entry.key, stimuli[index])
                       for index, entry in enumerate(schedule)]
            replayed = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
        np.testing.assert_array_equal(replayed, recorded)
        np.testing.assert_array_equal(replayed, compiled.evaluate(stimuli))

        span = schedule[-1].t_rel - schedule[0].t_rel
        with capsys.disabled():
            print(f"\n[telemetry] journaled {len(schedule)} requests "
                  f"({record_s * 1e3:.0f} ms serve, submit span "
                  f"{span * 1e3:.0f} ms, {len(store.snapshots(run.run_id))} "
                  f"stats snapshots) and replayed them bitwise-identically")

        record_benchmark("BENCH_telemetry.json", "record_replay", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "record_s": record_s,
            "submit_span_s": span,
            "n_journaled_events": len(store.events(run.run_id)),
            "n_snapshots": len(store.snapshots(run.run_id)),
            "n_dropped": n_dropped,
            "replay_bitwise_identical": True,
        })
        store.close()
