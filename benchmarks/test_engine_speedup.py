"""Wall-clock benchmark: compiled factor-cached engine vs legacy assembly.

Acceptance benchmark of the sparse factor-cached simulation engine: the
transient analysis of the paper's four-stage output buffer (the hottest path
of the whole reproduction — it is rerun for every figure) must be at least
2x faster with the compiled engine than with the legacy per-device dense
stamping path, at identical accuracy.

Run directly for a report::

    python -m pytest benchmarks/test_engine_speedup.py -q -s
"""

import time

import numpy as np
import pytest

from repro.circuit import TransientOptions, transient_analysis
from repro.circuit.waveforms import Sine
from repro.circuits import build_output_buffer, buffer_training_waveform, build_rc_ladder
from repro.circuits.buffer import buffer_test_pattern

from .artifacts import record_benchmark


def _best_wall_time(system, options, repeats=3):
    """Best-of-N wall time and the result of the last run."""
    best = np.inf
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = transient_analysis(system, options)
        best = min(best, time.perf_counter() - start)
    return best, result


class TestBufferTransientSpeedup:
    def test_buffer_transient_at_least_2x_faster(self, capsys):
        waveform = buffer_training_waveform()
        system = build_output_buffer(input_waveform=waveform).build()
        system.compile("auto")  # exclude one-time compilation from timing
        period = 1.0 / waveform.frequency
        common = dict(t_stop=period / 4, dt=period / 150)

        t_legacy, r_legacy = _best_wall_time(
            system, TransientOptions(assembly="legacy", **common))
        t_compiled, r_compiled = _best_wall_time(
            system, TransientOptions(**common))

        speedup = t_legacy / t_compiled
        with capsys.disabled():
            print(f"\n[buffer transient] legacy {t_legacy * 1e3:.1f} ms, "
                  f"compiled {t_compiled * 1e3:.1f} ms -> {speedup:.2f}x "
                  f"({r_compiled.n_points} points, "
                  f"{r_compiled.newton_iterations} Newton iterations vs "
                  f"{r_legacy.newton_iterations} legacy)")

        record_benchmark("BENCH_engine.json", "buffer_transient", {
            "legacy_ms": t_legacy * 1e3,
            "compiled_ms": t_compiled * 1e3,
            "speedup": speedup,
            "n_points": r_compiled.n_points,
            "newton_iterations": r_compiled.newton_iterations,
        })

        # Identical trajectory within solver tolerance.
        assert r_compiled.n_points == r_legacy.n_points
        span = float(r_legacy.outputs.max() - r_legacy.outputs.min()) or 1.0
        np.testing.assert_allclose(r_compiled.outputs, r_legacy.outputs,
                                   rtol=0, atol=5e-5 * span)
        assert speedup >= 2.0, (
            f"compiled engine only {speedup:.2f}x faster than legacy")


class TestSparseLadderSpeedup:
    def test_large_linear_network_at_least_2_5x_faster(self, capsys):
        """Factor caching alone: a linear circuit refactors (almost) never."""
        circuit = build_rc_ladder(120, input_waveform=Sine(0.5, 0.3, 1e6))
        system = circuit.build()
        engine = system.compile("auto")
        assert engine.is_sparse
        common = dict(t_stop=0.5e-6, dt=2e-9)

        t_legacy, r_legacy = _best_wall_time(
            system, TransientOptions(assembly="legacy", **common), repeats=2)
        t_compiled, r_compiled = _best_wall_time(
            system, TransientOptions(**common), repeats=3)

        speedup = t_legacy / t_compiled
        with capsys.disabled():
            print(f"[rc ladder n={system.n_unknowns}] legacy {t_legacy * 1e3:.1f} ms, "
                  f"sparse {t_compiled * 1e3:.1f} ms -> {speedup:.2f}x")

        record_benchmark("BENCH_engine.json", "rc_ladder_sparse", {
            "n_unknowns": system.n_unknowns,
            "legacy_ms": t_legacy * 1e3,
            "sparse_ms": t_compiled * 1e3,
            "speedup": speedup,
        })

        np.testing.assert_allclose(r_compiled.outputs, r_legacy.outputs,
                                   rtol=1e-7, atol=1e-9)
        # Locally this measures ~10x; the slack absorbs noisy shared CI runners.
        assert speedup >= 2.5


class TestAdaptiveStepping:
    def test_bitpattern_adaptive_matches_fine_reference_with_3x_fewer_steps(self, capsys):
        """LTE-controlled stepping on the paper's 2.5 GS/s validation stimulus.

        The raised-cosine bit edges need fine steps but the flat tops do not;
        a fixed grid resolves everything at edge resolution.  Acceptance: the
        adaptive run agrees with a 4x-finer fixed-dt reference within the LTE
        tolerance while accepting at least 3x fewer steps.
        """
        waveform = buffer_test_pattern(n_bits=16)
        system = build_output_buffer(input_waveform=waveform).build()
        system.compile("auto")  # exclude one-time compilation from timing
        bit_period = 1.0 / waveform.bit_rate
        t_stop = 16 * bit_period
        dt_fine = bit_period / 160          # 4x finer than the bit/40 base grid
        lte_rel_tol = 1e-3

        start = time.perf_counter()
        r_fixed = transient_analysis(
            system, TransientOptions(t_stop=t_stop, dt=dt_fine))
        t_fixed = time.perf_counter() - start
        start = time.perf_counter()
        r_adaptive = transient_analysis(
            system, TransientOptions(t_stop=t_stop, dt=dt_fine, adaptive=True,
                                     lte_rel_tol=lte_rel_tol,
                                     max_dt_factor=40.0))
        t_adaptive = time.perf_counter() - start

        # Resample the non-uniform adaptive grid onto the reference grid.
        served = r_adaptive.resample(r_fixed.times)
        reference = r_fixed.outputs[:, 0]
        rel_rmse = (np.sqrt(np.mean((served - reference) ** 2))
                    / np.sqrt(np.mean(reference ** 2)))
        step_ratio = r_fixed.accepted_steps / r_adaptive.accepted_steps

        with capsys.disabled():
            print(f"\n[buffer adaptive] fixed dt={dt_fine:.2e}: "
                  f"{r_fixed.accepted_steps} steps in {t_fixed * 1e3:.1f} ms; "
                  f"adaptive: {r_adaptive.accepted_steps} steps "
                  f"({r_adaptive.rejected_steps} rejected) in "
                  f"{t_adaptive * 1e3:.1f} ms -> {step_ratio:.1f}x fewer steps, "
                  f"rel RMSE {rel_rmse:.2e}")

        record_benchmark("BENCH_engine.json", "buffer_adaptive_bitpattern", {
            "fixed_steps": r_fixed.accepted_steps,
            "adaptive_steps": r_adaptive.accepted_steps,
            "adaptive_rejections": r_adaptive.rejected_steps,
            "lte_rejections": r_adaptive.lte_rejections,
            "step_ratio": step_ratio,
            "fixed_ms": t_fixed * 1e3,
            "adaptive_ms": t_adaptive * 1e3,
            "relative_rmse": rel_rmse,
            "lte_rel_tol": lte_rel_tol,
        })

        assert r_adaptive.times[-1] == t_stop        # snapped exactly onto t_stop
        assert step_ratio >= 3.0, (
            f"adaptive stepping only saved {step_ratio:.1f}x steps")
        # "Within the LTE tolerance": the controller holds the *per-step* error
        # at lte_rel_tol; the accumulated trajectory deviation stays within a
        # small multiple of it.
        assert rel_rmse <= 3.0 * lte_rel_tol, (
            f"adaptive trajectory drifted {rel_rmse:.2e} from the reference")


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
