"""Machine-readable benchmark artifacts (``BENCH_*.json``).

Benchmark tests print human-readable reports with ``-s``; in addition they
record their measurements through :func:`record_benchmark`, which merges one
section per test into a JSON artifact at the repository root (or
``$BENCH_ARTIFACT_DIR``).  CI uploads the ``BENCH_*.json`` files, so the perf
trajectory of the engine and the model runtime stays diffable across commits
without scraping log output.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

__all__ = ["artifact_path", "record_benchmark"]


def artifact_path(filename: str) -> Path:
    """Where a benchmark artifact lands (repo root unless overridden)."""
    root = os.environ.get("BENCH_ARTIFACT_DIR")
    base = Path(root) if root else Path(__file__).resolve().parent.parent
    return base / filename


def record_benchmark(filename: str, section: str, payload: dict) -> Path:
    """Merge one benchmark's measurements into a JSON artifact.

    ``payload`` must be JSON-able (floats/ints/strings/lists/dicts); each
    test writes its own ``section`` so repeated runs overwrite only their own
    numbers.
    """
    path = artifact_path(filename)
    data: dict = {}
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError):
            data = {}
    if not isinstance(data, dict):
        data = {}
    meta = data.setdefault("meta", {})
    meta.update({
        "python": platform.python_version(),
        "machine": platform.machine(),
        "updated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    })
    data.setdefault("results", {})[section] = payload
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path
