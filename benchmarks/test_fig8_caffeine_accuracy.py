"""Figure 8: error contours of the CAFFEINE baseline model.

The paper fits the same TFT data with ordinary vector fitting for the
frequency poles and CAFFEINE for the residue regression, and finds the error
to be substantially larger (max RMSE around -20 dB vs -60 dB) and less
uniformly distributed than for the RVF model.  This module reproduces that
comparison; the benchmark measures the baseline's build time (Table I row 2).
"""

import numpy as np

from repro.analysis import compare_surfaces
from repro.baselines import CaffeineOptions, extract_caffeine_model
from .conftest import ERROR_BOUND


def _report(buffer_tft, extraction):
    return compare_surfaces(buffer_tft.siso_response(), extraction.model_surface(),
                            buffer_tft.state_axis(), buffer_tft.frequencies)


def test_caffeine_error_larger_than_rvf(buffer_tft, rvf_extraction, caffeine_extraction):
    rvf_report = _report(buffer_tft, rvf_extraction)
    caffeine_report = _report(buffer_tft, caffeine_extraction)
    # Paper: -20 dB (CAFFEINE) vs -60 dB (RVF) maximum error; require a clear
    # gap in the same direction.
    assert caffeine_report.max_gain_error_db > rvf_report.max_gain_error_db + 6.0
    assert caffeine_report.relative_rms > rvf_report.relative_rms


def test_caffeine_error_still_moderate(buffer_tft, caffeine_extraction):
    report = _report(buffer_tft, caffeine_extraction)
    # The baseline remains a usable model (the paper's Fig. 9 shows it tracking
    # the waveform), just less accurate: relative RMS below ~20 %.
    assert report.relative_rms < 0.2


def test_caffeine_error_exceeds_rvf_worst_case_over_much_of_the_plane(
        buffer_tft, rvf_extraction, caffeine_extraction):
    rvf_report = _report(buffer_tft, rvf_extraction)
    caffeine_report = _report(buffer_tft, caffeine_extraction)
    # "the error of the RVF model is lower and more equally distributed":
    # a substantial fraction of the plane has a CAFFEINE error larger than
    # RVF's *worst* error anywhere.
    fraction = np.mean(caffeine_report.gain_error > rvf_report.max_gain_error_db)
    assert fraction > 0.10


def test_caffeine_uses_ordinary_vf_poles(caffeine_extraction):
    assert caffeine_extraction.n_frequency_poles >= 2
    assert caffeine_extraction.model.is_stable()


def test_caffeine_flow_is_not_fully_automated(caffeine_extraction):
    # Table I's "Fully Automated = NO" column: the integrable-basis restriction
    # (or a manual integration step) is required.
    assert not caffeine_extraction.fully_automated


def test_benchmark_caffeine_model_extraction(benchmark, buffer_tft):
    """Table I "build time" of the CAFFEINE baseline flow."""
    result = benchmark.pedantic(
        lambda: extract_caffeine_model(buffer_tft, error_bound=ERROR_BOUND,
                                       caffeine_options=CaffeineOptions(generations=15)),
        rounds=1, iterations=1)
    assert result.model.is_stable()
