"""Figure 9: time-domain response to a 2.5 GS/s bit pattern.

The buffer, the RVF model and the CAFFEINE model are driven with the same
spectrally rich bit pattern; the paper shows all three waveforms overlapping,
with the RVF model slightly outperforming CAFFEINE (time-domain RMSE 0.0098 vs
0.0138).  The benchmark measures the cost of evaluating the extracted model on
the full pattern — the quantity whose ratio to the SPICE transient gives the
paper's speed-up.
"""

import numpy as np
import pytest

from repro.analysis import time_domain_rmse
from repro.rvf import simulate_hammerstein


def test_reference_output_swings_and_saturates(bitpattern_reference):
    outputs = bitpattern_reference["result"].outputs[:, 0]
    assert outputs.max() > 0.08
    assert outputs.min() < -0.08


def test_rvf_model_tracks_reference(bitpattern_reference, model_responses):
    reference = bitpattern_reference["result"]
    rmse = time_domain_rmse(reference.outputs[:, 0], model_responses["rvf"].outputs)
    swing = np.ptp(reference.outputs[:, 0])
    # Paper: RMSE 0.0098 on the buffer output; require < 5 % of the swing.
    assert rmse < 0.05 * swing


def test_caffeine_model_tracks_reference(bitpattern_reference, model_responses):
    reference = bitpattern_reference["result"]
    rmse = time_domain_rmse(reference.outputs[:, 0], model_responses["caffeine"].outputs)
    swing = np.ptp(reference.outputs[:, 0])
    assert rmse < 0.15 * swing


def test_rvf_model_at_least_as_accurate_as_caffeine(bitpattern_reference, model_responses):
    reference = bitpattern_reference["result"].outputs[:, 0]
    rvf_rmse = time_domain_rmse(reference, model_responses["rvf"].outputs)
    caffeine_rmse = time_domain_rmse(reference, model_responses["caffeine"].outputs)
    # Paper: 0.0098 (RVF) vs 0.0138 (CAFFEINE).
    assert rvf_rmse <= caffeine_rmse * 1.1


def test_models_reproduce_saturated_levels(bitpattern_reference, model_responses):
    reference = bitpattern_reference["result"].outputs[:, 0]
    model = model_responses["rvf"].outputs
    assert model.max() == pytest.approx(reference.max(), rel=0.2)
    assert model.min() == pytest.approx(reference.min(), rel=0.2)


def test_model_evaluation_is_faster_than_spice(bitpattern_reference, model_responses):
    spice_time = bitpattern_reference["result"].wall_time
    model_time = model_responses["rvf"].wall_time
    # Paper: 7x; the Python-vs-Python ratio here is far larger, the direction
    # is what must hold.
    assert spice_time / model_time > 5.0


def test_benchmark_rvf_model_bitpattern_evaluation(benchmark, rvf_extraction,
                                                   bitpattern_reference):
    reference = bitpattern_reference["result"]
    times, inputs = reference.times, reference.inputs[:, 0]
    result = benchmark(lambda: simulate_hammerstein(rvf_extraction.model, times, inputs))
    assert result.n_points == reference.n_points
