"""Acceptance benchmark of span tracing (:mod:`repro.telemetry.spans`).

Two overhead gates and one completeness claim, recorded into
``BENCH_spans.json``:

* ``full tracing`` — serving the standard 1000-request load with
  ``sample_rate=1.0`` **and a live SpanClosed subscriber draining the span
  stream** must stay within **10%** of the untraced throughput (no
  subscriber, so the falsy tracer skips span construction entirely).
* ``sampling off`` — a server whose tracer is configured with
  ``sample_rate=0.0`` (the machinery compiled in, every trace dropped at
  the head) must stay within **2%**: switched-off tracing is one
  truthiness check per guard site and nothing else.
* completeness rides along: on the last traced load, every one of the
  1000 requests must assemble into a span tree rooted at ``request``
  whose ``serve_queue`` + ``serve_coalesce`` + ``serve_execute`` children
  tile the root — per-stage durations sum to the recorded e2e latency.

Methodology is ``test_telemetry_overhead``'s: alternated loads (plain,
traced, off, plain, ...) compared on interquartile means, so machine
drift hits every mode alike.  The traced and plain loads share one
server; the sampling-off mode needs its own tracer config and therefore
its own server, warmed identically and loaded in the same rotation.

Run directly for a report::

    python -m pytest benchmarks/test_spans_overhead.py -q -s
"""

import os
import tempfile
import threading
import time

import numpy as np

from repro.runtime import ModelRegistry, compile_model
from repro.serve import ModelServer
from repro.telemetry import ROOT_SPAN, TraceAssembler, TracerConfig

from .artifacts import record_benchmark
from .test_telemetry_overhead import (FUTURE_TIMEOUT, N_LOADS, N_REQUESTS,
                                      N_STEPS, N_WARMUP, POLICY, _model,
                                      _stimuli, _time_load)

#: Full tracing (every request traced, live subscriber) costs <= 10%.
TRACED_GATE = 1.10
#: Tracing compiled in but sampled out costs <= 2%.
OFF_GATE = 1.02
#: The stages that tile the root span exactly (submit -> close -> start ->
#: resolve share their boundary timestamps).
TILING_STAGES = ("serve_queue", "serve_coalesce", "serve_execute")


def _traced_load(server, key, stimuli):
    """One timed load with full tracing live.

    A coalescing consumer drains the ``SpanClosed`` stream while serving
    (same consumer style as the telemetry benchmark); after the timed
    section the tail of the last batch's spans is allowed to settle so the
    assembler holds every request's complete tree.
    """
    subscription = server.telemetry.subscribe(topics=("SpanClosed",),
                                              maxsize=1 << 17)
    spans = []
    stop = threading.Event()

    def drain():
        while not stop.is_set():
            event = subscription.get(timeout=0.05)
            if event is None:
                continue
            spans.append(event)
            time.sleep(0.01)
            spans.extend(subscription.drain())

    drainer = threading.Thread(target=drain, daemon=True)
    drainer.start()
    start = time.perf_counter()
    futures = [server.submit(key, row) for row in stimuli]
    served = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
    seconds = time.perf_counter() - start
    stop.set()
    drainer.join(timeout=10.0)
    spans.extend(subscription.drain())

    expected = {future.trace_id for future in futures}
    assembler = TraceAssembler()
    assembler.extend(spans)
    deadline = time.monotonic() + 10.0
    while not all(assembler.complete(trace_id) for trace_id in expected):
        if time.monotonic() > deadline:
            break
        time.sleep(0.01)
        assembler.extend(subscription.drain())
    n_dropped = subscription.n_dropped
    subscription.close()
    assert n_dropped == 0, (
        f"span subscriber dropped {n_dropped} events — enlarge the "
        "benchmark subscription queue")
    return seconds, served, assembler, expected


class TestSpanTracingOverhead:
    def test_full_tracing_and_sampling_off_gated(self, capsys):
        registry = ModelRegistry(tempfile.mkdtemp(prefix="spans-bench-"))
        compiled = compile_model(_model(), dt=1e-9, input_range=(0.0, 1.0))
        key = registry.save(compiled)
        stimuli = _stimuli(seed=11)
        direct = compiled.evaluate(stimuli)

        plain_times, traced_times, off_times = [], [], []
        assembler, expected = None, set()
        with ModelServer(registry, POLICY,
                         tracing=TracerConfig(sample_rate=1.0)) as server, \
             ModelServer(registry, POLICY,
                         tracing=TracerConfig(sample_rate=0.0)) as off_server:
            for instance in (server, off_server):
                warm = [instance.submit(key, row)
                        for row in stimuli[:N_WARMUP]]
                for future in warm:
                    future.result(FUTURE_TIMEOUT)
            for load in range(N_LOADS):
                seconds, served = _time_load(server, key, stimuli)
                np.testing.assert_array_equal(served, direct)
                plain_times.append(seconds)
                seconds, served, assembler, expected = _traced_load(
                    server, key, stimuli)
                np.testing.assert_array_equal(served, direct)
                traced_times.append(seconds)
                seconds, served = _time_load(off_server, key, stimuli)
                np.testing.assert_array_equal(served, direct)
                off_times.append(seconds)

        def iq_mean(times):
            trim = len(times) // 4
            kept = sorted(times)[trim:len(times) - trim]
            return sum(kept) / len(kept)

        plain_s = iq_mean(plain_times)
        traced_s = iq_mean(traced_times)
        off_s = iq_mean(off_times)
        traced_overhead = traced_s / plain_s
        off_overhead = off_s / plain_s

        # Completeness acceptance on the last traced load: every request
        # assembled into a rooted tree whose tiling stages sum to the
        # recorded e2e latency.
        assert len(expected) == N_REQUESTS
        n_spans = 0
        stage_names = set()
        n_worker_spans = 0
        for trace_id in expected:
            assert assembler.complete(trace_id), (
                f"trace {trace_id} never recorded its root span")
            recorded = assembler.spans(trace_id)
            n_spans += len(recorded)
            stage_names.update(node.name for node in recorded)
            n_worker_spans += sum(1 for node in recorded
                                  if node.worker_index >= 0)
            root = assembler.tree(trace_id)
            tiled = sum(child.duration_s for child in root.children
                        if child.name in TILING_STAGES)
            assert abs(tiled - root.duration_s) <= max(
                1e-9, root.duration_s * 1e-6), (
                f"trace {trace_id}: stage durations sum to {tiled:.9f} s "
                f"but the recorded e2e latency is {root.duration_s:.9f} s")
        assert stage_names >= {ROOT_SPAN, *TILING_STAGES}

        with capsys.disabled():
            print(f"\n[spans] {N_REQUESTS} requests x {N_STEPS} steps, "
                  f"{N_LOADS} alternated loads per mode: plain IQ-mean "
                  f"{plain_s * 1e3:.0f} ms, full tracing "
                  f"{traced_s * 1e3:.0f} ms ({traced_overhead:.3f}x), "
                  f"sampling off {off_s * 1e3:.0f} ms "
                  f"({off_overhead:.3f}x); last traced load assembled "
                  f"{n_spans} spans over {len(expected)} complete traces "
                  f"({n_worker_spans} worker-attributed)")

        record_benchmark("BENCH_spans.json", "span_tracing_overhead", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "n_loads_per_mode": N_LOADS,
            "cpu_count": os.cpu_count(),
            "policy": {"max_batch": POLICY.max_batch,
                       "max_wait_s": POLICY.max_wait,
                       "n_workers": POLICY.n_workers},
            "plain_s_iq_mean": plain_s,
            "traced_s_iq_mean": traced_s,
            "off_s_iq_mean": off_s,
            "plain_s_all": plain_times,
            "traced_s_all": traced_times,
            "off_s_all": off_times,
            "traced_overhead_x": traced_overhead,
            "traced_overhead_gate_x": TRACED_GATE,
            "off_overhead_x": off_overhead,
            "off_overhead_gate_x": OFF_GATE,
            "n_spans_last_load": n_spans,
            "n_worker_spans_last_load": n_worker_spans,
            "stage_names": sorted(stage_names),
            "trees_complete": True,
        })

        assert traced_overhead <= TRACED_GATE, (
            f"full span tracing costs {(traced_overhead - 1) * 100:.1f}% "
            f"(> {(TRACED_GATE - 1) * 100:.0f}%) of serve throughput")
        assert off_overhead <= OFF_GATE, (
            f"sampled-out tracing costs {(off_overhead - 1) * 100:.1f}% "
            f"(> {(OFF_GATE - 1) * 100:.0f}%) of serve throughput — the "
            "off path must stay one truthiness check per guard site")
