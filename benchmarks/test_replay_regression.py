"""Replay-based latency-regression gate over the canonical session.

``fixtures/canonical_session.json`` is a checked-in 1000-request session
(seeded exponential arrivals over ~1 s).  This harness journals it into a
fresh :class:`~repro.telemetry.RunStore`, streams the schedule back out
through :meth:`RunStore.replay <repro.telemetry.RunStore.replay>` (the
keyset-paginated iterator — each pass re-reads sqlite), and re-drives it
against a live :class:`~repro.serve.ModelServer` with a live
:class:`~repro.telemetry.MetricsAggregator` folding the event stream.

The gate is **drift**, not absolute numbers: passes alternate between a
baseline and a candidate label on one shared server (exactly the
interleaved-trial methodology of ``test_telemetry_overhead.py``), and the
two sides' aggregated e2e p95 latency and served throughput must agree
within generous bounds.  The server runs with full span tracing
(``sample_rate=1.0``) so every pass also records its per-stage p95
attribution — where a latency regression *lands* (queue, coalesce,
execute, ...) is preserved alongside how big it is.  On an unchanged tree both sides run identical
code, so the gate measures the harness's own noise floor; a regression in
the serving or telemetry hot paths widens every pass alike and shows up in
the absolute numbers recorded into ``BENCH_metrics.json``, which CI uploads
for cross-run tracking.

Correctness rides along: every pass must serve all 1000 requests bitwise
identically to direct evaluation, and the aggregator's trace pairing must
cover the full session (no unmatched ids, no subscriber drops).

Run directly for a report::

    python -m pytest benchmarks/test_replay_regression.py -q -s
"""

import json
import os
import pathlib
import tempfile
import time

import numpy as np

from repro.runtime import ModelRegistry, compile_model
from repro.serve import ModelServer
from repro.telemetry import MetricsAggregator, RunStore, TracerConfig

from .artifacts import record_benchmark
from .test_telemetry_overhead import (FUTURE_TIMEOUT, N_WARMUP, POLICY,
                                      _model, _stimuli)

FIXTURE = pathlib.Path(__file__).parent / "fixtures" / "canonical_session.json"

#: Replay passes, alternated baseline / candidate on one shared server.
N_PASSES = 6
#: Latency-drift gate: candidate e2e p95 within this factor of baseline
#: (either direction) across the alternated passes.
P95_DRIFT_GATE = 1.5
#: Throughput-drift gate (served rows/s, either direction).
THROUGHPUT_DRIFT_GATE = 1.35
#: Aggregator window while replaying (the ~1 s session closes several).
WINDOW_S = 0.25


def _load_fixture() -> dict:
    with open(FIXTURE) as fh:
        fixture = json.load(fh)
    assert fixture["version"] == 1
    assert len(fixture["t_rel"]) == fixture["n_requests"]
    return fixture


def _journal_session(store: RunStore, fixture: dict, key: str) -> int:
    """Journal the fixture as ``RequestSubmitted`` events; returns run id."""
    run_id = store.open_run(fixture["name"],
                            meta={"seed": fixture["seed"],
                                  "n_requests": fixture["n_requests"]})
    t_opened = store.get_run(run_id).t_opened
    store.record_events(run_id, [
        {"event": "RequestSubmitted", "schema": 1, "key": key,
         "n_steps": fixture["n_steps"], "trace_id": index + 1,
         "t": t_opened + t_rel}
        for index, t_rel in enumerate(fixture["t_rel"])])
    store.close_run(run_id)
    return run_id


def _replay_pass(server, store, run_id, stimuli):
    """One timed replay of the journaled schedule with live aggregation.

    The schedule is **streamed** from sqlite (``RunStore.replay`` iterator)
    while submissions are in flight — the materialise-first pattern this PR
    removed would hide a pagination regression here.
    """
    aggregator = MetricsAggregator(server.telemetry, window_s=WINDOW_S,
                                   n_windows=256, max_batch=POLICY.max_batch,
                                   maxsize=1 << 17, republish=False)
    start = time.perf_counter()
    futures = [server.submit(entry.key, stimuli[index])
               for index, entry in enumerate(store.replay(run_id))]
    served = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
    wall_s = time.perf_counter() - start
    aggregator.close()
    report = aggregator.report()
    assert aggregator.n_dropped == 0, (
        f"aggregator dropped {aggregator.n_dropped} events — enlarge the "
        "benchmark subscription queue")
    return wall_s, served, report


class TestReplayRegression:
    def test_canonical_session_latency_drift_gated(self, capsys, tmp_path):
        fixture = _load_fixture()
        n_requests = fixture["n_requests"]
        registry = ModelRegistry(tempfile.mkdtemp(prefix="replay-bench-"))
        compiled = compile_model(_model(), dt=1e-9, input_range=(0.0, 1.0))
        key = registry.save(compiled)
        stimuli = _stimuli(n_requests, fixture["n_steps"],
                           seed=fixture["seed"])
        direct = compiled.evaluate(stimuli)

        store = RunStore(tmp_path / "canonical.db")
        run_id = _journal_session(store, fixture, key)

        passes = []
        with ModelServer(registry, POLICY,
                         tracing=TracerConfig(sample_rate=1.0)) as server:
            warm = [server.submit(key, row) for row in stimuli[:N_WARMUP]]
            for future in warm:
                future.result(FUTURE_TIMEOUT)
            for _ in range(N_PASSES):
                wall_s, served, report = _replay_pass(
                    server, store, run_id, stimuli)
                np.testing.assert_array_equal(served, direct)
                assert report.n_submitted == n_requests
                assert report.n_served == n_requests
                assert report.n_failed == 0
                assert report.n_unmatched == 0
                assert report.n_subscriber_dropped == 0
                assert report.stages, (
                    "full-rate tracing produced no stage attribution — "
                    "SpanClosed events are not reaching the aggregator")
                passes.append({
                    "wall_s": wall_s,
                    "throughput_rps": n_requests / wall_s,
                    "e2e_p50_s": report.e2e_latency.p50,
                    "e2e_p95_s": report.e2e_latency.p95,
                    "e2e_p99_s": report.e2e_latency.p99,
                    "queue_p95_s": report.queue_latency.p95,
                    "fill_ratio": report.fill_ratio,
                    "n_windows": report.n_windows,
                    "stages_p95_s": {name: summary.p95 for name, summary
                                     in sorted(report.stages.items())},
                })
        store.close()

        def mean(side, field):
            values = [p[field] for p in passes[side::2]]
            return sum(values) / len(values)

        baseline_p95 = mean(0, "e2e_p95_s")
        candidate_p95 = mean(1, "e2e_p95_s")
        p95_drift = max(candidate_p95 / baseline_p95,
                        baseline_p95 / candidate_p95)
        baseline_rps = mean(0, "throughput_rps")
        candidate_rps = mean(1, "throughput_rps")
        rps_drift = max(candidate_rps / baseline_rps,
                        baseline_rps / candidate_rps)

        def stage_p95(side):
            """Per-stage p95 attribution averaged over one side's passes."""
            samples: dict = {}
            for entry in passes[side::2]:
                for name, p95 in entry["stages_p95_s"].items():
                    samples.setdefault(name, []).append(p95)
            return {name: sum(values) / len(values)
                    for name, values in sorted(samples.items())}

        baseline_stages = stage_p95(0)
        candidate_stages = stage_p95(1)
        hottest = max(baseline_stages, key=baseline_stages.get)

        with capsys.disabled():
            print(f"\n[replay-regression] canonical session "
                  f"({n_requests} requests over {fixture['duration_s']:.2f} s "
                  f"recorded): {N_PASSES} alternated passes — baseline p95 "
                  f"{baseline_p95 * 1e3:.2f} ms vs candidate "
                  f"{candidate_p95 * 1e3:.2f} ms (drift {p95_drift:.3f}x), "
                  f"throughput {baseline_rps:.0f} vs {candidate_rps:.0f} "
                  f"rows/s (drift {rps_drift:.3f}x), fill "
                  f"{passes[-1]['fill_ratio'] * 100.0:.0f}%; hottest stage "
                  f"{hottest} at p95 {baseline_stages[hottest] * 1e3:.2f} ms "
                  f"baseline / {candidate_stages.get(hottest, 0.0) * 1e3:.2f}"
                  f" ms candidate")

        record_benchmark("BENCH_metrics.json", "replay_regression", {
            "fixture": FIXTURE.name,
            "fixture_seed": fixture["seed"],
            "n_requests": n_requests,
            "n_steps": fixture["n_steps"],
            "n_passes": N_PASSES,
            "window_s": WINDOW_S,
            "cpu_count": os.cpu_count(),
            "policy": {"max_batch": POLICY.max_batch,
                       "max_wait_s": POLICY.max_wait,
                       "n_workers": POLICY.n_workers},
            "passes": passes,
            "baseline_e2e_p95_s": baseline_p95,
            "candidate_e2e_p95_s": candidate_p95,
            "e2e_p95_drift_x": p95_drift,
            "e2e_p95_drift_gate_x": P95_DRIFT_GATE,
            "baseline_throughput_rps": baseline_rps,
            "candidate_throughput_rps": candidate_rps,
            "throughput_drift_x": rps_drift,
            "throughput_drift_gate_x": THROUGHPUT_DRIFT_GATE,
            "baseline_stage_p95_s": baseline_stages,
            "candidate_stage_p95_s": candidate_stages,
            "hottest_stage": hottest,
            "replay_bitwise_identical": True,
        })

        assert p95_drift <= P95_DRIFT_GATE, (
            f"e2e p95 drifted {p95_drift:.3f}x between alternated replay "
            f"passes (gate {P95_DRIFT_GATE}x): baseline "
            f"{baseline_p95 * 1e3:.2f} ms, candidate "
            f"{candidate_p95 * 1e3:.2f} ms")
        assert rps_drift <= THROUGHPUT_DRIFT_GATE, (
            f"throughput drifted {rps_drift:.3f}x between alternated replay "
            f"passes (gate {THROUGHPUT_DRIFT_GATE}x)")
