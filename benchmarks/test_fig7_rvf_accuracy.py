"""Figure 7: RVF-modelled hyperplane and its error contours.

The paper reports that fitting the buffer's TFT data with an error bound of
1e-3 yields 12 frequency poles and 10 state poles, and that the resulting
model matches the TFT hyperplane with a maximum gain error around -60 dB that
is distributed roughly uniformly over the state/frequency plane (worst at high
frequency where the gain itself is negligible).  The absolute numbers depend
on the device models, so this reproduction checks the *shape*: a compact pole
count, a small and uniform error surface, and the worst error confined to the
low-gain region.  The benchmark measures the full model-extraction time
(Table I's "build time" for the RVF row).
"""

import numpy as np

from repro.analysis import compare_surfaces
from repro.rvf import RVFOptions, extract_rvf_model
from .conftest import ERROR_BOUND


def _report(buffer_tft, rvf_extraction):
    return compare_surfaces(buffer_tft.siso_response(), rvf_extraction.model_surface(),
                            buffer_tft.state_axis(), buffer_tft.frequencies)


def test_pole_counts_are_compact(rvf_extraction):
    # Paper: 12 frequency poles, 10 state poles; the square-law buffer needs
    # fewer frequency poles but the same order of magnitude.
    assert 2 <= rvf_extraction.n_frequency_poles <= 16
    assert 2 <= rvf_extraction.n_state_poles <= 20


def test_frequency_fit_meets_error_bound(rvf_extraction):
    assert rvf_extraction.frequency_report.result.relative_error <= ERROR_BOUND


def test_surface_error_is_small(buffer_tft, rvf_extraction):
    report = _report(buffer_tft, rvf_extraction)
    # Paper: max error ~-60 dB on a gain-2 surface.  Require at least -30 dB
    # (absolute deviation < 0.03) and a sub-percent relative RMS.
    assert report.max_gain_error_db < -30.0
    assert report.relative_rms < 2e-2


def test_error_is_roughly_uniform_over_the_plane(buffer_tft, rvf_extraction):
    report = _report(buffer_tft, rvf_extraction)
    finite = report.gain_error[np.isfinite(report.gain_error)]
    # "more equally distributed over the state space and frequency": the RMS
    # error is within ~25 dB of the worst-case error.
    rms_db = 20 * np.log10(np.sqrt(np.mean((10 ** (finite / 20)) ** 2)))
    assert report.max_gain_error_db - rms_db < 25.0


def test_worst_error_is_still_far_below_the_local_signal_level(buffer_tft, rvf_extraction):
    report = _report(buffer_tft, rvf_extraction)
    state, frequency = report.worst_region()
    gain_db = buffer_tft.gain_db()
    k = int(np.argmin(np.abs(buffer_tft.state_axis() - state)))
    l = int(np.argmin(np.abs(buffer_tft.frequencies - frequency)))
    # Paper: even at its worst point the model error is negligible compared to
    # the response it models (their worst error lives where the gain itself is
    # < -70 dB).  Require at least 20 dB of margin at the worst-fit point.
    assert report.max_gain_error_db < gain_db[k, l] - 20.0


def test_model_is_stable_by_construction(rvf_extraction):
    assert rvf_extraction.model.is_stable()
    assert np.all(rvf_extraction.model.frequency_poles.real < 0)


def test_benchmark_rvf_model_extraction(benchmark, buffer_tft):
    """Table I "build time" of the RVF flow (TFT data -> analytical model)."""
    result = benchmark.pedantic(
        lambda: extract_rvf_model(buffer_tft, RVFOptions(error_bound=ERROR_BOUND)),
        rounds=3, iterations=1)
    assert result.model.is_stable()
