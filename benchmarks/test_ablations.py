"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not figures from the paper; they probe the sensitivity of the
reproduction to implementation choices:

* transient integration rule (trapezoidal vs backward Euler) for the training
  run that produces the Jacobian snapshots,
* model order (number of frequency poles) — the paper's "trade off complexity
  for accuracy",
* training-excursion amplitude — how much of the state space the training
  sine covers,
* static/dynamic split — modelling H directly vs H - H(0) with an integrated
  static path.
"""

import numpy as np
import pytest

from repro.analysis import compare_surfaces
from repro.circuit import TransientOptions, transient_analysis
from repro.circuits import build_output_buffer, buffer_training_waveform
from repro.rvf import RVFOptions, extract_rvf_model
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft
from repro.vectfit import VectorFitOptions, initial_complex_poles, vector_fit
from .conftest import ERROR_BOUND


def _train_tft(method="trapezoidal", amplitude=0.5, steps=150, name="ablation"):
    waveform = buffer_training_waveform(amplitude=amplitude)
    circuit = build_output_buffer(input_waveform=waveform, name=name)
    system = circuit.build()
    trajectory = SnapshotTrajectory(system)
    period = 1.0 / waveform.frequency
    transient_analysis(system, TransientOptions(t_stop=period, dt=period / steps,
                                                method=method),
                       snapshot_callback=trajectory)
    return extract_tft(trajectory, default_frequency_grid(1.0, 10e9, 4), max_snapshots=110)


class TestIntegratorAblation:
    def test_backward_euler_training_still_extracts_accurately(self, buffer_tft):
        tft_be = _train_tft(method="backward_euler", name="ablation_be")
        extraction = extract_rvf_model(tft_be, RVFOptions(error_bound=ERROR_BOUND))
        report = compare_surfaces(tft_be.siso_response(), extraction.model_surface(),
                                  tft_be.state_axis(), tft_be.frequencies)
        assert report.relative_rms < 5e-2

    def test_trapezoidal_and_backward_euler_agree_on_the_hyperplane(self, buffer_tft):
        tft_be = _train_tft(method="backward_euler", name="ablation_be2")
        gain_trap = np.sort(np.abs(buffer_tft.siso_dc()))
        gain_be = np.sort(np.abs(tft_be.siso_dc()))
        n = min(gain_trap.size, gain_be.size)
        assert np.allclose(gain_trap[-n:], gain_be[-n:], atol=0.05)


class TestOrderSweepAblation:
    def test_accuracy_improves_then_saturates_with_frequency_poles(self, buffer_tft):
        """The paper's complexity/accuracy trade-off for the frequency poles."""
        svals = 2j * np.pi * buffer_tft.frequencies
        dc = buffer_tft.siso_dc().real
        dynamic = buffer_tft.siso_response() - dc[:, None]
        errors = []
        for order in (2, 4, 8):
            result = vector_fit(svals, dynamic, initial_complex_poles(1e3, 10e9, order),
                                VectorFitOptions(fit_constant=True))
            errors.append(result.relative_error)
        # More poles help substantially at first (order 2 -> 4) and then the
        # error saturates at the trajectory noise floor instead of improving
        # further or diverging.
        assert min(errors[1:]) <= errors[0] * 1.2
        assert max(errors[1:]) <= 10.0 * min(errors[1:])

    def test_benchmark_order_sweep(self, benchmark, buffer_tft):
        svals = 2j * np.pi * buffer_tft.frequencies
        dc = buffer_tft.siso_dc().real
        dynamic = buffer_tft.siso_response() - dc[:, None]

        def sweep():
            return [vector_fit(svals, dynamic, initial_complex_poles(1e3, 10e9, order),
                               VectorFitOptions(fit_constant=True)).relative_error
                    for order in (2, 4, 6)]

        errors = benchmark.pedantic(sweep, rounds=1, iterations=1)
        assert len(errors) == 3


class TestTrainingAmplitudeAblation:
    def test_smaller_training_excursion_limits_the_modelled_state_range(self):
        tft_small = _train_tft(amplitude=0.2, name="ablation_amp")
        states = tft_small.state_axis()
        assert states.min() > 0.65 and states.max() < 1.15

    def test_small_excursion_model_still_fits_its_own_range(self):
        tft_small = _train_tft(amplitude=0.2, name="ablation_amp2")
        extraction = extract_rvf_model(tft_small, RVFOptions(error_bound=ERROR_BOUND))
        report = compare_surfaces(tft_small.siso_response(), extraction.model_surface(),
                                  tft_small.state_axis(), tft_small.frequencies)
        assert report.relative_rms < 2e-2


class TestStaticSplitAblation:
    def test_direct_fit_of_h_is_also_usable(self, buffer_tft):
        extraction = extract_rvf_model(
            buffer_tft, RVFOptions(error_bound=ERROR_BOUND, split_static=False))
        report = compare_surfaces(buffer_tft.siso_response(), extraction.model_surface(),
                                  buffer_tft.state_axis(), buffer_tft.frequencies)
        assert report.relative_rms < 5e-2

    def test_split_static_is_at_least_as_accurate(self, buffer_tft, rvf_extraction):
        direct = extract_rvf_model(
            buffer_tft, RVFOptions(error_bound=ERROR_BOUND, split_static=False))
        split_report = compare_surfaces(buffer_tft.siso_response(),
                                        rvf_extraction.model_surface(),
                                        buffer_tft.state_axis(), buffer_tft.frequencies)
        direct_report = compare_surfaces(buffer_tft.siso_response(),
                                         direct.model_surface(),
                                         buffer_tft.state_axis(), buffer_tft.frequencies)
        assert split_report.relative_rms <= direct_report.relative_rms * 2.0
