"""Acceptance benchmark of the serving layer (:mod:`repro.serve`).

The serving claim on top of the compiled runtime: a load of >= 1000
*individual* stimulus requests against the paper's buffer model must flow
through the sharded micro-batching server at least **2x faster** than the
single-process status quo of serving each request as its own ``evaluate``
call — while answering every request with outputs bitwise-equal to a direct
single-process evaluation, and adding at most ``max_wait`` of p50 batching
latency.

Two comparisons are recorded (the first is the gate):

* ``server vs per-request single process`` — the request-serving baseline:
  no coalescing, no sharding, one synchronous ``evaluate`` per request on
  one process.  This is what a deployment without :mod:`repro.serve` does
  for request traffic, and what micro-batching + sharding must beat 2x.
* ``shard pool vs one whole-batch call`` — isolates the sharding component
  on an already-coalesced batch.  With the shared-memory dataplane (rows and
  results travel through per-worker segments; the pipes carry descriptors
  only) this is **gated at 1.5x** of the single in-process call even on one
  core — the ROADMAP target the old pickle-over-pipe transport missed by ~4x.
  On multi-core runners the pool should win outright.

Run directly for a report::

    python -m pytest benchmarks/test_serve_speedup.py -q -s
"""

import os
import tempfile
import time

import numpy as np
import pytest

from repro.runtime import ModelRegistry, compile_model
from repro.serve import ModelServer, ServePolicy, ShardPool

from .artifacts import record_benchmark

#: Request count of the serving load (acceptance: >= 1000).
N_REQUESTS = 1200
#: Samples per request (the runtime benchmark's serving grid).
N_STEPS = 256
#: Per-request evaluations actually timed for the baseline estimate; the
#: full-load baseline cost is scaled from their mean (they are identical
#: amounts of work — this is the same sampling the runtime benchmark uses
#: for its engine reference).
N_BASELINE = 200
#: Serving policy under test.  The batch size is chosen so a batch *fills*
#: well inside ``max_wait`` at realistic submission rates (batching latency
#: is then fill-bound, not deadline-bound), and the wait bound leaves room
#: for the multi-ms GIL scheduling jitter a single-core runner exhibits.
POLICY = ServePolicy(max_batch=64, max_wait=10e-3, n_workers=2)


class TestShardedMicroBatchServing:
    def test_server_at_least_2x_faster_than_per_request_serving(self, capsys,
                                                                rvf_extraction):
        model = rvf_extraction.model
        tft = rvf_extraction.tft
        dt = 1.0 / (2e6 * 150)
        states = tft.state_axis()
        lo, hi = float(states.min()), float(states.max())
        compiled = compile_model(model, dt=dt, input_range=(lo, hi))
        registry = ModelRegistry(tempfile.mkdtemp(prefix="serve-bench-"))
        key = registry.save(compiled)

        # Load generator: randomised in-excursion sine stimuli (fixed seed).
        rng = np.random.default_rng(0)
        offset = 0.5 * (lo + hi)
        amps = rng.uniform(0.2, 0.45 * (hi - lo), N_REQUESTS)
        freqs = rng.uniform(1e6, 4e6, N_REQUESTS)
        phases = rng.uniform(0.0, 2.0 * np.pi, N_REQUESTS)
        times = compiled.time_axis(N_STEPS)
        stimuli = offset + amps[:, None] * np.sin(
            2.0 * np.pi * freqs[:, None] * times[None, :] + phases[:, None])
        direct = compiled.evaluate(stimuli)          # ground truth (and warm-up)

        # Baseline: single-process, one evaluate call per request, scaled.
        for row in stimuli[:4]:
            compiled.evaluate(row)                   # warm-up
        start = time.perf_counter()
        for row in stimuli[:N_BASELINE]:
            compiled.evaluate(row)
        per_request = (time.perf_counter() - start) / N_BASELINE
        baseline_seconds = per_request * N_REQUESTS

        # Shard-pool component on one already-coalesced batch (gated below).
        with ShardPool(registry.root, POLICY.n_workers,
                       segment_bytes=POLICY.segment_bytes) as pool:
            # Warm-up at full size: the first full batch faults the shared
            # segments' pages in (a one-time cold-start cost); the gate
            # targets the steady-state transport overhead.
            pool.evaluate(key, stimuli)
            start = time.perf_counter()
            sharded = pool.evaluate(key, stimuli)
            pool_seconds = time.perf_counter() - start
            pool_stats = pool.stats()
        np.testing.assert_array_equal(sharded, direct)
        start = time.perf_counter()
        compiled.evaluate(stimuli)
        single_batch_seconds = time.perf_counter() - start

        # The server under test: individual submissions, per-request futures.
        with ModelServer(registry, POLICY) as server:
            warm = [server.submit(key, row) for row in stimuli[:8]]
            for future in warm:
                future.result(60.0)
            start = time.perf_counter()
            futures = [server.submit(key, row) for row in stimuli]
            served = np.vstack([future.result(60.0) for future in futures])
            server_seconds = time.perf_counter() - start
            stats = server.stats()

        speedup = baseline_seconds / server_seconds
        throughput = N_REQUESTS / server_seconds
        queue_p50 = stats.queue_latency.p50
        with capsys.disabled():
            print(f"\n[serve] {N_REQUESTS} requests x {N_STEPS} steps: "
                  f"per-request baseline {per_request * 1e3:.2f} ms/req -> "
                  f"est. {baseline_seconds:.2f} s; server "
                  f"{server_seconds * 1e3:.0f} ms ({throughput:.0f} req/s, "
                  f"{speedup:.1f}x, queue p50 {queue_p50 * 1e3:.2f} ms); "
                  f"shard pool on a coalesced batch "
                  f"{pool_seconds * 1e3:.0f} ms vs single call "
                  f"{single_batch_seconds * 1e3:.0f} ms on "
                  f"{os.cpu_count()} core(s)")

        record_benchmark("BENCH_serve.json", "sharded_microbatch_serving", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "policy": {"max_batch": POLICY.max_batch,
                       "max_wait_s": POLICY.max_wait,
                       "n_workers": POLICY.n_workers},
            "cpu_count": os.cpu_count(),
            "baseline_ms_per_request": per_request * 1e3,
            "baseline_s_estimated": baseline_seconds,
            "server_s": server_seconds,
            "server_requests_per_s": throughput,
            "speedup_vs_per_request": speedup,
            "queue_latency_p50_ms": queue_p50 * 1e3,
            "queue_latency_p99_ms": stats.queue_latency.p99 * 1e3,
            "e2e_latency_p50_ms": stats.e2e_latency.p50 * 1e3,
            "n_batches": stats.n_batches,
            "mean_batch_size": stats.mean_batch_size,
            "pool": stats.pool,
            "shardpool_coalesced_batch_ms": pool_seconds * 1e3,
            "single_call_coalesced_batch_ms": single_batch_seconds * 1e3,
            "shardpool_vs_single_call": pool_seconds / single_batch_seconds,
            "transport": ("shared_memory"
                          if pool_stats["segment_bytes"] else "pipe"),
            "segment_bytes": pool_stats["segment_bytes"],
        })

        # Gate 1: every request answered bitwise-identically to a direct
        # single-process evaluation of the same rows.
        np.testing.assert_array_equal(served, direct)
        # Gate 2: micro-batching + sharding beats per-request serving >= 2x.
        assert speedup >= 2.0, (
            f"serving layer only {speedup:.2f}x faster than per-request "
            f"single-process serving")
        # Gate 3: the batching policy held its latency bound at the median.
        assert queue_p50 <= POLICY.max_wait, (
            f"p50 batching latency {queue_p50 * 1e3:.2f} ms exceeds "
            f"max_wait {POLICY.max_wait * 1e3:.2f} ms")
        assert stats.n_failed == 0
        # Gate 4 (ROADMAP dataplane target): the shard pool's coalesced
        # batch stays within 1.5x of the single in-process call even on one
        # core — the shared segments reduce IPC to descriptor pickles.
        assert pool_seconds <= 1.5 * single_batch_seconds, (
            f"shard pool took {pool_seconds * 1e3:.0f} ms on a coalesced "
            f"batch vs {single_batch_seconds * 1e3:.0f} ms in-process "
            f"({pool_seconds / single_batch_seconds:.2f}x > 1.5x) on "
            f"{os.cpu_count()} core(s)")


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
