"""Figure 6: TFT magnitude and phase hyperplane of the output buffer.

The paper plots the state-dependent transfer function of the buffer as a
function of the state (x = u(t), spanning 0.4 V to 1.4 V) and frequency
(up to 10 GHz): the gain is highest and flat at low frequency in the middle of
the state range, collapses toward the saturated edges of the state range, and
rolls off with several hundred degrees of accumulated phase at high frequency.
This module regenerates that surface and checks those qualitative features;
the benchmark measures the cost of the TFT transform itself.
"""

import numpy as np

from repro.tft import extract_tft, default_frequency_grid


def test_state_axis_covers_paper_range(buffer_tft):
    states = buffer_tft.state_axis()
    assert states.min() <= 0.45
    assert states.max() >= 1.35


def test_about_100_training_samples(buffer_tft):
    assert 80 <= buffer_tft.n_states <= 120


def test_low_frequency_gain_peaks_at_centre_of_state_range(buffer_tft):
    ordered = buffer_tft.sorted_by_state()
    dc_gain = np.abs(ordered.siso_dc())
    states = ordered.state_axis()
    peak_state = states[int(np.argmax(dc_gain))]
    assert abs(peak_state - 0.9) < 0.1
    assert dc_gain.max() > 1.5            # DC gain ~2 at the quiescent point


def test_gain_collapses_in_saturation(buffer_tft):
    ordered = buffer_tft.sorted_by_state()
    dc_gain = np.abs(ordered.siso_dc())
    edge_gain = max(dc_gain[0], dc_gain[-1])
    assert edge_gain < 0.05 * dc_gain.max()


def test_gain_rolls_off_at_high_frequency(buffer_tft):
    gain_db = buffer_tft.gain_db()
    centre = int(np.argmax(np.abs(buffer_tft.siso_dc())))
    # ~3-4 GHz bandwidth: at 10 GHz the gain has clearly left the passband.
    assert gain_db[centre, -1] < gain_db[centre, 0] - 8.0


def test_phase_accumulates_hundreds_of_degrees(buffer_tft):
    phase = buffer_tft.phase_deg()
    centre = int(np.argmax(np.abs(buffer_tft.siso_dc())))
    # Multiple cascaded poles: well over a quarter turn of accumulated phase
    # by 10 GHz (the paper's surface reaches several hundred degrees at the
    # upper end of its frequency axis).
    assert phase[centre, -1] < -150.0


def test_dc_response_is_real(buffer_tft):
    assert np.max(np.abs(buffer_tft.siso_dc().imag)) < 1e-9


def test_benchmark_tft_transform(benchmark, buffer_training):
    """Cost of turning ~100 Jacobian snapshots into the TFT hyperplane."""
    trajectory = buffer_training["trajectory"]
    grid = default_frequency_grid(1.0, 10e9, 4)
    result = benchmark(lambda: extract_tft(trajectory, grid, max_snapshots=110))
    assert result.n_states >= 80
