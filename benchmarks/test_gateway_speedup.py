"""Acceptance benchmark of the gateway + per-model dispatch lanes.

The claim under test: with **per-model dispatch lanes**
(``ServePolicy.n_lanes > 1``), batches for different models execute
concurrently — each lane leasing its own shard workers — so interleaved
multi-model traffic flows at least **2x faster** than through the original
single-lane dispatcher (``n_lanes=1``), which executes one batch at a time
globally.  Every served row must stay bitwise-equal to a single-process
``CompiledModel.evaluate`` of the same stimulus.

Two sections are recorded into ``BENCH_gateway.json``:

* ``gateway_two_model_lanes`` — the headline: interleaved 2-model traffic
  submitted by a remote :class:`~repro.gateway.client.GatewayClient` through
  a live TCP socket, multi-lane vs single-lane server (identical load,
  identical pool).  The workload is sized so each shard pays the compiled
  kernel's per-step loop regardless of its row count — exactly the regime
  where sharding one batch cannot help but overlapping two models' batches
  can.  The >= 2x gate applies where the overlap is physically possible,
  i.e. with at least 2 CPU cores (CI runners have several); on a 1-core
  machine the comparison is recorded and gated only against regression.
* ``lanes_hide_worker_latency`` — the latency-hiding claim from the ROADMAP
  ("overlapping execution of batches for different models would hide shard
  latency"), gated >= 2x on ANY machine: 4-model traffic against a pool
  whose workers carry an injected 25 ms per-job stall (the stand-in for
  remote-shard / storage latency).  Lanes overlap the stalls; the
  single-lane dispatcher serialises them.

Run directly for a report::

    python -m pytest benchmarks/test_gateway_speedup.py -q -s
"""

import os
import tempfile
import time

import numpy as np
import pytest

from repro.gateway import Gateway, GatewayClient
from repro.runtime import ModelRegistry, compile_model
from repro.rvf.hammerstein import HammersteinBranch, HammersteinModel
from repro.rvf.residues import PartialFractionFunction
from repro.serve import ModelServer, ServePolicy
from repro.tft.state_estimator import StateEstimator

from .artifacts import record_benchmark

#: Interleaved requests in the 2-model TCP load (acceptance: >= 1000).
N_REQUESTS = 1024
#: Samples per request.  Long enough that the compiled kernel's per-step
#: recurrence loop dominates each shard's cost — splitting a batch's rows
#: across workers then saves almost nothing, while running two models'
#: batches concurrently halves the wall clock.
N_STEPS = 768
#: Rows per coalesced batch (small on purpose, see N_STEPS).
MAX_BATCH = 32
#: Injected per-job worker stall for the latency-hiding section.
WORKER_DELAY_S = 0.025
#: Requests in the latency-hiding load (4 models interleaved).
N_DELAY_REQUESTS = 256


def _model(tau: float) -> HammersteinModel:
    """A small synthetic Hammerstein model (compiles in microseconds)."""
    def pf(poles, coeffs, const):
        return PartialFractionFunction(np.asarray(poles, complex),
                                       np.asarray(coeffs, complex), const)

    gain = pf([-2.0 + 0.5j], [0.3 + 0.1j], 1.2)
    pair = pf([-1.5 + 0.2j], [0.2 - 0.05j], 0.4 + 0.2j)
    real = pf([-1.0], [0.15], 0.2)
    branches = [
        HammersteinBranch(pole=(-3e7 + 1e8j) * tau, residue_function=pair,
                          static_function=pair.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=True),
        HammersteinBranch(pole=-5e7 * tau, residue_function=real,
                          static_function=real.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=False),
    ]
    return HammersteinModel(
        branches=branches, gain_function=gain,
        static_function=gain.antiderivative().with_value_at(0.5, 0.3),
        state_estimator=StateEstimator(), dc_input=0.5, dc_output=0.3)


def _registry(n_models: int):
    registry = ModelRegistry(tempfile.mkdtemp(prefix="gateway-bench-"))
    compiled, keys = [], []
    for i in range(n_models):
        model = compile_model(_model(tau=1.0 + 0.5 * i), dt=1e-9,
                              input_range=(0.0, 1.0))
        compiled.append(model)
        keys.append(registry.save(model))
    return registry, compiled, keys


def _stimuli(n_requests: int, n_steps: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 0.5 + 0.3 * rng.uniform(-1.0, 1.0, (n_requests, n_steps))


def _drive_gateway(registry, policy, requests, delay_injection=0.0):
    """Serve one request load through a fresh server+gateway; returns
    ``(outputs, seconds, server_stats)``."""
    with ModelServer(registry, policy,
                     delay_injection=delay_injection) as server:
        with Gateway(server) as gateway:
            with GatewayClient(*gateway.address, timeout=600.0) as client:
                client.submit_many(requests[:8])        # warm caches/workers
                start = time.perf_counter()
                outputs = client.submit_many(requests)
                seconds = time.perf_counter() - start
        stats = server.stats()
    return outputs, seconds, stats


class TestPerModelDispatchLanes:
    def test_two_model_traffic_through_tcp_gateway(self, capsys):
        registry, compiled, keys = _registry(2)
        stimuli = _stimuli(N_REQUESTS, N_STEPS)
        requests = [(keys[i % 2], stimuli[i]) for i in range(N_REQUESTS)]
        direct = [compiled[i % 2].evaluate(stimuli[i])
                  for i in range(N_REQUESTS)]

        def policy(n_lanes):
            return ServePolicy(max_batch=MAX_BATCH, max_wait=20e-3,
                               n_workers=2, n_lanes=n_lanes)

        multi_out, multi_s, multi_stats = _drive_gateway(
            registry, policy(n_lanes=2), requests)
        single_out, single_s, single_stats = _drive_gateway(
            registry, policy(n_lanes=1), requests)

        speedup = single_s / multi_s
        cores = os.cpu_count() or 1
        with capsys.disabled():
            print(f"\n[gateway] {N_REQUESTS} interleaved requests x "
                  f"{N_STEPS} steps, 2 models over TCP: single-lane "
                  f"{single_s * 1e3:.0f} ms, 2 lanes {multi_s * 1e3:.0f} ms "
                  f"({speedup:.2f}x, {N_REQUESTS / multi_s:.0f} req/s) on "
                  f"{cores} core(s)")

        record_benchmark("BENCH_gateway.json", "gateway_two_model_lanes", {
            "n_requests": N_REQUESTS,
            "n_steps": N_STEPS,
            "n_models": 2,
            "cpu_count": cores,
            "policy": {"max_batch": MAX_BATCH, "n_workers": 2},
            "single_lane_s": single_s,
            "multi_lane_s": multi_s,
            "speedup": speedup,
            "multi_lane_requests_per_s": N_REQUESTS / multi_s,
            "gate_2x_applied": cores >= 2,
            "multi_lane_batches": multi_stats.n_batches,
            "single_lane_batches": single_stats.n_batches,
        })

        # Gate 1 (always): every remote-served row bitwise-equal to a direct
        # single-process evaluation, in both configurations.
        for i in range(N_REQUESTS):
            np.testing.assert_array_equal(multi_out[i], direct[i])
            np.testing.assert_array_equal(single_out[i], direct[i])
        assert multi_stats.n_failed == 0 and single_stats.n_failed == 0
        # Gate 2: lanes actually separated the models.
        lanes = {stats.lane for stats in multi_stats.per_model.values()}
        assert lanes == {0, 1}
        # Gate 3: >= 2x where two batches can physically run at once; a
        # 1-core machine cannot overlap compute, so it gates no-regression
        # (the CI runners this project gates on have several cores).
        if cores >= 2:
            assert speedup >= 2.0, (
                f"2-model traffic only {speedup:.2f}x faster with dispatch "
                f"lanes than through the single-lane dispatcher")
        else:
            assert speedup >= 0.8, (
                f"dispatch lanes regressed single-core throughput "
                f"({speedup:.2f}x)")

    def test_lanes_hide_injected_worker_latency(self, capsys):
        """>= 2x on any machine: overlapped stalls vs serialised stalls."""
        n_models = 4
        registry, compiled, keys = _registry(n_models)
        stimuli = _stimuli(N_DELAY_REQUESTS, 96, seed=1)
        requests = [(keys[i % n_models], stimuli[i])
                    for i in range(N_DELAY_REQUESTS)]
        direct = [compiled[i % n_models].evaluate(stimuli[i])
                  for i in range(N_DELAY_REQUESTS)]

        def policy(n_lanes):
            return ServePolicy(max_batch=MAX_BATCH, max_wait=10e-3,
                               n_workers=n_models, n_lanes=n_lanes)

        multi_out, multi_s, multi_stats = _drive_gateway(
            registry, policy(n_lanes=n_models), requests,
            delay_injection=WORKER_DELAY_S)
        single_out, single_s, single_stats = _drive_gateway(
            registry, policy(n_lanes=1), requests,
            delay_injection=WORKER_DELAY_S)

        speedup = single_s / multi_s
        with capsys.disabled():
            print(f"[gateway] latency hiding: {N_DELAY_REQUESTS} requests, "
                  f"{n_models} models, {WORKER_DELAY_S * 1e3:.0f} ms/job "
                  f"worker stall: single-lane {single_s * 1e3:.0f} ms, "
                  f"{n_models} lanes {multi_s * 1e3:.0f} ms "
                  f"({speedup:.2f}x)")

        record_benchmark("BENCH_gateway.json", "lanes_hide_worker_latency", {
            "n_requests": N_DELAY_REQUESTS,
            "n_models": n_models,
            "worker_delay_ms": WORKER_DELAY_S * 1e3,
            "cpu_count": os.cpu_count(),
            "single_lane_s": single_s,
            "multi_lane_s": multi_s,
            "speedup": speedup,
        })

        for i in range(N_DELAY_REQUESTS):
            np.testing.assert_array_equal(multi_out[i], direct[i])
            np.testing.assert_array_equal(single_out[i], direct[i])
        assert multi_stats.n_failed == 0 and single_stats.n_failed == 0
        assert speedup >= 2.0, (
            f"dispatch lanes hid only {speedup:.2f}x of the injected worker "
            "latency under 4-model traffic (expected >= 2x)")


if __name__ == "__main__":  # pragma: no cover - manual invocation helper
    raise SystemExit(pytest.main([__file__, "-q", "-s"]))
