"""Drive the extraction flow from a plain SPICE-style text netlist.

The paper's pitch is "from the netlist of a nonlinear analog circuit" — this
example starts from netlist text, parses it, and runs the same TFT + RVF flow
as the other examples, finally exporting the model as Verilog-A flavoured text.

Run with:  python examples/netlist_flow.py
"""

from repro.analysis import compare_surfaces
from repro.circuit import TransientOptions, parse_netlist, transient_analysis
from repro.rvf import RVFOptions, extract_rvf_model, to_verilog_a
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft

NETLIST = """
.title common-source amplifier with capacitive load
.model nch NMOS (kp=300u vto=0.35 lambda=0.15 cox=8m)
VDD vdd 0 1.2
Vin gate 0 SIN(0.55 0.15 100k) INPUT
M1 drain gate 0 0 nch W=4u L=0.13u
RD vdd drain 5k
CL drain 0 20f
.output vout drain
.end
"""


def main():
    circuit = parse_netlist(NETLIST)
    print(circuit.summary())
    system = circuit.build()

    trajectory = SnapshotTrajectory(system)
    transient_analysis(system, TransientOptions(t_stop=10e-6, dt=0.05e-6),
                       snapshot_callback=trajectory)
    tft = extract_tft(trajectory, default_frequency_grid(1e4, 1e11, 4), max_snapshots=100)
    print(tft.describe())

    extraction = extract_rvf_model(tft, RVFOptions(error_bound=1e-3))
    print(extraction.summary())
    report = compare_surfaces(tft.siso_response(), extraction.model_surface(),
                              tft.state_axis(), tft.frequencies)
    print(f"Hyperplane reproduction: {report.summary()}")

    print("\n--- Verilog-A flavoured export ----------------------------------")
    print(to_verilog_a(extraction.model, module_name="cs_amp_macromodel"))


if __name__ == "__main__":
    main()
