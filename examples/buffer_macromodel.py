"""Reproduce the paper's Section IV flow on the high-speed output buffer.

Steps (matching Figs. 5-7 of the paper):

1. build the four-stage differential output buffer (~70 components),
2. drive it with one period of a low-frequency, high-amplitude sine and
   capture ~100 Jacobian snapshots,
3. compute the TFT hyperplane (the data behind Fig. 6) and print a compact
   text rendering of the gain surface,
4. extract the RVF model (error bound 1e-3) and report the pole counts and
   the error contours of Fig. 7.

Run with:  python examples/buffer_macromodel.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import os

import numpy as np

from repro.analysis import compare_surfaces
from repro.circuit import TransientOptions, ac_analysis, frequency_grid, transient_analysis
from repro.circuits import build_output_buffer, buffer_training_waveform
from repro.rvf import RVFOptions, extract_rvf_model
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
#: Points/decade of the (purely diagnostic) AC sweep.
AC_POINTS_PER_DECADE = 3 if SMOKE else 6


def render_surface(tft, n_state_bins=8, n_freq_bins=6):
    """Tiny ASCII rendering of the gain surface (states x frequencies, in dB)."""
    ordered = tft.sorted_by_state()
    gain = ordered.gain_db()
    state_idx = np.linspace(0, ordered.n_states - 1, n_state_bins).astype(int)
    freq_idx = np.linspace(0, ordered.n_frequencies - 1, n_freq_bins).astype(int)
    header = "x = u(t) \\ f [Hz] " + " ".join(
        f"{ordered.frequencies[j]:>9.2g}" for j in freq_idx)
    lines = [header]
    for i in state_idx:
        cells = " ".join(f"{gain[i, j]:>9.1f}" for j in freq_idx)
        lines.append(f"{ordered.state_axis()[i]:>17.3f} {cells}")
    return "\n".join(lines)


def main():
    buffer_params_note = ("four differential stages + source followers, "
                          "square-law 0.13 um devices")
    training = buffer_training_waveform()
    circuit = build_output_buffer(input_waveform=training)
    system = circuit.build()
    print(circuit.summary())
    print(f"({buffer_params_note})")

    ac = ac_analysis(system, frequency_grid(1e5, 30e9, AC_POINTS_PER_DECADE))
    print(f"Small-signal DC gain {ac.dc_gain():.2f} (paper: 2), "
          f"bandwidth {ac.bandwidth() / 1e9:.1f} GHz (paper: 3 GHz)")

    # Training transient: one period of the low-frequency large-amplitude sine.
    period = 1.0 / training.frequency
    trajectory = SnapshotTrajectory(system)
    result = transient_analysis(system, TransientOptions(t_stop=period, dt=period / 150),
                                snapshot_callback=trajectory)
    print(f"Training transient: {result.n_points} steps, {result.wall_time:.2f} s wall time")

    tft = extract_tft(trajectory, default_frequency_grid(1.0, 10e9, 4), max_snapshots=110)
    print(tft.describe())
    print("\nTFT gain hyperplane [dB] (the data behind the paper's Fig. 6):")
    print(render_surface(tft))

    extraction = extract_rvf_model(tft, RVFOptions(error_bound=1e-3))
    model = extraction.model
    print(f"\n{extraction.summary()}")
    print(f"Frequency poles: {extraction.n_frequency_poles} (paper: 12), "
          f"state poles: {extraction.n_state_poles} (paper: 10)")

    report = compare_surfaces(tft.siso_response(), extraction.model_surface(),
                              tft.state_axis(), tft.frequencies)
    print("RVF model vs TFT data (the paper's Fig. 7 error contours):")
    print(f"  {report.summary()}")
    worst_state, worst_freq = report.worst_region()
    print(f"  worst-fit region: x = {worst_state:.2f}, f = {worst_freq:.3g} Hz "
          "(paper: largest errors at high frequency / negligible gain)")

    print(f"\nModel is stable by construction: {model.is_stable()}")
    print(f"Dynamic order of the extracted model: {model.dynamic_order} states")


if __name__ == "__main__":
    main()
