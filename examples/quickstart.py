"""Quickstart: extract an analytical nonlinear model from a small circuit.

This walks through the complete flow of the paper on a small, fast circuit:

1. describe a nonlinear circuit (a saturating RC network),
2. run a transient simulation with a slow, large-amplitude sine while
   capturing the internal Jacobian snapshots,
3. transform the snapshots into a Transfer Function Trajectory (TFT) dataset,
4. extract the analytical Hammerstein model with Recursive Vector Fitting,
5. validate the model on an input it has never seen and print the extracted
   differential equations.

Run with:  python examples/quickstart.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import os

import numpy as np

from repro.circuit import (
    Circuit,
    CubicConductance,
    Sine,
    TransientOptions,
    transient_analysis,
)
from repro.circuit.waveforms import BitPattern, prbs_bits
from repro.analysis import compare_surfaces, time_domain_rmse
from repro.rvf import RVFOptions, extract_rvf_model, simulate_hammerstein
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
VALIDATION_BITS = 8 if SMOKE else 16


def build_circuit(waveform, name="saturating_lowpass"):
    """A driven RC network with a cubic (saturating) shunt conductance."""
    circuit = Circuit(name)
    circuit.voltage_source("Vin", "in", "0", waveform, is_input=True)
    circuit.resistor("Rs", "in", "mid", 1e3)
    circuit.add(CubicConductance("Gnl", "mid", "0", g1=1e-3, g3=4e-4))
    circuit.capacitor("C1", "mid", "0", 2e-9)
    circuit.resistor("R2", "mid", "out", 2e3)
    circuit.capacitor("C2", "out", "0", 0.5e-9)
    circuit.resistor("RL", "out", "0", 10e3)
    circuit.add_output("vout", "out")
    return circuit


def main():
    # 1-2. Training transient with Jacobian snapshot capture (one slow period).
    training = Sine(offset=0.6, amplitude=0.5, frequency=1e3)
    circuit = build_circuit(training)
    system = circuit.build()
    print(circuit.summary())

    trajectory = SnapshotTrajectory(system)
    transient_analysis(system, TransientOptions(t_stop=1e-3, dt=5e-6),
                       snapshot_callback=trajectory)
    print(trajectory.describe())

    # 3. TFT transform on a logarithmic frequency grid.
    tft = extract_tft(trajectory, default_frequency_grid(1e3, 1e9, 4), max_snapshots=100)
    print(tft.describe())

    # 4. Recursive Vector Fitting extraction.
    extraction = extract_rvf_model(tft, RVFOptions(error_bound=1e-3))
    model = extraction.model
    print(extraction.summary())
    print(model.describe())

    report = compare_surfaces(tft.siso_response(), extraction.model_surface(),
                              tft.state_axis(), tft.frequencies)
    print(f"Hyperplane reproduction: {report.summary()}")

    # 5. Validate against SPICE on a bit-pattern input the model never saw.
    pattern = BitPattern(bits=prbs_bits(VALIDATION_BITS), bit_rate=2e6,
                         low=0.2, high=1.0)
    test_circuit = build_circuit(pattern, name="validation")
    reference = transient_analysis(test_circuit.build(),
                                   TransientOptions(t_stop=pattern.duration, dt=2e-9))
    result = simulate_hammerstein(model, reference.times, reference.inputs[:, 0])
    rmse = time_domain_rmse(reference.outputs[:, 0], result.outputs)
    print(f"Bit-pattern validation RMSE: {rmse:.4g} "
          f"(output swing {np.ptp(reference.outputs):.3f} V)")
    print(f"SPICE transient: {reference.wall_time:.2f} s, "
          f"model evaluation: {result.wall_time * 1e3:.1f} ms "
          f"({reference.wall_time / result.wall_time:.0f}x faster)")

    print("\n--- extracted analytical model ---------------------------------")
    print(model.to_equations(precision=4))


if __name__ == "__main__":
    main()
