"""Adaptive LTE-controlled time stepping on the paper's validation stimulus.

The 2.5 GS/s bit pattern of the paper spends most of its time on flat bit
tops and all of its action in 100 ps raised-cosine edges.  A fixed time step
must resolve the edges everywhere; the LTE controller instead estimates each
step's local truncation error from the predictor-corrector difference and
lets ``dt`` breathe between ``dt * min_dt_factor`` and ``dt * max_dt_factor``.

The script runs the four-stage output buffer under a PRBS pattern twice —
once on a fine fixed grid, once adaptively — and reports the step count,
rejection statistics and the deviation between the two trajectories.

Run with:  python examples/adaptive_transient.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import os

import numpy as np

from repro.circuit import TransientOptions, transient_analysis
from repro.circuits import build_output_buffer
from repro.circuits.buffer import buffer_test_pattern

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_BITS = 8 if SMOKE else 16


def main() -> None:
    waveform = buffer_test_pattern(n_bits=N_BITS)
    system = build_output_buffer(input_waveform=waveform).build()
    bit_period = 1.0 / waveform.bit_rate
    t_stop = N_BITS * bit_period
    dt = bit_period / 160

    print(f"stimulus: {N_BITS} bits at {waveform.bit_rate / 1e9:.1f} GS/s, "
          f"t_stop = {t_stop * 1e9:.2f} ns")

    fixed = transient_analysis(system, TransientOptions(t_stop=t_stop, dt=dt))
    print(f"fixed dt = {dt * 1e12:.2f} ps: {fixed.accepted_steps} steps, "
          f"{fixed.newton_iterations} Newton iterations, "
          f"{fixed.wall_time * 1e3:.1f} ms")

    adaptive = transient_analysis(system, TransientOptions(
        t_stop=t_stop, dt=dt, adaptive=True,
        lte_rel_tol=1e-3, max_dt_factor=40.0))
    steps = np.diff(adaptive.times)
    print(f"adaptive:   {adaptive.accepted_steps} steps "
          f"({adaptive.rejected_steps} rejected, "
          f"{adaptive.lte_rejections} by the LTE controller), "
          f"{adaptive.newton_iterations} Newton iterations, "
          f"{adaptive.wall_time * 1e3:.1f} ms")
    print(f"            dt swung {steps.min() * 1e15:.1f} fs ... "
          f"{steps.max() * 1e12:.1f} ps "
          f"({steps.max() / steps.min():.0f}x dynamic range)")

    # The adaptive grid is non-uniform: resample before comparing waveforms.
    served = adaptive.resample(fixed.times)
    reference = fixed.outputs[:, 0]
    rel_rmse = (np.sqrt(np.mean((served - reference) ** 2))
                / np.sqrt(np.mean(reference ** 2)))
    print(f"agreement:  relative RMSE {rel_rmse:.2e} with "
          f"{fixed.accepted_steps / adaptive.accepted_steps:.1f}x fewer steps")


if __name__ == "__main__":
    main()
