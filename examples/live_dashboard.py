"""Live terminal dashboard over the metrics / alerting consumer tier.

``examples/telemetry_replay.py`` journaled and replayed the raw event
stream; this example shows the tier built on top of it in PR 9: a
:class:`~repro.telemetry.MetricsAggregator` folds the server's events into
fixed-duration windows and republishes ``MetricsWindowClosed`` through the
same broker, an :class:`~repro.telemetry.AlertManager` evaluates threshold
rules (with hysteresis) over those windows and republishes ``AlertRaised``
/ ``AlertCleared`` — and because both ride the ordinary event topics, a
**remote** dashboard needs nothing but the gateway's existing
``subscribe_stats`` / ``subscribe_events`` wire streams:

1. one trained RC-ladder model behind a :class:`~repro.gateway.Gateway`,
   with aggregator + alert rules attached to ``server.telemetry``,
2. a traffic thread drives three phases through a data client — steady
   load, an overload burst (which trips the p95 latency alert), steady
   again (which clears it),
3. the dashboard thread is a dedicated ``GatewayClient`` consuming
   ``MetricsWindowClosed`` / ``AlertRaised`` / ``AlertCleared`` EVENT
   frames plus periodic ``subscribe_stats`` snapshots, rendering a rolling
   stdlib-only terminal view: throughput sparkline, latency percentiles,
   batch fill, queue depth, the active-alert panel — and, from the window's
   ``stages`` section (fed by the span tracer's per-stage attribution), a
   latency-breakdown panel that shows **which stage** saturates during the
   overload burst (the injected worker stall makes it ``worker_evaluate``).

Run with:  python examples/live_dashboard.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import collections
import os
import sys
import tempfile
import threading
import time

import numpy as np

from repro.circuit import Sine, TransientOptions
from repro.circuits import build_rc_ladder
from repro.exceptions import GatewayError
from repro.gateway import Gateway, GatewayClient
from repro.runtime import ModelRegistry, compile_model
from repro.rvf import RVFOptions, extract_rvf_model
from repro.serve import ModelServer, ServePolicy
from repro.sweep import run_sweep, waveform_sweep
from repro.telemetry import AlertManager, AlertRule, MetricsAggregator

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_STEPS = 100
#: (requests, per-request pause) of the steady / overload / steady phases.
PHASES = [(60, 0.02), (400, 0.0), (60, 0.02)] if SMOKE else \
    [(200, 0.02), (1500, 0.0), (200, 0.02)]
WINDOW_S = 0.25
#: Injected per-job worker stall (the ``delay_injection`` hook) modelling a
#: remote shard: steady paced traffic absorbs it, the pipelined burst
#: queues behind it and pushes e2e p95 over the alert bound.
DELAY_S = 0.008
#: e2e p95 bound the overload burst is meant to trip.
P95_BOUND_S = 0.050
SPARK = " ▁▂▃▄▅▆▇█"


def extract_compiled(transient: TransientOptions):
    """One trained + compiled RC-ladder model."""
    scenarios = waveform_sweep(
        build_rc_ladder, [Sine(0.5, amp, 2e5) for amp in (0.1, 0.25, 0.4)],
        transient=transient, builder_kwargs={"n_sections": 2})
    sweep = run_sweep(scenarios)
    dataset = sweep.extract_combined_tft(max_snapshots=40)
    extraction = extract_rvf_model(dataset, RVFOptions(error_bound=5e-3))
    states = dataset.state_axis()
    compiled = compile_model(
        extraction.model, dt=transient.dt,
        input_range=(float(states.min()) - 0.05, float(states.max()) + 0.05))
    return compiled, sweep


def traffic_main(host: str, port: int, key: str, stimuli) -> None:
    """Drive the three load phases through one data client.

    The paced phases submit one blocking round trip at a time (p95 stays at
    a single batch's latency); the overload burst pipelines its whole load
    through ``submit_many``, which queues far past ``max_batch`` and pushes
    e2e p95 over the alert bound.
    """
    rng = np.random.default_rng(1)
    with GatewayClient(host, port, timeout=300.0) as client:
        for n_requests, pause in PHASES:
            if pause:
                for _ in range(n_requests):
                    client.submit(key, stimuli[rng.integers(len(stimuli))])
                    time.sleep(pause)
            else:
                client.submit_many(
                    (key, stimuli[rng.integers(len(stimuli))])
                    for _ in range(n_requests))


class Dashboard:
    """Rolling terminal view fed by EVENT frames and stats snapshots."""

    def __init__(self, n_windows: int = 40) -> None:
        self.windows: collections.deque = collections.deque(maxlen=n_windows)
        self.alerts: dict = {}          # name -> AlertRaised payload
        self.alert_log: list = []
        self.stats: dict = {}
        self.lock = threading.Lock()
        self.live = sys.stdout.isatty() and not SMOKE

    # ------------------------------------------------------------- ingestion
    def on_event(self, payload: dict) -> None:
        kind = payload.get("event")
        with self.lock:
            if kind == "MetricsWindowClosed":
                self.windows.append(payload)
            elif kind == "AlertRaised":
                self.alerts[payload["name"]] = payload
                self.alert_log.append(payload)
            elif kind == "AlertCleared":
                self.alerts.pop(payload["name"], None)
                self.alert_log.append(payload)

    def on_stats(self, payload: dict) -> None:
        with self.lock:
            self.stats = payload

    # ------------------------------------------------------------- rendering
    def render(self) -> str:
        with self.lock:
            windows = list(self.windows)
            alerts = dict(self.alerts)
            stats = dict(self.stats)
        lines = ["== live serving dashboard =="]
        if stats:
            lines.append(
                f"server: up {stats.get('uptime_s', 0.0):6.1f} s | "
                f"served {stats.get('n_completed', 0)}"
                f"/{stats.get('n_submitted', 0)} | pending "
                f"{stats.get('n_pending', 0)} | fill "
                f"{stats.get('fill_ratio', 0.0) * 100.0:3.0f}%")
        if windows:
            rates = [w["throughput_rps"] for w in windows]
            top = max(max(rates), 1e-9)
            spark = "".join(
                SPARK[int(r / top * (len(SPARK) - 1))] for r in rates)
            latest = windows[-1]
            e2e = latest["e2e_latency"]
            lines.append(f"window {latest['window_index']:4d}: "
                         f"{latest['throughput_rps']:7.0f} rows/s | "
                         f"e2e p50 {e2e.get('p50_s', 0.0) * 1e3:6.2f} ms "
                         f"p95 {e2e.get('p95_s', 0.0) * 1e3:6.2f} ms "
                         f"p99 {e2e.get('p99_s', 0.0) * 1e3:6.2f} ms | "
                         f"depth {latest['queue_depth']:3d}")
            lines.append(f"throughput [{spark}] peak {top:.0f} rows/s "
                         f"over {len(windows)} windows")
            stages = {name: summary
                      for name, summary in (latest.get("stages") or {}).items()
                      if name != "request"}   # the root IS the e2e row above
            if stages:
                # Per-stage latency breakdown from the span tracer: sorted
                # by p95 so the saturating stage tops the panel.
                ranked = sorted(stages.items(),
                                key=lambda kv: kv[1].get("p95_s", 0.0),
                                reverse=True)
                top_p95 = max(ranked[0][1].get("p95_s", 0.0), 1e-9)
                lines.append("stage p95 (latest window):")
                for name, summary in ranked[:6]:
                    p95 = summary.get("p95_s", 0.0)
                    bar = "#" * max(1, int(round(p95 / top_p95 * 24)))
                    lines.append(
                        f"  {name:<16} {p95 * 1e3:8.2f} ms "
                        f"x{summary.get('count', 0):<5d} |{bar:<24}|")
        if alerts:
            for name, payload in sorted(alerts.items()):
                lines.append(f"ALERT {name}: {payload['metric']} = "
                             f"{payload['value']:.4g} (threshold "
                             f"{payload['threshold']:.4g}) — "
                             f"{payload.get('detail', '')}")
        else:
            lines.append("alerts: none active")
        return "\n".join(lines)

    def repaint(self) -> None:
        if self.live:
            sys.stdout.write("\x1b[2J\x1b[H" + self.render() + "\n")
            sys.stdout.flush()
        else:
            print(self.render().splitlines()[-1])


def watcher_main(host: str, port: int, dashboard: Dashboard) -> None:
    """Dedicated subscriber client: EVENT frames -> dashboard state.

    Unlike the raw-event watcher of ``telemetry_replay.py``, this stream
    never goes quiet on its own — the aggregator keeps republishing
    (zeroed) ``MetricsWindowClosed`` windows while the server idles — so
    the thread ends with the gateway, not with a quiet-stream timeout.
    """
    try:
        with GatewayClient(host, port) as client:
            for payload in client.subscribe_events(
                    topics=("MetricsWindowClosed", "AlertRaised",
                            "AlertCleared"), timeout=5.0):
                dashboard.on_event(payload)
    except GatewayError:
        pass            # gateway shutdown: the demo is over


def stats_main(host: str, port: int, dashboard: Dashboard) -> None:
    """Dedicated stats client: periodic ServeStats -> dashboard header."""
    try:
        with GatewayClient(host, port) as client:
            for payload in client.subscribe_stats(interval_s=0.5, timeout=2.0):
                dashboard.on_stats(payload)
                dashboard.repaint()
    except GatewayError:
        pass


def main():
    transient = TransientOptions(t_stop=1e-6, dt=1e-8)
    registry = ModelRegistry(tempfile.mkdtemp(prefix="live-dashboard-"))
    compiled, sweep = extract_compiled(transient)
    key = registry.save(compiled, provenance=sweep.provenance())
    print(f"registered rc_ladder(n_sections=2) as {key[:16]}...")

    rng = np.random.default_rng(0)
    times = np.arange(N_STEPS) * transient.dt
    stimuli = [0.5 + amp * np.sin(2.0 * np.pi * freq * times)
               for amp, freq in zip(rng.uniform(0.05, 0.4, 64),
                                    rng.uniform(1e5, 8e5, 64))]

    policy = ServePolicy(max_batch=32, max_wait=2e-3, n_lanes=2,
                         n_workers=2, stats_interval=0.5)
    rules = (AlertRule.p95_latency(P95_BOUND_S, raise_after=1, clear_after=3),
             AlertRule.crash_rate(0.0),
             AlertRule.queue_depth(2000),
             AlertRule.subscriber_drops(0.0))
    with ModelServer(registry, policy, delay_injection=DELAY_S) as server:
        # The consumer tier, attached straight to the server's broker: the
        # aggregator republishes MetricsWindowClosed, the alert manager
        # turns those into AlertRaised/AlertCleared — all ordinary topics
        # any EVENTS_SUBSCRIBE wire client can stream.
        with MetricsAggregator(server.telemetry, window_s=WINDOW_S,
                               n_windows=120,
                               max_batch=policy.max_batch) as aggregator:
            with AlertManager(rules, server.telemetry) as alert_manager:
                with Gateway(server) as gateway:
                    host, port = gateway.address
                    print(f"gateway listening on {host}:{port}")

                    dashboard = Dashboard()
                    watcher = threading.Thread(
                        target=watcher_main, args=(host, port, dashboard))
                    stats_thread = threading.Thread(
                        target=stats_main, args=(host, port, dashboard))
                    watcher.start()
                    stats_thread.start()
                    time.sleep(0.3)     # let the subscriptions register

                    traffic_main(host, port, key, stimuli)
                    # Let the final windows close and alerts settle.
                    time.sleep(6 * WINDOW_S)
                # Gateway closed: both wire streams die, ending the threads.
                watcher.join(timeout=60.0)
                stats_thread.join(timeout=60.0)

                report = aggregator.report()
                print()
                print("aggregator roll-up:")
                print(report.describe())
                raised = [p for p in dashboard.alert_log
                          if p["event"] == "AlertRaised"]
                cleared = [p for p in dashboard.alert_log
                           if p["event"] == "AlertCleared"]
                print(f"alert traffic over the wire: {len(raised)} raised, "
                      f"{len(cleared)} cleared "
                      f"({', '.join(sorted({p['name'] for p in raised})) or 'none'})")
                breakdown = {name: summary
                             for name, summary in report.stages.items()
                             if name != "request"}
                if breakdown:
                    hottest, summary = max(breakdown.items(),
                                           key=lambda kv: kv[1].p95)
                    print(f"stage attribution: {hottest} dominates at p95 "
                          f"{summary.p95 * 1e3:.2f} ms over {summary.count} "
                          f"span(s) — the injected worker stall "
                          f"(DELAY_S={DELAY_S * 1e3:.0f} ms) backs traffic "
                          "up behind the stalled workers, and the span "
                          "waterfall names the stage it lands on")
                assert report.n_served > 0
                assert report.stages            # span tracer fed the windows
                assert alert_manager.states()   # rules evaluated windows
        print(server.stats().describe(per_model=False))


if __name__ == "__main__":
    main()
