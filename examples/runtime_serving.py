"""Runtime serving: compile -> register -> batch-serve -> validate.

The paper's punchline is that the extracted model *replaces* the circuit;
this example shows the serving side of that bargain with :mod:`repro.runtime`:

1. sweep one circuit family over several training stimuli and extract a
   Hammerstein model from the merged Transfer Function Trajectory,
2. **compile** the model into a discrete-time kernel — poles and residues
   folded into real recurrence matrices at a fixed sample rate, the static
   nonlinear maps tabulated,
3. **register** the compiled artifact in a content-hash-keyed on-disk
   registry together with the sweep's provenance (any later process can load
   and serve it without re-extracting),
4. **batch-serve** 2000 random sine stimuli in one lock-step evaluation, and
5. **validate** the served model against the full transistor-level engine on
   a held-out scenario family.

Run with:  python examples/runtime_serving.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import os
import tempfile
import time

import numpy as np

from repro.circuit import Sine, TransientOptions
from repro.circuits import build_output_buffer, buffer_training_waveform
from repro.rvf import RVFOptions, extract_rvf_model
from repro.runtime import ModelRegistry, compile_model, validate_model
from repro.sweep import SweepOptions, run_sweep, waveform_sweep

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_STIMULI = 400 if SMOKE else 2000


def main():
    # 1. Training sweep: three amplitudes of the paper's slow training sine.
    base = buffer_training_waveform()
    period = 1.0 / base.frequency
    transient = TransientOptions(t_stop=period, dt=period / 150)
    scenarios = waveform_sweep(
        build_output_buffer,
        [Sine(base.offset, amplitude, base.frequency)
         for amplitude in (0.3, 0.4, 0.5)],
        transient=transient, max_snapshots=60)
    sweep = run_sweep(scenarios, SweepOptions(n_workers=3))
    print(sweep.describe())

    dataset = sweep.extract_combined_tft(max_snapshots=120)
    print(dataset.describe())
    extraction = extract_rvf_model(dataset, RVFOptions(error_bound=1e-3))
    print(extraction.summary())

    # 2. Compile at the training sample rate over the training excursion.
    states = dataset.state_axis()
    compiled = compile_model(extraction.model, dt=transient.dt,
                             input_range=(float(states.min()),
                                          float(states.max())))
    print(compiled.describe())

    # 3. Register with provenance; any process can now serve this model.
    registry = ModelRegistry(tempfile.mkdtemp(prefix="model-registry-"))
    key = registry.save(compiled, provenance=sweep.provenance())
    print(f"registered as {key[:16]}... ({registry.describe()})")
    served_model = registry.load(key)          # fresh-load, integrity-checked

    # 4. Batch-serve 2000 random stimuli sampled on the model's grid.
    rng = np.random.default_rng(0)
    n_stimuli, n_steps = N_STIMULI, 256
    times = served_model.time_axis(n_steps)
    amplitudes = rng.uniform(0.1, 0.5, n_stimuli)
    frequencies = rng.uniform(1e6, 4e6, n_stimuli)
    stimuli = base.offset + amplitudes[:, None] * np.sin(
        2.0 * np.pi * frequencies[:, None] * times[None, :])
    start = time.perf_counter()
    outputs = served_model.evaluate(stimuli)
    wall = time.perf_counter() - start
    print(f"served {n_stimuli} stimuli x {n_steps} steps in {wall * 1e3:.1f} ms "
          f"({n_stimuli * n_steps / wall / 1e6:.1f} M samples/s)")
    print(f"output excursion [{outputs.min():.3f}, {outputs.max():.3f}] V")

    # 5. Validate against the full engine on a held-out amplitude/frequency.
    # Held-out stimuli get a 2x margin on the training bound: the extraction
    # guarantees the bound on its training hyperplane only.
    held_out_sines = [Sine(base.offset, 0.35, 1.5e6)]
    if not SMOKE:
        held_out_sines.append(Sine(base.offset, 0.45, 2.5e6))
    held_out = waveform_sweep(
        build_output_buffer, held_out_sines,
        transient=TransientOptions(t_stop=float(times[-1]), dt=transient.dt))
    report = validate_model(served_model, held_out,
                            error_bound=2.0 * extraction.model.metadata.error_bound)
    print(report.render())
    print(report.summary())


if __name__ == "__main__":
    main()
