"""Push telemetry: watch a serving session over TCP, journal it, replay it.

``examples/gateway_cluster.py`` showed remote clients driving the model
server through the TCP gateway.  This example adds the observability layer
of :mod:`repro.telemetry` on top of the same stack:

1. extract, compile and register one RC-ladder model, start a
   :class:`~repro.serve.server.ModelServer` behind a
   :class:`~repro.gateway.server.Gateway`,
2. attach a :class:`~repro.telemetry.RunRecorder` that journals every
   telemetry event (plus periodic stats snapshots) into a durable sqlite
   :class:`~repro.telemetry.RunStore`,
3. open a **subscriber client** — a dedicated
   :class:`~repro.gateway.client.GatewayClient` streaming ``EVENT`` wire
   frames via ``subscribe_events()`` — that live-tallies the event flow
   while a separate **data client** pipelines its requests,
4. close the run and show what the journal captured: the event kinds, the
   stats snapshots and the per-request trace ids linking each submission to
   the batch that served it, and
5. **replay**: rebuild the request schedule with ``RunStore.replay`` and
   re-serve it through a fresh client — every replayed output is checked
   bitwise-identical to what the recorded session answered.

Run with:  python examples/telemetry_replay.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import collections
import os
import tempfile
import threading
import time

import numpy as np

from repro.circuit import Sine, TransientOptions
from repro.circuits import build_rc_ladder
from repro.exceptions import GatewayError
from repro.gateway import Gateway, GatewayClient
from repro.runtime import ModelRegistry, compile_model
from repro.rvf import RVFOptions, extract_rvf_model
from repro.serve import ModelServer, ServePolicy
from repro.sweep import run_sweep, waveform_sweep
from repro.telemetry import RunRecorder, RunStore

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_REQUESTS = 150 if SMOKE else 600
N_STEPS = 100


def extract_compiled(transient: TransientOptions):
    """One trained + compiled RC-ladder model."""
    scenarios = waveform_sweep(
        build_rc_ladder, [Sine(0.5, amp, 2e5) for amp in (0.1, 0.25, 0.4)],
        transient=transient, builder_kwargs={"n_sections": 2})
    sweep = run_sweep(scenarios)
    dataset = sweep.extract_combined_tft(max_snapshots=40)
    extraction = extract_rvf_model(dataset, RVFOptions(error_bound=5e-3))
    states = dataset.state_axis()
    compiled = compile_model(
        extraction.model, dt=transient.dt,
        input_range=(float(states.min()) - 0.05, float(states.max()) + 0.05))
    return compiled, sweep


def subscriber_main(host: str, port: int, tally: collections.Counter,
                    trace_ids: set) -> None:
    """The watcher: a dedicated client streaming EVENT frames.

    Ends itself once the event stream goes quiet — after the data traffic
    stops, the 2 s frame timeout fires and the iterator is abandoned.
    """
    try:
        with GatewayClient(host, port) as client:
            for payload in client.subscribe_events(
                    topics=("RequestSubmitted", "BatchClosed", "BatchServed",
                            "ConnectionOpened", "ConnectionClosed"),
                    timeout=2.0):
                tally[payload["event"]] += 1
                if payload["event"] == "RequestSubmitted":
                    trace_ids.add(payload["trace_id"])
    except GatewayError:
        pass            # quiet stream or gateway shutdown: the demo is over


def main():
    # 1. One trained model behind a gateway.
    transient = TransientOptions(t_stop=1e-6, dt=1e-8)
    registry = ModelRegistry(tempfile.mkdtemp(prefix="telemetry-replay-"))
    compiled, sweep = extract_compiled(transient)
    key = registry.save(compiled, provenance=sweep.provenance())
    print(f"registered rc_ladder(n_sections=2) as {key[:16]}...")

    rng = np.random.default_rng(0)
    times = np.arange(N_STEPS) * transient.dt
    stimuli = [0.5 + amp * np.sin(2.0 * np.pi * freq * times)
               for amp, freq in zip(rng.uniform(0.05, 0.4, N_REQUESTS),
                                    rng.uniform(1e5, 8e5, N_REQUESTS))]

    store = RunStore(os.path.join(tempfile.mkdtemp(prefix="telemetry-runs-"),
                                  "runs.db"))
    policy = ServePolicy(max_batch=64, max_wait=2e-3, n_lanes=2,
                         stats_interval=0.2)
    with ModelServer(registry, policy) as server:
        with Gateway(server) as gateway:
            host, port = gateway.address
            print(f"gateway listening on {host}:{port}")

            # 2. Journal the whole session into the durable run store.
            recorder = RunRecorder(
                server.telemetry, store, name="demo-session",
                stats_source=lambda: server.stats().as_dict(),
                snapshot_interval=0.25)

            # 3. One subscriber client watching, one data client driving.
            tally: collections.Counter = collections.Counter()
            seen_traces: set = set()
            watcher = threading.Thread(
                target=subscriber_main, args=(host, port, tally, seen_traces))
            watcher.start()
            time.sleep(0.3)                 # let the subscription register

            with GatewayClient(host, port, timeout=300.0) as client:
                start = time.perf_counter()
                recorded = client.submit_many(
                    (key, stimulus) for stimulus in stimuli)
                wall = time.perf_counter() - start
            print(f"data client: {N_REQUESTS} requests x {N_STEPS} steps in "
                  f"{wall * 1e3:.0f} ms ({N_REQUESTS / wall:.0f} req/s)")

            watcher.join(timeout=60.0)
            print("subscriber client saw: "
                  + ", ".join(f"{count} {kind}"
                              for kind, count in sorted(tally.items())))
            recorder.close()

            # 4. What the journal captured.
            run = store.get_run(recorder.run_id)
            events = store.events(run.run_id)
            kinds = collections.Counter(e["event"] for e in events)
            print(f"journal: run '{run.name}' captured {len(events)} events "
                  f"({', '.join(f'{n} {k}' for k, n in sorted(kinds.items()))}), "
                  f"{len(store.snapshots(run.run_id))} stats snapshots, "
                  f"{run.meta.get('n_dropped', 0)} dropped")
            assert len(seen_traces) == N_REQUESTS

            # 5. Replay the recorded schedule and re-serve it, bitwise.
            schedule = list(store.replay(run.run_id))
            assert len(schedule) == N_REQUESTS
            span = schedule[-1].t_rel - schedule[0].t_rel
            print(f"replay schedule: {len(schedule)} requests over "
                  f"{span * 1e3:.0f} ms (trace ids "
                  f"{schedule[0].trace_id}..{schedule[-1].trace_id})")
            with GatewayClient(host, port, timeout=300.0) as client:
                replayed = client.submit_many(
                    (entry.key, stimuli[index])
                    for index, entry in enumerate(schedule))
            for recorded_row, replayed_row in zip(recorded, replayed):
                assert np.array_equal(recorded_row, replayed_row)
            print("replayed session re-served bitwise-identically "
                  f"({len(replayed)} requests)")

        print(server.stats().describe())
    store.close()


if __name__ == "__main__":
    main()
