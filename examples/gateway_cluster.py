"""Gateway cluster: remote processes drive the model server over TCP.

``examples/serving_cluster.py`` showed the traffic side of :mod:`repro.serve`
— but every caller lived in the server's process.  This example opens the
same micro-batching scheduler to the network with :mod:`repro.gateway`:

1. extract, compile and register **two** models of one circuit family (an RC
   ladder at two depths), exactly as the serving-cluster demo does,
2. start a :class:`~repro.serve.server.ModelServer` with per-model dispatch
   lanes and wrap it in a :class:`~repro.gateway.server.Gateway` — an
   asyncio TCP front-end on a loopback port,
3. launch **two separate client processes** that each connect with a
   :class:`~repro.gateway.client.GatewayClient` and pipeline hundreds of
   single-stimulus requests (each process favouring a different model, so
   both dispatch lanes stay busy) — client 1 opts into the ``float32``
   wire format, halving its bytes on the wire,
4. spot-check that a remotely served output is bitwise-equal to evaluating
   the same row directly (for the float32 client: equal to the float64
   evaluation of its f4-quantised stimulus, re-quantised on the way out —
   precision is shed at the wire's edges only), and
5. print the gateway's connection/frame counters and the server's per-model
   lane statistics.

Run with:  python examples/gateway_cluster.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import multiprocessing
import os
import tempfile
import time

import numpy as np

from repro.circuit import Sine, TransientOptions
from repro.circuits import build_rc_ladder
from repro.gateway import Gateway, GatewayClient
from repro.runtime import ModelRegistry, compile_model
from repro.rvf import RVFOptions, extract_rvf_model
from repro.serve import ModelServer, ServePolicy
from repro.sweep import run_sweep, waveform_sweep

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_REQUESTS_PER_CLIENT = 200 if SMOKE else 1000
N_STEPS = 100


def extract_compiled(n_sections: int, transient: TransientOptions):
    """One trained + compiled model of the RC-ladder family."""
    scenarios = waveform_sweep(
        build_rc_ladder, [Sine(0.5, amp, 2e5) for amp in (0.1, 0.25, 0.4)],
        transient=transient, builder_kwargs={"n_sections": n_sections})
    sweep = run_sweep(scenarios)
    dataset = sweep.extract_combined_tft(max_snapshots=40)
    extraction = extract_rvf_model(dataset, RVFOptions(error_bound=5e-3))
    states = dataset.state_axis()
    compiled = compile_model(
        extraction.model, dt=transient.dt,
        input_range=(float(states.min()) - 0.05, float(states.max()) + 0.05))
    return compiled, sweep


def client_main(client_id: int, host: str, port: int, keys, n_requests: int,
                results) -> None:
    """One remote process: connect, pipeline requests, report throughput.

    Runs in its own (spawned) process — everything it knows about the server
    is the ``(host, port)`` address and the model keys.
    """
    rng = np.random.default_rng(client_id)
    times = np.arange(N_STEPS) * 1e-8
    # Each client favours one model (3:1) so both lanes carry traffic.
    request_keys = [keys[client_id if i % 4 else 1 - client_id]
                    for i in range(n_requests)]
    stimuli = [0.5 + amp * np.sin(2.0 * np.pi * freq * times)
               for amp, freq in zip(rng.uniform(0.05, 0.4, n_requests),
                                    rng.uniform(1e5, 8e5, n_requests))]
    # Client 1 opts into float32 on the wire — half the bytes per request;
    # the gateway upcasts once at the edge, so the numerics stay float64.
    dtype = "float32" if client_id == 1 else "float64"
    with GatewayClient(host, port, timeout=300.0, dtype=dtype) as client:
        start = time.perf_counter()
        outputs = client.submit_many(zip(request_keys, stimuli))
        wall = time.perf_counter() - start
    results.put((client_id, n_requests / wall, dtype,
                 request_keys[0], stimuli[0], outputs[0]))


def main():
    # 1. Train, compile and register two models of the family.
    transient = TransientOptions(t_stop=1e-6, dt=1e-8)
    registry = ModelRegistry(tempfile.mkdtemp(prefix="gateway-cluster-"))
    keys = []
    for n_sections in (2, 3):
        compiled, sweep = extract_compiled(n_sections, transient)
        key = registry.save(compiled, provenance=sweep.provenance())
        keys.append(key)
        print(f"registered rc_ladder(n_sections={n_sections}) as "
              f"{key[:16]}...")

    # 2. Micro-batching server with per-model lanes, fronted over TCP.
    policy = ServePolicy(max_batch=128, max_wait=2e-3, n_lanes=2)
    with ModelServer(registry, policy) as server:
        with Gateway(server) as gateway:
            host, port = gateway.address
            print(f"gateway listening on {host}:{port}")

            # 3. Two remote client processes (spawned: nothing shared but
            # the address), each pipelining its own request stream.
            ctx = multiprocessing.get_context("spawn")
            results = ctx.Queue()
            clients = [
                ctx.Process(target=client_main,
                            args=(i, host, port, keys,
                                  N_REQUESTS_PER_CLIENT, results))
                for i in range(2)]
            start = time.perf_counter()
            for process in clients:
                process.start()
            reports = [results.get(timeout=300.0) for _ in clients]
            for process in clients:
                process.join(timeout=60.0)
            wall = time.perf_counter() - start
            total = 2 * N_REQUESTS_PER_CLIENT
            print(f"served {total} remote requests x {N_STEPS} steps from "
                  f"{len(clients)} client process(es) in {wall * 1e3:.0f} ms "
                  f"({total / wall:.0f} req/s aggregate)")
            for client_id, rate, dtype, *_ in sorted(reports):
                print(f"  client {client_id}: {rate:.0f} req/s "
                      f"({dtype} wire)")

            # 4. Bitwise spot-check one remotely served row per client.
            # The float32 client's contract: its reply equals the float64
            # evaluation of the f4-quantised stimulus, quantised once more
            # on the way back — bit-exact, with precision lost only where
            # the client chose to shed it.
            for client_id, _, dtype, key, stimulus, output in reports:
                if dtype == "float32":
                    sent = stimulus.astype(np.float32).astype(np.float64)
                    direct = (registry.load(key).evaluate(sent)
                              .astype(np.float32).astype(np.float64))
                else:
                    direct = registry.load(key).evaluate(stimulus)
                assert np.array_equal(output, direct)
            print("spot-check: remote outputs bitwise-equal to direct "
                  "evaluate (float32 client: equal after edge quantisation)")

            # 5. What the gateway and the lanes actually did.
            print(gateway.counters.describe())
        print(server.stats().describe())


if __name__ == "__main__":
    main()
