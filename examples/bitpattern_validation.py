"""Reproduce the paper's Fig. 9 and Table I: bit-pattern validation.

The extracted RVF model and the CAFFEINE baseline are driven with the same
spectrally rich 2.5 GS/s bit pattern as the transistor-level buffer, and the
accuracy / build-time / speed-up comparison of Table I is printed.

Run with:  python examples/bitpattern_validation.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import os

import numpy as np

from repro.analysis import (
    ComparisonTable,
    ModelComparisonRow,
    surface_rmse_db,
    time_domain_rmse,
)
from repro.baselines import CaffeineOptions, extract_caffeine_model
from repro.circuit import TransientOptions, transient_analysis
from repro.circuits import build_output_buffer, buffer_test_pattern, buffer_training_waveform
from repro.rvf import RVFOptions, extract_rvf_model, simulate_hammerstein
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_BITS = 12 if SMOKE else 32
CAFFEINE_GENERATIONS = 10 if SMOKE else 25


def main():
    # ------------------------------------------------------------------ train
    training = buffer_training_waveform()
    circuit = build_output_buffer(input_waveform=training)
    system = circuit.build()
    period = 1.0 / training.frequency
    trajectory = SnapshotTrajectory(system)
    transient_analysis(system, TransientOptions(t_stop=period, dt=period / 150),
                       snapshot_callback=trajectory)
    tft = extract_tft(trajectory, default_frequency_grid(1.0, 10e9, 4), max_snapshots=110)

    rvf = extract_rvf_model(tft, RVFOptions(error_bound=1e-3))
    caffeine = extract_caffeine_model(
        tft, error_bound=1e-3,
        caffeine_options=CaffeineOptions(generations=CAFFEINE_GENERATIONS))
    print(rvf.summary())
    print(caffeine.summary())

    # --------------------------------------------------------------- validate
    pattern = buffer_test_pattern(n_bits=N_BITS, bit_rate=2.5e9)
    test_circuit = build_output_buffer(input_waveform=pattern, name="buffer_under_test")
    test_system = test_circuit.build()
    reference = transient_analysis(test_system,
                                   TransientOptions(t_stop=pattern.duration, dt=10e-12))
    print(f"\nReference SPICE transient: {reference.n_points} points, "
          f"{reference.wall_time:.2f} s")

    table = ComparisonTable()
    data = tft.siso_response()
    for name, extraction in (("RVF", rvf), ("CAFF", caffeine)):
        model = extraction.model
        sim = simulate_hammerstein(model, reference.times, reference.inputs[:, 0])
        rmse_td = time_domain_rmse(reference.outputs[:, 0], sim.outputs)
        rmse_db = surface_rmse_db(data, extraction.model_surface())
        build = model.metadata.build_time_seconds
        speedup = reference.wall_time / sim.wall_time
        automated = name == "RVF"
        table.add(ModelComparisonRow(name, rmse_db, rmse_td, build, speedup, automated))
        print(f"{name}: time-domain RMSE {rmse_td:.4f} over an output swing of "
              f"{np.ptp(reference.outputs):.3f} V, model evaluation {sim.wall_time*1e3:.1f} ms")

    print("\nTable I (reproduced):")
    print(table.render())
    print("\nPaper's Table I for reference: RVF -62 dB / 0.0098 / 2 min / 7x / YES,"
          "\n                               CAFF -22 dB / 0.0138 / 7 min / 12x / NO")


if __name__ == "__main__":
    main()
