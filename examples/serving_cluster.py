"""Serving cluster: submit -> micro-batch -> shard -> respond.

``examples/runtime_serving.py`` showed the *batch* side of the compiled
runtime: one process, one pre-assembled ``(n_stimuli, n_steps)`` array.  This
example shows the *traffic* side with :mod:`repro.serve` — requests arrive
one stimulus at a time, for more than one model, and the server does the
batching:

1. extract and compile **two** models of one circuit family (an RC ladder at
   two ladder depths), registered in a content-hash-keyed registry with a
   persistent index,
2. start a :class:`~repro.serve.server.ModelServer` with a micro-batching
   policy and a two-worker shard pool,
3. fire a few thousand interleaved single-stimulus requests against both
   models and gather the per-request futures,
4. spot-check that a served output is bitwise-equal to evaluating the same
   row directly, and
5. print the server's latency/throughput statistics.

Run with:  python examples/serving_cluster.py
(set REPRO_EXAMPLES_SMOKE=1 for a reduced-workload smoke run)
"""

import os
import tempfile
import time

import numpy as np

from repro.circuit import Sine, TransientOptions
from repro.circuits import build_rc_ladder
from repro.rvf import RVFOptions, extract_rvf_model
from repro.runtime import ModelRegistry, compile_model
from repro.serve import ModelServer, ServePolicy
from repro.sweep import run_sweep, waveform_sweep

#: Reduced workload for CI smoke runs (REPRO_EXAMPLES_SMOKE=1).
SMOKE = os.environ.get("REPRO_EXAMPLES_SMOKE", "") not in ("", "0")
N_REQUESTS = 600 if SMOKE else 3000


def extract_compiled(n_sections: int, transient: TransientOptions):
    """One trained + compiled model of the RC-ladder family."""
    scenarios = waveform_sweep(
        build_rc_ladder, [Sine(0.5, amp, 2e5) for amp in (0.1, 0.25, 0.4)],
        transient=transient, builder_kwargs={"n_sections": n_sections})
    sweep = run_sweep(scenarios)
    dataset = sweep.extract_combined_tft(max_snapshots=40)
    extraction = extract_rvf_model(dataset, RVFOptions(error_bound=5e-3))
    states = dataset.state_axis()
    compiled = compile_model(
        extraction.model, dt=transient.dt,
        input_range=(float(states.min()) - 0.05, float(states.max()) + 0.05))
    return compiled, sweep


def main():
    # 1. Train, compile and register two models of the family.
    transient = TransientOptions(t_stop=1e-6, dt=1e-8)
    registry = ModelRegistry(tempfile.mkdtemp(prefix="serving-cluster-"))
    keys = []
    for n_sections in (2, 3):
        compiled, sweep = extract_compiled(n_sections, transient)
        key = registry.save(compiled, provenance=sweep.provenance())
        keys.append(key)
        print(f"registered rc_ladder(n_sections={n_sections}) as {key[:16]}... "
              f"({compiled.nbytes / 1e6:.1f} MB compiled)")
    print(registry.describe())

    # 2. A server with micro-batching and a 2-process shard pool.
    policy = ServePolicy(max_batch=128, max_wait=2e-3, n_workers=2)
    n_requests, n_steps = N_REQUESTS, 100
    times = registry.load(keys[0]).time_axis(n_steps)
    rng = np.random.default_rng(7)

    with ModelServer(registry, policy) as server:
        # 3. Interleaved single-stimulus requests against both models.
        request_keys = [keys[i % 2] for i in range(n_requests)]
        amplitudes = rng.uniform(0.05, 0.4, n_requests)
        frequencies = rng.uniform(1e5, 8e5, n_requests)
        start = time.perf_counter()
        futures = [
            server.submit(key, 0.5 + amp * np.sin(2.0 * np.pi * freq * times))
            for key, amp, freq in zip(request_keys, amplitudes, frequencies)]
        outputs = [future.result(60.0) for future in futures]
        wall = time.perf_counter() - start
        print(f"served {n_requests} requests x {n_steps} steps across "
              f"{len(keys)} models in {wall * 1e3:.0f} ms "
              f"({n_requests / wall:.0f} req/s)")

        # 4. Bitwise spot-check against a direct single-process evaluation.
        probe = 17
        direct = registry.load(request_keys[probe]).evaluate(
            0.5 + amplitudes[probe] * np.sin(2.0 * np.pi * frequencies[probe]
                                             * times))
        assert np.array_equal(outputs[probe], direct)
        print("spot-check: served output bitwise-equal to direct evaluate")

        # 5. What the batching and sharding actually did.
        stats = server.stats()
        print(stats.describe())
        print(f"  batches: {stats.n_batches}, queue p99 "
              f"{stats.queue_latency.p99 * 1e3:.2f} ms, pool {stats.pool}, "
              f"cache {stats.cache}")


if __name__ == "__main__":
    main()
