"""Setuptools entry point (kept for environments without PEP 517 build isolation)."""

from setuptools import setup

setup()
