"""Branch coverage for the damped Newton solver and the factor cache."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.circuit import FactorizationCache, NewtonOptions, newton_solve, solve_linear
from repro.exceptions import SingularMatrixError


class TestDampingClamp:
    def test_large_update_is_clamped_to_max_step(self):
        steps = []

        def f(v):
            steps.append(v[0])
            return np.array([v[0] - 10.0]), np.array([[1.0]])

        result = newton_solve(f, np.array([0.0]),
                              NewtonOptions(max_step=1.0, max_iterations=30))
        assert result.converged
        assert result.solution[0] == pytest.approx(10.0)
        # The raw Newton step is 10; the clamp forces unit-sized moves, so the
        # first trial points walk 1.0 at a time.
        assert steps[1] == pytest.approx(1.0)
        assert steps[2] == pytest.approx(2.0)
        assert result.iterations >= 10

    def test_no_clamp_when_step_small(self):
        def f(v):
            return np.array([v[0] - 0.5]), np.array([[1.0]])

        result = newton_solve(f, np.array([0.0]), NewtonOptions(max_step=1.0))
        assert result.converged
        # One productive step plus the confirming zero-update iteration.
        assert result.iterations == 2
        assert result.residual_norm == 0.0


class TestBacktrackingLineSearch:
    def test_backtracks_when_residual_explodes(self):
        """Scripted residuals force the halving loop to run."""
        evaluations = []

        def f(v):
            x = float(v[0])
            evaluations.append(x)
            # The understated Jacobian (0.1 instead of 1) makes Newton
            # overshoot from 0 to 5, deep into the 1e6 "wall" beyond 0.75;
            # three halvings bring the trial back into the benign region.
            if x > 0.75:
                return np.array([1e6]), np.array([[0.1]])
            return np.array([x - 0.5]), np.array([[0.1]])

        newton_solve(f, np.array([0.0]),
                     NewtonOptions(max_step=10.0, max_iterations=1))
        # Initial point, rejected full step and the halving sequence.
        assert evaluations[:5] == [0.0, 5.0, 2.5, 1.25, 0.625]

    def test_backtracking_gives_up_after_four_halvings(self):
        calls = {"count": 0}

        def f(v):
            calls["count"] += 1
            # First evaluation is fine, every subsequent one is terrible, so
            # the line search halves 4 times and then accepts the bad point.
            if calls["count"] == 1:
                return np.array([1.0]), np.array([[1.0]])
            return np.array([1e9]), np.array([[1.0]])

        result = newton_solve(f, np.array([0.0]),
                              NewtonOptions(max_iterations=1, max_step=10.0))
        assert not result.converged
        # 1 initial + 1 full step + 4 backtracks = 6 evaluations.
        assert calls["count"] == 6


class TestSingularAndNonFinite:
    def test_singular_dense_jacobian_raises(self):
        def f(v):
            return np.array([1.0, 1.0]), np.array([[1.0, 1.0], [1.0, 1.0]])

        with pytest.raises(SingularMatrixError, match="iteration 1"):
            newton_solve(f, np.zeros(2))

    def test_singular_sparse_jacobian_raises(self):
        jac = sp.csc_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))

        def f(v):
            return np.array([1.0, 1.0]), jac

        with pytest.raises(SingularMatrixError):
            newton_solve(f, np.zeros(2))

    def test_singular_jacobian_with_cache_raises(self):
        def f(v):
            return np.array([1.0, 1.0]), np.array([[1.0, 1.0], [1.0, 1.0]])

        with pytest.raises(SingularMatrixError):
            newton_solve(f, np.zeros(2), linear_solver=FactorizationCache())

    def test_non_finite_update_raises(self):
        def f(v):
            return np.array([np.inf]), np.array([[1.0]])

        with pytest.raises(SingularMatrixError, match="non-finite"):
            newton_solve(f, np.array([0.0]))


class TestNonConvergenceReporting:
    def test_reports_iterations_and_residual(self):
        def f(v):
            # No root: f = cos(v) + 2 is always >= 1.
            return np.array([np.cos(v[0]) + 2.0]), np.array([[-np.sin(v[0]) - 1e-3]])

        result = newton_solve(f, np.array([0.1]),
                              NewtonOptions(max_iterations=7, max_step=0.5))
        assert not result.converged
        assert result.iterations == 7
        assert result.residual_norm >= 1.0
        assert not bool(result)


class TestFactorizationCache:
    def test_reuses_identical_dense_matrix(self):
        cache = FactorizationCache()
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        x1 = cache.solve(a, b)
        x2 = cache.solve(a.copy(), b)
        assert cache.factorizations == 1
        assert cache.reuses == 1
        assert np.allclose(a @ x1, b) and np.allclose(a @ x2, b)

    def test_refactors_on_drift_beyond_tolerance(self):
        cache = FactorizationCache(reuse_tolerance=1e-3)
        a = np.array([[2.0, 1.0], [1.0, 3.0]])
        b = np.array([1.0, 2.0])
        cache.solve(a, b)
        cache.solve(a * (1.0 + 1e-6), b)       # within tolerance: reuse
        assert cache.reuses == 1
        cache.solve(a * 1.5, b)                # way out: refactor
        assert cache.factorizations == 2
        x = cache.solve(a * 1.5, b)
        assert np.allclose((a * 1.5) @ x, b)

    def test_stale_solution_is_approximate_but_fresh_is_exact(self):
        cache = FactorizationCache(reuse_tolerance=0.5)
        a = np.array([[2.0, 0.0], [0.0, 2.0]])
        b = np.array([2.0, 2.0])
        cache.solve(a, b)
        stale = cache.solve(a * 1.2, b)        # reused factors of a
        assert cache.reused_last
        assert np.allclose(stale, [1.0, 1.0])  # solves with the OLD matrix
        cache.invalidate()
        fresh = cache.solve(a * 1.2, b)
        assert not cache.reused_last
        assert np.allclose(fresh, [1.0 / 1.2, 1.0 / 1.2])

    def test_sparse_reuse_and_refactor(self):
        cache = FactorizationCache(reuse_tolerance=0.0)
        a = sp.csc_matrix(np.array([[2.0, 1.0], [0.0, 3.0]]))
        b = np.array([1.0, 3.0])
        x1 = cache.solve(a, b)
        cache.solve(a.copy(), b)
        assert cache.factorizations == 1 and cache.reuses == 1
        a2 = sp.csc_matrix(np.array([[4.0, 1.0], [0.0, 3.0]]))
        x2 = cache.solve(a2, b)
        assert cache.factorizations == 2
        assert np.allclose(a @ x1, b) and np.allclose(a2.toarray() @ x2, b)

    def test_solve_linear_sparse_singular(self):
        singular = sp.csc_matrix(np.array([[1.0, 1.0], [1.0, 1.0]]))
        with pytest.raises(SingularMatrixError):
            solve_linear(singular, np.ones(2))

    def test_solve_linear_dense_matches_numpy(self):
        a = np.array([[3.0, 1.0], [1.0, 2.0]])
        b = np.array([1.0, 0.5])
        assert np.allclose(solve_linear(a, b), np.linalg.solve(a, b))


class TestModifiedNewtonOnCircuits:
    def test_linear_transient_factorizes_once(self):
        """A linear circuit's Jacobian is constant: one LU for the whole run."""
        from repro.circuit import Sine, TransientOptions, transient_analysis
        from repro.circuit.linalg import FactorizationCache as Cache
        import repro.circuit.transient as transient_mod

        created = []
        original = transient_mod.FactorizationCache

        def spy(*args, **kwargs):
            cache = original(*args, **kwargs)
            created.append(cache)
            return cache

        from repro.circuits import build_rc_ladder
        circuit = build_rc_ladder(3, input_waveform=Sine(0.5, 0.2, 1e6))
        system = circuit.build()
        transient_mod.FactorizationCache = spy
        try:
            transient_analysis(system, TransientOptions(t_stop=1e-6, dt=1e-8))
        finally:
            transient_mod.FactorizationCache = original
        assert len(created) == 1
        cache = created[0]
        # Constant Jacobian -> one factorisation (plus at most one more for
        # the final, fractionally shorter step); everything else is reused.
        assert cache.factorizations <= 2
        assert cache.reuses > 50


class TestSingularThreshold:
    def test_near_singular_pivot_raises_when_threshold_set(self):
        def f(v):
            return np.array([1.0, 1.0]), np.array([[1.0, 0.0], [0.0, 1e-15]])

        with pytest.raises(SingularMatrixError):
            newton_solve(f, np.zeros(2),
                         NewtonOptions(singular_threshold=1e-12))

    def test_near_singular_pivot_tolerated_by_default(self):
        def f(v):
            return np.array([v[0] - 1.0, 1e-15 * v[1]]), \
                np.array([[1.0, 0.0], [0.0, 1e-15]])

        result = newton_solve(f, np.zeros(2), NewtonOptions(max_iterations=3))
        assert np.isfinite(result.solution).all()


class TestPerBlockDriftMetric:
    """drift_indices: only the nonlinear block decides factor reuse."""

    def test_linear_drift_ignored_nonlinear_drift_triggers(self):
        cache = FactorizationCache(reuse_tolerance=1e-2, drift_indices=[4])
        a = np.diag([2.0, 3.0, 4.0])
        b = np.ones(3)
        cache.solve(a, b)
        moved_linear = a.copy()
        moved_linear[0, 0] *= 5.0              # flat index 0: outside the block
        cache.solve(moved_linear, b)
        assert cache.reuses == 1 and cache.factorizations == 1
        moved_nonlinear = a.copy()
        moved_nonlinear[1, 1] *= 1.5           # flat index 4: inside the block
        x = cache.solve(moved_nonlinear, b)
        assert cache.factorizations == 2
        assert np.allclose(moved_nonlinear @ x, b)

    def test_scale_is_blockwise_not_global(self):
        """A 20% move of a tiny nonlinear entry must trigger even when the
        matrix is dominated by huge linear entries (the whole point of the
        per-block metric for large mostly-linear systems)."""
        cache = FactorizationCache(reuse_tolerance=0.05, drift_indices=[4])
        a = np.diag([1e9, 1.0, 1.0])
        b = np.ones(3)
        cache.solve(a, b)
        moved = a.copy()
        moved[1, 1] = 1.2                      # 0.2 drift vs global scale 1e9
        cache.solve(moved, b)
        assert cache.factorizations == 2       # global metric would have reused

    def test_empty_block_reuses_until_invalidated(self):
        cache = FactorizationCache(reuse_tolerance=0.0,
                                   drift_indices=np.zeros(0, dtype=np.intp))
        a = np.diag([2.0, 2.0])
        b = np.ones(2)
        cache.solve(a, b)
        stale = cache.solve(a * 2.0, b)        # linear-only change: reused
        assert cache.reused_last
        assert np.allclose(stale, [0.5, 0.5])  # solved with the OLD factors
        cache.invalidate()                     # the caller's dt-change signal
        fresh = cache.solve(a * 2.0, b)
        assert cache.factorizations == 2
        assert np.allclose(fresh, [0.25, 0.25])

    def test_sparse_data_vector_block(self):
        pattern = np.array([[2.0, 1.0], [0.0, 3.0]])
        a = sp.csc_matrix(pattern)
        # CSC data order of this pattern: [2.0, 1.0, 3.0]; block = entry 2.
        cache = FactorizationCache(reuse_tolerance=1e-2, drift_indices=[2])
        b = np.ones(2)
        cache.solve(a, b)
        moved_linear = a.copy()
        moved_linear.data[0] *= 10.0
        cache.solve(moved_linear, b)
        assert cache.reuses == 1
        moved_nonlinear = a.copy()
        moved_nonlinear.data[2] *= 2.0
        cache.solve(moved_nonlinear, b)
        assert cache.factorizations == 2

    def test_out_of_range_block_refactors(self):
        cache = FactorizationCache(reuse_tolerance=1e-2, drift_indices=[100])
        a = np.diag([2.0, 3.0])
        cache.solve(a, np.ones(2))
        cache.solve(a.copy(), np.ones(2))      # mask beyond data: no reuse
        assert cache.factorizations == 2
