"""Tests for the analysis helpers and the ready-made circuit library."""

import numpy as np
import pytest

from repro.analysis import (
    ComparisonTable,
    ModelComparisonRow,
    ascii_table,
    compare_surfaces,
    db,
    gain_error_db,
    measure_speedup,
    phase_error_deg,
    surface_rmse_db,
    time_domain_rmse,
)
from repro.circuit import TransientOptions, ac_analysis, dc_operating_point, frequency_grid, transient_analysis
from repro.circuits import (
    BufferParams,
    build_differential_amplifier,
    build_diode_limiter,
    build_output_buffer,
    buffer_test_pattern,
    buffer_training_waveform,
    build_rc_ladder,
)


class TestErrorMetrics:
    def test_db_of_unity_is_zero(self):
        assert db(1.0) == pytest.approx(0.0)

    def test_db_of_zero_is_finite(self):
        assert np.isfinite(db(0.0))

    def test_gain_error_db_matches_manual(self):
        ref = np.array([1.0 + 0j])
        model = np.array([1.001 + 0j])
        assert gain_error_db(ref, model)[0] == pytest.approx(20 * np.log10(1e-3), abs=1e-6)

    def test_phase_error_wraps(self):
        ref = np.array([np.exp(1j * np.deg2rad(179.0))])
        model = np.array([np.exp(-1j * np.deg2rad(179.0))])
        assert abs(phase_error_deg(ref, model)[0]) == pytest.approx(2.0, abs=1e-6)

    def test_surface_rmse_db(self):
        ref = np.zeros((3, 3), dtype=complex)
        model = np.full((3, 3), 1e-2, dtype=complex)
        assert surface_rmse_db(ref, model) == pytest.approx(-40.0)

    def test_time_domain_rmse(self):
        a = np.zeros(100)
        b = np.full(100, 0.1)
        assert time_domain_rmse(a, b) == pytest.approx(0.1)

    def test_time_domain_rmse_shape_check(self):
        with pytest.raises(ValueError):
            time_domain_rmse(np.zeros(3), np.zeros(4))

    def test_compare_surfaces_report(self):
        states = np.linspace(0, 1, 4)
        freqs = np.logspace(3, 6, 5)
        ref = np.ones((4, 5), dtype=complex)
        model = ref + 1e-3
        report = compare_surfaces(ref, model, states, freqs)
        assert report.max_gain_error_db == pytest.approx(-60.0, abs=0.1)
        assert report.relative_rms == pytest.approx(1e-3, rel=1e-6)
        assert "dB" in report.summary()

    def test_compare_surfaces_shape_mismatch(self):
        with pytest.raises(ValueError):
            compare_surfaces(np.ones((2, 2)), np.ones((3, 2)), np.zeros(2), np.zeros(2))

    def test_worst_region_location(self):
        states = np.array([0.0, 1.0])
        freqs = np.array([1e3, 1e6])
        ref = np.ones((2, 2), dtype=complex)
        model = ref.copy()
        model[1, 0] += 0.1
        report = compare_surfaces(ref, model, states, freqs)
        assert report.worst_region() == (1.0, 1e3)


class TestReporting:
    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_comparison_table_render(self):
        table = ComparisonTable()
        table.add(ModelComparisonRow("RVF", -62.0, 0.0098, 120.0, 7.0, True))
        table.add(ModelComparisonRow("CAFFEINE", -22.0, 0.0138, 420.0, 12.0, False))
        text = table.render()
        assert "RVF" in text and "CAFFEINE" in text
        assert "YES" in text and "NO" in text

    def test_best_by_accuracy(self):
        table = ComparisonTable()
        table.add(ModelComparisonRow("A", -10.0, 1.0, 1.0, 1.0, True))
        table.add(ModelComparisonRow("B", -50.0, 1.0, 1.0, 1.0, True))
        assert table.best_by_accuracy().name == "B"

    def test_measure_speedup_ordering(self):
        import time

        def slow():
            time.sleep(0.02)
            return np.zeros(1)

        def fast():
            return np.zeros(1)

        ref_s, model_s, speedup = measure_speedup(slow, fast)
        assert ref_s > model_s
        assert speedup > 1.0


class TestCircuitLibrary:
    def test_rc_ladder_section_count(self):
        circuit = build_rc_ladder(4)
        counts = circuit.component_count()
        assert counts["Resistor"] == 4 and counts["Capacitor"] == 4

    def test_rc_ladder_requires_sections(self):
        with pytest.raises(ValueError):
            build_rc_ladder(0)

    def test_diode_limiter_clipping_levels(self):
        from repro.circuit.waveforms import Sine
        circuit = build_diode_limiter(input_waveform=Sine(0.0, 2.0, 1e6))
        result = transient_analysis(circuit.build(), TransientOptions(t_stop=2e-6, dt=4e-9))
        assert result.outputs.max() < 1.1
        assert result.outputs.min() > -1.1

    def test_differential_amplifier_gain_sign(self):
        circuit = build_differential_amplifier()
        system = circuit.build()
        ac = ac_analysis(system, frequency_grid(1e6, 1e10, 4))
        assert ac.dc_gain() > 0.5

    def test_buffer_component_count_matches_paper_scale(self):
        circuit = build_output_buffer()
        counts = circuit.component_count()
        transistors = counts.get("NMOS", 0) + counts.get("PMOS", 0)
        assert 25 <= transistors <= 35          # paper: 27 transistors
        assert 55 <= len(circuit) <= 80         # paper: ~70 components

    def test_buffer_dc_gain_close_to_two(self):
        system = build_output_buffer().build()
        ac = ac_analysis(system, frequency_grid(1e5, 30e9, 6))
        assert ac.dc_gain() == pytest.approx(2.0, rel=0.3)

    def test_buffer_bandwidth_in_ghz_range(self):
        system = build_output_buffer().build()
        ac = ac_analysis(system, frequency_grid(1e5, 30e9, 6))
        assert 1.5e9 < ac.bandwidth() < 8e9      # paper: 3 GHz

    def test_buffer_output_saturates_for_large_inputs(self):
        high = dc_operating_point(build_output_buffer(input_waveform=1.4, name="hi").build())
        low = dc_operating_point(build_output_buffer(input_waveform=0.4, name="lo").build())
        mid = dc_operating_point(build_output_buffer(input_waveform=0.9, name="mid").build())
        assert abs(mid.outputs[0]) < 0.02
        assert high.outputs[0] > 0.1
        assert low.outputs[0] < -0.1
        # Saturation: doubling the overdrive barely changes the output.
        higher = dc_operating_point(build_output_buffer(input_waveform=1.3, name="hi2").build())
        assert high.outputs[0] == pytest.approx(higher.outputs[0], rel=0.05)

    def test_buffer_dc_converges_with_plain_newton(self):
        result = dc_operating_point(build_output_buffer().build())
        assert result.strategy == "newton"

    def test_training_waveform_covers_paper_state_range(self):
        wave = buffer_training_waveform()
        t = np.linspace(0, 1 / wave.frequency, 500)
        values = wave.sample(t)
        assert values.min() == pytest.approx(0.4, abs=1e-3)
        assert values.max() == pytest.approx(1.4, abs=1e-3)

    def test_test_pattern_rate_and_levels(self):
        pattern = buffer_test_pattern(n_bits=8, bit_rate=2.5e9)
        assert pattern.duration == pytest.approx(8 / 2.5e9)
        assert pattern.low == pytest.approx(0.5)
        assert pattern.high == pytest.approx(1.3)

    def test_buffer_params_are_tunable(self):
        params = BufferParams(n_stages=2)
        circuit = build_output_buffer(params, name="two_stage")
        counts = circuit.component_count()
        transistors = counts.get("NMOS", 0)
        assert transistors < 25

    def test_buffer_summary_string(self):
        assert "output_buffer" in build_output_buffer().summary()
