"""Tests of the serving layer: micro-batching, lanes, sharding, failure paths."""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.exceptions import ServeError, ServerClosedError
from repro.runtime import ModelRegistry, compile_model, shard_slices
from repro.rvf.hammerstein import HammersteinBranch, HammersteinModel
from repro.rvf.residues import PartialFractionFunction
from repro.serve import (
    LatencySummary,
    MicroBatcher,
    ModelCache,
    ModelServer,
    ServePolicy,
    ServeRequest,
    ShardPool,
)
from repro.tft.state_estimator import StateEstimator

#: Generous wall-clock bound on any future in these tests; failure-path
#: futures must resolve (successfully or not) well before this — the serving
#: contract is "retried or failed cleanly, never hung".
FUTURE_TIMEOUT = 60.0


def small_model(tau: float = 1.0) -> HammersteinModel:
    """A one-complex-pair, one-real-branch model (compiles in microseconds)."""
    def pf(poles, coeffs, const):
        return PartialFractionFunction(np.asarray(poles, complex),
                                       np.asarray(coeffs, complex), const)

    gain = pf([-2.0 + 0.5j], [0.3 + 0.1j], 1.2)
    pair = pf([-1.5 + 0.2j], [0.2 - 0.05j], 0.4 + 0.2j)
    real = pf([-1.0], [0.15], 0.2)
    branches = [
        HammersteinBranch(pole=(-3e7 + 1e8j) * tau, residue_function=pair,
                          static_function=pair.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=True),
        HammersteinBranch(pole=-5e7 * tau, residue_function=real,
                          static_function=real.antiderivative()
                          .with_value_at(0.5, 0.0), is_complex_pair=False),
    ]
    return HammersteinModel(
        branches=branches, gain_function=gain,
        static_function=gain.antiderivative().with_value_at(0.5, 0.3),
        state_estimator=StateEstimator(), dc_input=0.5, dc_output=0.3)


@pytest.fixture(scope="module")
def compiled():
    return compile_model(small_model(), dt=1e-9, input_range=(0.0, 1.0))


@pytest.fixture()
def registry(compiled, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.save(compiled)
    return registry


@pytest.fixture()
def key(compiled):
    from repro.runtime import content_hash

    return content_hash(compiled)


def request_batch(n_rows: int = 24, n_steps: int = 64, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return 0.5 + 0.3 * rng.standard_normal((n_rows, n_steps))


# --------------------------------------------------------------------------- cache
class _FakeModel:
    def __init__(self, nbytes):
        self.nbytes = nbytes


class TestModelCache:
    def test_lru_eviction_under_byte_budget(self):
        cache = ModelCache(max_bytes=100)
        loads = []

        def loader(name, nbytes):
            def load():
                loads.append(name)
                return _FakeModel(nbytes)
            return load

        a = cache.get_or_load("a", loader("a", 40))
        b = cache.get_or_load("b", loader("b", 40))
        assert cache.keys == ["a", "b"] and cache.current_bytes == 80
        # Touch "a" so "b" becomes the least recently used entry.
        assert cache.get_or_load("a", loader("a", 40)) is a
        c = cache.get_or_load("c", loader("c", 40))
        assert cache.keys == ["a", "c"]
        assert cache.current_bytes == 80
        assert cache.stats.evictions == 1
        # "b" was evicted: loading it again calls the loader afresh.
        b2 = cache.get_or_load("b", loader("b", 40))
        assert b2 is not b
        assert loads == ["a", "b", "c", "b"]
        assert b is not c   # silence unused warnings

    def test_model_larger_than_budget_served_but_not_admitted(self):
        cache = ModelCache(max_bytes=100)
        small = cache.get_or_load("small", lambda: _FakeModel(60))
        big = cache.get_or_load("big", lambda: _FakeModel(200))
        assert big.nbytes == 200
        assert cache.keys == ["small"]       # the oversized model never evicts
        assert cache.stats.uncached == 1
        assert cache.get_or_load("small", lambda: _FakeModel(60)) is small

    def test_zero_budget_never_caches(self):
        cache = ModelCache(max_bytes=0)
        cache.get_or_load("a", lambda: _FakeModel(1))
        assert len(cache) == 0 and cache.stats.uncached == 1

    def test_drop_and_clear(self):
        cache = ModelCache(max_bytes=100)
        cache.get_or_load("a", lambda: _FakeModel(30))
        cache.get_or_load("b", lambda: _FakeModel(30))
        cache.drop("a")
        cache.drop("missing")                # no-op
        assert cache.keys == ["b"] and cache.current_bytes == 30
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0


# ------------------------------------------------------------------------- batcher
class TestMicroBatcher:
    @staticmethod
    def request(key="m", n_steps=8):
        return ServeRequest(key=key, samples=np.zeros(n_steps))

    def test_full_batch_closes_immediately_in_order(self):
        batcher = MicroBatcher(max_batch=3, max_wait=10.0)
        first, second = self.request(), self.request()
        assert batcher.add(first, now=0.0) is None
        assert batcher.add(second, now=0.1) is None
        batch = batcher.add(self.request(), now=0.2)
        assert batch is not None and len(batch) == 3
        assert batch.requests[0] is first and batch.requests[1] is second
        assert batcher.pending() == 0
        assert all(r.t_closed == 0.2 for r in batch.requests)

    def test_deadline_pinned_by_oldest_request(self):
        batcher = MicroBatcher(max_batch=100, max_wait=1.0)
        batcher.add(self.request(), now=5.0)
        batcher.add(self.request(), now=5.9)     # must not extend the wait
        assert batcher.next_deadline() == pytest.approx(6.0)
        assert batcher.due(now=5.99) == []
        closed = batcher.due(now=6.0)
        assert len(closed) == 1 and len(closed[0]) == 2

    def test_groups_are_per_key_and_length(self):
        batcher = MicroBatcher(max_batch=2, max_wait=10.0)
        assert batcher.add(self.request("a"), 0.0) is None
        assert batcher.add(self.request("b"), 0.0) is None
        assert batcher.add(self.request("a", n_steps=16), 0.0) is None
        assert batcher.pending() == 3
        batch = batcher.add(self.request("a"), 0.0)      # fills ("a", 8)
        assert batch is not None and batch.key == "a" and batch.n_steps == 8
        drained = batcher.drain(now=1.0)
        assert sorted((b.key, b.n_steps) for b in drained) == \
            [("a", 16), ("b", 8)]
        assert batcher.pending() == 0

    def test_per_key_pending_and_drain(self):
        batcher = MicroBatcher(max_batch=10, max_wait=10.0)
        batcher.add(self.request("a"), 0.0)
        batcher.add(self.request("a", n_steps=16), 0.0)
        batcher.add(self.request("b"), 0.0)
        assert batcher.pending("a") == 2 and batcher.pending("b") == 1
        assert batcher.keys() == {"a", "b"}
        drained = batcher.drain(now=1.0, key="a")
        assert sorted(b.n_steps for b in drained) == [8, 16]
        assert all(b.key == "a" for b in drained)
        assert batcher.pending("a") == 0 and batcher.pending("b") == 1
        assert batcher.keys() == {"b"}


# --------------------------------------------------------------------- shard pool
class TestShardSlices:
    def test_partition_covers_rows_in_order(self):
        for n_rows, n_shards in [(10, 3), (3, 8), (1, 1), (16, 4), (7, 7)]:
            slices = shard_slices(n_rows, n_shards)
            assert len(slices) == min(n_rows, n_shards)
            covered = np.concatenate([np.arange(s.start, s.stop) for s in slices])
            np.testing.assert_array_equal(covered, np.arange(n_rows))
            sizes = [s.stop - s.start for s in slices]
            assert max(sizes) - min(sizes) <= 1


class TestShardPool:
    def test_bitwise_equal_to_single_process_evaluate(self, registry, compiled, key):
        batch = request_batch(23, 96)
        direct = compiled.evaluate(batch)
        for n_workers in (1, 2, 3):
            with ShardPool(registry.root, n_workers) as pool:
                np.testing.assert_array_equal(pool.evaluate(key, batch), direct)

    def test_worker_killed_mid_batch_respawns_and_retries(self, registry,
                                                          compiled, key):
        """Acceptance: a crash mid-batch is retried, never hung."""
        batch = request_batch(9, 32)
        with ShardPool(registry.root, 2, fault_injection={key}) as pool:
            outputs = pool.evaluate(key, batch)
            np.testing.assert_array_equal(outputs, compiled.evaluate(batch))
            assert pool.respawns >= 1
            assert pool.retried_jobs >= 1

    def test_externally_killed_idle_worker_is_respawned(self, registry,
                                                        compiled, key):
        batch = request_batch(8, 32)
        with ShardPool(registry.root, 2) as pool:
            os.kill(pool._workers[0].process.pid, signal.SIGKILL)
            pool._workers[0].process.join(timeout=10.0)
            outputs = pool.evaluate(key, batch)
            np.testing.assert_array_equal(outputs, compiled.evaluate(batch))
            assert pool.respawns == 1

    def test_retry_budget_exhausted_fails_cleanly(self, registry, key):
        with ShardPool(registry.root, 2, max_retries=0,
                       fault_injection={key}) as pool:
            with pytest.raises(ServeError, match="max_retries=0"):
                pool.evaluate(key, request_batch(6, 32))

    def test_worker_exception_propagates_without_retry(self, registry):
        with ShardPool(registry.root, 2) as pool:
            with pytest.raises(ServeError, match="no registry entry"):
                pool.evaluate("0" * 64, request_batch(6, 32))
            assert pool.respawns == 0        # an exception is not a crash

    def test_abandoned_batch_replies_never_leak_into_next(self, registry,
                                                          compiled, key):
        """A failed batch leaves stale replies in pipes; they must be skipped."""
        batch = request_batch(8, 32)
        with ShardPool(registry.root, 2) as pool:
            with pytest.raises(ServeError):
                pool.evaluate("0" * 64, batch)   # both workers reply; one read
            outputs = pool.evaluate(key, batch)
            np.testing.assert_array_equal(outputs, compiled.evaluate(batch))

    def test_closed_pool_rejects_work(self, registry, key):
        pool = ShardPool(registry.root, 1)
        pool.close()
        pool.close()                             # idempotent
        with pytest.raises(ServeError, match="closed"):
            pool.evaluate(key, request_batch(2, 8))

    def test_pipe_fallback_bitwise_equal(self, registry, compiled, key):
        """Jobs too large for the segment (or with shm disabled) take the
        pickle-over-pipe path and stay bitwise-equal."""
        batch = request_batch(13, 64)
        direct = compiled.evaluate(batch)
        # Segment smaller than one job's 2x footprint: every job falls back.
        with ShardPool(registry.root, 2, segment_bytes=1024) as pool:
            np.testing.assert_array_equal(pool.evaluate(key, batch), direct)
        # Dataplane disabled outright.
        with ShardPool(registry.root, 2, segment_bytes=0) as pool:
            np.testing.assert_array_equal(pool.evaluate(key, batch), direct)
            assert all(worker.segment is None for worker in pool._workers)

    def test_region_reuse_across_many_batches(self, registry, compiled, key):
        """A segment barely larger than one job forces every batch to reuse
        the same region; results must stay bitwise-equal throughout."""
        batch = request_batch(6, 128)
        direct = compiled.evaluate(batch)
        # Each job is 3 * 128 * 8 = 3072 B staged twice (in + out);
        # a 20 KiB segment leaves no slack beyond the reused region.
        with ShardPool(registry.root, 2, segment_bytes=20 << 10) as pool:
            for _ in range(16):
                np.testing.assert_array_equal(pool.evaluate(key, batch),
                                              direct)

    def test_worker_killed_while_holding_segment(self, registry, compiled,
                                                 key):
        """Satellite: a crash mid-batch must reclaim the dead worker's
        segment — the respawn owns a fresh one, reassembly never touches an
        unlinked segment, and no FileNotFoundError escapes."""
        batch = request_batch(9, 32)
        with ShardPool(registry.root, 2, fault_injection={key}) as pool:
            old_names = {worker.segment.name for worker in pool._workers}
            outputs = pool.evaluate(key, batch)
            np.testing.assert_array_equal(outputs, compiled.evaluate(batch))
            assert pool.respawns >= 1
            new_names = {worker.segment.name for worker in pool._workers}
            recycled = old_names - new_names
            assert recycled               # at least one segment was replaced
            from multiprocessing import shared_memory
            for name in recycled:         # ...and actually unlinked
                with pytest.raises(FileNotFoundError):
                    shared_memory.SharedMemory(name=name)

    def test_wedged_worker_hits_job_timeout_and_recovers(self, registry,
                                                         compiled, key):
        """Satellite: an alive-but-stuck worker is treated as a crash once
        the per-job deadline passes — respawned, retried, never hung."""
        batch = request_batch(8, 32)
        with ShardPool(registry.root, 2, job_timeout=1.0,
                       stall_injection={key}) as pool:
            start = time.monotonic()
            outputs = pool.evaluate(key, batch)
            elapsed = time.monotonic() - start
            np.testing.assert_array_equal(outputs, compiled.evaluate(batch))
            stats = pool.stats()
            assert stats["timed_out_jobs"] >= 1
            assert stats["respawns"] >= 1
            assert pool.retried_jobs >= 1
            assert elapsed < FUTURE_TIMEOUT

    def test_wedged_worker_exhausts_retry_budget_cleanly(self, registry,
                                                         compiled, key):
        """With no retry budget a timeout fails the batch with a named
        error instead of hanging the caller."""
        # Wedge both workers' first service so the retry cannot dodge onto
        # a healthy worker.
        with ShardPool(registry.root, 1, max_retries=0, job_timeout=0.5,
                       stall_injection={key}) as pool:
            with pytest.raises(ServeError, match="max_retries=0"):
                pool.evaluate(key, request_batch(4, 32))
            assert pool.stats()["timed_out_jobs"] >= 1

    def test_respawn_refused_after_close(self, registry):
        """Satellite: _respawn must refuse once the pool is closed — a lease
        holder racing close() must not spawn workers nobody will reap."""
        pool = ShardPool(registry.root, 1)
        pool.close()
        with pytest.raises(ServeError, match="refusing to respawn"):
            pool._respawn(0)

    def test_close_under_inflight_crash_retry_leaks_nothing(self, registry,
                                                            key):
        """Satellite: closing the pool while a lease holder is stuck in a
        crash-retry loop must end with a clean ServeError (never a hang) and
        zero surviving worker processes."""
        pool = ShardPool(registry.root, 1, job_timeout=0.5,
                         stall_injection={key})
        failures: list[BaseException] = []
        outcomes: list[np.ndarray] = []

        def drive() -> None:
            try:
                outcomes.append(pool.evaluate(key, request_batch(4, 32)))
            except BaseException as exc:   # noqa: BLE001
                failures.append(exc)

        thread = threading.Thread(target=drive)
        thread.start()
        time.sleep(0.1)                 # let the job wedge on the stall key
        pool.close(timeout=0.2)         # expire the lease wait: forces the
        thread.join(FUTURE_TIMEOUT)     # race close() guards against
        assert not thread.is_alive()
        # The evaluate either finished before close (retry won the race on a
        # respawned, stall-free worker) or failed with a named ServeError —
        # never a hang, never an unnamed crash.
        if failures:
            assert isinstance(failures[0], ServeError)
        else:
            assert len(outcomes) == 1
        for worker in pool._workers:
            assert not worker.process.is_alive()

    def test_concurrent_evaluates_lease_disjoint_workers(self, registry,
                                                         compiled, key):
        """Leasing: concurrent callers split the pool and stay bitwise-equal."""
        batches = [request_batch(11, 48, seed=s) for s in range(4)]
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []
        with ShardPool(registry.root, 2) as pool:
            pool.evaluate(key, batches[0][:2])   # warm caches

            def drive(index: int) -> None:
                try:
                    for _ in range(3):
                        results[index] = pool.evaluate(key, batches[index])
                except BaseException as exc:   # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=drive, args=(i,))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(60.0)
            assert pool.stats()["free_workers"] == 2
        assert not errors
        for index, batch in enumerate(batches):
            np.testing.assert_array_equal(results[index],
                                          compiled.evaluate(batch))


# ------------------------------------------------------------------------- server
class TestServerValidation:
    @pytest.fixture()
    def server(self, registry):
        with ModelServer(registry, ServePolicy(max_batch=8, max_wait=1e-3)) as srv:
            yield srv

    def test_oversized_request_rejected_with_named_limit(self, registry, key):
        policy = ServePolicy(max_batch=8, max_wait=1e-3, max_request_samples=100)
        with ModelServer(registry, policy) as server:
            with pytest.raises(ServeError, match="max_request_samples=100"):
                server.submit(key, np.zeros(101))
            server.submit(key, np.full(100, 0.5)).result(FUTURE_TIMEOUT)

    def test_non_finite_request_rejected_before_batching(self, server, key):
        samples = np.full(16, 0.5)
        samples[5] = np.nan
        with pytest.raises(ServeError, match="non-finite sample at step 5"):
            server.submit(key, samples)

    def test_malformed_shapes_rejected(self, server, key):
        with pytest.raises(ServeError, match="1-D"):
            server.submit(key, np.zeros((2, 8)))
        with pytest.raises(ServeError, match="1-D"):
            server.submit(key, np.zeros(0))

    def test_unknown_key_rejected_at_submit(self, server):
        with pytest.raises(ServeError, match="unknown model key"):
            server.submit("f" * 64, np.full(8, 0.5))

    def test_queue_depth_limit_named(self, registry, key):
        policy = ServePolicy(max_batch=1000, max_wait=60.0, max_queue_depth=2)
        with ModelServer(registry, policy) as server:
            server.submit(key, np.full(8, 0.5))
            server.submit(key, np.full(8, 0.5))
            with pytest.raises(ServeError, match="max_queue_depth=2"):
                server.submit(key, np.full(8, 0.5))
            server.flush()

    def test_submit_after_close_names_the_server(self, registry, key):
        """A post-close submit must raise, naming this server — never park a
        future that can't resolve."""
        server = ModelServer(registry, ServePolicy(max_batch=4, max_wait=1e-3))
        server.close()
        with pytest.raises(ServerClosedError) as excinfo:
            server.submit(key, np.full(8, 0.5))
        message = str(excinfo.value)
        assert "ModelServer(" in message and "is closed" in message
        assert str(registry.root) in message
        assert "never resolve" in message

    def test_close_resolves_pending_futures(self, registry, compiled, key):
        server = ModelServer(registry, ServePolicy(max_batch=1000, max_wait=60.0))
        row = np.full(16, 0.5)
        future = server.submit(key, row)     # parked: batch never fills
        server.close()
        np.testing.assert_array_equal(future.result(FUTURE_TIMEOUT),
                                      compiled.evaluate(row))


class TestServerBatching:
    def test_results_bitwise_equal_to_direct_evaluate(self, registry, compiled,
                                                      key):
        batch = request_batch(30, 64)
        policy = ServePolicy(max_batch=10, max_wait=5e-3)
        with ModelServer(registry, policy) as server:
            outputs = server.serve(key, batch)
        np.testing.assert_array_equal(outputs, compiled.evaluate(batch))

    def test_full_batches_coalesce(self, registry, key):
        batch = request_batch(12, 32)
        with ModelServer(registry, ServePolicy(max_batch=12, max_wait=60.0)) as server:
            futures = [server.submit(key, row) for row in batch]
            for future in futures:
                future.result(FUTURE_TIMEOUT)
            stats = server.stats()
        assert stats.n_batches == 1
        assert stats.mean_batch_size == pytest.approx(12.0)
        assert stats.n_completed == 12 and stats.n_failed == 0

    def test_partial_batch_flushed_by_deadline(self, registry, compiled, key):
        row = np.full(24, 0.5)
        with ModelServer(registry, ServePolicy(max_batch=1000, max_wait=0.02)) as server:
            start = time.monotonic()
            future = server.submit(key, row)
            result = future.result(FUTURE_TIMEOUT)
            elapsed = time.monotonic() - start
        np.testing.assert_array_equal(result, compiled.evaluate(row))
        assert elapsed >= 0.02               # waited out the coalescing window
        stats_batch = server.stats()
        assert stats_batch.queue_latency.max >= 0.02

    def test_mixed_lengths_form_separate_batches(self, registry, compiled, key):
        short, long = np.full(16, 0.4), np.full(32, 0.6)
        with ModelServer(registry, ServePolicy(max_batch=2, max_wait=60.0)) as server:
            futures = [server.submit(key, short), server.submit(key, long),
                       server.submit(key, short), server.submit(key, long)]
            results = [f.result(FUTURE_TIMEOUT) for f in futures]
            assert server.stats().n_batches == 2
        np.testing.assert_array_equal(results[0], compiled.evaluate(short))
        np.testing.assert_array_equal(results[1], compiled.evaluate(long))

    def test_stats_describe_smoke(self, registry, key):
        with ModelServer(registry, ServePolicy(max_batch=2, max_wait=1e-3)) as server:
            server.serve(key, request_batch(4, 16))
            described = server.stats().describe()
        assert "request" in described and "batch" in described

    def test_cache_eviction_under_byte_budget(self, compiled, tmp_path):
        """Two models, budget for one: serving alternates loads + evictions."""
        registry = ModelRegistry(tmp_path / "models")
        other = compile_model(small_model(tau=2.0), dt=1e-9,
                              input_range=(0.0, 1.0))
        key_a, key_b = registry.save(compiled), registry.save(other)
        assert key_a != key_b
        policy = ServePolicy(max_batch=4, max_wait=1e-3,
                             cache_bytes=int(compiled.nbytes * 1.5))
        with ModelServer(registry, policy) as server:
            for _ in range(2):
                out_a = server.serve(key_a, request_batch(4, 32))
                out_b = server.serve(key_b, request_batch(4, 32))
            stats = server.stats()
        np.testing.assert_array_equal(out_a, compiled.evaluate(request_batch(4, 32)))
        np.testing.assert_array_equal(out_b, other.evaluate(request_batch(4, 32)))
        assert stats.cache["evictions"] >= 2     # models displaced each other
        assert stats.cache["misses"] >= 3        # ... and were re-loaded


class TestServerSharded:
    def test_sharded_bitwise_equal_to_direct_evaluate(self, registry, compiled,
                                                      key):
        batch = request_batch(40, 64)
        policy = ServePolicy(max_batch=20, max_wait=5e-3, n_workers=2)
        with ModelServer(registry, policy) as server:
            outputs = server.serve(key, batch)
            assert server.stats().pool["n_workers"] == 2
        np.testing.assert_array_equal(outputs, compiled.evaluate(batch))

    def test_worker_crash_mid_batch_is_transparent_to_callers(self, registry,
                                                              compiled, key):
        """Acceptance: kill a worker mid-batch; every future still resolves."""
        batch = request_batch(10, 32)
        policy = ServePolicy(max_batch=10, max_wait=60.0, n_workers=2)
        with ModelServer(registry, policy, fault_injection={key}) as server:
            futures = [server.submit(key, row) for row in batch]
            results = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
            stats = server.stats()
        np.testing.assert_array_equal(results, compiled.evaluate(batch))
        assert stats.pool["respawns"] >= 1
        assert stats.n_failed == 0

    def test_exhausted_retries_fail_futures_cleanly(self, registry, key):
        policy = ServePolicy(max_batch=4, max_wait=60.0, n_workers=2,
                             max_retries=0)
        with ModelServer(registry, policy, fault_injection={key}) as server:
            futures = [server.submit(key, np.full(16, 0.5)) for _ in range(4)]
            for future in futures:
                with pytest.raises(ServeError, match="max_retries=0"):
                    future.result(FUTURE_TIMEOUT)
            assert server.stats().n_failed == 4


class TestDispatchLanes:
    def multi_registry(self, compiled, tmp_path, n_models=3):
        registry = ModelRegistry(tmp_path / "models-lanes")
        keys = [registry.save(compiled)]
        for tau in (2.0, 3.0)[:n_models - 1]:
            keys.append(registry.save(compile_model(
                small_model(tau=tau), dt=1e-9, input_range=(0.0, 1.0))))
        return registry, keys

    def test_each_model_pinned_to_its_own_lane(self, compiled, tmp_path):
        registry, keys = self.multi_registry(compiled, tmp_path)
        policy = ServePolicy(max_batch=4, max_wait=1e-3, n_lanes=3)
        batch = request_batch(8, 32)
        with ModelServer(registry, policy) as server:
            outputs = {key: server.serve(key, batch) for key in keys}
            stats = server.stats()
        assert stats.n_lanes == 3
        lanes = {key: stats.per_model[key].lane for key in keys}
        assert sorted(lanes.values()) == [0, 1, 2]
        models = {keys[0]: compiled}
        for key in keys:
            expected = models.get(key)
            if expected is None:
                expected = registry.load(key)
            np.testing.assert_array_equal(outputs[key],
                                          expected.evaluate(batch))

    def test_more_models_than_lanes_share_least_loaded(self, compiled,
                                                       tmp_path):
        registry, keys = self.multi_registry(compiled, tmp_path)
        policy = ServePolicy(max_batch=4, max_wait=1e-3, n_lanes=2)
        with ModelServer(registry, policy) as server:
            for key in keys:
                server.serve(key, request_batch(4, 16))
            stats = server.stats()
        lanes = [stats.per_model[key].lane for key in keys]
        assert sorted(set(lanes)) == [0, 1]      # both lanes used, none idle
        assert stats.n_lanes == 2

    def test_single_lane_serialises_all_models(self, compiled, tmp_path):
        registry, keys = self.multi_registry(compiled, tmp_path)
        policy = ServePolicy(max_batch=4, max_wait=1e-3, n_lanes=1)
        batch = request_batch(8, 24)
        with ModelServer(registry, policy) as server:
            outputs = {key: server.serve(key, batch) for key in keys}
            stats = server.stats()
        assert stats.n_lanes == 1
        assert all(model.lane == 0 for model in stats.per_model.values())
        np.testing.assert_array_equal(outputs[keys[0]],
                                      compiled.evaluate(batch))

    def test_lanes_overlap_with_sharded_pool(self, compiled, tmp_path):
        """Two models, two lanes, two workers: bitwise-equal under overlap."""
        registry, keys = self.multi_registry(compiled, tmp_path, n_models=2)
        policy = ServePolicy(max_batch=8, max_wait=2e-3, n_lanes=2,
                             n_workers=2)
        rows = request_batch(32, 48)
        with ModelServer(registry, policy) as server:
            futures = [server.submit(keys[i % 2], rows[i]) for i in range(32)]
            outputs = [future.result(FUTURE_TIMEOUT) for future in futures]
            stats = server.stats()
        other = registry.load(keys[1])
        for i, output in enumerate(outputs):
            expected = compiled if i % 2 == 0 else other
            np.testing.assert_array_equal(output, expected.evaluate(rows[i]))
        assert {model.lane for model in stats.per_model.values()} == {0, 1}
        assert stats.n_failed == 0

    def test_one_lanes_failure_leaves_other_models_serving(self, compiled,
                                                           tmp_path):
        """Exhausted retries on one model fail its requests only; the other
        lane keeps serving."""
        registry, keys = self.multi_registry(compiled, tmp_path, n_models=2)
        policy = ServePolicy(max_batch=4, max_wait=60.0, n_lanes=2,
                             n_workers=2, max_retries=0)
        with ModelServer(registry, policy,
                         fault_injection={keys[1]}) as server:
            doomed = [server.submit(keys[1], np.full(16, 0.5))
                      for _ in range(4)]
            for future in doomed:
                with pytest.raises(ServeError, match="max_retries=0"):
                    future.result(FUTURE_TIMEOUT)
            good = server.serve(keys[0], request_batch(4, 16))
            stats = server.stats()
        np.testing.assert_array_equal(good,
                                      compiled.evaluate(request_batch(4, 16)))
        assert stats.per_model[keys[1]].n_failed == 4
        assert stats.per_model[keys[0]].n_failed == 0
        assert stats.per_model[keys[0]].n_completed == 4


class TestServeStatsSafety:
    def test_fresh_server_stats_are_nan_safe(self, registry):
        """Querying a server before its first batch must not trip."""
        with ModelServer(registry, ServePolicy(max_batch=4,
                                               max_wait=1e-3)) as server:
            stats = server.stats()
        assert stats.n_batches == 0 and stats.mean_batch_size == 0.0
        for summary in (stats.queue_latency, stats.e2e_latency):
            assert summary.count == 0
            for value in (summary.mean, summary.p50, summary.p99, summary.max):
                assert value == 0.0 and np.isfinite(value)
            assert summary.percentile(99.9) == 0.0
        described = stats.describe()
        assert "0 batch(es)" in described and "nan" not in described.lower()
        payload = stats.as_dict()
        assert payload["per_model"] == {} and payload["n_lanes"] == 1

    def test_latency_summary_ignores_non_finite_samples(self):
        summary = LatencySummary.of([np.nan, 1.0, np.inf, 3.0])
        assert summary.count == 2
        assert summary.p50 == pytest.approx(2.0)
        assert np.isfinite(summary.p99)
        empty = LatencySummary.of([np.nan, np.inf])
        assert empty.count == 0 and empty.p99 == 0.0

    def test_percentile_helper_interpolates(self):
        summary = LatencySummary.of(np.linspace(0.0, 1.0, 101))
        assert summary.percentile(50.0) == pytest.approx(summary.p50)
        assert summary.percentile(99.0) == pytest.approx(summary.p99)
        assert summary.percentile(100.0) == pytest.approx(summary.max)
        assert summary.percentile(70.0) == pytest.approx(0.6, abs=0.1)

    def test_low_percentiles_use_true_minimum(self):
        """Satellite: q < 50 must interpolate from the window min, not
        collapse onto ~p50 (the old lowest knot was min(p50, max))."""
        summary = LatencySummary.of(np.linspace(2.0, 4.0, 101))
        assert summary.min == pytest.approx(2.0)
        assert summary.percentile(0.0) == pytest.approx(2.0)
        assert summary.percentile(10.0) == pytest.approx(2.2, abs=0.05)
        assert summary.percentile(25.0) == pytest.approx(2.5, abs=0.05)
        # Regression shape: the old code answered ~p50 (3.0) for q=10.
        assert summary.percentile(10.0) < 0.9 * summary.p50
        assert summary.as_dict()["min_s"] == summary.min

    def test_empty_summary_min_is_zero_safe(self):
        empty = LatencySummary.of([])
        assert empty.min == 0.0
        assert empty.percentile(0.0) == 0.0
        assert empty.as_dict()["min_s"] == 0.0

    def test_per_model_describe_breakdown(self, registry, key):
        with ModelServer(registry, ServePolicy(max_batch=4,
                                               max_wait=1e-3)) as server:
            server.serve(key, request_batch(4, 16))
            stats = server.stats()
        model = stats.per_model[key]
        assert model.n_completed == 4 and model.lane == 0
        assert model.key == key
        line = model.describe()
        assert key[:12] in line and "lane 0" in line
        assert key[:12] in stats.describe()
        assert key[:12] not in stats.describe(per_model=False)


class TestServePolicyValidation:
    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"max_wait": -1.0},
        {"max_request_samples": 0},
        {"max_queue_depth": 0},
        {"n_workers": -1},
        {"n_lanes": 0},
        {"max_connections": 0},
        {"max_inflight_per_conn": 0},
        {"max_frame_bytes": 8},
        {"max_retries": -1},
        {"segment_bytes": -1},
        {"job_timeout": -1.0},
        {"cache_bytes": -1},
    ])
    def test_bad_policies_rejected(self, kwargs):
        with pytest.raises(ServeError):
            ServePolicy(**kwargs).validate()
