"""Tests for Jacobian snapshots, state estimators and the TFT transform."""

import numpy as np
import pytest

from repro.circuit import Circuit, Sine, TransientOptions, ac_analysis, frequency_grid, transient_analysis
from repro.circuits import build_common_source_amplifier, build_rc_ladder
from repro.exceptions import ReproError
from repro.tft import (
    SnapshotTrajectory,
    StateEstimator,
    TFTDataset,
    default_frequency_grid,
    extract_tft,
)


@pytest.fixture(scope="module")
def rc_trajectory():
    circuit = build_rc_ladder(2, input_waveform=Sine(0.5, 0.3, 1e6))
    system = circuit.build()
    trajectory = SnapshotTrajectory(system)
    transient_analysis(system, TransientOptions(t_stop=1e-6, dt=10e-9),
                       snapshot_callback=trajectory)
    return system, trajectory


@pytest.fixture(scope="module")
def cs_tft():
    circuit = build_common_source_amplifier(input_waveform=Sine(0.55, 0.15, 1e5))
    system = circuit.build()
    trajectory = SnapshotTrajectory(system)
    transient_analysis(system, TransientOptions(t_stop=10e-6, dt=0.1e-6),
                       snapshot_callback=trajectory)
    tft = extract_tft(trajectory, frequency_grid(1e4, 1e11, 3), max_snapshots=60)
    return system, tft


class TestSnapshotTrajectory:
    def test_records_every_step(self, rc_trajectory):
        system, trajectory = rc_trajectory
        assert len(trajectory) > 50

    def test_times_monotonic(self, rc_trajectory):
        _, trajectory = rc_trajectory
        assert np.all(np.diff(trajectory.times) > 0)

    def test_input_excursion(self, rc_trajectory):
        _, trajectory = rc_trajectory
        lo, hi = trajectory.input_excursion()
        assert lo == pytest.approx(0.2, abs=0.02)
        assert hi == pytest.approx(0.8, abs=0.02)

    def test_subsample_reduces_count(self, rc_trajectory):
        _, trajectory = rc_trajectory
        thinned = trajectory.subsample(20)
        assert len(thinned) <= 20
        assert thinned[0].time == trajectory[0].time

    def test_subsample_too_small_rejected(self, rc_trajectory):
        _, trajectory = rc_trajectory
        with pytest.raises(ReproError):
            trajectory.subsample(1)

    def test_subsample_by_time_covers_nonuniform_grid(self):
        """Adaptive grids cluster steps on edges; time thinning must not."""
        circuit = build_rc_ladder(2, input_waveform=Sine(0.5, 0.3, 1e6))
        system = circuit.build()
        trajectory = SnapshotTrajectory(system)
        transient_analysis(
            system, TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True),
            snapshot_callback=trajectory)
        steps = np.diff(trajectory.times)
        assert steps.max() > 2.0 * steps.min()    # grid really is non-uniform
        thinned = trajectory.subsample(10, by="time")
        assert 2 <= len(thinned) <= 10
        # Selected times track the uniform targets within one local step.
        targets = np.linspace(trajectory.times[0], trajectory.times[-1],
                              len(thinned))
        assert np.all(np.abs(thinned.times - targets) <= steps.max())
        # Index thinning on the same trajectory oversamples the dense region.
        by_index = trajectory.subsample(10, by="index")
        assert np.max(np.diff(by_index.times)) >= np.max(np.diff(thinned.times))

    def test_subsample_unknown_axis_rejected(self, rc_trajectory):
        _, trajectory = rc_trajectory
        with pytest.raises(ReproError, match="subsample axis"):
            trajectory.subsample(10, by="steps")

    def test_sorted_by_input(self, rc_trajectory):
        _, trajectory = rc_trajectory
        ordered = trajectory.sorted_by_input()
        values = ordered.inputs()[:, 0]
        assert np.all(np.diff(values) >= 0)

    def test_describe_mentions_snapshot_count(self, rc_trajectory):
        _, trajectory = rc_trajectory
        assert str(len(trajectory)) in trajectory.describe()


class TestStateEstimator:
    def test_default_is_one_dimensional(self):
        assert StateEstimator().dimension == 1

    def test_embed_returns_input_itself(self):
        est = StateEstimator()
        t = np.linspace(0, 1e-6, 11)
        u = np.sin(2 * np.pi * 1e6 * t)
        x = est.embed(t, u)
        assert x.shape == (11, 1)
        assert np.allclose(x[:, 0], u)

    def test_delays_add_dimensions(self):
        est = StateEstimator(delays=(1e-9, 2e-9))
        assert est.dimension == 3

    def test_delayed_coordinate_is_shifted_input(self):
        est = StateEstimator(delays=(0.1,))
        t = np.linspace(0, 1.0, 101)
        u = t.copy()
        x = est.embed(t, u)
        assert np.allclose(x[50, 1], u[40], atol=1e-9)

    def test_delays_must_be_positive(self):
        with pytest.raises(ReproError):
            StateEstimator(delays=(-1e-9,))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReproError):
            StateEstimator().embed(np.zeros(5), np.zeros(6))

    def test_delay_line_streaming_matches_batch(self):
        est = StateEstimator(delays=(0.2,))
        t = np.linspace(0, 2.0, 41)
        u = np.sin(t)
        batch = est.embed(t, u)
        line = est.delay_line(u[0])
        streamed = np.array([line.push(ti, ui) for ti, ui in zip(t, u)])
        assert np.allclose(streamed[:, 0], batch[:, 0])
        assert np.allclose(streamed[10:, 1], batch[10:, 1], atol=0.05)


class TestExtractTFT:
    def test_shapes(self, cs_tft):
        _, tft = cs_tft
        assert tft.response.shape == (tft.n_states, tft.n_frequencies, 1, 1)
        assert tft.dc_response.shape == (tft.n_states, 1, 1)
        assert tft.states.shape == (tft.n_states, 1)

    def test_linear_circuit_has_flat_state_axis(self, rc_trajectory):
        system, trajectory = rc_trajectory
        tft = extract_tft(trajectory, frequency_grid(1e4, 1e9, 3), max_snapshots=40)
        response = tft.siso_response()
        spread = np.max(np.abs(response - response[0][None, :]))
        assert spread < 1e-9

    def test_matches_ac_analysis_at_dc_operating_point(self):
        # For a circuit held at DC, the TFT of the first snapshot must equal
        # the small-signal AC response about that operating point.
        circuit = build_common_source_amplifier(input_waveform=0.55)
        system = circuit.build()
        trajectory = SnapshotTrajectory(system)
        transient_analysis(system, TransientOptions(t_stop=1e-9, dt=1e-10),
                           snapshot_callback=trajectory)
        freqs = frequency_grid(1e5, 1e10, 3)
        tft = extract_tft(trajectory, freqs)
        ac = ac_analysis(system, freqs)
        assert np.allclose(tft.siso_response()[0], ac.transfer(), rtol=1e-6)

    def test_dc_gain_matches_low_frequency_response(self, cs_tft):
        _, tft = cs_tft
        low_freq = tft.siso_response()[:, 0]
        assert np.allclose(low_freq.real, tft.siso_dc().real, rtol=1e-2, atol=1e-3)

    def test_nonlinear_circuit_gain_varies_with_state(self, cs_tft):
        _, tft = cs_tft
        dc_gain = np.abs(tft.siso_dc())
        assert dc_gain.max() / max(dc_gain.min(), 1e-12) > 1.5

    def test_empty_trajectory_rejected(self):
        circuit = build_rc_ladder(1)
        system = circuit.build()
        with pytest.raises(ReproError):
            extract_tft(SnapshotTrajectory(system))

    def test_default_frequency_grid_span(self):
        grid = default_frequency_grid()
        assert grid[0] == pytest.approx(1.0)
        assert grid[-1] == pytest.approx(10e9)

    def test_outputs_recorded(self, cs_tft):
        _, tft = cs_tft
        assert tft.outputs is not None
        assert tft.outputs.shape[0] == tft.n_states


class TestTFTDataset:
    def test_gain_db_and_phase_shapes(self, cs_tft):
        _, tft = cs_tft
        assert tft.gain_db().shape == (tft.n_states, tft.n_frequencies)
        assert tft.phase_deg().shape == (tft.n_states, tft.n_frequencies)

    def test_dynamic_response_is_zero_at_dc(self, cs_tft):
        _, tft = cs_tft
        dynamic = tft.dynamic_response()
        assert np.max(np.abs(dynamic[:, 0])) < 1e-2 * np.max(np.abs(tft.siso_dc()))

    def test_sorted_by_state(self, cs_tft):
        _, tft = cs_tft
        ordered = tft.sorted_by_state()
        assert np.all(np.diff(ordered.state_axis()) >= 0)

    def test_subsample_states(self, cs_tft):
        _, tft = cs_tft
        small = tft.subsample_states(10)
        assert small.n_states <= 10
        assert small.n_frequencies == tft.n_frequencies

    def test_restrict_frequencies(self, cs_tft):
        _, tft = cs_tft
        band = tft.restrict_frequencies(1e6, 1e9)
        assert band.frequencies.min() >= 1e6
        assert band.frequencies.max() <= 1e9
        assert band.n_states == tft.n_states

    def test_restrict_frequencies_empty_band_rejected(self, cs_tft):
        _, tft = cs_tft
        with pytest.raises(ReproError):
            tft.restrict_frequencies(1e15, 1e16)

    def test_save_and_load_roundtrip(self, cs_tft, tmp_path):
        _, tft = cs_tft
        path = tmp_path / "tft.npz"
        tft.save(path)
        loaded = TFTDataset.load(path)
        assert loaded.n_states == tft.n_states
        assert np.allclose(loaded.response, tft.response)
        assert np.allclose(loaded.states, tft.states)
        assert loaded.input_names == tft.input_names

    def test_describe_contains_shape(self, cs_tft):
        _, tft = cs_tft
        text = tft.describe()
        assert str(tft.n_states) in text
