"""Tests of the LTE-controlled adaptive time stepping and the step machinery.

Covers the adaptive controller (accuracy vs tight fixed-dt references on the
buffer and diode-limiter families, step savings, rejection bookkeeping), the
end-of-interval snap of the fixed-step path, the step-rejection machinery
(dt halving down to ``min_dt``, predictor-overshoot retry, factor-cache
invalidation after rejection) and the per-block drift metric wiring.
"""

import numpy as np
import pytest

import repro.circuit.transient as transient_mod
from repro.circuit import Sine, TransientOptions, transient_analysis
from repro.circuit.newton import NewtonResult
from repro.circuit.waveforms import BitPattern, Pulse, prbs_bits
from repro.circuits import build_diode_limiter, build_output_buffer, build_rc_ladder
from repro.circuits.buffer import buffer_training_waveform
from repro.exceptions import ConvergenceError


def _rel_rmse(fine, adaptive):
    """Solver error of the adaptive run against a dense fixed-dt reference.

    Compared at the adaptive solver's own accepted points: the dense
    reference interpolates accurately onto them, whereas interpolating the
    coarse adaptive grid would measure resampling error, not solver error.
    """
    reference = fine.resample(adaptive.times)
    return (np.sqrt(np.mean((adaptive.outputs[:, 0] - reference) ** 2))
            / np.sqrt(np.mean(np.square(reference))))


class TestEndOfIntervalSnap:
    def test_divisible_span_lands_exactly_without_sliver_step(self):
        """Float accumulation of t += dt must not leave a near-zero last step."""
        system = build_rc_ladder(3, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        result = transient_analysis(system, TransientOptions(t_stop=5e-6, dt=1e-8))
        assert result.times[-1] == 5e-6           # exactly, not approximately
        assert result.n_points == 501             # 500 steps + initial point
        assert np.diff(result.times).min() > 0.5e-8

    def test_non_divisible_span_snaps_final_partial_step(self):
        system = build_rc_ladder(3, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        # 100.5 nominal steps: the last step is the half-step remainder.
        result = transient_analysis(system, TransientOptions(t_stop=1.005e-6, dt=1e-8))
        assert result.times[-1] == 1.005e-6
        diffs = np.diff(result.times)
        assert diffs.min() == pytest.approx(0.5e-8, rel=1e-9)
        assert diffs.max() <= 1e-8 * 1.01

    def test_adaptive_run_snaps_onto_t_stop(self):
        system = build_rc_ladder(3, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        result = transient_analysis(
            system, TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True))
        assert result.times[-1] == 1e-6

    def test_legacy_assembly_shares_the_snap_fix(self):
        system = build_rc_ladder(2, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        result = transient_analysis(
            system, TransientOptions(t_stop=5e-7, dt=1e-8, assembly="legacy"))
        assert result.times[-1] == 5e-7
        assert np.diff(result.times).min() > 0.5e-8


class TestAdaptiveAccuracy:
    def test_rc_ladder_matches_tight_fixed_grid_with_fewer_steps(self):
        system = build_rc_ladder(3, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        fine = transient_analysis(system, TransientOptions(t_stop=1e-6, dt=2.5e-10))
        adaptive = transient_analysis(
            system, TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True))
        assert adaptive.accepted_steps < fine.accepted_steps / 10
        assert _rel_rmse(fine, adaptive) < 1e-3

    def test_diode_limiter_bitpattern_agreement(self):
        """Strongly nonlinear clipping + spectrally rich stimulus."""
        wave = BitPattern(bits=prbs_bits(12), bit_rate=1e8, low=-0.8, high=0.8)
        system = build_diode_limiter(input_waveform=wave).build()
        common = dict(t_stop=12e-8, dt=1e-8 / 64)
        fine = transient_analysis(system, TransientOptions(**common))
        adaptive = transient_analysis(
            system, TransientOptions(adaptive=True, max_dt_factor=50.0, **common))
        assert adaptive.accepted_steps < fine.accepted_steps / 3
        assert adaptive.lte_rejections > 0        # the edges exercise rejection
        assert _rel_rmse(fine, adaptive) < 1e-3

    def test_buffer_family_agreement(self):
        """The paper's buffer under its sine training stimulus."""
        waveform = buffer_training_waveform()
        system = build_output_buffer(input_waveform=waveform).build()
        period = 1.0 / waveform.frequency
        common = dict(t_stop=period / 8, dt=period / 1200)
        fine = transient_analysis(system, TransientOptions(**common))
        adaptive = transient_analysis(
            system, TransientOptions(adaptive=True, **common))
        assert adaptive.accepted_steps < fine.accepted_steps
        assert _rel_rmse(fine, adaptive) < 1e-3

    def test_backward_euler_controller(self):
        system = build_rc_ladder(3, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        fine = transient_analysis(
            system, TransientOptions(t_stop=1e-6, dt=2.5e-10, method="backward_euler"))
        adaptive = transient_analysis(
            system, TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True,
                                     method="backward_euler"))
        assert adaptive.accepted_steps < fine.accepted_steps
        # BE is first order: compare against its own fine grid, looser bound.
        assert _rel_rmse(fine, adaptive) < 5e-3

    def test_breakpoints_hit_exactly_on_pulse_corners(self):
        """Accepted steps never straddle an input transition (ROADMAP item)."""
        wave = Pulse(initial=0.3, pulsed=0.8, delay=5e-8, rise=2e-8, fall=2e-8,
                     width=2e-7, period=5e-7)
        system = build_rc_ladder(3, input_waveform=wave).build()
        options = TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True,
                                   max_dt_factor=1000.0)
        result = transient_analysis(system, options)
        corners = system.waveform_breakpoints(0.0, options.t_stop)
        assert corners.size == 8                    # 4 corners x 2 periods
        for corner in corners:
            assert np.min(np.abs(result.times - corner)) == 0.0, (
                f"corner at {corner:.3e}s straddled")

    def test_breakpoint_cap_catches_what_max_dt_alone_misses(self):
        """With a huge max_dt_factor the controller would sail across a
        pulse; the breakpoint cap forces a landing and restores accuracy."""
        wave = Pulse(initial=0.3, pulsed=0.8, delay=2e-7, rise=1e-8, fall=1e-8,
                     width=5e-8, period=1e-3)       # one isolated pulse
        system = build_rc_ladder(3, input_waveform=wave).build()
        common = dict(t_stop=5e-7, dt=1e-9, adaptive=True, max_dt_factor=1000.0)
        fine = transient_analysis(system, TransientOptions(t_stop=5e-7, dt=2.5e-10))
        capped = transient_analysis(system, TransientOptions(**common))
        blind = transient_analysis(system, TransientOptions(breakpoints=False,
                                                            **common))
        corners = system.waveform_breakpoints(0.0, 5e-7)
        hit = [np.min(np.abs(capped.times - c)) == 0.0 for c in corners]
        missed = [np.min(np.abs(blind.times - c)) > 0.0 for c in corners]
        assert all(hit)
        assert any(missed)                          # the cap did real work
        # Within ~the controller tolerance despite 1000x steps on the flats.
        assert _rel_rmse(fine, capped) < 3e-3

    def test_bitpattern_transitions_are_landed_on(self):
        wave = BitPattern(bits=[0, 1, 0, 0, 1, 1, 0, 1], bit_rate=1e8,
                          low=-0.5, high=0.5)
        system = build_diode_limiter(input_waveform=wave).build()
        options = TransientOptions(t_stop=8e-8, dt=1e-10, adaptive=True,
                                   max_dt_factor=200.0)
        result = transient_analysis(system, options)
        corners = system.waveform_breakpoints(0.0, options.t_stop)
        assert corners.size > 0
        for corner in corners:
            assert np.min(np.abs(result.times - corner)) == 0.0

    def test_degenerate_corner_pairs_do_not_crash_the_controller(self):
        """A zero-rise pulse emits corner pairs 1e-18 apart; corners closer
        than min_dt ahead must be skipped, not clamped to (a ~1e-18 step
        would scale the Jacobian by 2/dt ~ 1e18 and abort the run)."""
        wave = Pulse(initial=0.3, pulsed=0.8, delay=1e-7, rise=0.0, fall=0.0,
                     width=1e-7, period=1e-3)
        system = build_rc_ladder(2, input_waveform=wave).build()
        result = transient_analysis(system, TransientOptions(
            t_stop=4e-7, dt=1e-9, adaptive=True, max_dt_factor=100.0))
        assert result.times[-1] == 4e-7
        # Each degenerate pair is resolved to within its own (unresolvable)
        # 1e-18 width: one member is landed on exactly, its twin is skipped.
        corners = system.waveform_breakpoints(0.0, 4e-7)
        assert corners.size > 0
        for corner in corners:
            assert np.min(np.abs(result.times - corner)) <= 1e-17

    def test_fixed_step_path_ignores_breakpoints(self):
        """The fixed grid is bitwise what it always was — the cap is
        adaptive-only."""
        wave = Pulse(initial=0.3, pulsed=0.8, delay=5.5e-8, rise=1e-8,
                     fall=1e-8, width=2e-8, period=2e-7)
        system = build_rc_ladder(2, input_waveform=wave).build()
        result = transient_analysis(system, TransientOptions(t_stop=4e-7, dt=1e-8))
        blind = transient_analysis(system, TransientOptions(t_stop=4e-7, dt=1e-8,
                                                            breakpoints=False))
        np.testing.assert_array_equal(result.times, blind.times)
        np.testing.assert_allclose(np.diff(result.times), np.full(40, 1e-8),
                                   rtol=1e-6)

    def test_option_validation(self):
        with pytest.raises(ValueError, match="LTE tolerance"):
            TransientOptions(adaptive=True, lte_rel_tol=0.0,
                             lte_abs_tol=0.0).validate()
        with pytest.raises(ValueError, match="min_shrink"):
            TransientOptions(adaptive=True, min_shrink=1.5).validate()
        with pytest.raises(ValueError, match="max_growth"):
            TransientOptions(adaptive=True, max_growth=0.5).validate()
        with pytest.raises(ValueError, match="max_dt_factor"):
            TransientOptions(adaptive=True, max_dt_factor=0.1).validate()


class TestStepRejectionMachinery:
    def test_newton_failure_halves_dt_down_to_min_dt_and_raises(self, monkeypatch):
        """Persistent non-convergence must end in ConvergenceError at min_dt."""
        def never_converges(f, guess, options, linear_solver=None):
            return NewtonResult(np.array(guess, dtype=float), False, 1, 1.0)

        monkeypatch.setattr(transient_mod, "newton_solve", never_converges)
        system = build_rc_ladder(2, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        with pytest.raises(ConvergenceError, match="failed at"):
            transient_analysis(
                system, TransientOptions(t_stop=1e-6, dt=1e-8, min_dt_factor=1e-2))

    def test_predictor_overshoot_retries_from_accepted_solution(self, monkeypatch):
        """A failed predicted-guess solve retries from the last accepted v."""
        real = transient_mod.newton_solve
        state = {"calls": 0, "failed_guess": None, "retry_guess": None}

        def flaky(f, guess, options, linear_solver=None):
            state["calls"] += 1
            if state["calls"] == 3:               # first solve of step 3 (predicted)
                state["failed_guess"] = np.array(guess, copy=True)
                return NewtonResult(np.array(guess, dtype=float), False, 1, 1.0)
            if state["failed_guess"] is not None and state["retry_guess"] is None:
                state["retry_guess"] = np.array(guess, copy=True)
            return real(f, guess, options, linear_solver=linear_solver)

        system = build_rc_ladder(2, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        options = TransientOptions(t_stop=2e-7, dt=1e-8)
        clean = transient_analysis(system, options)
        monkeypatch.setattr(transient_mod, "newton_solve", flaky)
        result = transient_analysis(system, options)

        # The retry started from the previously accepted solution, which is
        # the second accepted state, not from the (rejected) predicted guess.
        assert state["retry_guess"] is not None
        np.testing.assert_array_equal(state["retry_guess"], clean.states[2])
        assert not np.array_equal(state["retry_guess"], state["failed_guess"])
        # A successful retry is not a rejected step and costs no accuracy.
        assert result.rejected_steps == 0
        np.testing.assert_allclose(result.outputs, clean.outputs, rtol=0, atol=1e-9)

    def test_rejection_invalidates_factor_cache(self, monkeypatch):
        """After a rejected step the stale-dt LU factors must be dropped."""
        created = []
        original_cache = transient_mod.FactorizationCache

        class SpyCache(original_cache):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.invalidations = 0
                created.append(self)

            def invalidate(self):
                self.invalidations += 1
                super().invalidate()

        real = transient_mod.newton_solve
        state = {"calls": 0}

        def flaky(f, guess, options, linear_solver=None):
            state["calls"] += 1
            if state["calls"] in (3, 4):          # predicted guess AND retry fail
                return NewtonResult(np.array(guess, dtype=float), False, 1, 1.0)
            return real(f, guess, options, linear_solver=linear_solver)

        system = build_rc_ladder(2, input_waveform=Sine(0.5, 0.2, 1e6)).build()
        options = TransientOptions(t_stop=2e-7, dt=1e-8)
        monkeypatch.setattr(transient_mod, "FactorizationCache", SpyCache)
        baseline = transient_analysis(system, options)
        clean_invalidations = created[-1].invalidations
        monkeypatch.setattr(transient_mod, "newton_solve", flaky)
        result = transient_analysis(system, options)

        assert result.rejected_steps == 1
        assert created[-1].invalidations > clean_invalidations
        span = float(baseline.outputs.max() - baseline.outputs.min()) or 1.0
        np.testing.assert_allclose(result.outputs[-1], baseline.outputs[-1],
                                   rtol=0, atol=1e-4 * span)

    def test_lte_rejections_counted_as_rejected_steps(self):
        wave = BitPattern(bits=prbs_bits(8), bit_rate=1e8, low=-0.8, high=0.8)
        system = build_diode_limiter(input_waveform=wave).build()
        result = transient_analysis(
            system, TransientOptions(t_stop=8e-8, dt=1e-8 / 64, adaptive=True,
                                     max_dt_factor=50.0))
        assert result.lte_rejections > 0
        assert result.rejected_steps >= result.lte_rejections


class TestPerBlockModifiedNewton:
    def test_reuse_tolerance_slashes_factorisations_at_matching_accuracy(self):
        """The per-block drift metric makes modified Newton actually pay off."""
        created = []
        original = transient_mod.FactorizationCache

        def spy(*args, **kwargs):
            cache = original(*args, **kwargs)
            created.append(cache)
            return cache

        system = build_diode_limiter(input_waveform=Sine(0.0, 0.9, 1e6)).build()
        common = dict(t_stop=2e-6, dt=2e-9)
        transient_mod.FactorizationCache = spy
        try:
            exact = transient_analysis(
                system, TransientOptions(jacobian_reuse_tol=0.0, **common))
            exact_cache = created[-1]
            modified = transient_analysis(
                system, TransientOptions(jacobian_reuse_tol=0.05, **common))
            modified_cache = created[-1]
        finally:
            transient_mod.FactorizationCache = original

        # The compiled engine supplied a nonlinear-entry drift mask.
        assert exact_cache.drift_indices is not None
        assert exact_cache.drift_indices.size > 0
        # The diode entries move every step, so exact reuse never triggers;
        # the per-block 5% band reuses factors for the vast majority of steps.
        assert modified_cache.factorizations < exact_cache.factorizations / 10
        span = float(exact.outputs.max() - exact.outputs.min()) or 1.0
        np.testing.assert_allclose(modified.outputs, exact.outputs,
                                   rtol=0, atol=1e-5 * span)

    def test_legacy_assembly_has_no_drift_mask(self):
        from repro.circuit.assembly import LegacyEngine
        system = build_rc_ladder(2).build()
        assert LegacyEngine(system).nonlinear_positions is None

    def test_compiled_linear_circuit_has_empty_mask(self):
        system = build_rc_ladder(2).build()
        engine = system.compile("dense")
        assert engine.nonlinear_positions.size == 0
