"""Tests of the push-telemetry stack: broker, events, run store, wiring.

The broker tests exercise the concurrency contract directly (slow and
raising subscribers must never hurt the publisher).  The integration tests
drive a real :class:`~repro.serve.ModelServer` — and, for the wire frames, a
real :class:`~repro.gateway.Gateway` over live sockets — and assert the
trace-id chain, the crash/respawn event flow and the record → replay loop.
"""

import asyncio
import json
import os
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.exceptions import RunStoreError
from repro.gateway import AsyncGatewayClient, Gateway, GatewayClient, protocol
from repro.runtime import ModelRegistry, compile_model, content_hash
from repro.serve import ModelServer, ServePolicy
from repro.sweep import Scenario, SweepOptions, run_sweep
from repro.telemetry import (
    BatchClosed,
    BatchServed,
    ChunkStreamError,
    ConnectionOpened,
    RequestRejected,
    RequestSubmitted,
    RunRecorder,
    RunStore,
    ScenarioCompleted,
    SweepCompleted,
    SweepStarted,
    TopicBroker,
    WorkerCrashed,
    WorkerRespawned,
    event_from_dict,
    event_topics,
)
from test_serve import small_model

FUTURE_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def compiled():
    return compile_model(small_model(), dt=1e-9, input_range=(0.0, 1.0))


@pytest.fixture()
def registry(compiled, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.save(compiled)
    return registry


@pytest.fixture()
def key(compiled):
    return content_hash(compiled)


def request_batch(n_rows: int = 16, n_steps: int = 64, seed: int = 0):
    rng = np.random.default_rng(seed)
    return 0.5 + 0.3 * rng.standard_normal((n_rows, n_steps))


def drain_until(subscription, predicate, timeout: float = 10.0) -> list:
    """Collect events until ``predicate(events)`` holds (fail on timeout)."""
    events = []
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        event = subscription.get(timeout=0.1)
        if event is not None:
            events.append(event)
        if predicate(events):
            return events
    raise AssertionError(
        f"condition not met within {timeout}s; saw {[type(e).__name__ for e in events]}")


# ------------------------------------------------------------------- broker
class TestTopicBroker:
    def test_no_subscriber_publish_is_a_cheap_no_op(self):
        broker = TopicBroker()
        assert not broker
        assert broker.publish(WorkerRespawned(worker_index=0)) == 0

    def test_events_delivered_in_order_with_types_intact(self):
        broker = TopicBroker()
        with broker.subscribe() as sub:
            assert broker
            for index in range(5):
                broker.publish(WorkerRespawned(worker_index=index))
            got = [sub.get(timeout=1.0) for _ in range(5)]
        assert [e.worker_index for e in got] == list(range(5))
        assert all(isinstance(e, WorkerRespawned) for e in got)

    def test_topic_filter_delivers_only_named_topics(self):
        broker = TopicBroker()
        with broker.subscribe(topics=["WorkerCrashed"]) as sub:
            broker.publish(WorkerRespawned(worker_index=1))
            broker.publish(WorkerCrashed(worker_index=2))
            event = sub.get(timeout=1.0)
            assert isinstance(event, WorkerCrashed)
            assert len(sub) == 0

    def test_slow_subscriber_drops_oldest_without_blocking_publisher(self):
        """Satellite: a full queue costs the laggard history — counted in
        ``n_dropped`` — never publisher latency."""
        broker = TopicBroker()
        n_events = 20_000
        with broker.subscribe(maxsize=8) as sub:
            start = time.perf_counter()
            for index in range(n_events):
                broker.publish(WorkerRespawned(worker_index=index))
            elapsed = time.perf_counter() - start
            # Never-blocking publish: 20k events through a jammed subscriber
            # in well under a second (generous bound for loaded CI).
            assert elapsed < 5.0
            assert sub.n_dropped == n_events - 8
            assert sub.n_dropped + len(sub) == n_events
            # Drop-oldest: the survivors are the *newest* events.
            survivors = [e.worker_index for e in sub.drain()]
            assert survivors == list(range(n_events - 8, n_events))

    def test_publisher_survives_subscriber_raising_mid_delivery(self):
        """Satellite: a wakeup callback that raises must not break publish
        or starve the other subscribers."""
        broker = TopicBroker()

        def bad_wakeup():
            raise RuntimeError("subscriber exploded")

        with broker.subscribe(wakeup=bad_wakeup) as bad, \
                broker.subscribe() as good:
            assert broker.publish(WorkerRespawned(worker_index=7)) == 2
            assert bad.get(timeout=1.0).worker_index == 7
            assert good.get(timeout=1.0).worker_index == 7

    def test_close_unsubscribes_and_unblocks_get(self):
        broker = TopicBroker()
        sub = broker.subscribe()
        waiter_result = []

        def waiter():
            waiter_result.append(sub.get(timeout=30.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.05)
        sub.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert waiter_result == [None]
        assert broker.n_subscribers == 0
        assert broker.publish(WorkerRespawned(worker_index=0)) == 0

    def test_iteration_drains_remaining_events_after_close(self):
        broker = TopicBroker()
        sub = broker.subscribe()
        for index in range(3):
            broker.publish(WorkerRespawned(worker_index=index))
        sub.close()
        assert [e.worker_index for e in sub] == [0, 1, 2]

    def test_wakeup_fires_only_on_empty_to_nonempty(self):
        broker = TopicBroker()
        wakeups = []
        sub = broker.subscribe(wakeup=lambda: wakeups.append(1))
        broker.publish(WorkerRespawned(worker_index=0))
        broker.publish(WorkerRespawned(worker_index=1))
        assert len(wakeups) == 1         # second publish found a non-empty queue
        sub.drain()
        broker.publish(WorkerRespawned(worker_index=2))
        assert len(wakeups) == 2
        sub.close()


# ------------------------------------------------------------------- events
class TestEventSchema:
    def test_as_dict_round_trips_through_json(self):
        event = BatchServed(key="ab", n_steps=64, n_rows=3, ok=True,
                            duration_s=0.5, trace_ids=(1, 2, 3))
        payload = json.loads(json.dumps(event.as_dict()))
        back = event_from_dict(payload)
        assert back == event
        assert back.trace_ids == (1, 2, 3)
        assert payload["event"] == "BatchServed"
        assert payload["schema"] == 1

    def test_unknown_event_name_raises_key_error(self):
        with pytest.raises(KeyError, match="NoSuchEvent"):
            event_from_dict({"event": "NoSuchEvent", "schema": 1})

    def test_unknown_fields_are_ignored_for_forward_compat(self):
        payload = {"event": "WorkerRespawned", "schema": 1,
                   "worker_index": 4, "t": 1.0, "added_in_v9": "x"}
        assert event_from_dict(payload).worker_index == 4

    def test_topic_registry_covers_the_instrumented_events(self):
        topics = event_topics()
        for name in ("RequestSubmitted", "BatchClosed", "BatchServed",
                     "WorkerCrashed", "WorkerRespawned", "CacheEvicted",
                     "ConnectionOpened", "ConnectionClosed", "ProtocolError",
                     "ChunkStreamError", "SweepStarted", "ScenarioCompleted",
                     "SweepCompleted"):
            assert name in topics


# ---------------------------------------------------------------- run store
class TestRunStore:
    def test_round_trip_events_and_snapshots(self, tmp_path):
        path = tmp_path / "runs.db"
        with RunStore(path) as store:
            run_id = store.open_run("unit", meta={"who": "test"})
            store.record_event(run_id, WorkerRespawned(worker_index=3))
            store.record_events(run_id, [
                RequestSubmitted(key="ab", n_steps=64, trace_id=1),
                RequestSubmitted(key="ab", n_steps=64, trace_id=2),
            ])
            store.record_snapshot(run_id, {"n_completed": 5})
            store.close_run(run_id)
            run = store.get_run(run_id)
            assert run.closed and run.name == "unit"
            assert run.meta["who"] == "test"
            assert len(store.events(run_id)) == 3
            assert store.events(run_id, kind="RequestSubmitted")[0]["trace_id"] == 1
            assert store.snapshots(run_id) == [{"n_completed": 5}]

    def test_bitwise_round_trip_through_a_fresh_process(self, tmp_path):
        """Satellite: payloads written here must read back bitwise-identical
        from a separate interpreter (canonical JSON, no per-process state)."""
        path = tmp_path / "runs.db"
        event = BatchServed(key="deadbeef", n_steps=96, n_rows=7, ok=True,
                            duration_s=0.125, trace_ids=(9, 10, 11))
        with RunStore(path) as store:
            run_id = store.open_run("xproc")
            store.record_event(run_id, event)
        script = (
            "import json, sys\n"
            "from repro.telemetry import RunStore, event_from_dict\n"
            "store = RunStore(sys.argv[1])\n"
            "payload = store.events(1)[0]\n"
            "event = event_from_dict(payload)\n"
            "print(json.dumps(payload, sort_keys=True, separators=(',', ':')))\n"
        )
        import repro
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p)
        out = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            capture_output=True, text=True, check=True, env=env)
        fresh_payload = json.loads(out.stdout.strip())
        assert event_from_dict(fresh_payload) == event
        canonical = json.dumps(event.as_dict(), sort_keys=True,
                               separators=(",", ":"))
        assert out.stdout.strip() == canonical

    def test_corrupted_database_fails_as_named_error(self, tmp_path):
        """Satellite: garbage on disk is a ``RunStoreError`` at open, not a
        latent sqlite exception at first use."""
        path = tmp_path / "corrupt.db"
        path.write_bytes(b"this is not a sqlite database at all\x00\xff" * 64)
        with pytest.raises(RunStoreError, match="cannot open run store"):
            RunStore(path)

    def test_closed_store_and_unknown_run_raise_named_errors(self, tmp_path):
        store = RunStore(tmp_path / "runs.db")
        with pytest.raises(RunStoreError, match="unknown run id"):
            store.get_run(999)
        store.close()
        with pytest.raises(RunStoreError, match="is closed"):
            store.open_run("late")

    def test_replay_schedule_preserves_order_and_relative_times(self, tmp_path):
        with RunStore(tmp_path / "runs.db") as store:
            run_id = store.open_run("sched")
            run = store.get_run(run_id)
            for index in range(5):
                event = RequestSubmitted(key="ab", n_steps=32,
                                         trace_id=index + 1)
                store.record_event(run_id, event)
            schedule = list(store.replay(run_id))
        assert [r.trace_id for r in schedule] == [1, 2, 3, 4, 5]
        assert all(r.key == "ab" and r.n_steps == 32 for r in schedule)
        t_rels = [r.t_rel for r in schedule]
        assert t_rels == sorted(t_rels)
        assert all(t >= 0.0 for t in t_rels)
        assert schedule[0].t_rel >= 0.0 and run.t_opened > 0.0


# ------------------------------------------------------- server integration
class TestServerTelemetry:
    def test_every_request_trace_id_spans_submit_close_serve(self, registry,
                                                             key):
        """Acceptance: each trace id appears in its RequestSubmitted, then in
        a BatchClosed and a BatchServed ``trace_ids`` tuple."""
        batch = request_batch(12, 48)
        policy = ServePolicy(max_batch=4, max_wait=1e-3, n_workers=1)
        with ModelServer(registry, policy) as server:
            with server.telemetry.subscribe(
                    topics=["RequestSubmitted", "BatchClosed",
                            "BatchServed"]) as sub:
                futures = [server.submit(key, row) for row in batch]
                for future in futures:
                    future.result(FUTURE_TIMEOUT)
                events = drain_until(
                    sub, lambda evs: sum(
                        len(e.trace_ids) for e in evs
                        if isinstance(e, BatchServed)) >= len(batch))
        submitted = [e for e in events if isinstance(e, RequestSubmitted)]
        closed_ids = {t for e in events if isinstance(e, BatchClosed)
                      for t in e.trace_ids}
        served = [e for e in events if isinstance(e, BatchServed)]
        served_ids = {t for e in served for t in e.trace_ids}
        assert len(submitted) == len(batch)
        trace_ids = {e.trace_id for e in submitted}
        assert len(trace_ids) == len(batch)           # unique per request
        assert trace_ids <= closed_ids
        assert trace_ids <= served_ids
        assert all(e.ok and e.duration_s > 0.0 for e in served)
        assert all(e.key == key for e in submitted)
        # Ordering: a request's submit event precedes its batch close.
        first_close = next(i for i, e in enumerate(events)
                           if isinstance(e, BatchClosed))
        early_submits = {e.trace_id for e in events[:first_close]
                        if isinstance(e, RequestSubmitted)}
        assert set(events[first_close].trace_ids) <= early_submits

    def test_rejection_publishes_named_reason(self, registry, key):
        policy = ServePolicy(max_batch=4, max_wait=1e-3, n_workers=1)
        with ModelServer(registry, policy) as server:
            with server.telemetry.subscribe(topics=["RequestRejected"]) as sub:
                with pytest.raises(Exception):
                    server.submit("no-such-model", np.full(16, 0.5))
                event = sub.get(timeout=5.0)
        assert isinstance(event, RequestRejected)
        assert event.reason == "unknown_key"

    def test_events_flow_across_worker_crash_and_respawn(self, registry,
                                                         compiled, key):
        """Satellite: a crash mid-batch emits WorkerCrashed + WorkerRespawned
        (with the batch's trace ids riding on the crash) and the stream keeps
        flowing for the retried work."""
        batch = request_batch(8, 32)
        policy = ServePolicy(max_batch=8, max_wait=60.0, n_workers=2)
        with ModelServer(registry, policy, fault_injection={key}) as server:
            with server.telemetry.subscribe() as sub:
                futures = [server.submit(key, row) for row in batch]
                results = np.vstack([f.result(FUTURE_TIMEOUT)
                                     for f in futures])
                events = drain_until(
                    sub, lambda evs: any(isinstance(e, WorkerCrashed)
                                         for e in evs)
                    and any(isinstance(e, WorkerRespawned) for e in evs)
                    and any(isinstance(e, BatchServed) and e.ok
                            for e in evs))
        np.testing.assert_array_equal(results, compiled.evaluate(batch))
        crashes = [e for e in events if isinstance(e, WorkerCrashed)]
        assert any(e.key == key for e in crashes)
        assert any(t for e in crashes for t in e.trace_ids)

    def test_stats_carry_snapshot_time_and_uptime(self, registry, key):
        """Satellite: ServeStats gains t_snapshot / uptime_s."""
        policy = ServePolicy(max_batch=4, max_wait=1e-3, n_workers=1)
        with ModelServer(registry, policy) as server:
            first = server.stats()
            time.sleep(0.05)
            second = server.stats()
        assert first.t_snapshot > 0.0
        assert second.t_snapshot > first.t_snapshot
        assert second.uptime_s > first.uptime_s >= 0.0
        payload = second.as_dict()
        assert payload["uptime_s"] == second.uptime_s
        assert payload["t_snapshot"] == second.t_snapshot
        assert second.describe().startswith("up ")


# ------------------------------------------------------ gateway wire frames
class TestGatewayTelemetry:
    @pytest.fixture()
    def serving(self, registry):
        policy = ServePolicy(max_batch=8, max_wait=1e-3, n_lanes=2,
                             stats_interval=0.05)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                yield server, gateway

    def test_stats_subscription_streams_snapshots(self, serving, key):
        _, gateway = serving
        with GatewayClient(*gateway.address) as data:
            data.submit(key, np.full(24, 0.5))
        with GatewayClient(*gateway.address) as sub:
            stream = sub.subscribe_stats(interval_s=0.05, timeout=10.0)
            payloads = [next(stream) for _ in range(2)]
        for payload in payloads:
            assert payload["uptime_s"] > 0.0
            assert payload["n_completed"] >= 1
            assert payload["gateway"]["n_requests"] >= 1
        assert payloads[1]["uptime_s"] > payloads[0]["uptime_s"]

    def test_event_subscription_streams_trace_chain(self, serving, key):
        _, gateway = serving
        events = []
        done = threading.Event()

        def subscriber():
            with GatewayClient(*gateway.address) as sub:
                for payload in sub.subscribe_events(
                        topics=("RequestSubmitted", "BatchServed"),
                        timeout=15.0):
                    events.append(event_from_dict(payload))
                    if sum(len(e.trace_ids) for e in events
                           if isinstance(e, BatchServed)) >= 4:
                        done.set()
                        return

        thread = threading.Thread(target=subscriber)
        thread.start()
        time.sleep(0.2)                   # let the subscription register
        with GatewayClient(*gateway.address) as data:
            data.submit_many([(key, row) for row in request_batch(4, 32)])
        assert done.wait(timeout=15.0)
        thread.join(timeout=10.0)
        submitted = {e.trace_id for e in events
                     if isinstance(e, RequestSubmitted)}
        served = {t for e in events if isinstance(e, BatchServed)
                  for t in e.trace_ids}
        assert len(submitted) >= 4
        assert submitted <= served

    def test_async_client_multiplexes_data_and_events(self, serving, key):
        _, gateway = serving
        row = request_batch(1, 32)[0]

        async def scenario():
            client = await AsyncGatewayClient.connect(*gateway.address)
            try:
                got = []
                stream = client.subscribe_events(
                    topics=("RequestSubmitted",))
                collector = asyncio.ensure_future(anext(stream))
                await asyncio.sleep(0.2)
                output = await client.submit(key, row)
                payload = await asyncio.wait_for(collector, timeout=15.0)
                await stream.aclose()
                return output, payload
            finally:
                await client.close()

        output, payload = asyncio.run(scenario())
        assert payload["event"] == "RequestSubmitted"
        assert payload["trace_id"] >= 1
        assert output.shape == row.shape

    def test_chunk_stream_error_counted_and_published(self, serving, key):
        """Satellite: an out-of-order chunk stream bumps
        ``n_chunk_stream_errors`` and emits a ChunkStreamError event."""
        server, gateway = serving
        with server.telemetry.subscribe(topics=["ChunkStreamError"]) as sub:
            before = gateway.counters.n_chunk_stream_errors
            import socket as socket_module
            sock = socket_module.create_connection(gateway.address,
                                                   timeout=10.0)
            try:
                frames = protocol.encode_request_frames(
                    5, key, np.full(3000, 0.5), max_frame_bytes=4096)
                assert len(frames) >= 3
                sock.sendall(frames[0] + frames[2])   # gap: skipped chunk 1
                event = sub.get(timeout=10.0)
            finally:
                sock.close()
        assert isinstance(event, ChunkStreamError)
        assert event.request_id == 5
        assert gateway.counters.n_chunk_stream_errors > before
        assert "chunk-stream" in gateway.counters.describe()

    def test_connection_events_carry_peer_and_request_count(self, serving,
                                                            key):
        server, gateway = serving
        with server.telemetry.subscribe(
                topics=["ConnectionOpened", "ConnectionClosed"]) as sub:
            with GatewayClient(*gateway.address) as client:
                client.submit(key, np.full(16, 0.5))
            events = drain_until(
                sub, lambda evs: any(type(e).__name__ == "ConnectionClosed"
                                     for e in evs))
        opened = next(e for e in events if isinstance(e, ConnectionOpened))
        closed = next(e for e in events
                      if type(e).__name__ == "ConnectionClosed")
        assert opened.peer.startswith("127.0.0.1:")
        assert closed.peer == opened.peer
        assert closed.n_requests == 1


# ------------------------------------------------------- record and replay
class TestRecordReplay:
    def test_recorder_journals_a_session_and_replay_reserves_it(
            self, registry, compiled, key, tmp_path):
        """Acceptance (small-scale twin of the gated benchmark): journal a
        served session, then re-serve its replayed schedule bitwise."""
        batch = request_batch(20, 48, seed=3)
        policy = ServePolicy(max_batch=8, max_wait=1e-3, n_workers=1)
        store = RunStore(tmp_path / "runs.db")
        with ModelServer(registry, policy) as server:
            recorder = RunRecorder(server.telemetry, store, name="session",
                                   stats_source=lambda: server.stats().as_dict(),
                                   snapshot_interval=0.05)
            futures = [server.submit(key, row) for row in batch]
            recorded = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if len(store.events(recorder.run_id,
                                    kind="RequestSubmitted")) >= len(batch):
                    break
                time.sleep(0.02)
            recorder.close()

        run = store.runs()[-1]
        assert run.closed
        schedule = list(store.replay(run.run_id))
        assert len(schedule) == len(batch)
        assert [r.t_rel for r in schedule] == sorted(r.t_rel for r in schedule)
        assert len(store.snapshots(run.run_id)) >= 1

        # Re-serve the recorded schedule against a fresh server: with the
        # same stimuli, outputs must be bitwise identical.
        with ModelServer(registry, policy) as server:
            futures = [server.submit(entry.key, batch[index])
                       for index, entry in enumerate(schedule)]
            replayed = np.vstack([f.result(FUTURE_TIMEOUT) for f in futures])
        np.testing.assert_array_equal(replayed, recorded)
        np.testing.assert_array_equal(replayed, compiled.evaluate(batch))
        store.close()

    def test_recorder_counts_its_own_drops(self, tmp_path):
        broker = TopicBroker()
        store = RunStore(tmp_path / "runs.db")
        with RunRecorder(broker, store, name="drops", maxsize=4) as recorder:
            assert recorder.n_dropped >= 0
        run = store.runs()[-1]
        assert run.meta["n_dropped"] == 0
        store.close()


# -------------------------------------------------------------------- sweep
class TestSweepTelemetry:
    def test_sweep_publishes_lifecycle_events(self):
        from repro.circuit import Sine, TransientOptions
        from repro.circuits import build_rc_ladder

        scenarios = [
            Scenario(name=f"s{i}", builder=build_rc_ladder,
                     builder_kwargs={"n_sections": 1},
                     waveform=Sine(0.5, 0.1, 2e5),
                     transient=TransientOptions(t_stop=2e-7, dt=1e-8))
            for i in range(2)
        ]
        broker = TopicBroker()
        with broker.subscribe() as sub:
            result = run_sweep(scenarios, SweepOptions(
                n_workers=1, capture_snapshots=False, broker=broker))
            events = sub.drain()
        assert len(result) == 2
        started = [e for e in events if isinstance(e, SweepStarted)]
        per_scenario = [e for e in events if isinstance(e, ScenarioCompleted)]
        completed = [e for e in events if isinstance(e, SweepCompleted)]
        assert len(started) == 1 and started[0].n_scenarios == 2
        assert [e.name for e in per_scenario] == ["s0", "s1"]
        assert all(e.ok and e.wall_time_s > 0.0 for e in per_scenario)
        assert len(completed) == 1
        assert completed[0].n_ok == 2 and completed[0].n_failed == 0

    def test_sweep_without_broker_is_unchanged(self):
        from repro.circuit import Sine, TransientOptions
        from repro.circuits import build_rc_ladder

        scenario = Scenario(name="solo", builder=build_rc_ladder,
                            builder_kwargs={"n_sections": 1},
                            waveform=Sine(0.5, 0.1, 2e5),
                            transient=TransientOptions(t_stop=2e-7, dt=1e-8))
        result = run_sweep([scenario], SweepOptions(capture_snapshots=False))
        assert result[0].ok
