"""Tests of the TCP gateway: protocol, live-socket round trips, isolation.

Everything here runs over real sockets — the gateway binds an ephemeral
port on 127.0.0.1 and the clients connect through the OS network stack; no
transport is mocked.  The acceptance test round-trips 1000+ pipelined
requests through one connection.
"""

import asyncio
import socket
import time
import struct

import numpy as np
import pytest

from repro.exceptions import FrameError, GatewayError, ServeError
from repro.gateway import (
    AsyncGatewayClient,
    Gateway,
    GatewayClient,
    protocol,
)
from repro.runtime import ModelRegistry, compile_model, content_hash
from repro.serve import ModelServer, ServePolicy
from test_serve import small_model

FUTURE_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def compiled_pair():
    return (compile_model(small_model(), dt=1e-9, input_range=(0.0, 1.0)),
            compile_model(small_model(tau=2.0), dt=1e-9,
                          input_range=(0.0, 1.0)))


@pytest.fixture()
def registry(compiled_pair, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    for compiled in compiled_pair:
        registry.save(compiled)
    return registry


@pytest.fixture()
def keys(compiled_pair):
    return tuple(content_hash(compiled) for compiled in compiled_pair)


def request_rows(n_rows: int = 16, n_steps: int = 64, seed: int = 0):
    rng = np.random.default_rng(seed)
    return 0.5 + 0.3 * rng.standard_normal((n_rows, n_steps))


# ------------------------------------------------------------------- protocol
class TestProtocol:
    def test_request_round_trip(self):
        samples = np.linspace(0.0, 1.0, 17)
        frame = protocol.encode_request(42, "deadbeef", samples)
        (length,) = protocol.LENGTH_PREFIX.unpack_from(frame)
        assert length == len(frame) - protocol.LENGTH_PREFIX.size
        decoded = protocol.decode_payload(frame[4:])
        assert isinstance(decoded, protocol.Request)
        assert decoded.request_id == 42 and decoded.key == "deadbeef"
        np.testing.assert_array_equal(decoded.samples, samples)

    def test_result_and_error_round_trip(self):
        outputs = np.arange(5.0)
        result = protocol.decode_payload(
            protocol.encode_result(7, outputs)[4:])
        assert isinstance(result, protocol.Result) and result.request_id == 7
        np.testing.assert_array_equal(result.outputs, outputs)
        error = protocol.decode_payload(
            protocol.encode_error(9, protocol.E_BAD_REQUEST, "nope")[4:])
        assert isinstance(error, protocol.ErrorReply)
        assert (error.request_id, error.code, error.message) == \
            (9, protocol.E_BAD_REQUEST, "nope")

    @pytest.mark.parametrize("payload, match", [
        (b"\x00\x01\x02", "truncated frame header"),
        (b"XX" + bytes(10), "bad frame magic"),
        (struct.pack("!HBBQ", protocol.MAGIC, 99, protocol.REQUEST, 1),
         "unsupported protocol version"),
        (struct.pack("!HBBQ", protocol.MAGIC, protocol.PROTOCOL_VERSION,
                     77, 1), "unknown message type"),
    ])
    def test_malformed_payloads_named(self, payload, match):
        with pytest.raises(FrameError, match=match):
            protocol.decode_payload(payload)

    def test_wrong_dtype_keeps_request_id(self):
        frame = bytearray(protocol.encode_request(5, "ab", np.zeros(4)))
        frame[4 + 12] = 9                      # dtype code byte
        with pytest.raises(FrameError, match="unsupported dtype code 9") as e:
            protocol.decode_payload(bytes(frame[4:]))
        assert e.value.request_id == 5

    def test_shape_header_mismatch_named(self):
        frame = protocol.encode_request(6, "ab", np.zeros(4))
        with pytest.raises(FrameError, match="shape header declares"):
            protocol.decode_payload(frame[4:-8])   # drop one sample

    def test_request_id_zero_rejected(self):
        with pytest.raises(FrameError, match="positive"):
            protocol.encode_request(0, "ab", np.zeros(4))

    def test_non_ascii_key_named_on_both_paths(self):
        """Satellite: frame_overhead must raise the same named FrameError as
        encode_request for a non-ASCII key, not a raw UnicodeEncodeError."""
        with pytest.raises(FrameError, match="model key must be ASCII"):
            protocol.encode_request(1, "modèle", np.zeros(4))
        with pytest.raises(FrameError, match="model key must be ASCII"):
            protocol.frame_overhead("modèle")
        # The happy path still answers plain byte accounting.
        assert protocol.frame_overhead("ab") == \
            protocol.frame_overhead() + 2

    def test_float32_round_trip_upcasts_at_the_edge(self):
        rng = np.random.default_rng(11)
        samples = 0.5 + 0.3 * rng.standard_normal(33)
        frame = protocol.encode_request(3, "ab", samples,
                                        dtype=protocol.DTYPE_FLOAT32)
        decoded = protocol.decode_payload(frame[4:])
        assert decoded.dtype == protocol.DTYPE_FLOAT32
        assert decoded.samples.dtype == np.float64     # upcast at the edge
        np.testing.assert_array_equal(
            decoded.samples,
            samples.astype(np.float32).astype(np.float64))
        result = protocol.decode_payload(
            protocol.encode_result(3, samples,
                                   dtype=protocol.DTYPE_FLOAT32)[4:])
        assert result.dtype == protocol.DTYPE_FLOAT32
        np.testing.assert_array_equal(
            result.outputs, samples.astype(np.float32).astype(np.float64))

    def test_float32_frames_halve_the_sample_bytes(self):
        samples = np.linspace(0.0, 1.0, 4096)
        f64 = protocol.encode_request(1, "ab", samples)
        f32 = protocol.encode_request(1, "ab", samples,
                                      dtype=protocol.DTYPE_FLOAT32)
        overhead = protocol.frame_overhead("ab")
        assert len(f64) - overhead == 4096 * 8
        assert len(f32) - overhead == 4096 * 4

    def test_dtype_code_normalises_specs(self):
        assert protocol.dtype_code("float64") == protocol.DTYPE_FLOAT64
        assert protocol.dtype_code("float32") == protocol.DTYPE_FLOAT32
        assert protocol.dtype_code(np.float32) == protocol.DTYPE_FLOAT32
        assert protocol.dtype_code(protocol.DTYPE_FLOAT32) == \
            protocol.DTYPE_FLOAT32
        with pytest.raises(FrameError, match="unsupported dtype code 9"):
            protocol.dtype_code(9)
        with pytest.raises(FrameError, match="unsupported wire dtype"):
            protocol.dtype_code("int32")


class TestChunkedFrames:
    def test_small_request_stays_a_single_frame(self):
        frames = protocol.encode_request_frames(5, "ab", np.zeros(16),
                                                max_frame_bytes=1 << 20)
        assert frames == [protocol.encode_request(5, "ab", np.zeros(16))]

    def test_request_chunk_series_reassembles_bitwise(self):
        rng = np.random.default_rng(7)
        samples = rng.standard_normal(3000)
        frames = protocol.encode_request_frames(9, "ab", samples,
                                                max_frame_bytes=4096)
        assert len(frames) > 1
        for frame in frames:
            (length,) = protocol.LENGTH_PREFIX.unpack_from(frame)
            assert length <= 4096
        assembler = protocol.ChunkAssembler()
        done = []
        for frame in frames:
            chunk = protocol.decode_payload(frame[4:])
            assert isinstance(chunk, protocol.RequestChunk)
            assert chunk.key == "ab"
            message = assembler.feed(chunk)
            if message is not None:
                done.append(message)
        assert len(done) == 1 and len(assembler) == 0
        request = done[0]
        assert isinstance(request, protocol.Request)
        assert request.request_id == 9 and request.key == "ab"
        np.testing.assert_array_equal(request.samples, samples)

    def test_result_chunk_series_reassembles_bitwise(self):
        outputs = np.linspace(-1.0, 1.0, 2500)
        frames = protocol.encode_result_frames(
            4, outputs, dtype=protocol.DTYPE_FLOAT32, max_frame_bytes=2048)
        assert len(frames) > 1
        assembler = protocol.ChunkAssembler()
        result = None
        for frame in frames:
            result = assembler.feed(protocol.decode_payload(frame[4:]))
        assert isinstance(result, protocol.Result)
        np.testing.assert_array_equal(
            result.outputs, outputs.astype(np.float32).astype(np.float64))

    def test_interleaved_streams_assemble_independently(self):
        a = np.arange(1000.0)
        b = -np.arange(1500.0)
        frames_a = [protocol.decode_payload(f[4:]) for f in
                    protocol.encode_request_frames(1, "aa", a,
                                                   max_frame_bytes=2048)]
        frames_b = [protocol.decode_payload(f[4:]) for f in
                    protocol.encode_request_frames(2, "bb", b,
                                                   max_frame_bytes=2048)]
        assembler = protocol.ChunkAssembler()
        done = {}
        for chunk in [x for pair in zip(frames_a, frames_b) for x in pair] \
                + frames_b[len(frames_a):]:
            message = assembler.feed(chunk)
            if message is not None:
                done[message.request_id] = message
        np.testing.assert_array_equal(done[1].samples, a)
        np.testing.assert_array_equal(done[2].samples, b)

    def test_assembler_rejects_out_of_order_and_drops_stream(self):
        frames = protocol.encode_request_frames(3, "ab",
                                                np.arange(3000.0),
                                                max_frame_bytes=4096)
        chunks = [protocol.decode_payload(f[4:]) for f in frames]
        assert len(chunks) >= 3
        assembler = protocol.ChunkAssembler()
        assembler.feed(chunks[0])
        with pytest.raises(FrameError, match="in order") as err:
            assembler.feed(chunks[2])              # gap: skipped chunk 1
        assert err.value.request_id == 3
        assert len(assembler) == 0                 # offending stream dropped

    def test_assembler_rejects_nonzero_first_offset(self):
        frames = protocol.encode_request_frames(6, "ab",
                                                np.arange(3000.0),
                                                max_frame_bytes=4096)
        later = protocol.decode_payload(frames[1][4:])
        with pytest.raises(FrameError, match="offset 0"):
            protocol.ChunkAssembler().feed(later)

    def test_assembler_enforces_sample_and_stream_limits(self):
        frames = protocol.encode_request_frames(7, "ab",
                                                np.arange(3000.0),
                                                max_frame_bytes=4096)
        first = protocol.decode_payload(frames[0][4:])
        with pytest.raises(FrameError, match="per-request limit"):
            protocol.ChunkAssembler(max_samples=100).feed(first)
        assembler = protocol.ChunkAssembler(max_streams=1)
        assembler.feed(first)
        other = protocol.decode_payload(protocol.encode_request_frames(
            8, "ab", np.arange(3000.0), max_frame_bytes=4096)[0][4:])
        with pytest.raises(FrameError, match="too many concurrent"):
            assembler.feed(other)

    def test_unstreamably_small_frame_budget_named(self):
        with pytest.raises(FrameError, match="cannot carry even one"):
            protocol.encode_request_frames(1, "k" * 64, np.zeros(100),
                                           max_frame_bytes=80)


# ----------------------------------------------------------------- round trip
class TestGatewayRoundTrip:
    @pytest.fixture()
    def serving(self, registry):
        policy = ServePolicy(max_batch=32, max_wait=2e-3, n_lanes=2)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                yield server, gateway

    def test_single_submit_bitwise_equal(self, serving, compiled_pair, keys):
        _, gateway = serving
        row = request_rows(1, 48)[0]
        with GatewayClient(*gateway.address) as client:
            output = client.submit(keys[0], row)
        np.testing.assert_array_equal(output,
                                      compiled_pair[0].evaluate(row))

    def test_1200_requests_through_live_socket(self, serving, compiled_pair,
                                               keys):
        """Acceptance: 1000+ pipelined round trips, interleaved 2-model."""
        server, gateway = serving
        rows = request_rows(40, 64)
        requests = [(keys[i % 2], rows[i % 40]) for i in range(1200)]
        with GatewayClient(*gateway.address) as client:
            outputs = client.submit_many(requests)
        assert len(outputs) == 1200
        for (key, row), output in zip(requests, outputs):
            model = compiled_pair[keys.index(key)]
            np.testing.assert_array_equal(output, model.evaluate(row))
        stats = server.stats()
        assert stats.n_completed >= 1200 and stats.n_failed == 0
        assert {model.lane for model in stats.per_model.values()} == {0, 1}
        assert gateway.counters.n_requests >= 1200

    def test_async_client_round_trip(self, serving, compiled_pair, keys):
        _, gateway = serving
        rows = request_rows(8, 32, seed=3)

        async def drive():
            async with await AsyncGatewayClient.connect(
                    *gateway.address) as client:
                requests = [(keys[i % 2], rows[i % 8]) for i in range(64)]
                return requests, await client.submit_many(requests)

        requests, outputs = asyncio.run(drive())
        for (key, row), output in zip(requests, outputs):
            model = compiled_pair[keys.index(key)]
            np.testing.assert_array_equal(output, model.evaluate(row))

    def test_mixed_lengths_round_trip(self, serving, compiled_pair, keys):
        _, gateway = serving
        short, long = np.full(16, 0.4), np.full(48, 0.6)
        with GatewayClient(*gateway.address) as client:
            outputs = client.submit_many(
                [(keys[0], short), (keys[0], long), (keys[1], short)])
        np.testing.assert_array_equal(outputs[0],
                                      compiled_pair[0].evaluate(short))
        np.testing.assert_array_equal(outputs[1],
                                      compiled_pair[0].evaluate(long))
        np.testing.assert_array_equal(outputs[2],
                                      compiled_pair[1].evaluate(short))

    def test_backpressure_cap_still_serves_all(self, registry, compiled_pair,
                                               keys):
        """A tiny in-flight cap throttles reads, never loses requests."""
        policy = ServePolicy(max_batch=8, max_wait=1e-3, n_lanes=2,
                             max_inflight_per_conn=4)
        rows = request_rows(20, 32, seed=5)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                with GatewayClient(*gateway.address) as client:
                    outputs = client.submit_many(
                        [(keys[i % 2], rows[i % 20]) for i in range(100)])
        assert len(outputs) == 100
        np.testing.assert_array_equal(
            outputs[0], compiled_pair[0].evaluate(rows[0]))


# ------------------------------------------------------- raw-socket utilities
def raw_connection(gateway) -> socket.socket:
    sock = socket.create_connection(gateway.address, timeout=10.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def read_reply(sock: socket.socket):
    """One decoded reply frame off a raw socket (None on clean EOF)."""
    head = b""
    while len(head) < 4:
        chunk = sock.recv(4 - len(head))
        if not chunk:
            return None
        head += chunk
    (length,) = protocol.LENGTH_PREFIX.unpack(head)
    payload = b""
    while len(payload) < length:
        chunk = sock.recv(length - len(payload))
        if not chunk:
            return None
        payload += chunk
    return protocol.decode_payload(payload)


def assert_closed(sock: socket.socket) -> None:
    """The far end must close: the next read returns EOF, not data."""
    assert read_reply(sock) is None


# ------------------------------------------------------------ failure paths
class TestGatewayFailureIsolation:
    """Malformed traffic fails only its connection/request — never the lane
    or the server (every test re-proves the server serves afterwards)."""

    @pytest.fixture()
    def serving(self, registry):
        policy = ServePolicy(max_batch=8, max_wait=1e-3, n_lanes=2,
                             max_frame_bytes=1 << 20)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                yield server, gateway

    def still_serves(self, gateway, compiled_pair, keys):
        row = request_rows(1, 24, seed=9)[0]
        with GatewayClient(*gateway.address) as client:
            output = client.submit(keys[0], row)
        np.testing.assert_array_equal(output,
                                      compiled_pair[0].evaluate(row))

    def test_truncated_header_fails_only_that_connection(
            self, serving, compiled_pair, keys):
        _, gateway = serving
        sock = raw_connection(gateway)
        sock.sendall(protocol.LENGTH_PREFIX.pack(5) + b"\x01\x02\x03\x04\x05")
        reply = read_reply(sock)
        assert isinstance(reply, protocol.ErrorReply)
        assert reply.request_id == 0           # connection-fatal sentinel
        assert "truncated frame header" in reply.message
        assert_closed(sock)
        sock.close()
        self.still_serves(gateway, compiled_pair, keys)

    def test_oversized_frame_fails_only_that_connection(
            self, serving, compiled_pair, keys):
        _, gateway = serving
        sock = raw_connection(gateway)
        sock.sendall(protocol.LENGTH_PREFIX.pack(2 << 20))   # beyond policy
        reply = read_reply(sock)
        assert isinstance(reply, protocol.ErrorReply)
        assert reply.request_id == 0
        assert "max_frame_bytes" in reply.message
        assert_closed(sock)
        sock.close()
        self.still_serves(gateway, compiled_pair, keys)

    def test_wrong_dtype_fails_only_that_request(self, serving,
                                                 compiled_pair, keys):
        _, gateway = serving
        sock = raw_connection(gateway)
        frame = bytearray(protocol.encode_request(11, keys[0], np.zeros(8)))
        frame[4 + 12] = 3                      # unsupported dtype code
        sock.sendall(bytes(frame))
        reply = read_reply(sock)
        assert isinstance(reply, protocol.ErrorReply)
        assert reply.request_id == 11
        assert "unsupported dtype code 3" in reply.message
        # Same connection keeps working afterwards.
        row = request_rows(1, 24, seed=2)[0]
        sock.sendall(protocol.encode_request(12, keys[0], row))
        reply = read_reply(sock)
        assert isinstance(reply, protocol.Result) and reply.request_id == 12
        np.testing.assert_array_equal(reply.outputs,
                                      compiled_pair[0].evaluate(row))
        sock.close()

    def test_unknown_model_key_fails_only_that_request(
            self, serving, compiled_pair, keys):
        _, gateway = serving
        with GatewayClient(*gateway.address) as client:
            outputs = client.submit_many(
                [("f" * 64, np.full(16, 0.5)),
                 (keys[0], np.full(16, 0.5))], return_errors=True)
            assert isinstance(outputs[0], GatewayError)
            assert "unknown model key" in str(outputs[0])
            np.testing.assert_array_equal(
                outputs[1], compiled_pair[0].evaluate(np.full(16, 0.5)))
            with pytest.raises(GatewayError, match="unknown model key"):
                client.submit_many([("f" * 64, np.full(16, 0.5))])
        self.still_serves(gateway, compiled_pair, keys)

    def test_non_finite_request_fails_only_that_request(
            self, serving, compiled_pair, keys):
        _, gateway = serving
        bad = np.full(16, 0.5)
        bad[3] = np.inf
        with GatewayClient(*gateway.address) as client:
            outputs = client.submit_many(
                [(keys[0], bad), (keys[0], np.full(16, 0.5))],
                return_errors=True)
        assert isinstance(outputs[0], GatewayError)
        assert "non-finite sample at step 3" in str(outputs[0])
        assert not isinstance(outputs[1], GatewayError)

    def test_connect_to_closed_gateway_named(self, registry):
        server = ModelServer(registry, ServePolicy(max_batch=4,
                                                   max_wait=1e-3))
        gateway = Gateway(server).start()
        address = gateway.address
        gateway.close()
        server.close()
        with pytest.raises(GatewayError,
                           match=r"could not connect to gateway at"):
            GatewayClient(*address)

    def test_submit_to_closed_server_behind_gateway_named(self, registry,
                                                          keys):
        """Gateway up, model server closed: requests fail with the server's
        name, the connection (and gateway) stay up."""
        server = ModelServer(registry, ServePolicy(max_batch=4,
                                                   max_wait=1e-3))
        with Gateway(server) as gateway:
            server.close()
            with GatewayClient(*gateway.address) as client:
                outputs = client.submit_many(
                    [(keys[0], np.full(8, 0.5))] * 3, return_errors=True)
                assert all(isinstance(out, GatewayError) for out in outputs)
                assert "ModelServer(" in str(outputs[0])
                assert "is closed" in str(outputs[0])

    def test_connection_limit_refused_with_named_error(self, registry,
                                                       compiled_pair, keys):
        policy = ServePolicy(max_batch=4, max_wait=1e-3, max_connections=1)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                with GatewayClient(*gateway.address) as first:
                    sock = raw_connection(gateway)
                    reply = read_reply(sock)
                    assert isinstance(reply, protocol.ErrorReply)
                    assert reply.code == protocol.E_CONNECTION_LIMIT
                    assert "max_connections=1" in reply.message
                    assert_closed(sock)
                    sock.close()
                    # The admitted connection is unaffected.
                    row = request_rows(1, 16)[0]
                    np.testing.assert_array_equal(
                        first.submit(keys[0], row),
                        compiled_pair[0].evaluate(row))
                assert gateway.counters.n_rejected_connections == 1

    def test_async_client_fails_fast_after_gateway_goes_away(self, registry,
                                                             keys):
        """A dead connection fails later submits immediately — no hang."""
        server = ModelServer(registry, ServePolicy(max_batch=4,
                                                   max_wait=1e-3))
        gateway = Gateway(server).start()

        async def drive():
            client = await AsyncGatewayClient.connect(*gateway.address)
            np.testing.assert_array_equal(
                await client.submit(keys[0], np.full(8, 0.5)),
                (await client.submit(keys[0], np.full(8, 0.5))))
            gateway.close()
            with pytest.raises(GatewayError):
                for _ in range(50):          # dropped conn surfaces quickly
                    await client.submit(keys[0], np.full(8, 0.5))
            # ... and from then on every submit fails fast, not by timeout.
            with pytest.raises(GatewayError):
                await client.submit(keys[0], np.full(8, 0.5))
            await client.close()

        try:
            asyncio.run(drive())
        finally:
            gateway.close()
            server.close()

    def test_gateway_close_is_idempotent_and_restart_refused(self, registry):
        server = ModelServer(registry, ServePolicy(max_batch=4,
                                                   max_wait=1e-3))
        gateway = Gateway(server).start()
        gateway.close()
        gateway.close()
        with pytest.raises(GatewayError, match="is closed"):
            gateway.start()
        server.close()

    def test_chunk_stream_truncation_fails_only_its_request(
            self, serving, compiled_pair, keys):
        """Satellite: an abandoned/inconsistent chunk stream fails exactly
        that request — the connection (and other requests) keep serving."""
        _, gateway = serving
        sock = raw_connection(gateway)
        frames = protocol.encode_request_frames(
            21, keys[0], np.full(3000, 0.5), max_frame_bytes=4096)
        assert len(frames) >= 3
        # Truncate the stream: first chunk, then a gap (third chunk).
        sock.sendall(frames[0] + frames[2])
        reply = read_reply(sock)
        assert isinstance(reply, protocol.ErrorReply)
        assert reply.request_id == 21
        assert "in order" in reply.message
        # Same connection still serves: a fresh complete stream round-trips.
        row = request_rows(1, 24, seed=8)[0]
        for frame in protocol.encode_request_frames(22, keys[0], row,
                                                    max_frame_bytes=256):
            sock.sendall(frame)
        reply = read_reply(sock)
        assert isinstance(reply, protocol.Result) and reply.request_id == 22
        np.testing.assert_array_equal(reply.outputs,
                                      compiled_pair[0].evaluate(row))
        sock.close()

    def test_counters_track_traffic(self, serving, keys):
        _, gateway = serving
        with GatewayClient(*gateway.address) as client:
            client.submit_many([(keys[0], np.full(16, 0.5))] * 5)
        counters = gateway.counters
        assert counters.n_connections >= 1
        assert counters.n_frames_in >= 5
        # The out-counter is bumped on the event loop right after the write
        # syscall; give that thread a beat to finish its bookkeeping.
        deadline = time.monotonic() + 5.0
        while counters.n_frames_out < 5 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert counters.n_frames_out >= 5
        assert counters.n_requests >= 5
        assert "connection" in counters.describe()
        stats = gateway.stats()
        assert stats["address"].startswith("127.0.0.1:")


# ----------------------------------------------------------- wire format opt-ins
class TestWireFormats:
    """Float32 opt-in and chunked streaming through live sockets."""

    @pytest.fixture()
    def serving(self, registry):
        policy = ServePolicy(max_batch=32, max_wait=2e-3, n_lanes=2)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                yield server, gateway

    def test_float32_request_bitwise_matches_upcast_path(
            self, serving, compiled_pair, keys):
        """Acceptance: a float32 wire round trip equals evaluating the
        float32-quantised stimulus in float64 and quantising the reply."""
        _, gateway = serving
        rows = request_rows(6, 48, seed=13)
        with GatewayClient(*gateway.address, dtype="float32") as client:
            outputs = client.submit_many([(keys[0], row) for row in rows])
        for row, output in zip(rows, outputs):
            upcast = row.astype(np.float32).astype(np.float64)
            direct = compiled_pair[0].evaluate(upcast)
            expected = direct.astype(np.float32).astype(np.float64)
            np.testing.assert_array_equal(output, expected)

    def test_float32_async_client_round_trip(self, serving, compiled_pair,
                                             keys):
        _, gateway = serving
        row = request_rows(1, 32, seed=14)[0]

        async def drive():
            async with await AsyncGatewayClient.connect(
                    *gateway.address, dtype="float32") as client:
                return await client.submit(keys[0], row)

        output = asyncio.run(drive())
        upcast = row.astype(np.float32).astype(np.float64)
        expected = compiled_pair[0].evaluate(upcast).astype(
            np.float32).astype(np.float64)
        np.testing.assert_array_equal(output, expected)

    def test_long_stimulus_streams_in_chunks_both_ways(self, registry,
                                                       compiled_pair, keys):
        """A stimulus beyond max_frame_bytes streams out as REQUEST_CHUNKs
        and its (equally oversized) reply streams back as RESULT_CHUNKs."""
        policy = ServePolicy(max_batch=8, max_wait=1e-3, n_lanes=2,
                             max_frame_bytes=4096)
        rng = np.random.default_rng(15)
        long_row = 0.5 + 0.3 * rng.standard_normal(5000)   # 40 kB in float64
        short_row = request_rows(1, 32, seed=16)[0]
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                with GatewayClient(*gateway.address,
                                   max_frame_bytes=4096) as client:
                    outputs = client.submit_many(
                        [(keys[0], long_row), (keys[1], short_row)])
                counters = gateway.counters
                # The long request could not have fit one frame each way.
                assert counters.n_frames_in > 2
                assert counters.n_frames_out > 2
        np.testing.assert_array_equal(outputs[0],
                                      compiled_pair[0].evaluate(long_row))
        np.testing.assert_array_equal(outputs[1],
                                      compiled_pair[1].evaluate(short_row))

    def test_chunked_float32_stream_round_trip(self, registry, compiled_pair,
                                               keys):
        """Chunking composes with the float32 opt-in."""
        policy = ServePolicy(max_batch=8, max_wait=1e-3,
                             max_frame_bytes=2048)
        rng = np.random.default_rng(17)
        long_row = 0.5 + 0.3 * rng.standard_normal(4000)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                with GatewayClient(*gateway.address, max_frame_bytes=2048,
                                   dtype="float32") as client:
                    output = client.submit(keys[0], long_row)
        upcast = long_row.astype(np.float32).astype(np.float64)
        expected = compiled_pair[0].evaluate(upcast).astype(
            np.float32).astype(np.float64)
        np.testing.assert_array_equal(output, expected)

    def test_oversized_request_refused_with_named_limit_when_chunked(
            self, registry, keys):
        """Chunk streaming still honours the per-request sample limit —
        the stream is refused on its *first* chunk, before any buffering."""
        policy = ServePolicy(max_batch=8, max_wait=1e-3,
                             max_frame_bytes=4096, max_request_samples=1000)
        with ModelServer(registry, policy) as server:
            with Gateway(server) as gateway:
                sock = raw_connection(gateway)
                frames = protocol.encode_request_frames(
                    31, keys[0], np.full(5000, 0.5), max_frame_bytes=4096)
                sock.sendall(frames[0])
                reply = read_reply(sock)
                assert isinstance(reply, protocol.ErrorReply)
                assert reply.request_id == 31
                assert "per-request limit" in reply.message
                sock.close()
