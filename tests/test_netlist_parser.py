"""Tests for the SPICE-like netlist parser."""

import pytest

from repro.circuit import dc_operating_point, parse_netlist
from repro.circuit.devices import Diode, NMOS, PMOS, Resistor, VoltageSource
from repro.circuit.waveforms import DC, Pulse, Sine
from repro.exceptions import NetlistParseError


BASIC = """
.title simple divider
* a comment line
Vin in 0 DC 2.0 INPUT
R1 in out 1k
R2 out 0 1k ; trailing comment
.output vout out
.end
"""


class TestBasicParsing:
    def test_title_becomes_name(self):
        assert parse_netlist(BASIC).name == "simple divider"

    def test_device_count(self):
        circuit = parse_netlist(BASIC)
        assert len(circuit) == 3

    def test_values_with_suffixes(self):
        circuit = parse_netlist(BASIC)
        assert circuit.device("R1").resistance == pytest.approx(1e3)

    def test_input_flag(self):
        circuit = parse_netlist(BASIC)
        assert circuit.device("Vin").is_input

    def test_output_registered(self):
        circuit = parse_netlist(BASIC)
        assert circuit.outputs[0].name == "vout"
        assert circuit.outputs[0].positive == "out"

    def test_parsed_circuit_simulates(self):
        result = dc_operating_point(parse_netlist(BASIC).build())
        assert result.outputs[0] == pytest.approx(1.0)

    def test_comments_and_blank_lines_ignored(self):
        text = "* only comments\n\n" + BASIC
        assert len(parse_netlist(text)) == 3

    def test_continuation_lines(self):
        text = """
V1 a 0 DC 1.0 INPUT
R1 a
+ 0 2k
.output va a
"""
        circuit = parse_netlist(text)
        assert circuit.device("R1").resistance == pytest.approx(2e3)


class TestSourceCards:
    def test_sin_source(self):
        text = """
Vin in 0 SIN(0.9 0.5 50meg) INPUT
R1 in 0 1k
.output v in
"""
        wave = parse_netlist(text).device("Vin").waveform
        assert isinstance(wave, Sine)
        assert wave.offset == pytest.approx(0.9)
        assert wave.amplitude == pytest.approx(0.5)
        assert wave.frequency == pytest.approx(50e6)

    def test_pulse_source(self):
        text = """
Vin in 0 PULSE(0 1.2 1n 10p 10p 400p 800p)
Vdrv d 0 DC 0 INPUT
R1 in d 1k
.output v in
"""
        wave = parse_netlist(text).device("Vin").waveform
        assert isinstance(wave, Pulse)
        assert wave.pulsed == pytest.approx(1.2)
        assert wave.period == pytest.approx(800e-12)

    def test_dc_source_default(self):
        text = """
V1 a 0 1.5
I1 a 0 DC 1m INPUT
R1 a 0 1k
.output v a
"""
        circuit = parse_netlist(text)
        assert isinstance(circuit.device("V1").waveform, DC)
        assert circuit.device("V1").waveform.level == pytest.approx(1.5)
        assert circuit.device("I1").waveform.level == pytest.approx(1e-3)

    def test_malformed_sin_raises(self):
        text = "Vin a 0 SIN(1.0) INPUT\nR1 a 0 1k\n.output v a\n"
        with pytest.raises(NetlistParseError):
            parse_netlist(text)


class TestDeviceCards:
    def test_diode_with_model(self):
        text = """
.model dfast D (is=1e-15 n=1.2 cjo=0.5p tt=10p)
Vin a 0 DC 1 INPUT
D1 a 0 dfast
.output v a
"""
        diode = parse_netlist(text).device("D1")
        assert isinstance(diode, Diode)
        assert diode.saturation_current == pytest.approx(1e-15)
        assert diode.junction_capacitance == pytest.approx(0.5e-12)

    def test_mosfet_with_model_and_geometry(self):
        text = """
.model nch NMOS (kp=250u vto=0.4 lambda=0.1)
.model pch PMOS (kp=100u vto=0.4)
VDD vdd 0 1.2
Vin g 0 DC 0.6 INPUT
M1 d g 0 0 nch W=10u L=0.2u
M2 d g vdd vdd pch W=20u L=0.2u
R1 d 0 10k
.output v d
"""
        circuit = parse_netlist(text)
        m1, m2 = circuit.device("M1"), circuit.device("M2")
        assert isinstance(m1, NMOS)
        assert isinstance(m2, PMOS)
        assert m1.params.width == pytest.approx(10e-6)
        assert m1.params.kp == pytest.approx(250e-6)
        assert m1.params.vto == pytest.approx(0.4)

    def test_unknown_mosfet_model_raises(self):
        text = "M1 d g 0 0 missing\n.output v d\n"
        with pytest.raises(NetlistParseError):
            parse_netlist(text)

    def test_controlled_sources(self):
        text = """
Vin in 0 DC 1 INPUT
E1 a 0 in 0 2.0
G1 b 0 in 0 1m
R1 a 0 1k
R2 b 0 1k
.output va a
"""
        circuit = parse_netlist(text)
        assert circuit.device("E1").gain == pytest.approx(2.0)
        assert circuit.device("G1").transconductance == pytest.approx(1e-3)

    def test_unsupported_card_raises(self):
        with pytest.raises(NetlistParseError):
            parse_netlist("X1 a b sub\n.output v a\n")

    def test_malformed_card_raises_with_line_number(self):
        with pytest.raises(NetlistParseError) as excinfo:
            parse_netlist("R1 a 0\n.output v a\n")
        assert "line 1" in str(excinfo.value)

    def test_end_card_stops_parsing(self):
        text = BASIC + "\nR99 x 0 1k\n"
        circuit = parse_netlist(text)
        with pytest.raises(Exception):
            circuit.device("R99")
