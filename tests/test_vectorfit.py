"""Tests for the vector fitting engine, pole utilities and rational functions."""

import numpy as np
import pytest

from repro.exceptions import FittingError, ModelError
from repro.vectfit import (
    RationalFunction,
    VectorFitOptions,
    basis_matrix,
    coefficients_to_residues,
    evaluate_model,
    fit_auto_order,
    flip_unstable,
    initial_complex_poles,
    initial_real_poles,
    initial_state_poles,
    residues_to_coefficients,
    sort_poles,
    split_real_complex,
    vector_fit,
)
from repro.vectfit.poles import enforce_conjugate_closure


def synthetic_response(svals, poles, residues, constant=0.0):
    svals = np.asarray(svals, dtype=complex)
    values = np.full(svals.shape, complex(constant), dtype=complex)
    for p, r in zip(poles, residues):
        values = values + r / (svals - p)
    return values


class TestPoleUtilities:
    def test_initial_complex_poles_are_conjugate_pairs(self):
        poles = initial_complex_poles(1e3, 1e9, 8)
        assert len(poles) == 8
        real_idx, pair_idx = split_real_complex(sort_poles(poles))
        assert len(pair_idx) == 4 and len(real_idx) == 0

    def test_initial_complex_poles_odd_order_adds_real_pole(self):
        poles = initial_complex_poles(1e3, 1e9, 5)
        assert np.sum(poles.imag == 0) == 1

    def test_initial_complex_poles_are_stable(self):
        assert np.all(initial_complex_poles(1e3, 1e9, 10).real < 0)

    def test_initial_complex_poles_invalid_range(self):
        with pytest.raises(FittingError):
            initial_complex_poles(1e9, 1e3, 4)

    def test_initial_real_poles_negative(self):
        assert np.all(initial_real_poles(0.4, 1.4, 5).real < 0)

    def test_initial_state_poles_straddle_interval(self):
        poles = initial_state_poles(0.4, 1.4, 6)
        assert len(poles) == 6
        assert poles.real.min() >= 0.4 - 1e-12
        assert poles.real.max() <= 1.4 + 1e-12
        assert np.all(poles.imag != 0)

    def test_flip_unstable_mirrors_real_part(self):
        poles = np.array([1e3 + 2e3j, -5.0 + 0j])
        flipped = flip_unstable(poles)
        assert np.all(flipped.real < 0)
        assert flipped[0].imag == pytest.approx(2e3)

    def test_sort_poles_orders_pairs_adjacent(self):
        poles = np.array([-1 + 5j, -3.0, -1 - 5j])
        ordered = sort_poles(poles)
        assert ordered[0] == -3.0
        assert ordered[1] == np.conj(ordered[2])

    def test_enforce_conjugate_closure_repairs_asymmetry(self):
        poles = np.array([-1 + 5j, -1.0000001 - 4.9999999j, -2.0])
        closed = enforce_conjugate_closure(poles)
        complex_poles = closed[closed.imag != 0]
        assert len(complex_poles) == 2
        assert complex_poles[0] == np.conj(complex_poles[1])

    def test_enforce_conjugate_closure_collapses_orphans(self):
        poles = np.array([-1 + 5j, -2.0])
        closed = enforce_conjugate_closure(poles)
        assert np.all(closed.imag == 0)


class TestBasis:
    def test_complex_mode_columns(self):
        svals = 1j * np.linspace(1, 10, 5)
        poles = np.array([-1 + 2j, -3 + 0j])
        phi = basis_matrix(svals, poles, real_mode=False)
        assert phi.shape == (5, 2)
        assert phi[0, 0] == pytest.approx(1 / (svals[0] - poles[0]))

    def test_real_mode_pair_columns_give_conjugate_residues(self):
        poles = sort_poles(np.array([-1 + 2j, -1 - 2j, -3 + 0j]))
        coeffs = np.array([0.5, 1.5, -2.0])  # [real pole, pair cr, pair ci]
        residues = coefficients_to_residues(coeffs, poles, real_mode=True)
        real_idx, pair_idx = split_real_complex(poles)
        i = pair_idx[0]
        assert residues[i] == pytest.approx(np.conj(residues[i + 1]))

    def test_coefficients_roundtrip(self):
        poles = sort_poles(np.array([-2.0, -1 + 3j, -1 - 3j]))
        coeffs = np.array([1.0, 0.3, -0.8])
        residues = coefficients_to_residues(coeffs, poles, True)
        back = residues_to_coefficients(residues, poles, True)
        assert back == pytest.approx(coeffs)

    def test_real_mode_model_is_conjugate_symmetric(self):
        poles = sort_poles(np.array([-1 + 3j, -1 - 3j]))
        coeffs = np.array([0.7, 0.2])
        residues = coefficients_to_residues(coeffs, poles, True)
        s = np.array([2j, -2j])
        values = evaluate_model(s, poles, residues[None, :])[0]
        assert values[0] == pytest.approx(np.conj(values[1]))


class TestVectorFitRealMode:
    FREQS = np.logspace(5, 10, 60)
    SVALS = 2j * np.pi * FREQS
    TRUE_POLES = np.array([-2e7, -1e9 + 4e9j, -1e9 - 4e9j])

    def _data(self, residues, constant=0.0):
        return synthetic_response(self.SVALS, self.TRUE_POLES, residues, constant)

    def test_recovers_exact_rational_function(self):
        data = self._data([1e7, 1e9 + 5e8j, 1e9 - 5e8j], constant=0.2)
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 3))
        assert result.relative_error < 1e-6

    def test_recovers_pole_locations(self):
        data = self._data([1e7, 1e9 + 5e8j, 1e9 - 5e8j])
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 3))
        found = np.sort_complex(result.poles)
        expected = np.sort_complex(self.TRUE_POLES)
        assert np.allclose(found, expected, rtol=1e-4)

    def test_common_poles_across_responses(self):
        rng = np.random.default_rng(1)
        rows = []
        for _ in range(5):
            r_real = rng.normal() * 1e8
            r_pair = rng.normal() * 1e9 + 1j * rng.normal() * 1e9
            rows.append(self._data([r_real, r_pair, np.conj(r_pair)]))
        data = np.array(rows)
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 3))
        assert result.n_responses == 5
        assert result.relative_error < 1e-6

    def test_stability_enforced(self):
        data = self._data([1e7, 1e9, 1e9])
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 4))
        assert result.is_stable()

    def test_constant_term_recovered(self):
        data = self._data([1e7, 2e9 + 1e9j, 2e9 - 1e9j], constant=1.7)
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 3),
                            VectorFitOptions(fit_constant=True))
        assert result.constants[0].real == pytest.approx(1.7, rel=1e-3)

    def test_inverse_weighting_improves_small_magnitude_fit(self):
        data = self._data([1e7, 1e9, 1e9])
        options = VectorFitOptions(weighting="inverse")
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 3), options)
        assert result.relative_error < 1e-6

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(FittingError):
            vector_fit(self.SVALS, np.zeros((2, 10)), initial_complex_poles(1e5, 1e10, 2))

    def test_too_few_samples_rejected(self):
        with pytest.raises(FittingError):
            vector_fit(self.SVALS[:3], np.zeros(3), initial_complex_poles(1e5, 1e10, 8))

    def test_unknown_weighting_rejected(self):
        with pytest.raises(FittingError):
            VectorFitOptions(weighting="magic").validate()

    def test_evaluate_matches_fit_data(self):
        data = self._data([1e7, 1e9 + 5e8j, 1e9 - 5e8j])
        result = vector_fit(self.SVALS, data, initial_complex_poles(1e5, 1e10, 3))
        model = result.evaluate(self.SVALS)[0]
        assert np.max(np.abs(model - data)) / np.max(np.abs(data)) < 1e-6


class TestVectorFitComplexMode:
    def test_fits_complex_function_of_real_variable(self):
        x = np.linspace(0.4, 1.4, 80)
        svals = 1j * x
        true_poles = np.array([-0.5 + 0.9j, -0.3 - 0.2j])
        true_res = np.array([0.8 - 0.3j, 0.2 + 0.5j])
        data = synthetic_response(svals, true_poles, true_res, 0.05)
        options = VectorFitOptions(real_coefficients=False, enforce_stability=False,
                                   n_iterations=25)
        result = vector_fit(svals, data, initial_real_poles(0.4, 1.4, 2), options)
        assert result.relative_error < 1e-8

    def test_no_conjugate_requirement_in_complex_mode(self):
        x = np.linspace(-1, 1, 50)
        svals = 1j * x
        data = 1.0 / (svals - (-0.4 + 0.3j))
        options = VectorFitOptions(real_coefficients=False, enforce_stability=False)
        result = vector_fit(svals, data, np.array([-1.0 + 0j]), options)
        assert result.relative_error < 1e-6


class TestAutoOrder:
    def test_stops_at_error_bound(self):
        freqs = np.logspace(6, 10, 50)
        svals = 2j * np.pi * freqs
        poles = np.array([-1e8, -2e9 + 6e9j, -2e9 - 6e9j])
        data = synthetic_response(svals, poles, [1e8, 1e9 + 1e9j, 1e9 - 1e9j])
        report = fit_auto_order(svals, data, 1e-6, max_order=10)
        assert report.converged
        assert report.order <= 6

    def test_reports_order_history(self):
        freqs = np.logspace(6, 10, 50)
        svals = 2j * np.pi * freqs
        data = synthetic_response(svals, [-1e9], [1e9])
        report = fit_auto_order(svals, data, 1e-9, max_order=8)
        assert report.orders_tried[0] == 2
        assert len(report.errors) == len(report.orders_tried)

    def test_invalid_bound_rejected(self):
        with pytest.raises(FittingError):
            fit_auto_order(2j * np.pi * np.logspace(6, 9, 20), np.ones(20), -1.0)


class TestRationalFunction:
    def test_evaluation_scalar_and_vector(self):
        rf = RationalFunction([-1.0], [2.0], constant=0.5)
        # H(0) = 0.5 + 2/(0 - (-1)) = 2.5
        assert rf(0.0) == pytest.approx(2.5)
        assert rf(np.array([0.0, 1j])).shape == (2,)

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ModelError):
            RationalFunction([-1.0, -2.0], [1.0])

    def test_stability_check(self):
        assert RationalFunction([-1.0 + 2j, -1.0 - 2j], [1j, -1j]).is_stable()
        assert not RationalFunction([1.0], [1.0]).is_stable()

    def test_realness_check(self):
        real_rf = RationalFunction([-1 + 2j, -1 - 2j], [0.5 + 1j, 0.5 - 1j], 0.1)
        assert real_rf.is_real()
        complex_rf = RationalFunction([-1 + 2j], [1.0])
        assert not complex_rf.is_real()

    def test_state_space_matches_transfer_function(self):
        rf = RationalFunction([-1e8, -2e9 + 5e9j, -2e9 - 5e9j],
                              [3e8, 1e9 + 2e9j, 1e9 - 2e9j], constant=0.4)
        a, b, c, e = rf.to_state_space()
        s = 2j * np.pi * 3.3e8
        h_ss = c @ np.linalg.solve(s * np.eye(a.shape[0]) - a, b) + e
        assert h_ss == pytest.approx(rf(s), rel=1e-9)

    def test_input_shifted_realisation_equivalent(self):
        rf = RationalFunction([-1e8, -2e9 + 5e9j, -2e9 - 5e9j],
                              [3e8, 1e9 + 2e9j, 1e9 - 2e9j])
        a, r, d, e = rf.to_input_shifted_state_space()
        s = 2j * np.pi * 1.1e9
        h = d @ np.linalg.solve(s * np.eye(a.shape[0]) - a, r) + e
        assert h == pytest.approx(rf(s), rel=1e-9)

    def test_proportional_term_rejected_in_state_space(self):
        rf = RationalFunction([-1.0], [1.0], proportional=2.0)
        with pytest.raises(ModelError):
            rf.to_state_space()

    def test_without_constant(self):
        rf = RationalFunction([-1.0], [1.0], constant=3.0)
        assert rf.without_constant().constant == 0.0
