"""Shared fixtures: a small nonlinear circuit and its extracted RVF model.

The fixtures are session-scoped because the training transient and the model
extraction are the expensive parts of the pipeline; many test modules can
share one extraction.
"""

import numpy as np
import pytest

from repro.checks import lockwatch
from repro.circuit import Circuit, CubicConductance, Sine, TransientOptions, transient_analysis
from repro.rvf import RVFOptions, extract_rvf_model
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft


@pytest.fixture(scope="session", autouse=True)
def lockwatch_gate():
    """Make runtime lock violations fatal when REPRO_LOCKWATCH=1 is set.

    The serving-stack locks are lockwatch-instrumented whenever the watcher
    is active, so simply running the suite exercises the sanitizer on real
    traffic; this gate turns anything it recorded into a session failure.
    """
    yield
    if lockwatch.is_enabled():
        lockwatch.assert_clean()


def build_nonlinear_lowpass(waveform, name="nonlinear_lowpass"):
    """Driven RC network with a saturating (cubic) shunt conductance."""
    circuit = Circuit(name)
    circuit.voltage_source("Vin", "in", "0", waveform, is_input=True)
    circuit.resistor("Rs", "in", "mid", 1e3)
    circuit.add(CubicConductance("Gnl", "mid", "0", g1=1e-3, g3=4e-4))
    circuit.capacitor("C1", "mid", "0", 2e-9)
    circuit.resistor("R2", "mid", "out", 2e3)
    circuit.capacitor("C2", "out", "0", 0.5e-9)
    circuit.resistor("RL", "out", "0", 10e3)
    circuit.add_output("vout", "out")
    return circuit


@pytest.fixture(scope="session")
def nonlinear_tft():
    """TFT dataset of the nonlinear low-pass trained with a quasi-static sine."""
    circuit = build_nonlinear_lowpass(Sine(offset=0.6, amplitude=0.5, frequency=1e3))
    system = circuit.build()
    trajectory = SnapshotTrajectory(system)
    transient_analysis(system, TransientOptions(t_stop=1e-3, dt=5e-6),
                       snapshot_callback=trajectory)
    return extract_tft(trajectory, default_frequency_grid(1e3, 1e9, 4), max_snapshots=100)


@pytest.fixture(scope="session")
def nonlinear_rvf(nonlinear_tft):
    """RVF extraction result for the nonlinear low-pass."""
    return extract_rvf_model(nonlinear_tft, RVFOptions(error_bound=1e-3,
                                                       max_frequency_poles=12))
