"""Hypothesis property-based tests for the core numerical building blocks."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.circuit.waveforms import BitPattern, Sine, prbs_bits
from repro.rvf import PartialFractionFunction, basis_primitive
from repro.rvf.timedomain import _phi1, _phi2
from repro.units import format_si, parse_value
from repro.vectfit import flip_unstable, sort_poles, split_real_complex
from repro.vectfit.poles import enforce_conjugate_closure

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                          allow_infinity=False)


class TestUnitProperties:
    @given(st.floats(min_value=1e-14, max_value=1e13, allow_nan=False))
    def test_format_parse_roundtrip(self, value):
        text = format_si(value, digits=9)
        token = text.replace(" ", "")
        assert parse_value(token) == pytest.approx(value, rel=1e-6)

    @given(st.floats(min_value=-1e12, max_value=1e12, allow_nan=False),
           st.sampled_from(["", "k", "m", "u", "n", "p", "meg", "g"]))
    def test_parse_value_scales_linearly(self, number, suffix):
        scale = {"": 1.0, "k": 1e3, "m": 1e-3, "u": 1e-6, "n": 1e-9,
                 "p": 1e-12, "meg": 1e6, "g": 1e9}[suffix]
        assert parse_value(f"{number}{suffix}") == pytest.approx(number * scale, rel=1e-12)


class TestPoleProperties:
    complex_poles = st.lists(
        st.complex_numbers(min_magnitude=1e-3, max_magnitude=1e6,
                           allow_nan=False, allow_infinity=False),
        min_size=1, max_size=8)

    @given(complex_poles)
    def test_flip_unstable_makes_all_poles_stable(self, poles):
        flipped = flip_unstable(np.array(poles))
        assert np.all(flipped.real < 0)

    @given(complex_poles)
    def test_flip_unstable_preserves_magnitude_of_imaginary_part(self, poles):
        poles = np.array(poles)
        flipped = flip_unstable(poles)
        assert np.allclose(np.abs(flipped.imag), np.abs(poles.imag))

    @given(complex_poles)
    def test_sort_poles_preserves_count(self, poles):
        assert len(sort_poles(np.array(poles))) == len(poles)

    @given(complex_poles)
    def test_enforce_closure_is_conjugate_closed(self, poles):
        closed = enforce_conjugate_closure(np.array(poles))
        assert len(closed) == len(poles)
        # Every complex pole must have a conjugate partner in the set.
        for p in closed:
            if p.imag != 0:
                distances = np.abs(closed - np.conj(p))
                assert distances.min() < 1e-9 * max(abs(p), 1.0)

    @given(complex_poles)
    def test_split_real_complex_partitions_conjugate_closed_sets(self, poles):
        closed = sort_poles(enforce_conjugate_closure(np.array(poles)))
        real_idx, pair_idx = split_real_complex(closed)
        assert len(real_idx) + 2 * len(pair_idx) == len(closed)


class TestCalculusProperties:
    @given(st.complex_numbers(min_magnitude=1e-2, max_magnitude=10.0,
                              allow_nan=False, allow_infinity=False),
           st.floats(min_value=-3.0, max_value=3.0, allow_nan=False))
    def test_basis_primitive_derivative_is_basis_function(self, pole, u):
        assume(abs(pole.real) > 1e-2)
        h = 1e-5
        numeric = (basis_primitive(u + h, pole) - basis_primitive(u - h, pole)) / (2 * h)
        exact = 1.0 / (1j * u - pole)
        assert numeric == pytest.approx(exact, rel=1e-3, abs=1e-6)

    @given(st.lists(st.complex_numbers(min_magnitude=0.1, max_magnitude=5.0,
                                       allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=4),
           st.floats(min_value=-2.0, max_value=2.0))
    def test_partial_fraction_antiderivative_roundtrip(self, poles, u):
        poles = np.array([p if abs(p.real) > 0.05 else p + 0.1 for p in poles])
        coeffs = np.ones(len(poles))
        f = PartialFractionFunction(poles, coeffs, constant=0.3)
        F = f.antiderivative()
        h = 1e-5
        numeric = (F(u + h) - F(u - h)) / (2 * h)
        assert numeric == pytest.approx(f(u), rel=1e-3, abs=1e-5)

    @given(st.floats(min_value=-30.0, max_value=30.0, allow_nan=False))
    def test_phi_functions_match_definitions(self, z_real):
        z = complex(z_real, 0.0)
        assume(abs(z) > 1e-3)
        assert complex(_phi1(z)) == pytest.approx((np.exp(z) - 1) / z, rel=1e-6)
        assert complex(_phi2(z)) == pytest.approx((np.exp(z) - 1 - z) / z ** 2, rel=1e-4)

    @given(st.complex_numbers(max_magnitude=1e-7, allow_nan=False, allow_infinity=False))
    def test_phi_functions_near_zero_limits(self, z):
        assert complex(_phi1(z)) == pytest.approx(1.0, abs=1e-6)
        assert complex(_phi2(z)) == pytest.approx(0.5, abs=1e-6)


class TestWaveformProperties:
    @given(st.floats(min_value=0.0, max_value=1e-6),
           st.floats(min_value=0.1, max_value=2.0),
           st.floats(min_value=-1.0, max_value=1.0))
    def test_sine_bounded_by_offset_plus_amplitude(self, t, amplitude, offset):
        wave = Sine(offset=offset, amplitude=amplitude, frequency=10e6)
        assert offset - amplitude - 1e-12 <= wave(t) <= offset + amplitude + 1e-12

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=0, max_value=2**20))
    def test_prbs_bits_are_binary(self, n_bits, seed):
        bits = prbs_bits(n_bits, seed=seed)
        assert len(bits) == n_bits
        assert set(bits) <= {0, 1}

    @settings(max_examples=25)
    @given(st.integers(min_value=2, max_value=32),
           st.floats(min_value=0.0, max_value=1.0),
           st.floats(min_value=1.1, max_value=2.0))
    def test_bit_pattern_stays_within_levels(self, n_bits, low, high):
        pattern = BitPattern(bits=prbs_bits(n_bits), bit_rate=1e9, low=low, high=high)
        times = np.linspace(0, pattern.duration * 1.2, 200)
        values = pattern.sample(times)
        assert values.min() >= low - 1e-9
        assert values.max() <= high + 1e-9
