"""Tests of the compiled model runtime: compile, batch-serve, registry, validate."""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
from repro.analysis import batched_waveform_errors
from repro.circuit import Sine, TransientOptions
from repro.circuits import build_rc_ladder
from repro.exceptions import ModelError, RegistryError
from repro.rvf import RVFOptions, extract_rvf_model, simulate_hammerstein
from repro.rvf.hammerstein import HammersteinBranch, HammersteinModel
from repro.rvf.residues import PartialFractionFunction
from repro.runtime import (
    CompiledModel,
    ModelHandle,
    ModelRegistry,
    compile_model,
    content_hash,
    stack_stimuli,
    validate_model,
)
from repro.runtime.registry import INDEX_NAME
from repro.sweep import SweepOptions, run_sweep, waveform_sweep
from repro.tft.state_estimator import StateEstimator


def synthetic_model() -> HammersteinModel:
    """A small analytic model with one complex pair and one real branch."""
    def pf(poles, coeffs, const):
        return PartialFractionFunction(np.asarray(poles, complex),
                                       np.asarray(coeffs, complex), const)

    gain = pf([-2.0 + 0.5j], [0.3 + 0.1j], 1.2)
    pair_residue = pf([-1.5 + 0.2j], [0.2 - 0.05j], 0.4 + 0.2j)
    real_residue = pf([-1.0], [0.15], 0.2)
    branches = [
        HammersteinBranch(pole=-3e7 + 1e8j, residue_function=pair_residue,
                          static_function=pair_residue.antiderivative()
                          .with_value_at(0.5, 0.0),
                          is_complex_pair=True),
        HammersteinBranch(pole=-5e7, residue_function=real_residue,
                          static_function=real_residue.antiderivative()
                          .with_value_at(0.5, 0.0),
                          is_complex_pair=False),
    ]
    return HammersteinModel(
        branches=branches, gain_function=gain,
        static_function=gain.antiderivative().with_value_at(0.5, 0.3),
        state_estimator=StateEstimator(), dc_input=0.5, dc_output=0.3)


@pytest.fixture(scope="module")
def compiled():
    return compile_model(synthetic_model(), dt=1e-9, input_range=(0.0, 1.0))


def make_stimulus(n_steps=300, dt=1e-9):
    times = dt * np.arange(n_steps)
    return times, 0.5 + 0.4 * np.sin(2e6 * 2 * np.pi * times * 3) \
        + 0.05 * np.sin(4e7 * 2 * np.pi * times)


class TestCompile:
    def test_matches_analytical_simulation(self, compiled):
        model = synthetic_model()
        times, u = make_stimulus()
        reference = simulate_hammerstein(model, times, u).outputs
        served = compiled.evaluate(u)
        scale = float(np.max(np.abs(reference)))
        assert np.max(np.abs(served - reference)) < 1e-7 * scale

    def test_shapes_and_metadata(self, compiled):
        assert compiled.n_branches == 2
        assert compiled.n_states == 4
        assert compiled.c_out.tolist() == [2.0, 0.0, 1.0, 0.0]
        assert compiled.metadata["dc_input"] == 0.5
        assert compiled.sample_rate == pytest.approx(1e9)

    def test_single_and_batch_rows_agree(self, compiled):
        _, u = make_stimulus()
        batch = np.vstack([u, 0.5 * u + 0.25, np.full_like(u, 0.4)])
        single_rows = [compiled.evaluate(row) for row in batch]
        outputs = compiled.evaluate(batch)
        assert outputs.shape == batch.shape
        for row, single in zip(outputs, single_rows):
            np.testing.assert_array_equal(row, single)

    def test_chunking_is_bitwise_stable(self, compiled):
        rng = np.random.default_rng(7)
        batch = 0.5 + 0.3 * rng.standard_normal((17, 64))
        full = compiled.evaluate(batch)
        tiny_chunks = compiled.evaluate(batch, max_chunk_bytes=1)
        np.testing.assert_array_equal(full, tiny_chunks)

    def test_out_of_range_inputs_clamp_to_table_edges(self, compiled):
        inside = compiled.evaluate(np.full(32, compiled.u_max))
        outside = compiled.evaluate(np.full(32, compiled.u_max + 10.0))
        np.testing.assert_array_equal(inside, outside)

    def test_recurrence_matches_timedomain_weights(self):
        from repro.rvf.timedomain import phi1, phi2
        branch = synthetic_model().branches[0]
        expz, w0, w1 = branch.recurrence(2e-9)
        z = branch.pole * 2e-9
        assert expz == pytest.approx(np.exp(z))
        assert w0 == pytest.approx(2e-9 * phi1(z))
        assert w1 == pytest.approx(2e-9 * phi2(z))

    def test_invalid_arguments_rejected(self):
        model = synthetic_model()
        with pytest.raises(ModelError, match="dt"):
            compile_model(model, dt=0.0, input_range=(0.0, 1.0))
        with pytest.raises(ModelError, match="input_range"):
            compile_model(model, dt=1e-9, input_range=(1.0, 1.0))
        with pytest.raises(ModelError, match="table_size"):
            compile_model(model, dt=1e-9, input_range=(0.0, 1.0), table_size=1)
        delayed = HammersteinModel(
            branches=model.branches, gain_function=model.gain_function,
            static_function=model.static_function,
            state_estimator=StateEstimator(delays=(1e-9,)),
            dc_input=0.5, dc_output=0.3)
        with pytest.raises(ModelError, match="one-dimensional"):
            compile_model(delayed, dt=1e-9, input_range=(0.0, 1.0))

    def test_stack_stimuli_samples_waveforms(self, compiled):
        times = compiled.time_axis(50)
        stack = stack_stimuli([Sine(0.5, 0.1, 1e6), Sine(0.5, 0.2, 2e6)], times)
        assert stack.shape == (2, 50)
        np.testing.assert_allclose(stack[0], Sine(0.5, 0.1, 1e6).sample(times))

    def test_non_finite_stimuli_rejected_with_row_named(self, compiled):
        """NaN/Inf must raise, not silently index garbage table entries."""
        batch = np.full((4, 32), 0.5)
        batch[2, 7] = np.nan
        with pytest.raises(ModelError, match=r"row 2.*step 7"):
            compiled.evaluate(batch)
        batch[2, 7] = np.inf
        with pytest.raises(ModelError, match="non-finite"):
            compiled.evaluate(batch)
        single = np.full(16, 0.5)
        single[3] = -np.inf
        with pytest.raises(ModelError, match="row 0"):
            compiled.evaluate(single)


class TestModelSerialization:
    def test_dict_round_trip_reproduces_simulation(self):
        model = synthetic_model()
        clone = HammersteinModel.from_dict(model.to_dict())
        times, u = make_stimulus(120)
        np.testing.assert_array_equal(simulate_hammerstein(model, times, u).outputs,
                                      simulate_hammerstein(clone, times, u).outputs)

    def test_dict_is_jsonable(self):
        json.dumps(synthetic_model().to_dict())

    def test_opaque_functions_rejected(self):
        model = synthetic_model()
        model.gain_function = lambda x: np.ones(len(x))
        with pytest.raises(ModelError, match="serialise"):
            model.to_dict()


class TestRegistry:
    def test_round_trip_is_bitwise(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path / "models")
        key = registry.save(compiled, provenance={"origin": "unit-test"})
        assert key == content_hash(compiled)
        assert key in registry and len(registry) == 1
        loaded = registry.load(key)
        _, u = make_stimulus()
        batch = np.vstack([u, u[::-1]])
        np.testing.assert_array_equal(compiled.evaluate(batch),
                                      loaded.evaluate(batch))
        assert registry.provenance(key) == {"origin": "unit-test"}

    def test_save_is_idempotent_and_content_addressed(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key1 = registry.save(compiled)
        key2 = registry.save(compile_model(synthetic_model(), dt=1e-9,
                                           input_range=(0.0, 1.0)))
        assert key1 == key2 and len(registry) == 1
        other = compile_model(synthetic_model(), dt=2e-9, input_range=(0.0, 1.0))
        assert registry.save(other) != key1 and len(registry) == 2

    def test_resave_merges_provenance_instead_of_dropping_it(self, compiled,
                                                             tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled, provenance={"sweep": "training-run"})
        registry.save(compiled)                          # no provenance given
        assert registry.provenance(key) == {"sweep": "training-run"}
        registry.save(compiled, provenance={"promoted": True})
        assert registry.provenance(key) == {"sweep": "training-run",
                                            "promoted": True}
        assert registry.load(key).dt == compiled.dt

    def test_missing_key_raises(self, tmp_path):
        with pytest.raises(RegistryError, match="no registry entry"):
            ModelRegistry(tmp_path).load("deadbeef")

    def test_truncated_archive_detected(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        npz = tmp_path / f"{key}.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        with pytest.raises(RegistryError, match="corrupt|integrity"):
            registry.load(key)

    def test_tampered_metadata_detected(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        meta_path = tmp_path / f"{key}.json"
        record = json.loads(meta_path.read_text())
        record["dt"] = record["dt"] * 2.0   # mismatch with hashed arrays
        meta_path.write_text(json.dumps(record))
        with pytest.raises(RegistryError, match="integrity"):
            registry.load(key)
        # verify=False trusts the files (for forensics, not serving).
        assert registry.load(key, verify=False).dt == record["dt"]

    def test_unsupported_format_rejected(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        meta_path = tmp_path / f"{key}.json"
        record = json.loads(meta_path.read_text())
        record["format"] = "compiled-hammerstein-v999"
        meta_path.write_text(json.dumps(record))
        with pytest.raises(RegistryError, match="format"):
            registry.load(key)

    def test_remove(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        registry.remove(key)
        assert key not in registry
        with pytest.raises(RegistryError):
            registry.remove(key)

    def test_identical_resave_leaves_files_untouched(self, compiled, tmp_path):
        """Acceptance: idempotent save — same content hash, zero writes."""
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled, provenance={"origin": "first"})
        paths = [tmp_path / f"{key}.npz", tmp_path / f"{key}.json",
                 tmp_path / INDEX_NAME]
        before = [(p.stat().st_mtime_ns, p.read_bytes()) for p in paths]
        assert registry.save(compiled) == key                  # no provenance
        assert registry.save(compiled,
                             provenance={"origin": "first"}) == key  # same keys
        after = [(p.stat().st_mtime_ns, p.read_bytes()) for p in paths]
        assert before == after
        # New provenance keys do rewrite the metadata record (merged).
        registry.save(compiled, provenance={"promoted": True})
        assert (tmp_path / f"{key}.json").stat().st_mtime_ns != before[1][0]
        assert registry.provenance(key) == {"origin": "first", "promoted": True}

    def test_changed_metadata_under_same_key_is_not_discarded(self, tmp_path):
        """content_hash excludes metadata, so a re-save with new metadata
        must rewrite the record — idempotency is record-wide, not
        provenance-only."""
        registry = ModelRegistry(tmp_path)
        model_v1 = compile_model(synthetic_model(), dt=1e-9,
                                 input_range=(0.0, 1.0), metadata={"note": "v1"})
        model_v2 = compile_model(synthetic_model(), dt=1e-9,
                                 input_range=(0.0, 1.0), metadata={"note": "v2"})
        key = registry.save(model_v1)
        assert registry.save(model_v2) == key       # same content hash
        assert registry.load(key).metadata["note"] == "v2"

    def test_fresh_process_reproduces_identical_outputs(self, compiled, tmp_path):
        """Acceptance: save here, load in a new interpreter, bitwise match."""
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        _, u = make_stimulus(200)
        batch = np.vstack([u, 0.3 + 0.2 * np.cos(np.arange(u.size) / 5.0)])
        expected = compiled.evaluate(batch)
        np.save(tmp_path / "stimuli.npy", batch)

        src = Path(repro.__file__).resolve().parent.parent
        script = (
            "import numpy as np\n"
            "from repro.runtime import ModelRegistry\n"
            f"registry = ModelRegistry({str(tmp_path)!r})\n"
            f"model = registry.load({key!r})\n"
            f"batch = np.load({str(tmp_path / 'stimuli.npy')!r})\n"
            f"np.save({str(tmp_path / 'served.npy')!r}, model.evaluate(batch))\n"
        )
        subprocess.run([sys.executable, "-c", script], check=True,
                       env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin"})
        served = np.load(tmp_path / "served.npy")
        np.testing.assert_array_equal(served, expected)


class TestRegistryIndex:
    """The persistent index must accelerate keys() without ever lying."""

    def test_index_file_created_and_keys_served_from_it(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        assert (tmp_path / INDEX_NAME).exists()
        assert registry.keys() == [key]
        assert key in registry and len(registry) == 1
        # Prove keys() is answered by the index, not a directory scan: plant
        # a bogus entry through the registry's own (freshness-stamping)
        # index writer and observe it echoed back verbatim.
        planted = dict(registry._ensure_index())
        planted["entries"] = {**planted["entries"], "bogus": {"nbytes": 1}}
        registry._write_index(planted)
        assert ModelRegistry(tmp_path).keys() == sorted(["bogus", key])
        # rebuild_index() is the reconciliation for exactly that situation.
        registry.rebuild_index()
        assert ModelRegistry(tmp_path).keys() == [key]

    def test_corrupt_index_is_rebuilt_transparently(self, compiled, tmp_path):
        """Acceptance: index corruption never breaks the registry."""
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        index_path = tmp_path / INDEX_NAME
        for garbage in ("not json{{", json.dumps({"version": 999}),
                        json.dumps([1, 2, 3]), ""):
            index_path.write_text(garbage)
            fresh = ModelRegistry(tmp_path)
            assert fresh.keys() == [key]
            assert json.loads(index_path.read_text())["entries"][key]
            np.testing.assert_array_equal(fresh.load(key).static_table,
                                          compiled.static_table)

    def test_foreign_writes_detected_as_stale(self, compiled, tmp_path):
        """Files added/removed behind the registry's back are picked up."""
        source = ModelRegistry(tmp_path / "source")
        target = ModelRegistry(tmp_path / "target")
        key = source.save(compiled)
        assert target.keys() == []
        # Foreign addition: copy the entry files directly (no registry API).
        target.root.mkdir(parents=True, exist_ok=True)
        assert target.keys() == []
        for suffix in (".npz", ".json"):
            (target.root / f"{key}{suffix}").write_bytes(
                (source.root / f"{key}{suffix}").read_bytes())
        assert target.keys() == [key]
        assert key in target
        # Foreign deletion: unlink directly; the stale index must rebuild.
        (target.root / f"{key}.npz").unlink()
        (target.root / f"{key}.json").unlink()
        assert target.keys() == []
        assert key not in target

    def test_remove_updates_index(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        registry.remove(key)
        assert registry.keys() == []
        assert key not in json.loads(
            (tmp_path / INDEX_NAME).read_text())["entries"]

    def test_entry_nbytes_matches_disk(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        expected = ((tmp_path / f"{key}.npz").stat().st_size
                    + (tmp_path / f"{key}.json").stat().st_size)
        assert registry.entry_nbytes(key) == expected
        with pytest.raises(RegistryError, match="no registry entry"):
            registry.entry_nbytes("deadbeef")

    def test_missing_root_behaves_like_empty(self, tmp_path):
        registry = ModelRegistry(tmp_path / "never-created")
        assert registry.keys() == []
        assert "deadbeef" not in registry
        with pytest.raises(RegistryError):
            registry.entry_nbytes("deadbeef")

    def test_load_of_indexed_but_deleted_entry_raises_and_heals(self, compiled,
                                                                tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        (tmp_path / f"{key}.npz").unlink()
        with pytest.raises(RegistryError, match="no registry entry"):
            registry.load(key)
        assert key not in json.loads(
            (tmp_path / INDEX_NAME).read_text())["entries"]

    def test_failed_load_does_not_hide_foreign_additions(self, compiled,
                                                         tmp_path):
        """A load() that heals the index must not stamp staleness away:
        entries copied in alongside a foreign deletion stay discoverable."""
        source = ModelRegistry(tmp_path / "source")
        other = compile_model(synthetic_model(), dt=2e-9,
                              input_range=(0.0, 1.0))
        other_key = source.save(other)
        registry = ModelRegistry(tmp_path / "reg")
        key = registry.save(compiled)
        # Foreign sync: delete the known entry's files, copy a new entry in.
        (registry.root / f"{key}.npz").unlink()
        (registry.root / f"{key}.json").unlink()
        for suffix in (".npz", ".json"):
            (registry.root / f"{other_key}{suffix}").write_bytes(
                (source.root / f"{other_key}{suffix}").read_bytes())
        with pytest.raises(RegistryError, match="no registry entry"):
            registry.load(key)
        assert registry.keys() == [other_key]
        assert other_key in registry


class TestModelHandle:
    def test_handle_round_trips_through_pickle(self, compiled, tmp_path):
        import pickle

        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        handle = registry.handle(key)
        clone = pickle.loads(pickle.dumps(handle))
        assert clone == handle
        loaded = clone.load()
        _, u = make_stimulus(100)
        np.testing.assert_array_equal(loaded.evaluate(u), compiled.evaluate(u))

    def test_handle_for_unknown_key_rejected(self, tmp_path):
        with pytest.raises(RegistryError, match="no registry entry"):
            ModelRegistry(tmp_path).handle("deadbeef")

    def test_handle_load_verifies_integrity(self, compiled, tmp_path):
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled)
        handle = registry.handle(key)
        npz = tmp_path / f"{key}.npz"
        npz.write_bytes(npz.read_bytes()[: npz.stat().st_size // 2])
        with pytest.raises(RegistryError, match="corrupt|integrity"):
            handle.load()


class TestValidationHarness:
    @pytest.fixture(scope="class")
    def family(self):
        transient = TransientOptions(t_stop=1e-6, dt=1e-8)
        scenarios = waveform_sweep(
            build_rc_ladder, [Sine(0.5, a, 2e5) for a in (0.1, 0.25, 0.4)],
            transient=transient, builder_kwargs={"n_sections": 2})
        sweep = run_sweep(scenarios)
        dataset = sweep.extract_combined_tft(max_snapshots=40)
        extraction = extract_rvf_model(dataset, RVFOptions(error_bound=5e-3))
        lo = float(dataset.state_axis().min())
        hi = float(dataset.state_axis().max())
        compiled = compile_model(extraction.model, dt=1e-8,
                                 input_range=(lo - 0.05, hi + 0.05))
        return {"scenarios": scenarios, "sweep": sweep,
                "extraction": extraction, "compiled": compiled}

    def test_error_bound_recorded_at_compile_time(self, family):
        assert family["compiled"].error_bound == pytest.approx(5e-3)

    def test_family_validates_within_extraction_bound(self, family):
        """Acceptance: model-vs-sim error within the extraction's bound."""
        report = validate_model(family["compiled"], family["scenarios"])
        assert report.n_scenarios == 3
        assert report.error_bound == pytest.approx(5e-3)
        assert report.within_bound, report.summary()
        assert report.max_relative_rmse <= 5e-3
        assert "PASS" in report.summary()
        rendered = report.render()
        assert all(row.name in rendered for row in report.rows)

    def test_precomputed_sweep_reused(self, family):
        report = validate_model(family["compiled"], family["scenarios"],
                                sweep_result=family["sweep"])
        assert report.within_bound

    def test_adaptive_sweep_validates_within_bound(self, family):
        """Acceptance: validation replays on LTE-controlled transients.

        The simulator reference then lives on a non-uniform time grid; the
        harness must resample it onto the compiled model's uniform ``dt``
        before computing any RMSE.
        """
        scenarios = [s.with_transient(adaptive=True, lte_rel_tol=1e-4,
                                      max_dt_factor=10.0)
                     for s in family["scenarios"]]
        sweep = run_sweep(scenarios, SweepOptions(capture_snapshots=False))
        grids = [np.diff(r.transient.times) for r in sweep.results]
        assert all(g.max() > 1.5 * g.min() for g in grids)   # non-uniform
        fixed_steps = family["sweep"].results[0].transient.accepted_steps
        assert all(r.transient.accepted_steps < fixed_steps for r in sweep.results)
        report = validate_model(family["compiled"], scenarios, sweep_result=sweep)
        assert report.within_bound, report.summary()

    def test_mismatched_sweep_result_rejected(self, family):
        with pytest.raises(ModelError, match="exactly these scenarios"):
            validate_model(family["compiled"], family["scenarios"][:2],
                           sweep_result=family["sweep"])

    def test_mixed_time_windows_rejected(self, family):
        scenarios = list(family["scenarios"])
        scenarios[1] = scenarios[1].with_transient(t_stop=2e-6)
        with pytest.raises(ModelError, match="time window"):
            validate_model(family["compiled"], scenarios)

    def test_explicit_bound_overrides_metadata(self, family):
        report = validate_model(family["compiled"], family["scenarios"],
                                sweep_result=family["sweep"],
                                error_bound=1e-12)
        assert not report.within_bound


class TestBatchedErrorMetrics:
    def test_row_wise_metrics(self):
        reference = np.array([[1.0, 1.0, 1.0], [0.0, 0.0, 0.0]])
        model = np.array([[1.1, 1.0, 1.0], [0.5, 0.0, 0.0]])
        report = batched_waveform_errors(reference, model)
        assert report.n_waveforms == 2
        assert report.rmse[0] == pytest.approx(0.1 / np.sqrt(3))
        # Zero reference row: relative falls back to the absolute RMSE.
        assert report.relative_rmse[1] == pytest.approx(report.rmse[1])
        assert report.worst_index == 1
        assert "max relative RMSE" in report.summary()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same shape"):
            batched_waveform_errors(np.zeros((2, 3)), np.zeros((2, 4)))


class TestProvenance:
    def test_scenario_recipe_is_jsonable(self):
        scenario = waveform_sweep(build_rc_ladder, [Sine(0.5, 0.1, 1e5)],
                                  builder_kwargs={"n_sections": 2})[0]
        recipe = scenario.recipe()
        json.dumps(recipe)
        assert "build_rc_ladder" in recipe["builder"]
        assert recipe["builder_kwargs"] == {"n_sections": 2}
        assert recipe["waveform"]["class"] == "Sine"

    def test_sweep_provenance_threads_into_registry(self, compiled, tmp_path):
        transient = TransientOptions(t_stop=2e-7, dt=2e-9)
        scenarios = waveform_sweep(build_rc_ladder, [Sine(0.5, 0.1, 1e6)],
                                   transient=transient,
                                   builder_kwargs={"n_sections": 1})
        sweep = run_sweep(scenarios)
        registry = ModelRegistry(tmp_path)
        key = registry.save(compiled, provenance=sweep.provenance())
        stored = registry.provenance(key)
        assert [s["name"] for s in stored["scenarios"]] == ["wave0"]
        assert stored["failed"] == []
