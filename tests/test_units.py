"""Tests for engineering-unit parsing and formatting."""

import math

import pytest

from repro.exceptions import NetlistParseError
from repro.units import format_si, parse_value


class TestParseValue:
    def test_plain_integer(self):
        assert parse_value("42") == 42.0

    def test_plain_float(self):
        assert parse_value("3.14") == pytest.approx(3.14)

    def test_scientific_notation(self):
        assert parse_value("1e-9") == pytest.approx(1e-9)

    def test_negative_value(self):
        assert parse_value("-2.5") == pytest.approx(-2.5)

    def test_kilo_suffix(self):
        assert parse_value("10k") == pytest.approx(10e3)

    def test_meg_suffix(self):
        assert parse_value("1meg") == pytest.approx(1e6)

    def test_meg_differs_from_milli(self):
        assert parse_value("1m") == pytest.approx(1e-3)
        assert parse_value("1MEG") == pytest.approx(1e6)

    def test_micro_suffix(self):
        assert parse_value("2.5u") == pytest.approx(2.5e-6)

    def test_nano_suffix(self):
        assert parse_value("100n") == pytest.approx(100e-9)

    def test_pico_suffix(self):
        assert parse_value("3p") == pytest.approx(3e-12)

    def test_femto_suffix(self):
        assert parse_value("5f") == pytest.approx(5e-15)

    def test_giga_suffix(self):
        assert parse_value("2.5g") == pytest.approx(2.5e9)

    def test_tera_suffix(self):
        assert parse_value("1t") == pytest.approx(1e12)

    def test_suffix_with_unit_text(self):
        assert parse_value("100pF") == pytest.approx(100e-12)

    def test_bare_unit_has_no_scale(self):
        assert parse_value("5V") == pytest.approx(5.0)

    def test_case_insensitive(self):
        assert parse_value("10K") == pytest.approx(10e3)

    def test_numeric_passthrough(self):
        assert parse_value(7) == 7.0
        assert parse_value(2.5) == 2.5

    def test_invalid_token_raises(self):
        with pytest.raises(NetlistParseError):
            parse_value("abc")

    def test_empty_string_raises(self):
        with pytest.raises(NetlistParseError):
            parse_value("")


class TestFormatSi:
    def test_zero(self):
        assert format_si(0.0, "V") == "0 V"

    def test_kilo(self):
        assert format_si(4700.0, "Ohm") == "4.7 kOhm"

    def test_nano(self):
        assert format_si(2.2e-9, "s") == "2.2 ns"

    def test_unity_range(self):
        assert format_si(3.3, "V") == "3.3 V"

    def test_negative(self):
        assert "-1.5" in format_si(-1.5e-3, "A")

    def test_no_unit(self):
        assert format_si(1e6) == "1 M"

    def test_nan_and_inf(self):
        assert "nan" in format_si(float("nan")).lower()
        assert "inf" in format_si(math.inf).lower()

    def test_roundtrip_with_parse(self):
        text = format_si(4.7e-12, "F")
        number = text.split()[0] + text.split()[1][0]
        assert parse_value(number) == pytest.approx(4.7e-12, rel=1e-6)


class TestStrictSpiceMode:
    """Uppercase M: SI mega by default, classic milli for netlist tokens."""

    def test_default_uppercase_m_is_mega(self):
        assert parse_value("1M") == pytest.approx(1e6)

    def test_strict_spice_uppercase_m_is_milli(self):
        assert parse_value("1M", strict_spice=True) == pytest.approx(1e-3)

    def test_strict_spice_meg_still_mega(self):
        assert parse_value("1MEG", strict_spice=True) == pytest.approx(1e6)

    def test_netlist_parser_uses_strict_spice(self):
        from repro.circuit.parser import parse_netlist
        circuit = parse_netlist("""* strict spice semantics
V1 in 0 DC 1 input
C1 in 0 1M
.output v in
""")
        cap = next(d for d in circuit.devices if d.name == "C1")
        assert cap.capacitance == pytest.approx(1e-3)
