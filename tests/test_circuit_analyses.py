"""Tests for the MNA assembly and the DC / AC / transient analyses."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    DCOptions,
    NewtonOptions,
    Sine,
    TransientOptions,
    ac_analysis,
    dc_operating_point,
    frequency_grid,
    newton_solve,
    transient_analysis,
)
from repro.circuits import build_diode_limiter, build_rc_ladder
from repro.exceptions import CircuitError, ConvergenceError


def voltage_divider(ratio_top=1e3, ratio_bottom=1e3):
    circuit = Circuit("divider")
    circuit.voltage_source("Vin", "in", "0", 2.0, is_input=True)
    circuit.resistor("R1", "in", "out", ratio_top)
    circuit.resistor("R2", "out", "0", ratio_bottom)
    circuit.add_output("vout", "out")
    return circuit


class TestMNASystem:
    def test_unknown_counts(self):
        system = voltage_divider().build()
        assert system.n_nodes == 2
        assert system.n_branches == 1
        assert system.n_unknowns == 3

    def test_labels(self):
        labels = voltage_divider().build().unknown_labels()
        assert "v(in)" in labels and "v(out)" in labels and "i(Vin)" in labels

    def test_input_matrix_shape(self):
        system = voltage_divider().build()
        assert system.input_matrix.shape == (3, 1)

    def test_output_matrix_selects_node(self):
        system = voltage_divider().build()
        out_col = system.output_matrix[:, 0]
        assert out_col[system.node_index["out"]] == 1.0
        assert np.sum(np.abs(out_col)) == 1.0

    def test_differential_output(self):
        circuit = voltage_divider()
        circuit.add_output("vdiff", "in", "out")
        system = circuit.build()
        assert system.n_outputs == 2
        col = system.output_matrix[:, 1]
        assert col[system.node_index["in"]] == 1.0
        assert col[system.node_index["out"]] == -1.0

    def test_requires_input_source(self):
        circuit = Circuit("no_input")
        circuit.voltage_source("V1", "a", "0", 1.0)
        circuit.resistor("R1", "a", "0", 1e3)
        circuit.add_output("va", "a")
        with pytest.raises(CircuitError):
            circuit.build()

    def test_requires_output(self):
        circuit = Circuit("no_output")
        circuit.voltage_source("V1", "a", "0", 1.0, is_input=True)
        circuit.resistor("R1", "a", "0", 1e3)
        with pytest.raises(CircuitError):
            circuit.build()

    def test_duplicate_device_name_rejected(self):
        circuit = Circuit("dup")
        circuit.resistor("R1", "a", "0", 1.0)
        with pytest.raises(CircuitError):
            circuit.resistor("R1", "b", "0", 1.0)

    def test_excitation_combines_inputs_and_fixed_sources(self):
        circuit = Circuit("mixed")
        circuit.voltage_source("VDD", "vdd", "0", 1.2)
        circuit.voltage_source("Vin", "in", "0", 0.4, is_input=True)
        circuit.resistor("R1", "vdd", "in", 1e3)
        circuit.add_output("vin", "in")
        system = circuit.build()
        excitation = system.excitation(0.0)
        assert excitation.sum() == pytest.approx(1.2 + 0.4)

    def test_component_count_summary(self):
        counts = voltage_divider().component_count()
        assert counts["Resistor"] == 2
        assert counts["VoltageSource"] == 1


class TestNewton:
    def test_solves_linear_system_in_one_iteration(self):
        a = np.array([[2.0, 0.0], [0.0, 4.0]])
        b = np.array([2.0, 8.0])

        def f(v):
            return a @ v - b, a

        result = newton_solve(f, np.zeros(2), NewtonOptions(max_step=10.0))
        assert result.converged
        assert result.solution == pytest.approx([1.0, 2.0])

    def test_solves_scalar_nonlinear_equation(self):
        def f(v):
            return np.array([v[0] ** 3 - 8.0]), np.array([[3.0 * v[0] ** 2]])

        result = newton_solve(f, np.array([1.0]), NewtonOptions(max_step=5.0))
        assert result.converged
        assert result.solution[0] == pytest.approx(2.0)

    def test_reports_non_convergence(self):
        def f(v):
            return np.array([np.sign(v[0]) * 1.0 + 1e-3]), np.array([[1e-12]])

        result = newton_solve(f, np.array([0.5]),
                              NewtonOptions(max_iterations=5, max_step=0.1))
        assert not result.converged


class TestDCAnalysis:
    def test_voltage_divider(self):
        result = dc_operating_point(voltage_divider().build())
        assert result.outputs[0] == pytest.approx(1.0)

    def test_unequal_divider(self):
        result = dc_operating_point(voltage_divider(3e3, 1e3).build())
        assert result.outputs[0] == pytest.approx(0.5)

    def test_voltage_lookup_by_node(self):
        system = voltage_divider().build()
        result = dc_operating_point(system)
        assert result.voltage(system, "in") == pytest.approx(2.0)
        assert result.voltage(system, "0") == 0.0

    def test_diode_forward_drop(self):
        circuit = Circuit("diode_dc")
        circuit.voltage_source("Vin", "in", "0", 1.0, is_input=True)
        circuit.resistor("R1", "in", "d", 1e3)
        circuit.diode("D1", "d", "0")
        circuit.add_output("vd", "d")
        result = dc_operating_point(circuit.build())
        assert 0.4 < result.outputs[0] < 0.8

    def test_strategy_reported(self):
        result = dc_operating_point(voltage_divider().build())
        assert result.strategy in ("newton", "gmin-stepping", "source-stepping")

    def test_current_source_into_resistor(self):
        circuit = Circuit("isrc")
        circuit.current_source("I1", "0", "a", 1e-3, is_input=True)
        circuit.resistor("R1", "a", "0", 1e3)
        circuit.add_output("va", "a")
        result = dc_operating_point(circuit.build())
        assert result.outputs[0] == pytest.approx(1.0)

    def test_initial_guess_is_used(self):
        system = voltage_divider().build()
        guess = np.array([2.0, 1.0, -1e-3])
        result = dc_operating_point(system, initial_guess=guess)
        assert result.converged if hasattr(result, "converged") else True
        assert result.outputs[0] == pytest.approx(1.0)

    def test_time_dependent_source_evaluated_at_t(self):
        circuit = Circuit("sine_dc")
        circuit.voltage_source("Vin", "a", "0", Sine(offset=1.0, amplitude=0.5, frequency=1e6),
                               is_input=True)
        circuit.resistor("R1", "a", "0", 1e3)
        circuit.add_output("va", "a")
        system = circuit.build()
        at_zero = dc_operating_point(system, t=0.0)
        at_quarter = dc_operating_point(system, t=0.25e-6)
        assert at_zero.outputs[0] == pytest.approx(1.0)
        assert at_quarter.outputs[0] == pytest.approx(1.5)


class TestACAnalysis:
    def test_frequency_grid_bounds(self):
        grid = frequency_grid(1e3, 1e6, 10)
        assert grid[0] == pytest.approx(1e3)
        assert grid[-1] == pytest.approx(1e6)

    def test_frequency_grid_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            frequency_grid(1e6, 1e3)

    def test_rc_low_pass_gain_and_bandwidth(self):
        circuit = build_rc_ladder(n_sections=1, resistance=1e3, capacitance=1e-9)
        result = ac_analysis(circuit.build(), frequency_grid(1e2, 1e8, 20))
        assert result.dc_gain() == pytest.approx(1.0, rel=1e-3)
        expected_bw = 1.0 / (2 * np.pi * 1e3 * 1e-9)
        assert result.bandwidth() == pytest.approx(expected_bw, rel=0.05)

    def test_rc_phase_approaches_minus_90(self):
        circuit = build_rc_ladder(n_sections=1, resistance=1e3, capacitance=1e-9)
        result = ac_analysis(circuit.build(), frequency_grid(1e2, 1e9, 10))
        assert result.phase_deg()[-1] == pytest.approx(-90.0, abs=5.0)

    def test_three_section_ladder_rolls_off_faster(self):
        one = ac_analysis(build_rc_ladder(1).build(), frequency_grid(1e5, 1e10, 10))
        three = ac_analysis(build_rc_ladder(3).build(), frequency_grid(1e5, 1e10, 10))
        assert three.gain_db()[-1] < one.gain_db()[-1] - 20.0

    def test_voltage_divider_is_frequency_flat(self):
        result = ac_analysis(voltage_divider().build(), frequency_grid(1e3, 1e9, 5))
        assert np.allclose(np.abs(result.transfer()), 0.5, rtol=1e-6)


class TestTransientAnalysis:
    def test_rc_step_response_matches_analytic(self):
        from repro.circuit.waveforms import Pulse
        circuit = Circuit("rc_step")
        circuit.voltage_source("Vin", "in", "0",
                               Pulse(initial=0.0, pulsed=1.0, delay=0.0, rise=1e-12,
                                     width=1.0, period=2.0), is_input=True)
        circuit.resistor("R1", "in", "out", 1e3)
        circuit.capacitor("C1", "out", "0", 1e-9)
        circuit.add_output("vout", "out")
        system = circuit.build()
        tau = 1e-6
        result = transient_analysis(system, TransientOptions(t_stop=5e-6, dt=1e-8))
        expected = 1.0 - np.exp(-result.times / tau)
        assert np.max(np.abs(result.outputs[:, 0] - expected)) < 5e-3

    def test_sine_steady_state_amplitude(self):
        circuit = build_rc_ladder(1, resistance=1e3, capacitance=1e-9,
                                  input_waveform=Sine(0.0, 1.0, 159.155e3))
        system = circuit.build()
        # Drive exactly at the corner frequency: steady-state amplitude 1/sqrt(2).
        result = transient_analysis(system, TransientOptions(t_stop=40e-6, dt=20e-9))
        steady = result.outputs[result.times > 20e-6, 0]
        assert np.max(steady) == pytest.approx(1 / np.sqrt(2), rel=0.03)

    def test_trapezoidal_more_accurate_than_backward_euler(self):
        def run(method):
            circuit = build_rc_ladder(1, input_waveform=Sine(0.0, 1.0, 50e6),
                                      name=f"rc_{method}")
            options = TransientOptions(t_stop=100e-9, dt=0.5e-9, method=method)
            return transient_analysis(circuit.build(), options)

        trap = run("trapezoidal")
        be = run("backward_euler")
        reference_circuit = build_rc_ladder(1, input_waveform=Sine(0.0, 1.0, 50e6),
                                            name="rc_ref")
        reference = transient_analysis(reference_circuit.build(),
                                       TransientOptions(t_stop=100e-9, dt=0.05e-9))
        ref = np.interp(trap.times, reference.times, reference.outputs[:, 0])
        err_trap = np.sqrt(np.mean((trap.outputs[:, 0] - ref) ** 2))
        ref_be = np.interp(be.times, reference.times, reference.outputs[:, 0])
        err_be = np.sqrt(np.mean((be.outputs[:, 0] - ref_be) ** 2))
        assert err_trap < err_be

    def test_inductor_current_ramp(self):
        circuit = Circuit("rl")
        circuit.voltage_source("Vin", "in", "0", 1.0, is_input=True)
        circuit.resistor("R1", "in", "a", 1.0)
        circuit.inductor("L1", "a", "0", 1e-6)
        circuit.add_output("va", "a")
        system = circuit.build()
        result = transient_analysis(system, TransientOptions(t_stop=5e-6, dt=5e-9))
        # After several time constants (tau = L/R = 1 us) the node voltage -> 0.
        assert abs(result.outputs[-1, 0]) < 0.02

    def test_snapshot_callback_receives_jacobians(self):
        from repro.tft import SnapshotTrajectory
        circuit = build_rc_ladder(1, input_waveform=Sine(0.5, 0.2, 1e6))
        system = circuit.build()
        trajectory = SnapshotTrajectory(system)
        result = transient_analysis(system, TransientOptions(t_stop=1e-6, dt=1e-8),
                                    snapshot_callback=trajectory)
        assert len(trajectory) == result.n_points
        snap = trajectory[0]
        assert snap.conductance.shape == (system.n_unknowns, system.n_unknowns)
        assert snap.capacitance.shape == (system.n_unknowns, system.n_unknowns)

    def test_snapshot_stride(self):
        from repro.tft import SnapshotTrajectory
        circuit = build_rc_ladder(1, input_waveform=Sine(0.5, 0.2, 1e6))
        system = circuit.build()
        trajectory = SnapshotTrajectory(system)
        options = TransientOptions(t_stop=1e-6, dt=1e-8, snapshot_stride=10)
        transient_analysis(system, options, snapshot_callback=trajectory)
        assert len(trajectory) == pytest.approx(11, abs=2)

    def test_diode_limiter_clips(self):
        circuit = build_diode_limiter(input_waveform=Sine(0.0, 2.0, 1e6))
        result = transient_analysis(circuit.build(),
                                    TransientOptions(t_stop=2e-6, dt=2e-9))
        assert result.outputs.max() < 1.2
        assert result.outputs.min() > -1.2
        assert result.outputs.max() > 0.3

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            TransientOptions(t_stop=0.0, dt=1e-9).validate()
        with pytest.raises(ValueError):
            TransientOptions(t_stop=1e-9, dt=-1.0).validate()
        with pytest.raises(ValueError):
            TransientOptions(t_stop=1e-9, dt=1e-12, method="rk4").validate()

    def test_node_voltage_accessor(self):
        circuit = build_rc_ladder(2, input_waveform=Sine(0.5, 0.1, 1e6))
        system = circuit.build()
        result = transient_analysis(system, TransientOptions(t_stop=0.2e-6, dt=2e-9))
        v1 = result.node_voltage(system, "n1")
        assert v1.shape == result.times.shape

    def test_resample_interpolates_output(self):
        circuit = build_rc_ladder(1, input_waveform=Sine(0.5, 0.1, 1e6))
        result = transient_analysis(circuit.build(), TransientOptions(t_stop=0.2e-6, dt=2e-9))
        new_times = np.linspace(0.0, 0.2e-6, 17)
        assert result.resample(new_times).shape == (17,)
