"""Tests for the end-to-end RVF extraction, model export and the baselines."""

import numpy as np
import pytest

from repro.baselines import (
    CaffeineOptions,
    PolynomialFunction,
    default_basis_library,
    extract_caffeine_model,
    fit_caffeine,
    fit_polynomial,
)
from repro.circuit import Sine, TransientOptions, transient_analysis
from repro.circuits import build_rc_ladder
from repro.exceptions import FittingError, ModelError
from repro.rvf import (
    RVFOptions,
    extract_rvf_model,
    model_equations,
    simulate_hammerstein,
    to_python_callable,
    to_verilog_a,
)
from repro.tft import SnapshotTrajectory, default_frequency_grid, extract_tft

from conftest import build_nonlinear_lowpass


class TestRVFExtraction:
    def test_reproduces_training_hyperplane(self, nonlinear_tft, nonlinear_rvf):
        surface = nonlinear_rvf.model_surface()
        data = nonlinear_tft.siso_response()
        relative = (np.sqrt(np.mean(np.abs(surface - data) ** 2))
                    / np.sqrt(np.mean(np.abs(data) ** 2)))
        assert relative < 5e-3

    def test_model_is_stable(self, nonlinear_rvf):
        assert nonlinear_rvf.model.is_stable()

    def test_dc_point_reproduced(self, nonlinear_tft, nonlinear_rvf):
        model = nonlinear_rvf.model
        # At the DC input and in equilibrium the model output equals the
        # circuit's DC output (integration constants pinned there).
        times = np.linspace(0.0, 1e-6, 50)
        inputs = np.full_like(times, model.dc_input)
        result = simulate_hammerstein(model, times, inputs)
        assert np.allclose(result.outputs, model.dc_output, atol=1e-9)

    def test_dc_transfer_matches_instantaneous_gain_data(self, nonlinear_tft, nonlinear_rvf):
        model = nonlinear_rvf.model
        states = nonlinear_tft.state_axis()
        model_dc = model.dc_transfer(states)
        data_dc = nonlinear_tft.siso_dc().real
        assert np.sqrt(np.mean((model_dc - data_dc) ** 2)) < 2e-2 * np.max(np.abs(data_dc))

    def test_orders_recorded_in_metadata(self, nonlinear_rvf):
        meta = nonlinear_rvf.model.metadata
        assert meta.n_frequency_poles == nonlinear_rvf.n_frequency_poles
        assert meta.n_state_poles == nonlinear_rvf.n_state_poles
        assert meta.build_time_seconds > 0.0

    def test_generalisation_to_unseen_input(self, nonlinear_rvf):
        from repro.circuit.waveforms import BitPattern, prbs_bits
        pattern = BitPattern(bits=prbs_bits(12), bit_rate=2e6, low=0.2, high=1.0)
        circuit = build_nonlinear_lowpass(pattern, name="nl_validation")
        system = circuit.build()
        reference = transient_analysis(system, TransientOptions(t_stop=pattern.duration,
                                                                dt=2e-9))
        result = simulate_hammerstein(nonlinear_rvf.model, reference.times,
                                      reference.inputs[:, 0])
        rmse = np.sqrt(np.mean((reference.outputs[:, 0] - result.outputs) ** 2))
        assert rmse < 0.05 * (reference.outputs.max() - reference.outputs.min())

    def test_linear_circuit_extraction_matches_transfer_function(self):
        circuit = build_rc_ladder(1, resistance=1e3, capacitance=1e-9,
                                  input_waveform=Sine(0.5, 0.3, 1e4))
        system = circuit.build()
        trajectory = SnapshotTrajectory(system)
        transient_analysis(system, TransientOptions(t_stop=1e-4, dt=1e-6),
                           snapshot_callback=trajectory)
        tft = extract_tft(trajectory, default_frequency_grid(1e3, 1e8, 5), max_snapshots=50)
        extraction = extract_rvf_model(tft, RVFOptions(error_bound=1e-4))
        freqs = tft.frequencies
        surface = extraction.model.transfer_function(np.array([[0.5]]), freqs)[0]
        expected = 1.0 / (1.0 + 2j * np.pi * freqs * 1e3 * 1e-9)
        assert np.max(np.abs(surface - expected)) < 5e-3

    def test_multidimensional_state_estimator_rejected(self, nonlinear_tft):
        from repro.tft import TFTDataset
        bad = TFTDataset(
            frequencies=nonlinear_tft.frequencies,
            states=np.column_stack([nonlinear_tft.state_axis(),
                                    nonlinear_tft.state_axis()]),
            response=nonlinear_tft.response,
            dc_response=nonlinear_tft.dc_response,
        )
        with pytest.raises(ModelError):
            extract_rvf_model(bad)

    def test_invalid_error_bound_rejected(self):
        with pytest.raises(FittingError):
            RVFOptions(error_bound=0.0)

    def test_summary_mentions_pole_counts(self, nonlinear_rvf):
        text = nonlinear_rvf.summary()
        assert "frequency poles" in text and "state poles" in text


class TestModelExport:
    def test_equations_listing_contains_all_branches(self, nonlinear_rvf):
        text = model_equations(nonlinear_rvf.model)
        assert text.count("d/dt y") == nonlinear_rvf.model.n_branches
        assert "F0(" in text
        assert "stable by construction: True" in text

    def test_verilog_a_module_structure(self, nonlinear_rvf):
        text = to_verilog_a(nonlinear_rvf.model, module_name="buffer_model")
        assert "module buffer_model" in text
        assert "analog begin" in text
        assert "endmodule" in text

    def test_python_callable_consistent_with_simulator(self, nonlinear_rvf):
        model = nonlinear_rvf.model
        rhs = to_python_callable(model)
        state = rhs.initial_state(model.dc_input)
        assert state.shape == (model.dynamic_order,)
        # In equilibrium the derivatives vanish and the output is the DC output.
        derivative = rhs(0.0, state, model.dc_input)
        assert np.max(np.abs(derivative)) < 1e-6
        assert rhs.output(state, model.dc_input) == pytest.approx(model.dc_output, abs=1e-9)

    def test_python_callable_derivatives_match_branch_equations(self, nonlinear_rvf):
        model = nonlinear_rvf.model
        rhs = to_python_callable(model)
        u = 0.85
        rng = np.random.default_rng(3)
        state = rng.normal(scale=0.1, size=model.dynamic_order)
        derivative = rhs(0.0, state, u)
        # Reconstruct the expected derivatives branch by branch:
        # dy/dt = a*y + f(u) with complex branches stored as [Re, Im].
        cursor = 0
        for branch in model.branches:
            from repro.rvf.hammerstein import _evaluate_state_function
            v = complex(_evaluate_state_function(branch.static_function, np.array([u]))[0])
            a = branch.pole
            if branch.is_complex_pair:
                y = complex(state[cursor], state[cursor + 1])
                expected = a * y + v
                assert derivative[cursor] == pytest.approx(expected.real, rel=1e-9, abs=1e-12)
                assert derivative[cursor + 1] == pytest.approx(expected.imag, rel=1e-9, abs=1e-12)
                cursor += 2
            else:
                expected = a.real * state[cursor] + v.real
                assert derivative[cursor] == pytest.approx(expected, rel=1e-9, abs=1e-12)
                cursor += 1


class TestCaffeineBaseline:
    def test_basis_library_contains_integrable_and_non_integrable(self):
        library = default_basis_library()
        assert any(t.integrable for t in library)
        assert any(not t.integrable for t in library)

    def test_fits_polynomial_target_exactly(self):
        x = np.linspace(-1, 1, 60)
        y = 0.5 + 2.0 * x - 1.5 * x ** 3
        function = fit_caffeine(x, y.astype(complex), CaffeineOptions(generations=10))
        assert function.fit_error < 1e-8

    def test_fits_saturating_target_reasonably(self):
        x = np.linspace(0.4, 1.4, 90)
        y = np.tanh(6 * (x - 0.9))
        function = fit_caffeine(x, y.astype(complex), CaffeineOptions(generations=20))
        assert function.fit_error < 0.1

    def test_integrable_only_functions_integrate(self):
        x = np.linspace(-1, 1, 50)
        y = np.exp(-x ** 2)
        function = fit_caffeine(x, y.astype(complex),
                                CaffeineOptions(integrable_only=True, generations=10))
        integral = function.integrate()
        h = 1e-5
        numeric = (integral(0.3 + h) - integral(0.3 - h)) / (2 * h)
        assert numeric == pytest.approx(function(0.3), rel=1e-4, abs=1e-6)

    def test_non_integrable_expression_raises(self):
        library = default_basis_library()
        non_integrable = [t for t in library if not t.integrable][:2]
        from repro.baselines.caffeine import CaffeineFunction
        f = CaffeineFunction(terms=non_integrable, coefficients=np.ones(len(non_integrable)))
        assert not f.is_integrable
        with pytest.raises(ModelError):
            f.integrate()

    def test_search_is_deterministic_for_fixed_seed(self):
        x = np.linspace(0, 1, 40)
        y = np.sin(3 * x)
        f1 = fit_caffeine(x, y.astype(complex), CaffeineOptions(seed=7, generations=8))
        f2 = fit_caffeine(x, y.astype(complex), CaffeineOptions(seed=7, generations=8))
        assert [t.name for t in f1.terms] == [t.name for t in f2.terms]

    def test_too_few_samples_rejected(self):
        with pytest.raises(FittingError):
            fit_caffeine(np.linspace(0, 1, 4), np.zeros(4))

    def test_extraction_produces_stable_model(self, nonlinear_tft):
        result = extract_caffeine_model(nonlinear_tft, error_bound=1e-3,
                                        caffeine_options=CaffeineOptions(generations=12))
        assert result.model.is_stable()
        assert result.n_frequency_poles >= 2

    def test_extraction_less_accurate_than_rvf(self, nonlinear_tft, nonlinear_rvf):
        caffeine = extract_caffeine_model(nonlinear_tft, error_bound=1e-3,
                                          caffeine_options=CaffeineOptions(generations=12))
        data = nonlinear_tft.siso_response()
        rvf_err = np.sqrt(np.mean(np.abs(nonlinear_rvf.model_surface() - data) ** 2))
        caffeine_err = np.sqrt(np.mean(np.abs(caffeine.model_surface() - data) ** 2))
        assert rvf_err <= caffeine_err * 1.5

    def test_restricted_basis_flow_is_flagged_manual(self, nonlinear_tft):
        result = extract_caffeine_model(nonlinear_tft, error_bound=1e-3,
                                        caffeine_options=CaffeineOptions(generations=8))
        assert not result.fully_automated


class TestPolynomialBaseline:
    def test_exact_fit_of_polynomial(self):
        x = np.linspace(-1, 2, 30)
        y = 1.0 - 0.5 * x + 0.25 * x ** 2
        f = fit_polynomial(x, y, degree=2)
        assert np.allclose(f(x).real, y, atol=1e-9)

    def test_antiderivative_calculus(self):
        f = PolynomialFunction([1.0, 2.0, 3.0], center=0.5, scale=2.0)
        F = f.antiderivative()
        h = 1e-6
        assert (F(1.0 + h) - F(1.0 - h)) / (2 * h) == pytest.approx(f(1.0), rel=1e-5)

    def test_with_value_at(self):
        f = PolynomialFunction([1.0, 1.0])
        assert f.with_value_at(0.0, 5.0)(0.0) == pytest.approx(5.0)

    def test_degree_validation(self):
        with pytest.raises(FittingError):
            fit_polynomial(np.linspace(0, 1, 5), np.zeros(5), degree=10)
