"""Tests of the span tracer tier: sampling, assembly, attribution, profiling.

The unit tests drive :class:`~repro.telemetry.Tracer` and
:class:`~repro.telemetry.TraceAssembler` with hand-stamped spans, which makes
tree shapes and the critical path exactly reproducible.  The integration
tests attach a live subscriber to a real :class:`~repro.serve.ModelServer`
(in-process, sharded, crash-retried and gateway-fronted) and assert every
served request at ``sample_rate=1.0`` yields a **complete** span tree whose
stage durations tile the recorded end-to-end latency — and that a
sampled-out trace produces zero spans across every layer.
"""

import sqlite3
import time

import numpy as np
import pytest

from repro.exceptions import RunStoreError
from repro.gateway import Gateway, GatewayClient
from repro.runtime import ModelRegistry, compile_model, content_hash
from repro.serve import ModelServer, ServePolicy
from repro.telemetry import (
    ROOT_SPAN,
    STORE_VERSION,
    AlertRule,
    EngineProfile,
    MetricsAggregator,
    MetricsReport,
    RunStore,
    SpanClosed,
    TopicBroker,
    TraceAssembler,
    Tracer,
    TracerConfig,
    describe_trace,
    subscribe_spans,
)
from test_serve import small_model
from test_telemetry import request_batch

FUTURE_TIMEOUT = 60.0

#: Stages the in-process serve path must contribute to every sampled trace.
SERVE_STAGES = {"serve_queue", "serve_coalesce", "serve_execute"}


@pytest.fixture(scope="module")
def compiled():
    return compile_model(small_model(), dt=1e-9, input_range=(0.0, 1.0))


@pytest.fixture()
def registry(compiled, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.save(compiled)
    return registry


@pytest.fixture()
def key(compiled):
    return content_hash(compiled)


def span(name, trace_id=7, t_start=0.0, duration_s=1.0, parent=ROOT_SPAN,
         worker_index=-1):
    return SpanClosed(name=name, trace_id=trace_id, t_start=t_start,
                      duration_s=duration_s, parent=parent,
                      worker_index=worker_index)


def drain_spans(assembler, subscription, predicate, timeout=10.0):
    """Feed the assembler from the subscription until ``predicate`` holds."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        event = subscription.get(timeout=0.1)
        if event is not None:
            assembler.add(event)
        if predicate(assembler):
            return
    raise AssertionError(f"condition not met within {timeout}s; "
                         f"traces={assembler.trace_ids()}")


# ------------------------------------------------------------------- tracer
class TestTracer:
    def test_falsy_without_subscriber_or_at_zero_rate(self):
        broker = TopicBroker()
        assert not Tracer(broker)                     # nobody listening
        with broker.subscribe(topics=("SpanClosed",)):
            assert Tracer(broker)
            assert not Tracer(broker, TracerConfig(sample_rate=0.0))

    def test_config_validates_sample_rate(self):
        with pytest.raises(ValueError, match="sample_rate"):
            TracerConfig(sample_rate=1.5)
        with pytest.raises(ValueError, match="sample_rate"):
            TracerConfig(sample_rate=-0.1)

    def test_sampling_is_deterministic_and_rate_proportional(self):
        config = TracerConfig(sample_rate=0.25, seed=7)
        a = Tracer(TopicBroker(), config)
        b = Tracer(TopicBroker(), config)
        decisions = [a.sampled(i) for i in range(10_000)]
        assert decisions == [b.sampled(i) for i in range(10_000)]
        kept = sum(decisions)
        assert 0.20 * 10_000 < kept < 0.30 * 10_000
        # Different seed, different subset — the decision keys on the pair.
        other = Tracer(TopicBroker(), TracerConfig(sample_rate=0.25, seed=8))
        assert decisions != [other.sampled(i) for i in range(10_000)]
        assert all(Tracer(TopicBroker()).sampled(i) for i in range(64))

    def test_with_span_publishes_span_closed(self):
        broker = TopicBroker()
        with broker.subscribe(topics=("SpanClosed",)) as sub:
            tracer = Tracer(broker)
            with tracer.span("serve_execute", 5, worker_index=2):
                time.sleep(0.001)
            event = sub.get(timeout=5.0)
        assert isinstance(event, SpanClosed)
        assert event.name == "serve_execute"
        assert event.trace_id == 5
        assert event.parent == ROOT_SPAN
        assert event.worker_index == 2
        assert event.duration_s > 0.0

    def test_sampled_out_trace_records_nothing(self):
        broker = TopicBroker()
        with broker.subscribe(topics=("SpanClosed",)) as sub:
            tracer = Tracer(broker, TracerConfig(sample_rate=0.5, seed=3))
            dropped = next(i for i in range(1, 1000)
                           if not tracer.sampled(i))
            with tracer.span("serve_execute", dropped):
                pass
            tracer.emit("serve_queue", dropped, 0.0, 1.0)
            assert sub.get(timeout=0.2) is None

    def test_emit_clamps_negative_durations(self):
        broker = TopicBroker()
        with broker.subscribe(topics=("SpanClosed",)) as sub:
            Tracer(broker).emit("serve_queue", 1, 10.0, -0.5)
            event = sub.get(timeout=5.0)
        assert event.duration_s == 0.0


# ---------------------------------------------------------------- assembler
class TestTraceAssembler:
    def lifecycle(self, trace_id=7):
        return [
            span(ROOT_SPAN, trace_id, 0.0, 10.0, parent=""),
            span("serve_queue", trace_id, 0.0, 1.0),
            span("serve_coalesce", trace_id, 1.0, 1.0),
            span("serve_execute", trace_id, 2.0, 8.0),
            span("worker_evaluate", trace_id, 3.0, 6.0,
                 parent="serve_execute", worker_index=0),
        ]

    def test_tree_links_children_by_stage_name(self):
        assembler = TraceAssembler()
        assembler.extend(self.lifecycle())
        root = assembler.tree(7)
        assert root.name == ROOT_SPAN
        assert [c.name for c in root.children] == [
            "serve_queue", "serve_coalesce", "serve_execute"]
        execute = root.children[-1]
        assert [c.name for c in execute.children] == ["worker_evaluate"]
        assert assembler.complete(7)
        # The tree is a faithful re-arrangement: no span dropped, none added.
        assert len(list(root.walk())) == len(assembler.spans(7))

    def test_repeated_parent_disambiguated_by_time_containment(self):
        assembler = TraceAssembler()
        assembler.extend([
            span(ROOT_SPAN, 1, 0.0, 10.0, parent=""),
            span("shard_stage_in", 1, 0.0, 4.0),
            span("shard_stage_in", 1, 5.0, 4.0),     # the retry attempt
            span("worker_evaluate", 1, 6.0, 2.0, parent="shard_stage_in"),
        ])
        root = assembler.tree(1)
        attempts = [c for c in root.children if c.name == "shard_stage_in"]
        assert len(attempts) == 2                     # retries are siblings
        assert attempts[0].children == []
        assert [c.name for c in attempts[1].children] == ["worker_evaluate"]

    def test_unknown_parent_attaches_to_root_not_dropped(self):
        assembler = TraceAssembler()
        assembler.extend([
            span(ROOT_SPAN, 1, 0.0, 10.0, parent=""),
            span("gateway_write", 1, 9.0, 0.5, parent="no_such_stage"),
        ])
        root = assembler.tree(1)
        assert [c.name for c in root.children] == ["gateway_write"]

    def test_rootless_trace_synthesises_root(self):
        assembler = TraceAssembler()
        assembler.add(span("serve_queue", 9, 2.0, 3.0))
        assert not assembler.complete(9)
        root = assembler.tree(9)
        assert root.name == ROOT_SPAN
        assert root.t_start == 2.0 and root.duration_s == 3.0
        assert [c.name for c in root.children] == ["serve_queue"]

    def test_critical_path_follows_latest_ending_child(self):
        assembler = TraceAssembler()
        assembler.extend(self.lifecycle())
        path = [node.name for node in assembler.critical_path(7)]
        assert path == [ROOT_SPAN, "serve_execute", "worker_evaluate"]

    def test_stage_totals_accumulate_retry_attempts(self):
        assembler = TraceAssembler()
        assembler.add(span("shard_stage_in", 1, 0.0, 2.0))
        assembler.add(span("shard_stage_in", 1, 3.0, 1.0))
        assert assembler.stage_totals(1) == {"shard_stage_in": 3.0}

    def test_ignores_foreign_event_payloads(self):
        assembler = TraceAssembler()
        assembler.add({"event": "BatchServed", "trace_ids": (1,)})
        assembler.add(42)
        assert assembler.trace_ids() == ()

    def test_describe_trace_renders_waterfall(self):
        assembler = TraceAssembler()
        assembler.extend(self.lifecycle())
        text = describe_trace(assembler, 7)
        lines = text.splitlines()
        assert "trace 7" in lines[0] and "5 spans" in lines[0]
        assert lines[1].startswith(ROOT_SPAN)
        assert any(line.strip().startswith("worker_evaluate")
                   for line in lines)
        assert " w0" in text                          # worker attribution
        assert text.count(" *") >= 2                  # critical-path marks
        assert describe_trace(assembler, 999) == \
            "trace 999 — no spans recorded"


# ------------------------------------------------------- served-request trees
class TestServedRequestTraces:
    def serve_and_assemble(self, registry, key, policy, n_rows=8,
                           tracing=None, **server_kwargs):
        batch = request_batch(n_rows, 32)
        with ModelServer(registry, policy, tracing=tracing,
                         **server_kwargs) as server:
            with subscribe_spans(server.telemetry) as (assembler, sub):
                futures = [server.submit(key, row) for row in batch]
                for future in futures:
                    future.result(FUTURE_TIMEOUT)
                drain_spans(
                    assembler, sub,
                    lambda asm: len(asm.trace_ids()) == n_rows
                    and all(asm.complete(t) for t in asm.trace_ids()))
        return assembler

    def test_every_request_yields_complete_tiled_tree(self, registry, key):
        policy = ServePolicy(max_batch=4, max_wait=2e-3, n_workers=0)
        assembler = self.serve_and_assemble(registry, key, policy)
        for trace_id in assembler.trace_ids():
            assert assembler.complete(trace_id)
            root = assembler.tree(trace_id)
            stages = {node.name for node in root.walk()}
            assert SERVE_STAGES | {"serve_evaluate", "serve_dispatch"} \
                <= stages
            # queue → coalesce → execute tile the root span exactly: their
            # durations sum to the recorded end-to-end latency.
            tiled = sum(child.duration_s for child in root.children
                        if child.name in SERVE_STAGES)
            assert tiled == pytest.approx(root.duration_s, rel=1e-6,
                                          abs=1e-9)
            # Every span is keyed to this trace and non-negative.
            for node in root.walk():
                assert node.trace_id == trace_id
                assert node.duration_s >= 0.0

    def test_sharded_trees_carry_worker_attribution(self, registry, key):
        policy = ServePolicy(max_batch=8, max_wait=2e-3, n_workers=2)
        assembler = self.serve_and_assemble(registry, key, policy,
                                            n_rows=12)
        worker_stages = {"shard_lease", "shard_stage_in", "worker_evaluate",
                         "worker_stage_out", "serve_reassemble"}
        for trace_id in assembler.trace_ids():
            names = {node.name for node in assembler.spans(trace_id)}
            assert SERVE_STAGES | worker_stages <= names
            evaluates = [node for node in assembler.spans(trace_id)
                         if node.name == "worker_evaluate"]
            assert evaluates and all(n.worker_index >= 0 for n in evaluates)
            # Worker spans nest under the execute stage in the tree.
            root = assembler.tree(trace_id)
            execute = next(node for node in root.walk()
                           if node.name == "serve_execute")
            nested = {child.name for child in execute.children}
            assert "worker_evaluate" in nested

    def test_crashed_then_retried_job_yields_well_formed_tree(
            self, registry, key):
        """A crash-retried batch repeats dispatch stages as siblings; the
        tree stays complete with every span attached (no orphans)."""
        policy = ServePolicy(max_batch=8, max_wait=60.0, n_workers=2)
        batch = request_batch(8, 32)
        with ModelServer(registry, policy,
                         fault_injection={key}) as server:
            with subscribe_spans(server.telemetry) as (assembler, sub):
                futures = [server.submit(key, row) for row in batch]
                for future in futures:
                    future.result(FUTURE_TIMEOUT)
                drain_spans(
                    assembler, sub,
                    lambda asm: len(asm.trace_ids()) == len(batch)
                    and all(asm.complete(t) for t in asm.trace_ids()))
            assert server.stats().pool["respawns"] >= 1
        retried = 0
        for trace_id in assembler.trace_ids():
            recorded = assembler.spans(trace_id)
            root = assembler.tree(trace_id)
            # Well-formed: every recorded span appears in the tree exactly
            # once — retry attempts included, nothing orphaned or dropped.
            assert len(list(root.walk())) == len(recorded)
            attempts = [node for node in recorded
                        if node.name == "shard_stage_in"]
            if len(attempts) > 1:
                retried += 1
                parents = [node for node in root.walk()
                           if any(c.name == "shard_stage_in"
                                  for c in node.children)]
                # Retry attempts are siblings under the same parent stage.
                assert len(parents) == 1
        assert retried >= 1

    def test_sampled_out_traces_produce_zero_spans_end_to_end(
            self, registry, key):
        config = TracerConfig(sample_rate=0.5, seed=11)
        decision = Tracer(TopicBroker(), config).sampled
        # Trace ids are handed out sequentially from 1; with this seed both
        # populations are non-empty within the first eight requests.
        expected_kept = {i for i in range(1, 9) if decision(i)}
        assert expected_kept and expected_kept != set(range(1, 9))
        policy = ServePolicy(max_batch=4, max_wait=2e-3, n_workers=0)
        batch = request_batch(8, 32)
        with ModelServer(registry, policy, tracing=config) as server:
            with subscribe_spans(server.telemetry) as (assembler, sub):
                futures = [server.submit(key, row) for row in batch]
                for future in futures:
                    future.result(FUTURE_TIMEOUT)
                drain_spans(
                    assembler, sub,
                    lambda asm: set(asm.trace_ids()) == expected_kept
                    and all(asm.complete(t) for t in asm.trace_ids()))
                # Settle: nothing trickles in for the dropped ids.
                assert sub.get(timeout=0.2) is None
        assert set(assembler.trace_ids()) == expected_kept


# ------------------------------------------------------------------ gateway
class TestGatewaySpans:
    def test_gateway_contributes_decode_encode_write_spans(self, registry,
                                                           key):
        policy = ServePolicy(max_batch=8, max_wait=2e-3, n_workers=0)
        batch = request_batch(6, 32)
        with ModelServer(registry, policy) as server:
            with subscribe_spans(server.telemetry) as (assembler, sub):
                with Gateway(server).start() as gateway:
                    with GatewayClient(*gateway.address) as client:
                        for row in batch:
                            client.submit(key, row)
                    gateway_stages = {"gateway_decode", "gateway_encode",
                                      "gateway_write"}
                    drain_spans(
                        assembler, sub,
                        lambda asm: len(asm.trace_ids()) == len(batch)
                        and all(gateway_stages <= {
                            s.name for s in asm.spans(t)}
                            for t in asm.trace_ids()))
        for trace_id in assembler.trace_ids():
            root = assembler.tree(trace_id)
            names = {node.name for node in root.walk()}
            assert {"gateway_decode", "gateway_encode", "gateway_write"} \
                <= names
            assert SERVE_STAGES <= names
            # Gateway stages hang off the root request span.
            assert {c.name for c in root.children} >= {"gateway_decode",
                                                       "gateway_write"}


# ----------------------------------------------------------------- runstore
class TestRunStoreSpans:
    def test_span_events_route_to_spans_table(self, tmp_path):
        with RunStore(tmp_path / "runs.sqlite") as store:
            run_id = store.open_run("spans")
            n = store.record_events(run_id, [
                span("serve_queue", trace_id=4, t_start=1.0, duration_s=0.5),
                span("serve_execute", trace_id=4, t_start=1.5,
                     duration_s=2.0),
                span("serve_queue", trace_id=5, t_start=9.0, duration_s=0.1),
            ])
            assert n == 3
            rows = store.spans(run_id)
            assert [r["name"] for r in rows] == ["serve_queue",
                                                 "serve_execute",
                                                 "serve_queue"]
            assert store.spans(run_id, trace_id=5)[0]["t_start"] == 9.0
            # Spans live in their own table, not the event journal…
            assert list(store.iter_events(run_id)) == []
            # …and rebuild into a tree straight from the reader's payloads.
            assembler = TraceAssembler()
            assembler.extend(store.spans(run_id, trace_id=4))
            assert [n_.name for n_ in assembler.spans(4)] == [
                "serve_queue", "serve_execute"]

    def test_pre_spans_store_migrates_transparently(self, tmp_path):
        path = tmp_path / "old.sqlite"
        db = sqlite3.connect(path)
        # A PR-7-era file: runs/events/snapshots only, user_version never
        # set (0), with one recorded run that must survive the migration.
        db.executescript("""
            CREATE TABLE runs (
                run_id      INTEGER PRIMARY KEY AUTOINCREMENT,
                name        TEXT NOT NULL,
                t_opened    REAL NOT NULL,
                wall_opened REAL NOT NULL,
                t_closed    REAL,
                meta        TEXT NOT NULL DEFAULT '{}'
            );
            CREATE TABLE events (
                event_id    INTEGER PRIMARY KEY AUTOINCREMENT,
                run_id      INTEGER NOT NULL REFERENCES runs(run_id),
                t           REAL NOT NULL,
                kind        TEXT NOT NULL,
                trace_id    INTEGER NOT NULL DEFAULT 0,
                payload     TEXT NOT NULL
            );
            CREATE TABLE snapshots (
                snapshot_id INTEGER PRIMARY KEY AUTOINCREMENT,
                run_id      INTEGER NOT NULL REFERENCES runs(run_id),
                t           REAL NOT NULL,
                stats       TEXT NOT NULL
            );
            INSERT INTO runs (name, t_opened, wall_opened)
                VALUES ('legacy', 1.0, 2.0);
        """)
        db.commit()
        db.close()
        with RunStore(path) as store:
            assert store.schema_version == STORE_VERSION
            (run,) = store.runs()
            assert run.name == "legacy"               # old data intact
            run_id = store.open_run("new")            # …and still writable
            store.record_event(run_id, span("serve_queue", trace_id=1))
            assert len(store.spans(run_id)) == 1
        db = sqlite3.connect(path)
        assert db.execute("PRAGMA user_version").fetchone()[0] \
            == STORE_VERSION
        db.close()

    def test_newer_store_version_refuses_naming_both_versions(self, tmp_path):
        path = tmp_path / "future.sqlite"
        db = sqlite3.connect(path)
        db.execute("PRAGMA user_version = 99")
        db.commit()
        db.close()
        with pytest.raises(RunStoreError) as err:
            RunStore(path)
        assert "99" in str(err.value)
        assert str(STORE_VERSION) in str(err.value)
        assert "refusing to open" in str(err.value)


# ----------------------------------------------------------- metrics wiring
class TestStageMetrics:
    def test_span_events_feed_stage_window_sections(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=4, t0=0.0)
        agg.ingest(span("worker_evaluate", trace_id=1, t_start=0.1,
                        duration_s=0.20))
        agg.ingest(span("worker_evaluate", trace_id=2, t_start=0.2,
                        duration_s=0.40))
        agg.ingest(span("serve_queue", trace_id=1, t_start=0.1,
                        duration_s=0.01))
        (event,) = agg.close_window()
        assert set(event.stages) == {"worker_evaluate", "serve_queue"}
        evaluate = event.stages["worker_evaluate"]
        assert evaluate["count"] == 2
        assert evaluate["max_s"] == pytest.approx(0.40)
        assert evaluate["p95_s"] > evaluate["p50_s"] > 0.0

    def test_alert_rules_address_stage_latency_paths(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=4, t0=0.0)
        agg.ingest(span("worker_evaluate", trace_id=1, t_start=0.1,
                        duration_s=0.30))
        (event,) = agg.close_window()
        rule = AlertRule(name="slow-evaluate",
                         metric="stages.worker_evaluate.p95_s",
                         threshold=0.1)
        value = rule.value_of(event)
        assert value == pytest.approx(0.30, rel=0.01)
        assert rule.breached(value)
        # The dotted path also resolves on the wire-shaped dict payload.
        assert rule.value_of(event.as_dict()) == pytest.approx(value)
        # A stage the window never saw answers 0.0, not a crash.
        absent = AlertRule(name="x", metric="stages.gateway_write.p95_s",
                           threshold=0.1)
        assert absent.value_of(event) == 0.0

    def test_report_merges_stages_across_windows(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=4, t0=0.0)
        agg.ingest(span("serve_queue", trace_id=1, t_start=0.5,
                        duration_s=0.1))
        agg.close_window()
        agg.ingest(span("serve_queue", trace_id=2, t_start=1.5,
                        duration_s=0.3))
        agg.close_window()
        report = agg.report()
        assert report.stages["serve_queue"].count == 2
        assert report.stages["serve_queue"].max == pytest.approx(0.3)
        assert "serve_queue" in report.describe()
        assert report.as_dict()["stages"]["serve_queue"]["count"] == 2

    def test_live_server_spans_reach_stage_windows(self, registry, key):
        policy = ServePolicy(max_batch=4, max_wait=2e-3, n_workers=0)
        with ModelServer(registry, policy) as server:
            with MetricsAggregator(server.telemetry, window_s=0.1,
                                   max_batch=policy.max_batch) as agg:
                server.serve(key, request_batch(8, 32))
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    report = agg.report()
                    if SERVE_STAGES <= set(report.stages):
                        break
                    time.sleep(0.05)
        assert SERVE_STAGES <= set(report.stages)
        assert report.stages["serve_execute"].count >= 1


# ------------------------------------------------------------ engine profile
class TestEngineProfile:
    def test_run_sweep_publishes_engine_profile_counters(self):
        from repro.circuit import Sine, TransientOptions
        from repro.circuits import build_rc_ladder
        from repro.sweep import Scenario, SweepOptions, run_sweep

        scenarios = [
            Scenario(name=f"s{i}", builder=build_rc_ladder,
                     builder_kwargs={"n_sections": 1},
                     waveform=Sine(0.5, 0.1, 2e5),
                     transient=TransientOptions(t_stop=2e-7, dt=1e-8))
            for i in range(2)
        ]
        broker = TopicBroker()
        with broker.subscribe(topics=("EngineProfile",)) as sub:
            run_sweep(scenarios, SweepOptions(capture_snapshots=False,
                                              broker=broker))
            profiles = sub.drain()
        assert [p.name for p in profiles] == ["s0", "s1"]
        for profile in profiles:
            assert isinstance(profile, EngineProfile)
            assert profile.accepted_steps > 0
            assert profile.newton_iterations > 0
            assert profile.cache_factorizations >= 1
            # An RC ladder is linear: after the first factorisation every
            # solve reuses the cached LU factors.
            assert profile.cache_reuses > 0
            assert 0.0 < profile.cache_hit_rate <= 1.0
            assert profile.wall_time_s > 0.0
            assert profile.rejected_steps >= profile.lte_rejections >= 0

    def test_transient_result_carries_cache_counters(self):
        from repro.circuit import Sine, TransientOptions, transient_analysis
        from repro.circuits import build_rc_ladder

        system = build_rc_ladder(n_sections=1,
                                 input_waveform=Sine(0.5, 0.1, 2e5)).build()
        result = transient_analysis(
            system, TransientOptions(t_stop=2e-7, dt=1e-8))
        assert result.cache_solves >= result.cache_reuses > 0
        assert result.cache_factorizations >= 1
        assert result.cache_hit_rate == pytest.approx(
            result.cache_reuses / result.cache_solves)
        assert result.cache_invalidations >= 0

    def test_factorization_cache_counts_invalidations(self):
        from repro.circuit.linalg import FactorizationCache

        cache = FactorizationCache()
        matrix = np.eye(3)
        cache.solve(matrix, np.ones(3))
        cache.solve(matrix, np.ones(3))
        assert cache.reuses == 1 and cache.invalidations == 0
        cache.invalidate()
        cache.solve(matrix, np.ones(3))
        assert cache.invalidations == 1
        assert cache.factorizations == 2    # the invalidation forced one
