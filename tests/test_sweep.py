"""Tests of the repro.sweep scenario runner and its TFT integration."""

import numpy as np
import pytest

from repro.circuit import Sine, TransientOptions
from repro.circuit.waveforms import BitPattern, Waveform, prbs_bits
from repro.circuits import build_rc_ladder
from repro.exceptions import ReproError
from repro.sweep import (
    Scenario,
    SweepOptions,
    corner_sweep,
    cross_sweep,
    run_sweep,
    waveform_sweep,
)

FAST = TransientOptions(t_stop=1e-6, dt=1e-8)


class ExplodingWaveform(Waveform):
    """Stimulus that blows up mid-transient (module-level: stays picklable)."""

    def __init__(self, t_burst: float) -> None:
        self.t_burst = float(t_burst)

    def value(self, t: float) -> float:
        if t > self.t_burst:
            raise RuntimeError(f"stimulus exploded at t={t:.3e}")
        return 0.5


def eight_scenarios():
    """Two corners x four waveforms of the 2-section RC ladder."""
    waves = {
        "sine_small": Sine(0.5, 0.1, 2e5),
        "sine_large": Sine(0.5, 0.4, 2e5),
        "sine_fast": Sine(0.5, 0.25, 1e6),
        "prbs": BitPattern(bits=prbs_bits(6), bit_rate=5e6, low=0.2, high=0.8),
    }
    corners = {
        "nom": {"n_sections": 2, "resistance": 1e3, "capacitance": 1e-9},
        "slow": {"n_sections": 2, "resistance": 2e3, "capacitance": 2e-9},
    }
    return cross_sweep(build_rc_ladder, waves, corners, transient=FAST)


class TestScenarioConstruction:
    def test_waveform_sweep_names_from_mapping(self):
        scenarios = waveform_sweep(build_rc_ladder,
                                   {"a": Sine(0.5, 0.1, 1e5), "b": Sine(0.5, 0.2, 1e5)})
        assert [s.name for s in scenarios] == ["a", "b"]

    def test_waveform_sweep_names_from_sequence(self):
        scenarios = waveform_sweep(build_rc_ladder, [Sine(0.5, 0.1, 1e5)] * 3)
        assert [s.name for s in scenarios] == ["wave0", "wave1", "wave2"]

    def test_corner_sweep_passes_kwargs(self):
        scenarios = corner_sweep(build_rc_ladder,
                                 {"big": {"n_sections": 4}},
                                 waveform=Sine(0.5, 0.1, 1e5))
        circuit = scenarios[0].build_circuit()
        assert "big" in circuit.name
        system = circuit.build()
        assert system.n_nodes == 5  # n0..n4

    def test_cross_sweep_is_cartesian(self):
        assert len(eight_scenarios()) == 8

    def test_duplicate_names_rejected(self):
        scenarios = waveform_sweep(build_rc_ladder, [Sine(0.5, 0.1, 1e5)] * 2)
        scenarios[1] = Scenario(name="wave0", builder=build_rc_ladder,
                                waveform=Sine(0.5, 0.1, 1e5))
        with pytest.raises(ReproError, match="duplicate"):
            run_sweep(scenarios)

    def test_empty_sweep_rejected(self):
        with pytest.raises(ReproError):
            run_sweep([])

    def test_with_transient_copies(self):
        scenario = Scenario(name="s", builder=build_rc_ladder,
                            waveform=Sine(0.5, 0.1, 1e5), transient=FAST)
        longer = scenario.with_transient(t_stop=2e-6)
        assert longer.transient.t_stop == 2e-6
        assert scenario.transient.t_stop == 1e-6


class TestRunSweep:
    def test_eight_scenarios_one_call(self):
        """Acceptance: >= 8 scenarios in one call, per-scenario snapshots."""
        result = run_sweep(eight_scenarios())
        assert len(result) == 8
        assert not result.failed
        trajectories = result.trajectories()
        assert len(trajectories) == 8
        for trajectory in trajectories.values():
            assert len(trajectory) > 50

    def test_results_in_scenario_order_and_indexable(self):
        scenarios = eight_scenarios()
        result = run_sweep(scenarios)
        assert result.names == [s.name for s in scenarios]
        assert result["nom/sine_fast"].ok
        assert result[0].name == scenarios[0].name
        with pytest.raises(KeyError):
            result["missing"]

    def test_parallel_matches_serial(self):
        scenarios = eight_scenarios()[:4]
        serial = run_sweep(scenarios, SweepOptions(n_workers=1))
        parallel = run_sweep(scenarios, SweepOptions(n_workers=2))
        assert parallel.n_workers == 2
        for name in serial.names:
            np.testing.assert_allclose(parallel[name].transient.outputs,
                                       serial[name].transient.outputs)
            assert len(parallel[name].trajectory) == len(serial[name].trajectory)

    def test_snapshot_capture_can_be_disabled(self):
        result = run_sweep(eight_scenarios()[:2],
                           SweepOptions(capture_snapshots=False))
        assert result.trajectories() == {}
        assert all(r.transient is not None for r in result)

    def test_failures_collected_or_raised(self):
        bad = Scenario(name="bad", builder=build_rc_ladder,
                       builder_kwargs={"n_sections": 0},
                       waveform=Sine(0.5, 0.1, 1e5), transient=FAST)
        good = eight_scenarios()[0]
        with pytest.raises(ReproError, match="bad"):
            run_sweep([good, bad])
        result = run_sweep([good, bad], SweepOptions(raise_on_error=False))
        assert [r.name for r in result.failed] == ["bad"]
        assert result["good" if False else good.name].ok
        assert "1 failed" in result.describe()

    def test_max_snapshots_thins_trajectory(self):
        scenario = eight_scenarios()[0]
        scenario.max_snapshots = 10
        result = run_sweep([scenario])
        assert len(result[0].trajectory) <= 10


class TestFailurePaths:
    """Workers must report failures, not crash the pool (or hang it)."""

    def exploding_scenario(self):
        return Scenario(name="mid_transient", builder=build_rc_ladder,
                        builder_kwargs={"n_sections": 2},
                        waveform=ExplodingWaveform(t_burst=4e-7),
                        transient=FAST)

    def test_worker_raising_mid_scenario_is_collected(self):
        good = eight_scenarios()[0]
        result = run_sweep([good, self.exploding_scenario()],
                           SweepOptions(raise_on_error=False))
        assert result[good.name].ok
        failed = result["mid_transient"]
        assert not failed.ok and failed.transient is None
        assert "stimulus exploded" in failed.error
        assert "mid_transient" in result.provenance()["failed"]

    def test_worker_raising_mid_scenario_raises_with_traceback(self):
        with pytest.raises(ReproError, match="stimulus exploded"):
            run_sweep([eight_scenarios()[0], self.exploding_scenario()])

    def test_worker_failure_in_process_pool(self):
        """The failure report survives the pickle trip back from a worker."""
        scenarios = [eight_scenarios()[0], self.exploding_scenario(),
                     eight_scenarios()[1]]
        scenarios[2] = Scenario(name="also_good", builder=build_rc_ladder,
                                builder_kwargs={"n_sections": 2},
                                waveform=Sine(0.5, 0.2, 2e5), transient=FAST)
        result = run_sweep(scenarios, SweepOptions(n_workers=2,
                                                   raise_on_error=False))
        assert [r.name for r in result.failed] == ["mid_transient"]
        assert "stimulus exploded" in result["mid_transient"].error
        assert result[0].ok and result[2].ok

    def test_unpicklable_scenario_fails_fast_with_name(self):
        unpicklable = Scenario(
            name="lambda_builder",
            builder=lambda **kw: build_rc_ladder(**kw),  # noqa: E731
            builder_kwargs={"n_sections": 1},
            waveform=Sine(0.5, 0.1, 1e5), transient=FAST)
        good = eight_scenarios()[0]
        with pytest.raises(ReproError, match="lambda_builder.*not picklable"):
            run_sweep([good, unpicklable], SweepOptions(n_workers=2))
        # Serial execution never pickles, so the same scenario runs fine.
        result = run_sweep([unpicklable], SweepOptions(n_workers=1))
        assert result[0].ok


class TestTFTFeed:
    @pytest.fixture(scope="class")
    def sweep_result(self):
        return run_sweep(eight_scenarios())

    def test_per_scenario_tft_datasets(self, sweep_result):
        tfts = sweep_result.extract_tfts(max_snapshots=20)
        assert set(tfts) == set(sweep_result.names)
        for dataset in tfts.values():
            assert dataset.n_states == 20
            assert dataset.n_inputs == 1 and dataset.n_outputs == 1
            assert np.all(np.isfinite(dataset.response))

    def test_combined_trajectory_covers_union_of_excursions(self, sweep_result):
        combined = sweep_result.combined_trajectory()
        total = sum(len(t) for t in sweep_result.trajectories().values())
        assert len(combined) == total
        lo, hi = combined.input_excursion()
        # The union covers the fast sine's low side AND the large sine's high
        # side; no single scenario reaches both.
        assert lo <= 0.25 and hi > 0.85
        for trajectory in sweep_result.trajectories().values():
            t_lo, t_hi = trajectory.input_excursion()
            assert (t_lo, t_hi) != (lo, hi)

    def test_combined_tft_extraction(self, sweep_result):
        dataset = sweep_result.extract_combined_tft(max_snapshots=60)
        assert dataset.n_states == 60
        assert np.all(np.isfinite(dataset.response))

    def test_combined_rejects_mixed_topologies(self):
        mixed = waveform_sweep(build_rc_ladder, [Sine(0.5, 0.1, 1e5)],
                               transient=FAST,
                               builder_kwargs={"n_sections": 1})
        mixed += waveform_sweep(build_rc_ladder, [Sine(0.5, 0.1, 1e5)],
                                transient=FAST, prefix="other",
                                builder_kwargs={"n_sections": 3})
        result = run_sweep(mixed)
        with pytest.raises(ReproError, match="topolog"):
            result.combined_trajectory()

    def test_combined_feeds_rvf_extraction(self, sweep_result):
        """The full pipeline: sweep -> combined TFT -> RVF model."""
        from repro.rvf import RVFOptions, extract_rvf_model
        dataset = sweep_result.extract_combined_tft(max_snapshots=40)
        extraction = extract_rvf_model(dataset, RVFOptions(error_bound=5e-3))
        assert extraction.model.is_stable()


class TestAdaptiveScenarios:
    def test_recipe_records_adaptive_stepping_options(self):
        scenario = Scenario(
            name="ad", builder=build_rc_ladder,
            transient=TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True,
                                       lte_rel_tol=5e-4, lte_abs_tol=2e-7,
                                       jacobian_reuse_tol=0.05))
        transient = scenario.recipe()["transient"]
        assert transient["adaptive"] is True
        assert transient["lte_rel_tol"] == pytest.approx(5e-4)
        assert transient["lte_abs_tol"] == pytest.approx(2e-7)
        assert transient["jacobian_reuse_tol"] == pytest.approx(0.05)

    def test_adaptive_sweep_thins_snapshots_by_time(self):
        """Adaptive runs cluster steps; thinning must stay uniform in time."""
        scenarios = waveform_sweep(
            build_rc_ladder, [Sine(0.5, 0.3, 1e6)],
            transient=TransientOptions(t_stop=1e-6, dt=1e-9, adaptive=True),
            max_snapshots=12)
        sweep = run_sweep(scenarios)
        trajectory = sweep.results[0].trajectory
        assert 2 <= len(trajectory) <= 12
        times = trajectory.times
        span = times[-1] - times[0]
        # Time thinning covers the whole span without giant holes even though
        # the underlying accepted steps are strongly non-uniform.
        assert np.max(np.diff(times)) < 0.35 * span

    def test_adaptive_parallel_matches_serial(self):
        scenarios = waveform_sweep(
            build_rc_ladder, [Sine(0.5, a, 2e5) for a in (0.1, 0.3)],
            transient=TransientOptions(t_stop=1e-6, dt=1e-8, adaptive=True))
        serial = run_sweep(scenarios, SweepOptions(n_workers=1))
        parallel = run_sweep(scenarios, SweepOptions(n_workers=2))
        for left, right in zip(serial.results, parallel.results):
            np.testing.assert_array_equal(left.transient.times,
                                          right.transient.times)
            np.testing.assert_array_equal(left.transient.outputs,
                                          right.transient.outputs)
