"""Tests of the metrics/alerting consumer tier (:mod:`repro.telemetry`).

The windowing tests drive :class:`~repro.telemetry.MetricsAggregator`
synchronously with hand-stamped events (``t0=0.0``), which makes window
boundaries, out-of-order arrivals and trace-chain gaps exactly
reproducible.  The integration tests attach the live aggregator + alert
manager to a real :class:`~repro.serve.ModelServer` — and, for the wire
round-trip, a real :class:`~repro.gateway.Gateway` — and assert alerts
fire and clear deterministically under injected shard crashes
(``fault_injection``), wedged workers (``stall_injection``) and injected
latency (``delay_injection``).
"""

import json
import math
import threading
import time

import numpy as np
import pytest

from repro.exceptions import GatewayError
from repro.gateway import Gateway, GatewayClient
from repro.runtime import ModelRegistry, compile_model, content_hash
from repro.serve import ModelServer, ServePolicy
from repro.serve.stats import LatencySummary
from repro.telemetry import (
    AlertManager,
    AlertRule,
    BatchClosed,
    BatchServed,
    MetricsAggregator,
    MetricsReport,
    MetricsWindowClosed,
    RequestSubmitted,
    TopicBroker,
    WorkerCrashed,
    event_from_dict,
)
from test_serve import small_model
from test_telemetry import drain_until, request_batch

FUTURE_TIMEOUT = 60.0


@pytest.fixture(scope="module")
def compiled():
    return compile_model(small_model(), dt=1e-9, input_range=(0.0, 1.0))


@pytest.fixture()
def registry(compiled, tmp_path):
    registry = ModelRegistry(tmp_path / "models")
    registry.save(compiled)
    return registry


@pytest.fixture()
def key(compiled):
    return content_hash(compiled)


def submitted(trace_id, t, key="m", n_steps=64):
    return RequestSubmitted(key=key, n_steps=n_steps, trace_id=trace_id, t=t)


def served(trace_ids, t, key="m", n_rows=None, ok=True, n_steps=64):
    return BatchServed(key=key, n_steps=n_steps,
                       n_rows=len(trace_ids) if n_rows is None else n_rows,
                       ok=ok, duration_s=0.0, trace_ids=tuple(trace_ids), t=t)


def assert_no_nan(payload, path="payload"):
    if isinstance(payload, dict):
        for name, value in payload.items():
            assert_no_nan(value, f"{path}.{name}")
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            assert_no_nan(value, f"{path}[{index}]")
    elif isinstance(payload, float):
        assert not math.isnan(payload), f"NaN at {path}"


# ------------------------------------------------------- windowed aggregation
class TestAggregatorWindows:
    def test_trace_chain_folds_into_window_metrics(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=4, t0=0.0)
        agg.ingest(submitted(1, t=0.10))
        agg.ingest(submitted(2, t=0.20))
        agg.ingest(BatchClosed(key="m", n_steps=64, n_rows=2,
                               trace_ids=(1, 2), t=0.30))
        agg.ingest(served((1, 2), t=0.50))
        (event,) = agg.close_window()
        assert event.window_index == 0
        assert event.n_submitted == 2
        assert event.n_served == 2
        assert event.n_batches == 1
        assert event.throughput_rps == pytest.approx(2.0)
        assert event.fill_ratio == pytest.approx(0.5)
        assert event.queue_latency["count"] == 2
        assert event.queue_latency["p50_s"] == pytest.approx(0.15, abs=0.06)
        assert event.e2e_latency["count"] == 2
        assert event.e2e_latency["max_s"] == pytest.approx(0.40, abs=1e-9)
        assert event.queue_depth == 0
        assert "m" in event.per_model
        assert event.per_model["m"]["fill_ratio"] == pytest.approx(0.5)

    def test_out_of_order_event_across_window_boundary_is_clamped(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=8, t0=0.0)
        agg.ingest(submitted(1, t=0.50))
        # Jumping to window 1 closes window 0 with the request still pending.
        closed = agg.ingest(submitted(2, t=1.10))
        assert len(closed) == 1
        assert closed[0].n_submitted == 1
        assert closed[0].queue_depth == 1          # trace 1 still in flight
        # The serve arrives late, stamped before window 1 opened: it is
        # clamped into the current window (counted), never lost, and its
        # trace pairing still resolves across the boundary.
        agg.ingest(served((1, 2), t=0.95))
        (event,) = agg.close_window()
        assert event.window_index == 1
        assert event.n_late == 1
        assert event.n_served == 2
        assert event.n_unmatched == 0
        assert event.e2e_latency["count"] == 2
        # trace 1 submitted at 0.50, served (late stamp) at 0.95; trace 2's
        # negative gap clamps to zero instead of going negative.
        assert event.e2e_latency["max_s"] == pytest.approx(0.45, abs=1e-9)
        assert event.e2e_latency["min_s"] == pytest.approx(0.0, abs=1e-9)

    def test_dropped_submit_events_leave_unmatched_not_broken(self):
        # A slow subscriber dropped the RequestSubmitted events (n_dropped
        # > 0 upstream): the batch events name trace ids the aggregator
        # never saw.  They must be counted, not crash the fold or poison
        # the latency population.
        agg = MetricsAggregator(window_s=1.0, max_batch=8, t0=0.0)
        agg.ingest(submitted(1, t=0.10))
        agg.ingest(BatchClosed(key="m", n_steps=64, n_rows=3,
                               trace_ids=(1, 7, 8), t=0.20))
        agg.ingest(served((1, 7, 8), t=0.40))
        (event,) = agg.close_window()
        assert event.n_unmatched == 4              # 2 at close + 2 at serve
        assert event.queue_latency["count"] == 1
        assert event.e2e_latency["count"] == 1
        assert event.n_served == 3                 # row counts still exact
        assert_no_nan(event.as_dict())

    def test_empty_windows_are_zeroed_not_nan(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=8, t0=0.0)
        agg.ingest(submitted(1, t=0.10))
        agg.ingest(served((1,), t=0.20))
        events = agg.tick(4.5)                     # closes windows 0..3
        assert [e.window_index for e in events] == [0, 1, 2, 3]
        for event in events[1:]:
            assert event.n_events == 0
            assert event.throughput_rps == 0.0
            assert event.fill_ratio == 0.0
            assert event.e2e_latency["p95_s"] == 0.0
            payload = event.as_dict()
            assert_no_nan(payload)
            json.dumps(payload)                    # wire/journal safe
        # An all-empty rolling report is zeroed too.
        report = MetricsReport.of((), window_s=1.0)
        assert report.throughput_rps == 0.0
        assert report.e2e_latency.count == 0
        assert_no_nan(report.as_dict())

    def test_gap_longer_than_ring_skips_unobservable_middle(self):
        agg = MetricsAggregator(window_s=1.0, n_windows=4, max_batch=8,
                                t0=0.0)
        agg.ingest(submitted(1, t=0.10))
        events = agg.tick(1000.0)
        # Only the last ring's worth of windows is closed/republished; the
        # index still lands where event time says it should.
        assert len(events) == 4
        assert events[-1].window_index == 999
        assert agg.ingest(submitted(2, t=1000.5)) == []

    def test_pending_trace_map_is_bounded(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=8, max_pending=10,
                                t0=0.0)
        for trace_id in range(25):
            agg.ingest(submitted(trace_id, t=0.1))
        (event,) = agg.close_window()
        assert event.n_submitted == 25
        assert event.queue_depth == 10             # oldest evicted, counted
        assert event.n_unmatched == 15

    def test_report_merges_windows_and_models(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=4, t0=0.0)
        agg.ingest(submitted(1, t=0.1, key="a"))
        agg.ingest(served((1,), t=0.2, key="a"))
        agg.ingest(submitted(2, t=1.1, key="b"))
        agg.ingest(served((2,), t=1.3, key="b"))
        agg.ingest(submitted(3, t=2.1, key="a"))
        agg.ingest(served((3,), t=2.4, key="a"))
        agg.close_window()
        report = agg.report()
        assert report.n_windows == 3
        assert report.n_submitted == 3 and report.n_served == 3
        assert report.throughput_rps == pytest.approx(1.0)
        assert set(report.per_model) == {"a", "b"}
        assert report.per_model["a"].n_served == 2
        assert report.per_model["a"].e2e_latency.count == 2
        assert report.per_model["b"].e2e_latency.max == pytest.approx(0.2)
        assert report.e2e_latency.count == 3
        json.dumps(report.as_dict())
        assert "rows/s" in report.describe()

    def test_window_close_republishes_schema_versioned_event(self):
        broker = TopicBroker()
        watcher = broker.subscribe(topics=("MetricsWindowClosed",))
        with MetricsAggregator(broker, window_s=0.1, max_batch=8) as agg:
            broker.publish(RequestSubmitted(key="m", n_steps=64, trace_id=1))
            deadline = time.monotonic() + 10.0
            while agg.n_windows_closed == 0:
                assert time.monotonic() < deadline
                time.sleep(0.02)
        event = watcher.get(timeout=5.0)
        assert isinstance(event, MetricsWindowClosed)
        payload = event.as_dict()
        assert payload["event"] == "MetricsWindowClosed"
        assert payload["schema"] == 1
        rebuilt = event_from_dict(json.loads(json.dumps(payload)))
        assert rebuilt == event
        watcher.close()

    def test_counter_events_and_note_dropped_fold_in(self):
        agg = MetricsAggregator(window_s=1.0, max_batch=8, t0=0.0)
        agg.ingest(WorkerCrashed(worker_index=0, key="m", t=0.1))
        agg.note_dropped(3)
        (event,) = agg.close_window()
        assert event.n_crashes == 1
        assert event.n_subscriber_dropped == 3


# -------------------------------------------------- LatencySummary satellites
class TestLatencySummaryWindows:
    def test_p95_between_p90_and_p99(self):
        summary = LatencySummary.of(np.linspace(0.0, 1.0, 1001))
        assert summary.p90 <= summary.p95 <= summary.p99
        assert summary.p95 == pytest.approx(0.95, abs=1e-6)
        assert summary.percentile(95.0) == pytest.approx(summary.p95)

    def test_merge_weights_by_count(self):
        first = LatencySummary.of(np.full(30, 1.0))
        second = LatencySummary.of(np.full(10, 5.0))
        merged = LatencySummary.merge([first, second])
        assert merged.count == 40
        assert merged.mean == pytest.approx(2.0)
        assert merged.min == 1.0 and merged.max == 5.0
        assert merged.p95 == pytest.approx(2.0)

    def test_merge_skips_empties_and_merges_none_to_zero(self):
        empty = LatencySummary.of(())
        live = LatencySummary.of([0.5, 1.0])
        assert LatencySummary.merge([empty, live]) == live
        merged = LatencySummary.merge([empty, empty])
        assert merged.count == 0 and merged.p95 == 0.0
        assert LatencySummary.merge([]).count == 0


# ------------------------------------------------------------ alert hysteresis
class TestAlertHysteresis:
    def window(self, index, **fields):
        return MetricsWindowClosed(window_index=index, t_start=float(index),
                                   t_end=float(index + 1), **fields)

    def test_raise_clear_raise_is_deterministic(self):
        manager = AlertManager(
            [AlertRule.crash_rate(0.0, raise_after=2, clear_after=2)])
        bad = dict(n_crashes=1)
        kinds = []
        for index, fields in enumerate([bad, bad, {}, bad, {}, {}, bad, bad]):
            kinds.append([type(e).__name__ for e in
                          manager.evaluate(self.window(index, **fields))])
        # breach x2 raises; one ok window is debounced away by the breach at
        # index 3; two consecutive ok windows clear; two breaches re-raise.
        assert kinds == [[], ["AlertRaised"], [], [], [], ["AlertCleared"],
                         [], ["AlertRaised"]]
        assert manager.active() == {"crash_rate": 1.0}
        assert manager.states()["crash_rate"]["n_raised"] == 2
        assert manager.states()["crash_rate"]["n_cleared"] == 1

    def test_dotted_metric_reaches_latency_percentiles(self):
        rule = AlertRule.p95_latency(0.010, raise_after=1, clear_after=1)
        manager = AlertManager([rule])
        slow = self.window(0, e2e_latency={"p95_s": 0.050})
        (raised,) = manager.evaluate(slow)
        assert raised.topic == "AlertRaised"
        assert raised.value == pytest.approx(0.050)
        assert raised.threshold == pytest.approx(0.010)
        # Events and raw dict payloads evaluate identically.
        fast = self.window(1, e2e_latency={"p95_s": 0.001}).as_dict()
        (cleared,) = manager.evaluate(fast)
        assert cleared.topic == "AlertCleared"
        assert cleared.window_index == 1

    def test_builtin_rules_cover_the_issue_metrics(self):
        metrics = {rule.metric for rule in (
            AlertRule.p95_latency(0.1), AlertRule.crash_rate(0.0),
            AlertRule.queue_depth(100), AlertRule.subscriber_drops(0.0))}
        assert metrics == {"e2e_latency.p95_s", "n_crashes", "queue_depth",
                           "n_subscriber_dropped"}

    def test_rule_validation(self):
        with pytest.raises(ValueError, match="op"):
            AlertRule(name="x", metric="n_crashes", threshold=0.0, op=">=")
        with pytest.raises(ValueError, match="raise_after"):
            AlertRule(name="x", metric="n_crashes", threshold=0.0,
                      raise_after=0)
        with pytest.raises(ValueError, match="duplicate"):
            AlertManager([AlertRule.crash_rate(0.0), AlertRule.crash_rate(1.0)])

    def test_missing_metric_path_reads_zero(self):
        rule = AlertRule(name="x", metric="no_such.field", threshold=1.0)
        assert rule.value_of(self.window(0)) == 0.0
        assert not rule.breached(rule.value_of({}))


# --------------------------------------------------------- server integration
class TestLiveAggregation:
    def test_live_aggregator_folds_real_traffic(self, registry, compiled,
                                                key):
        batch = request_batch(32, 64)
        policy = ServePolicy(max_batch=16, max_wait=2e-3)
        with ModelServer(registry, policy) as server:
            with MetricsAggregator(server.telemetry, window_s=0.2,
                                   max_batch=policy.max_batch) as agg:
                futures = [server.submit(key, row) for row in batch]
                outputs = np.vstack([f.result(FUTURE_TIMEOUT)
                                     for f in futures])
            report = agg.report()
        np.testing.assert_array_equal(outputs, compiled.evaluate(batch))
        assert report.n_submitted == 32
        assert report.n_served == 32
        assert report.n_failed == 0
        assert report.n_unmatched == 0
        assert report.e2e_latency.count == 32
        assert 0.0 < report.fill_ratio <= 1.0
        assert report.per_model[key].n_served == 32

    def test_timeout_alert_raises_and_clears_under_stall(self, registry,
                                                         key):
        """A wedged worker (stall_injection + job_timeout) trips a timeout
        rule; clean follow-up windows clear it — all in-process."""
        policy = ServePolicy(max_batch=8, max_wait=5e-3, n_workers=1,
                             job_timeout=0.3)
        rules = (AlertRule(name="timeouts", metric="n_timeouts",
                           threshold=0.0, raise_after=1, clear_after=2,
                           detail="jobs past job_timeout"),)
        with ModelServer(registry, policy, stall_injection={key}) as server:
            alert_sub = server.telemetry.subscribe(
                topics=("AlertRaised", "AlertCleared"))
            with MetricsAggregator(server.telemetry, window_s=0.2,
                                   max_batch=policy.max_batch) as agg:
                with AlertManager(rules, server.telemetry):
                    # First batch wedges its worker, times out, respawns
                    # and retries — the window that saw JobTimedOut
                    # breaches the rule immediately (raise_after=1).
                    server.serve(key, request_batch(4, 32))
                    raised = drain_until(
                        alert_sub, lambda events: any(
                            e.topic == "AlertRaised" for e in events),
                        timeout=30.0)
                    # Clean traffic (the stall is wedge-once) closes
                    # timeout-free windows until the hysteresis clears.
                    deadline = time.monotonic() + 30.0
                    cleared = []
                    while not any(e.topic == "AlertCleared"
                                  for e in cleared):
                        assert time.monotonic() < deadline
                        server.serve(key, request_batch(2, 32))
                        cleared.extend(alert_sub.drain())
                        time.sleep(0.05)
            assert agg.report().n_timeouts >= 1
            alert_sub.close()
        (raise_event,) = [e for e in raised if e.topic == "AlertRaised"]
        assert raise_event.name == "timeouts"
        assert raise_event.value >= 1.0

    def test_p95_alert_raises_under_injected_delay_then_clears_idle(
            self, registry, key):
        """delay_injection pushes every e2e sample over the p95 bound; the
        alert raises on the first closed window and clears once idle
        (zeroed) windows satisfy the hysteresis."""
        policy = ServePolicy(max_batch=8, max_wait=2e-3, n_workers=1)
        rules = (AlertRule.p95_latency(0.010, raise_after=1, clear_after=2),)
        with ModelServer(registry, policy, delay_injection=0.05) as server:
            alert_sub = server.telemetry.subscribe(
                topics=("AlertRaised", "AlertCleared"))
            with MetricsAggregator(server.telemetry, window_s=0.2,
                                   max_batch=policy.max_batch):
                with AlertManager(rules, server.telemetry):
                    server.serve(key, request_batch(4, 32))
                    events = drain_until(
                        alert_sub, lambda seen: any(
                            e.topic == "AlertRaised" for e in seen),
                        timeout=30.0)
                    # No further traffic: the aggregator keeps closing
                    # empty windows whose zeroed p95 is in bounds.
                    events += drain_until(
                        alert_sub, lambda seen: any(
                            e.topic == "AlertCleared" for e in seen),
                        timeout=30.0)
            alert_sub.close()
        kinds = [e.topic for e in events]
        assert kinds.index("AlertRaised") < kinds.index("AlertCleared")
        raised = events[kinds.index("AlertRaised")]
        assert raised.metric == "e2e_latency.p95_s"
        assert raised.value > 0.010


# ---------------------------------------------------------- gateway round-trip
class TestAlertWireRoundTrip:
    def test_crash_alert_rides_events_subscribe_frames(self, registry,
                                                       compiled, key):
        """AlertRaised/AlertCleared cross the gateway wire unchanged: a
        shard crash (fault_injection) raises crash_rate, the respawned
        clean windows clear it, and a remote EVENTS_SUBSCRIBE client sees
        both — with no protocol change."""
        batch = request_batch(8, 32)
        policy = ServePolicy(max_batch=8, max_wait=5e-3, n_workers=2)
        rules = (AlertRule.crash_rate(0.0, raise_after=1, clear_after=2),)
        seen: list = []
        done = threading.Event()

        with ModelServer(registry, policy, fault_injection={key}) as server:
            with MetricsAggregator(server.telemetry, window_s=0.2,
                                   max_batch=policy.max_batch):
                with AlertManager(rules, server.telemetry):
                    with Gateway(server) as gateway:
                        host, port = gateway.address

                        def watch():
                            try:
                                with GatewayClient(host, port) as client:
                                    for payload in client.subscribe_events(
                                            topics=("AlertRaised",
                                                    "AlertCleared"),
                                            timeout=10.0):
                                        seen.append(payload)
                                        kinds = {p["event"] for p in seen}
                                        if {"AlertRaised",
                                                "AlertCleared"} <= kinds:
                                            done.set()
                                            return
                            except GatewayError:
                                pass

                        watcher = threading.Thread(target=watch)
                        watcher.start()
                        time.sleep(0.3)   # let the subscription register

                        with GatewayClient(host, port,
                                           timeout=60.0) as client:
                            # The crash-once key: first batch crashes a
                            # worker (raising crash_rate), every retry and
                            # follow-up batch is clean (clearing it).
                            outputs = client.submit_many(
                                (key, row) for row in batch)
                            deadline = time.monotonic() + 30.0
                            while not done.is_set():
                                assert time.monotonic() < deadline
                                client.submit(key, batch[0])
                                time.sleep(0.05)
                        watcher.join(timeout=30.0)

        for row, expected in zip(outputs, compiled.evaluate(batch)):
            np.testing.assert_array_equal(row, expected)
        kinds = [p["event"] for p in seen]
        assert kinds.index("AlertRaised") < kinds.index("AlertCleared")
        # Wire payloads rebuild into the typed events, schema intact.
        raised = event_from_dict(seen[kinds.index("AlertRaised")])
        assert raised.topic == "AlertRaised"
        assert raised.name == "crash_rate"
        assert raised.value >= 1.0
        assert seen[0]["schema"] == 1
