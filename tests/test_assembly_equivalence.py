"""Dense / sparse / legacy assembly equivalence on randomised MNA systems.

The compiled engine (:mod:`repro.circuit.assembly`) must be an exact drop-in
for the legacy per-device dense stamping: same matrices, same DC operating
points, same AC responses and same transient trajectories.  These tests build
randomised RC/nonlinear networks with hypothesis and assert the three
assembly backends agree to tight tolerance for every analysis.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import (
    Circuit,
    CubicConductance,
    DCOptions,
    Sine,
    TransientOptions,
    ac_analysis,
    dc_operating_point,
    frequency_grid,
    transient_analysis,
)
from repro.circuit.assembly import CompiledMNA
from repro.circuits import build_rc_ladder

SETTINGS = dict(max_examples=12, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def random_network(n_sections: int, resistances, capacitances, nonlinear_flags,
                   diode_at: int | None = None) -> Circuit:
    """Driven ladder with optional cubic shunts and one optional diode."""
    circuit = Circuit("random_net")
    circuit.voltage_source("Vin", "n0", "0", Sine(0.5, 0.3, 1e6), is_input=True)
    for k in range(1, n_sections + 1):
        circuit.resistor(f"R{k}", f"n{k - 1}", f"n{k}", resistances[k - 1])
        circuit.capacitor(f"C{k}", f"n{k}", "0", capacitances[k - 1])
        if nonlinear_flags[k - 1]:
            circuit.add(CubicConductance(f"Gnl{k}", f"n{k}", "0",
                                         g1=1e-3, g3=2e-4))
        if diode_at == k:
            circuit.diode(f"D{k}", f"n{k}", "0", junction_capacitance=1e-12)
    circuit.add_output("vout", f"n{n_sections}")
    return circuit


ladder_strategy = st.integers(min_value=1, max_value=6).flatmap(
    lambda n: st.tuples(
        st.just(n),
        st.lists(st.floats(min_value=50.0, max_value=5e4), min_size=n, max_size=n),
        st.lists(st.floats(min_value=1e-12, max_value=1e-8), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
        st.one_of(st.none(), st.integers(min_value=1, max_value=n)),
    ))


class TestMatrixEquivalence:
    @given(ladder_strategy)
    @settings(**SETTINGS)
    def test_compiled_matrices_match_legacy(self, spec):
        n, res, caps, nl, diode_at = spec
        system = random_network(n, res, caps, nl, diode_at).build()
        rng = np.random.default_rng(42)
        v = rng.normal(scale=0.4, size=system.n_unknowns)
        i_ref, g_ref = system.eval_static(v)
        q_ref, c_ref = system.eval_dynamic(v)
        for mode in ("dense", "sparse"):
            engine = CompiledMNA(system, sparse=(mode == "sparse"))
            i_cmp, g_op = engine.eval_static(v)
            q_cmp, c_op = engine.eval_dynamic(v)
            np.testing.assert_allclose(i_cmp, i_ref, rtol=1e-10, atol=1e-14, err_msg=mode)
            np.testing.assert_allclose(q_cmp, q_ref, rtol=1e-10, atol=1e-16, err_msg=mode)
            np.testing.assert_allclose(engine.to_dense(g_op), g_ref,
                                       rtol=1e-10, atol=1e-14, err_msg=mode)
            np.testing.assert_allclose(engine.to_dense(c_op), c_ref,
                                       rtol=1e-10, atol=1e-18, err_msg=mode)


class TestDCEquivalence:
    @given(ladder_strategy)
    @settings(**SETTINGS)
    def test_dc_operating_point_matches(self, spec):
        n, res, caps, nl, diode_at = spec
        system = random_network(n, res, caps, nl, diode_at).build()
        reference = dc_operating_point(system, options=DCOptions(assembly="legacy"))
        for mode in ("dense", "sparse"):
            result = dc_operating_point(system, options=DCOptions(assembly=mode))
            np.testing.assert_allclose(result.solution, reference.solution,
                                       rtol=1e-7, atol=1e-9, err_msg=mode)


class TestACEquivalence:
    @given(ladder_strategy)
    @settings(**SETTINGS)
    def test_ac_response_matches(self, spec):
        n, res, caps, nl, diode_at = spec
        system = random_network(n, res, caps, nl, diode_at).build()
        grid = frequency_grid(1e3, 1e9, 4)
        reference = ac_analysis(system, grid, assembly="legacy")
        for mode in ("dense", "sparse"):
            result = ac_analysis(system, grid, assembly=mode)
            scale = np.max(np.abs(reference.response))
            np.testing.assert_allclose(result.response, reference.response,
                                       rtol=1e-7, atol=1e-9 * scale, err_msg=mode)


class TestTransientEquivalence:
    @given(ladder_strategy)
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_transient_trajectory_matches(self, spec):
        n, res, caps, nl, diode_at = spec
        circuit = random_network(n, res, caps, nl, diode_at)
        reference = transient_analysis(
            circuit.build(), TransientOptions(t_stop=2e-7, dt=2e-9,
                                              assembly="legacy"))
        span = float(reference.outputs.max() - reference.outputs.min()) or 1.0
        for mode in ("dense", "sparse"):
            result = transient_analysis(
                circuit.build(), TransientOptions(t_stop=2e-7, dt=2e-9,
                                                  assembly=mode, predictor=False))
            assert result.n_points == reference.n_points, mode
            np.testing.assert_allclose(result.outputs, reference.outputs,
                                       rtol=1e-6, atol=1e-7 * span, err_msg=mode)

    def test_predictor_changes_nothing_measurable(self):
        circuit = random_network(3, [1e3] * 3, [1e-9] * 3,
                                 [True, False, True], diode_at=2)
        base = transient_analysis(circuit.build(),
                                  TransientOptions(t_stop=1e-6, dt=5e-9,
                                                   predictor=False))
        fast = transient_analysis(circuit.build(),
                                  TransientOptions(t_stop=1e-6, dt=5e-9,
                                                   predictor=True))
        span = float(base.outputs.max() - base.outputs.min()) or 1.0
        np.testing.assert_allclose(fast.outputs, base.outputs,
                                   rtol=1e-5, atol=2e-6 * span)


class TestEngineCacheInvalidation:
    def test_invalidate_compiled_picks_up_device_mutation(self):
        circuit = build_rc_ladder(2, resistance=1e3, capacitance=1e-9,
                                  input_waveform=Sine(0.5, 0.1, 1e5))
        system = circuit.build()
        ac_analysis(system, frequency_grid(1e3, 1e8, 4))  # compiles + caches
        resistor = next(d for d in circuit.devices if d.name == "R1")
        resistor.resistance = 5e3
        system.invalidate_compiled()
        refreshed = ac_analysis(system, frequency_grid(1e3, 1e8, 4))
        reference = ac_analysis(system, frequency_grid(1e3, 1e8, 4),
                                assembly="legacy")
        np.testing.assert_allclose(refreshed.response, reference.response,
                                   rtol=1e-9, atol=1e-12)


class TestBatchedTransferChunking:
    def test_chunked_solve_matches_unchunked(self):
        from repro.circuit.linalg import batched_transfer
        system = build_rc_ladder(4, input_waveform=Sine(0.5, 0.1, 1e5)).build()
        _, g = system.eval_static(system.zero_state())
        _, c = system.eval_dynamic(system.zero_state())
        s_values = 2j * np.pi * frequency_grid(1e3, 1e9, 4)
        full = batched_transfer(g, c, s_values, system.input_matrix,
                                system.output_matrix)
        tiny_chunks = batched_transfer(g, c, s_values, system.input_matrix,
                                       system.output_matrix, max_chunk_bytes=1)
        np.testing.assert_allclose(tiny_chunks, full, rtol=0, atol=0)


class TestDiodeGroupEquivalence:
    """The vectorised diode group must be an exact drop-in for the scalar path."""

    @pytest.fixture(scope="class")
    def limiter_system(self):
        from repro.circuits import build_diode_limiter
        return build_diode_limiter(input_waveform=Sine(0.0, 0.6, 2e6)).build()

    def test_diodes_grouped(self, limiter_system):
        engine = CompiledMNA(limiter_system, sparse=False)
        assert len(engine._diodes.devices) == 2
        assert not engine._nl_static

    @pytest.mark.parametrize("sparse", [False, True])
    def test_matrices_match_across_bias(self, limiter_system, sparse):
        engine = CompiledMNA(limiter_system, sparse=sparse)
        rng = np.random.default_rng(11)
        for _ in range(5):
            # Spans reverse bias, the exponential region and beyond v_crit.
            v = rng.uniform(-1.5, 1.5, limiter_system.n_unknowns)
            i_ref, g_ref = limiter_system.eval_static(v)
            i_cmp, g_op = engine.eval_static(v)
            np.testing.assert_allclose(i_cmp, i_ref, rtol=1e-12, atol=1e-18)
            np.testing.assert_allclose(engine.to_dense(g_op), g_ref,
                                       rtol=1e-12, atol=1e-18)

    def test_transient_matches_legacy(self, limiter_system):
        common = dict(t_stop=2e-7, dt=1e-9)
        compiled = transient_analysis(limiter_system, TransientOptions(**common))
        legacy = transient_analysis(limiter_system,
                                    TransientOptions(assembly="legacy", **common))
        span = float(legacy.outputs.max() - legacy.outputs.min()) or 1.0
        np.testing.assert_allclose(compiled.outputs, legacy.outputs,
                                   rtol=0, atol=5e-5 * span)


class TestThreadedSparseTransfer:
    def test_threaded_sparse_sweep_matches_legacy(self):
        system = build_rc_ladder(80, input_waveform=Sine(0.5, 0.1, 1e6)).build()
        v = np.zeros(system.n_unknowns)
        freqs = frequency_grid(1e3, 1e9, 8)        # enough to engage the pool
        threaded = system.transfer_function(v, freqs, assembly="sparse")
        legacy = system.transfer_function(v, freqs, assembly="legacy")
        np.testing.assert_allclose(threaded, legacy, rtol=1e-8, atol=1e-14)

    def test_few_frequencies_stay_serial_and_match(self):
        system = build_rc_ladder(80, input_waveform=Sine(0.5, 0.1, 1e6)).build()
        v = np.zeros(system.n_unknowns)
        freqs = np.array([1e5, 1e7])
        threaded = system.transfer_function(v, freqs, assembly="sparse")
        legacy = system.transfer_function(v, freqs, assembly="legacy")
        np.testing.assert_allclose(threaded, legacy, rtol=1e-8, atol=1e-14)


class TestBufferEquivalence:
    """The paper's buffer: MOSFET-heavy, exercises the vectorised group."""

    @pytest.fixture(scope="class")
    def buffer_system(self):
        from repro.circuits import build_output_buffer, buffer_training_waveform
        return build_output_buffer(
            input_waveform=buffer_training_waveform()).build()

    def test_matrices_match(self, buffer_system):
        rng = np.random.default_rng(7)
        v = rng.normal(loc=0.5, scale=0.3, size=buffer_system.n_unknowns)
        i_ref, g_ref = buffer_system.eval_static(v)
        q_ref, c_ref = buffer_system.eval_dynamic(v)
        for mode in (False, True):
            engine = CompiledMNA(buffer_system, sparse=mode)
            i_cmp, g_op = engine.eval_static(v)
            q_cmp, c_op = engine.eval_dynamic(v)
            np.testing.assert_allclose(i_cmp, i_ref, rtol=1e-9, atol=1e-15)
            np.testing.assert_allclose(q_cmp, q_ref, rtol=1e-9, atol=1e-20)
            np.testing.assert_allclose(engine.to_dense(g_op), g_ref,
                                       rtol=1e-9, atol=1e-15)
            np.testing.assert_allclose(engine.to_dense(c_op), c_ref,
                                       rtol=1e-9, atol=1e-22)

    def test_transient_matches_legacy(self, buffer_system):
        from repro.circuits import buffer_training_waveform
        period = 1.0 / buffer_training_waveform().frequency
        options = dict(t_stop=period / 20, dt=period / 200)
        reference = transient_analysis(buffer_system,
                                       TransientOptions(assembly="legacy", **options))
        result = transient_analysis(buffer_system,
                                    TransientOptions(**options))
        assert result.n_points == reference.n_points
        span = float(reference.outputs.max() - reference.outputs.min()) or 1.0
        np.testing.assert_allclose(result.outputs, reference.outputs,
                                   rtol=0, atol=5e-5 * span)
