"""Tests for device stamping and device models."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    CubicConductance,
    Diode,
    MOSFETParams,
    NMOS,
    PMOS,
    PolynomialConductance,
    Resistor,
    TanhTransconductor,
    VCCS,
    VCVS,
)
from repro.circuit.devices.base import add_at, add_jac
from repro.exceptions import CircuitError


def build_two_node_system(*devices, extra_outputs=("n1",)):
    """Helper: circuit with a driven node n1 and a second node n2."""
    circuit = Circuit("fixture")
    circuit.voltage_source("Vin", "n1", "0", 1.0, is_input=True)
    for dev in devices:
        circuit.add(dev)
    for node in extra_outputs:
        circuit.add_output(f"v_{node}", node)
    return circuit.build()


class TestStampHelpers:
    def test_add_at_skips_ground(self):
        v = np.zeros(2)
        add_at(v, -1, 5.0)
        assert np.all(v == 0.0)

    def test_add_at_accumulates(self):
        v = np.zeros(2)
        add_at(v, 1, 2.0)
        add_at(v, 1, 3.0)
        assert v[1] == 5.0

    def test_add_jac_skips_ground(self):
        m = np.zeros((2, 2))
        add_jac(m, -1, 0, 1.0)
        add_jac(m, 0, -1, 1.0)
        assert np.all(m == 0.0)


class TestResistor:
    def test_positive_resistance_required(self):
        with pytest.raises(CircuitError):
            Resistor("R1", "a", "b", -10.0)

    def test_conductance(self):
        assert Resistor("R1", "a", "b", 200.0).conductance == pytest.approx(5e-3)

    def test_stamp_current_and_jacobian(self):
        system = build_two_node_system(Resistor("R1", "n1", "0", 1e3))
        v = np.zeros(system.n_unknowns)
        v[system.node_index["n1"]] = 2.0
        i_vec, g_mat = system.eval_static(v)
        n1 = system.node_index["n1"]
        assert i_vec[n1] == pytest.approx(2e-3)
        assert g_mat[n1, n1] == pytest.approx(1e-3)


class TestDiode:
    def test_forward_current_matches_shockley(self):
        d = Diode("D1", "a", "0", saturation_current=1e-14)
        i, g = d.current_and_conductance(0.6)
        expected = 1e-14 * (np.exp(0.6 / 0.02585) - 1.0)
        assert i == pytest.approx(expected, rel=1e-6)

    def test_conductance_is_derivative(self):
        d = Diode("D1", "a", "0")
        h = 1e-7
        i1, _ = d.current_and_conductance(0.55 - h)
        i2, _ = d.current_and_conductance(0.55 + h)
        _, g = d.current_and_conductance(0.55)
        assert g == pytest.approx((i2 - i1) / (2 * h), rel=1e-4)

    def test_reverse_bias_small_current(self):
        d = Diode("D1", "a", "0")
        i, g = d.current_and_conductance(-1.0)
        assert abs(i) < 1e-11
        assert g > 0.0

    def test_linearisation_above_critical_voltage(self):
        d = Diode("D1", "a", "0")
        i1, g1 = d.current_and_conductance(1.0)
        i2, g2 = d.current_and_conductance(1.1)
        # In the linearised region the conductance is constant.
        assert g1 == pytest.approx(g2)
        assert i2 - i1 == pytest.approx(g1 * 0.1, rel=1e-9)

    def test_junction_capacitance_decreases_with_reverse_bias(self):
        d = Diode("D1", "a", "0", junction_capacitance=1e-12)
        _, c_fwd = d.charge_and_capacitance(0.2)
        _, c_rev = d.charge_and_capacitance(-2.0)
        assert c_rev < c_fwd

    def test_capacitance_is_charge_derivative(self):
        d = Diode("D1", "a", "0", junction_capacitance=1e-12, transit_time=1e-10)
        h = 1e-6
        q1, _ = d.charge_and_capacitance(0.3 - h)
        q2, _ = d.charge_and_capacitance(0.3 + h)
        _, c = d.charge_and_capacitance(0.3)
        assert c == pytest.approx((q2 - q1) / (2 * h), rel=1e-3)

    def test_is_nonlinear(self):
        assert Diode("D1", "a", "0").is_nonlinear()

    def test_invalid_grading_coefficient(self):
        with pytest.raises(CircuitError):
            Diode("D1", "a", "0", grading_coefficient=1.5)


class TestMOSFET:
    def test_cutoff_current_is_negligible(self):
        m = NMOS("M1", "d", "g", "s", "b", width=1e-6)
        i, gm, gds = m.drain_current(vgs=0.0, vds=1.0)
        assert abs(i) < 1e-6

    def test_saturation_current_square_law(self):
        params = MOSFETParams(width=10e-6, length=1e-6, kp=100e-6, vto=0.4, lam=0.0,
                              smoothing=1e-4)
        m = NMOS("M1", "d", "g", "s", "b", params=params)
        i, gm, gds = m.drain_current(vgs=0.9, vds=1.0)
        expected = 0.5 * params.beta * (0.9 - 0.4) ** 2
        assert i == pytest.approx(expected, rel=0.02)

    def test_gm_matches_numerical_derivative(self):
        m = NMOS("M1", "d", "g", "s", "b", width=5e-6)
        h = 1e-6
        i1, _, _ = m.drain_current(0.7 - h, 0.8)
        i2, _, _ = m.drain_current(0.7 + h, 0.8)
        _, gm, _ = m.drain_current(0.7, 0.8)
        assert gm == pytest.approx((i2 - i1) / (2 * h), rel=1e-3)

    def test_gds_matches_numerical_derivative(self):
        m = NMOS("M1", "d", "g", "s", "b", width=5e-6)
        h = 1e-6
        i1, _, _ = m.drain_current(0.7, 0.8 - h)
        i2, _, _ = m.drain_current(0.7, 0.8 + h)
        _, _, gds = m.drain_current(0.7, 0.8)
        assert gds == pytest.approx((i2 - i1) / (2 * h), rel=1e-3)

    def test_current_continuous_across_vds_zero(self):
        m = NMOS("M1", "d", "g", "s", "b", width=5e-6)
        i_neg, _, gds = m.drain_current(0.7, -1e-6)
        i_pos, _, _ = m.drain_current(0.7, 1e-6)
        # The jump must be explained by the finite conductance, not a kink.
        assert abs(i_pos - i_neg) <= 3.0 * gds * 2e-6
        assert i_pos * i_neg <= 0 or abs(i_pos) < 1e-8

    def test_reverse_operation_antisymmetric(self):
        params = MOSFETParams(width=5e-6, lam=0.0)
        m = NMOS("M1", "d", "g", "s", "b", params=params)
        i_fwd, _, _ = m.drain_current(0.7, 0.3)
        # Swap drain and source: vgs' = vgd = 0.4, vds' = -0.3.
        i_rev, _, _ = m.drain_current(0.4, -0.3)
        assert i_rev == pytest.approx(-i_fwd, rel=1e-9)

    def test_pmos_mirror_of_nmos(self):
        n = NMOS("MN", "d", "g", "s", "b", width=5e-6)
        p = PMOS("MP", "d", "g", "s", "b", width=5e-6)
        i_n, _, _ = n.drain_current(0.8, 0.6)
        i_p, _, _ = p.drain_current(0.8, 0.6)
        assert i_p == pytest.approx(i_n)

    def test_capacitance_values_positive(self):
        params = MOSFETParams(width=10e-6)
        assert params.cgs > 0.0
        assert params.cgd > 0.0

    def test_invalid_polarity_rejected(self):
        from repro.circuit.devices.mosfet import MOSFET
        with pytest.raises(CircuitError):
            MOSFET("M1", "d", "g", "s", "b", polarity=2)

    def test_invalid_geometry_rejected(self):
        with pytest.raises(CircuitError):
            MOSFETParams(width=-1e-6)

    def test_operating_point_reporting(self):
        system = Circuit("op")
        system.voltage_source("VDD", "vdd", "0", 1.2)
        system.voltage_source("Vg", "g", "0", 0.7, is_input=True)
        system.resistor("RD", "vdd", "d", 1e3)
        m = system.nmos("M1", "d", "g", "0", "0", width=5e-6)
        system.add_output("out", "d")
        mna = system.build()
        from repro.circuit import dc_operating_point
        op = dc_operating_point(mna)
        info = m.operating_point(op.solution)
        assert info["id"] > 0.0
        assert info["gm"] > 0.0
        assert info["vgs"] == pytest.approx(0.7)


class TestBehavioralDevices:
    def test_polynomial_conductance_current(self):
        g = PolynomialConductance("G1", "a", "0", [0.0, 1e-3, 0.0, 2e-4])
        assert g.current(0.5) == pytest.approx(1e-3 * 0.5 + 2e-4 * 0.125)

    def test_polynomial_conductance_derivative(self):
        g = PolynomialConductance("G1", "a", "0", [0.0, 1e-3, 0.0, 2e-4])
        h = 1e-7
        numeric = (g.current(0.5 + h) - g.current(0.5 - h)) / (2 * h)
        assert g.conductance(0.5) == pytest.approx(numeric, rel=1e-5)

    def test_polynomial_requires_coefficients(self):
        with pytest.raises(CircuitError):
            PolynomialConductance("G1", "a", "0", [])

    def test_polynomial_linearity_flag(self):
        assert not PolynomialConductance("G1", "a", "0", [0.0, 1e-3]).is_nonlinear()
        assert PolynomialConductance("G2", "a", "0", [0.0, 1e-3, 1e-4]).is_nonlinear()

    def test_cubic_conductance_saturating(self):
        g = CubicConductance("G1", "a", "0", g1=1e-3, g3=1e-4)
        assert g.is_nonlinear()

    def test_tanh_transconductor_limits(self):
        t = TanhTransconductor("GM", "o", "0", "c", "0",
                               transconductance=1e-3, max_current=1e-4)
        i_large, _ = t.current_and_gm(10.0)
        assert i_large == pytest.approx(1e-4, rel=1e-3)

    def test_tanh_transconductor_small_signal_gm(self):
        t = TanhTransconductor("GM", "o", "0", "c", "0",
                               transconductance=2e-3, max_current=1e-3)
        _, gm = t.current_and_gm(0.0)
        assert gm == pytest.approx(2e-3)


class TestControlledSources:
    def test_vcvs_gain(self):
        circuit = Circuit("vcvs")
        circuit.voltage_source("Vin", "in", "0", 0.5, is_input=True)
        circuit.add(VCVS("E1", "out", "0", "in", "0", gain=4.0))
        circuit.resistor("RL", "out", "0", 1e3)
        circuit.add_output("vout", "out")
        from repro.circuit import dc_operating_point
        result = dc_operating_point(circuit.build())
        assert result.outputs[0] == pytest.approx(2.0)

    def test_vccs_output_current(self):
        circuit = Circuit("vccs")
        circuit.voltage_source("Vin", "in", "0", 0.2, is_input=True)
        circuit.add(VCCS("G1", "out", "0", "in", "0", transconductance=1e-3))
        circuit.resistor("RL", "out", "0", 1e4)
        circuit.add_output("vout", "out")
        from repro.circuit import dc_operating_point
        result = dc_operating_point(circuit.build())
        # Current 0.2 mA flows out of 'out' through the source, so the load
        # sees -0.2 mA * 10 kOhm = -2 V.
        assert result.outputs[0] == pytest.approx(-2.0)

    def test_vccs_zero_gm_rejected(self):
        with pytest.raises(CircuitError):
            VCCS("G1", "a", "b", "c", "d", transconductance=0.0)


class TestDeviceBinding:
    def test_unbound_device_raises_on_access(self):
        r = Resistor("R1", "a", "b", 1.0)
        with pytest.raises(CircuitError):
            _ = r.node_index

    def test_empty_name_rejected(self):
        with pytest.raises(CircuitError):
            Resistor("", "a", "b", 1.0)
