"""The checker checking itself: REP1xx rule fixtures, pragmas, lockwatch.

Every rule gets a known-bad fixture that must be flagged *exactly once*
with the right rule id, and a known-good fixture that must stay clean —
the checker's false-positive rate is as much a contract as its recall.
"""

import json
import textwrap
import threading
from pathlib import Path

import pytest

from repro.checks import lockwatch
from repro.checks.cli import main as checks_main
from repro.checks.engine import check_source, run_paths

REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


def findings(source, only=None):
    return check_source("fixture.py", textwrap.dedent(source), only=only)


def rule_hits(rule, source):
    return [f for f in findings(source, only=[rule]) if f.rule == rule]


# ----------------------------------------------------------------- REP101


def test_rep101_flags_blocking_call_in_async_def():
    hits = rule_hits("REP101", """
        import time

        async def handler():
            time.sleep(0.1)
    """)
    assert len(hits) == 1
    assert hits[0].rule == "REP101" and hits[0].line == 5


def test_rep101_good_fixture_clean():
    assert rule_hits("REP101", """
        import time

        def sync_path():
            time.sleep(0.1)      # blocking is fine off the event loop

        async def handler(event, writer):
            await event.wait()   # awaited .wait() is non-blocking
            await writer.wait_closed()
    """) == []


# ----------------------------------------------------------------- REP102


def test_rep102_flags_publish_under_lock():
    hits = rule_hits("REP102", """
        class Server:
            def submit(self):
                with self._lock:
                    self.broker.publish("event")
    """)
    assert len(hits) == 1 and hits[0].line == 5


def test_rep102_good_fixture_clean():
    assert rule_hits("REP102", """
        class Server:
            def submit(self):
                with self._lock:
                    batch = self._queue.pop()

                    def deferred():       # runs later, not under the lock
                        future.set_result(batch)
                self.broker.publish("event")
                deferred()
    """) == []


# ----------------------------------------------------------------- REP103


def test_rep103_flags_wall_clock_deadline():
    hits = rule_hits("REP103", """
        import time

        def deadline():
            return time.time() + 5.0
    """)
    assert len(hits) == 1 and hits[0].line == 5


def test_rep103_good_fixture_clean():
    assert rule_hits("REP103", """
        import time

        def deadline():
            return time.monotonic() + 5.0

        def elapsed(start):
            return time.perf_counter() - start
    """) == []


# ----------------------------------------------------------------- REP104


def test_rep104_flags_silent_broad_except():
    hits = rule_hits("REP104", """
        def swallow():
            try:
                risky()
            except Exception:
                pass
    """)
    assert len(hits) == 1 and hits[0].line == 5


def test_rep104_flags_raise_outside_hierarchy():
    hits = rule_hits("REP104", """
        def fail():
            raise RuntimeError("nope")
    """)
    assert len(hits) == 1 and "RuntimeError" in hits[0].message


def test_rep104_flags_bare_except():
    hits = rule_hits("REP104", """
        def swallow():
            try:
                risky()
            except:
                pass
    """)
    assert len(hits) == 1 and "bare except" in hits[0].message


def test_rep104_good_fixture_clean():
    assert rule_hits("REP104", """
        from repro.exceptions import ServeError

        def ok():
            try:
                risky()
            except Exception as exc:
                raise ServeError("risky failed") from exc
            try:
                other()
            except Exception as exc:
                log(exc)            # attributed, not swallowed
            raise ValueError("python-contract builtin is fine")
    """) == []


# ----------------------------------------------------------------- REP105


def test_rep105_flags_unregistered_event():
    hits = rule_hits("REP105", """
        from dataclasses import dataclass

        SCHEMA_VERSION = 1

        class TelemetryEvent:
            pass

        @dataclass(frozen=True)
        class BatchClosed(TelemetryEvent):
            key: str
    """)
    assert len(hits) == 1 and "register_event" in hits[0].message


def test_rep105_flags_asymmetric_frame_code():
    hits = rule_hits("REP105", """
        MAGIC = 42
        VERSION = 1
        REQUEST, RESULT = 1, 2

        def encode_request(x):
            return _PREFIX.pack(MAGIC, VERSION, REQUEST, x)

        def encode_result(x):
            return _PREFIX.pack(MAGIC, VERSION, RESULT, x)

        def decode_payload(msg_type, payload):
            if msg_type == REQUEST:
                return payload
    """)
    assert len(hits) == 1 and "RESULT" in hits[0].message
    assert "never handles" in hits[0].message


def test_rep105_flags_duplicate_wire_value():
    hits = rule_hits("REP105", """
        MAGIC = 42
        REQUEST = 1
        RESULT = 1

        def encode_request(x):
            return _PREFIX.pack(MAGIC, 0, REQUEST, x)

        def encode_result(x):
            return _PREFIX.pack(MAGIC, 0, RESULT, x)

        def decode_payload(msg_type, payload):
            if msg_type == REQUEST:
                return payload
            if msg_type == RESULT:
                return payload
    """)
    assert len(hits) == 1 and "share wire value 1" in hits[0].message


def test_rep105_good_fixtures_clean():
    assert rule_hits("REP105", """
        from dataclasses import dataclass

        SCHEMA_VERSION = 2

        class TelemetryEvent:
            pass

        @register_event
        @dataclass(frozen=True)
        class BatchClosed(TelemetryEvent):
            key: str
    """) == []
    assert rule_hits("REP105", """
        MAGIC = 42
        REQUEST, RESULT = 1, 2

        def encode_request(x):
            return _PREFIX.pack(MAGIC, 0, REQUEST, x)

        def encode_result(x):
            return _PREFIX.pack(MAGIC, 0, RESULT, x)

        def decode_payload(msg_type, payload):
            if msg_type == REQUEST:
                return payload
            if msg_type == RESULT:
                return payload
    """) == []


# ----------------------------------------------------------------- REP106


def test_rep106_flags_lock_shipped_to_worker():
    hits = rule_hits("REP106", """
        import threading
        from multiprocessing import Process

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def spawn(self):
                Process(target=work, args=(self._lock, "name")).start()
    """)
    assert len(hits) == 1 and "_lock" in hits[0].message


def test_rep106_good_fixture_clean():
    assert rule_hits("REP106", """
        import threading
        from multiprocessing import Process

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self.segment_name = "shm_0"

            def spawn(self, child_conn):
                Process(target=work,
                        args=(child_conn, self.segment_name)).start()
    """) == []


# ----------------------------------------------------------------- REP107


def test_rep107_flags_orphan_span_call():
    hits = rule_hits("REP107", """
        def handler(tracer, trace_id):
            span = tracer.span("serve_queue", trace_id)
            do_work()
    """)
    assert len(hits) == 1 and "context" in hits[0].message


def test_rep107_flags_span_traffic_under_lock():
    hits = rule_hits("REP107", """
        def serve(self, trace_id):
            with self._lock:
                self.tracer.emit("serve_queue", trace_id, 0.0, 1.0)
            with self._lock:
                with self.tracer.span("serve_execute", trace_id):
                    step()
    """)
    assert len(hits) == 2
    assert "emit" in hits[0].message and "span" in hits[1].message


def test_rep107_good_fixture_clean():
    assert rule_hits("REP107", """
        def serve(self, trace_id):
            with self._lock:
                t_closed = self.now()
            with self.tracer.span("serve_execute", trace_id):
                step()
            self.tracer.emit("serve_queue", trace_id, 0.0, t_closed)
    """) == []


def test_rep107_ignores_non_tracer_receivers():
    # `span` on something that is not a tracer (an assembler, a layout
    # object) is somebody else's API, not an orphan trace span.
    assert rule_hits("REP107", """
        def layout(grid):
            cell = grid.span(2, 3)
            return cell
    """) == []


def test_rep107_pragma_suppresses_with_reason():
    assert rule_hits("REP107", """
        def handler(tracer, trace_id):
            # repro: allow[REP107] span handle passed to a test harness
            span = tracer.span("serve_queue", trace_id)
            return span
    """) == []


# ----------------------------------------------------- pragmas and REP100


def test_allow_pragma_suppresses_on_same_line():
    source = """
        import time

        def provenance():
            return time.time()  # repro: allow[REP103] human-facing timestamp
    """
    assert rule_hits("REP103", source) == []


def test_allow_pragma_on_comment_line_covers_next_line():
    source = """
        import time

        def provenance():
            # repro: allow[REP103] human-facing timestamp
            return time.time()
    """
    assert rule_hits("REP103", source) == []


def test_allow_pragma_suppresses_only_named_rule():
    source = """
        import time

        def provenance():
            return time.time()  # repro: allow[REP104] wrong rule id
    """
    assert len(rule_hits("REP103", source)) == 1


def test_allow_pragma_without_reason_is_a_finding():
    source = """
        import time

        def provenance():
            return time.time()  # repro: allow[REP103]
    """
    got = findings(source)
    rules = sorted(f.rule for f in got)
    # The reason-less pragma is reported AND does not suppress the rule.
    assert rules == ["REP100", "REP103"]


def test_syntax_error_reported_as_rep100():
    got = findings("def broken(:\n")
    assert [f.rule for f in got] == ["REP100"]
    assert "does not parse" in got[0].message


# --------------------------------------------------------- whole-repo gate


def test_shipped_tree_is_clean():
    """`python -m repro.checks src/repro` must exit 0 on the repo itself."""
    assert run_paths([REPO_SRC]) == []


def test_cli_exit_codes(tmp_path, capsys):
    assert checks_main([str(REPO_SRC)]) == 0
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    assert checks_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert f"{bad}:4: REP103" in out


def test_cli_list_rules(capsys):
    assert checks_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in ("REP101", "REP102", "REP103", "REP104", "REP105",
                    "REP106", "REP107"):
        assert rule_id in out


def test_cli_json_mode(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\n\ndef f():\n    return time.time()\n")
    assert checks_main(["--json", str(bad)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is False
    assert report["n_findings"] == len(report["findings"]) == 1
    assert report["n_files"] == 1
    (finding,) = report["findings"]
    assert finding["path"] == str(bad)
    assert finding["line"] == 4
    assert finding["rule"] == "REP103"
    assert "time.time" in finding["message"]

    good = tmp_path / "good.py"
    good.write_text("x = 1\n")
    assert checks_main(["--json", str(good)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is True
    assert report["findings"] == []

    assert checks_main(["--json", "--list-rules"]) == 0
    rules = json.loads(capsys.readouterr().out)["rules"]
    assert set(rules) >= {"REP101", "REP102", "REP103", "REP104", "REP105",
                          "REP106", "REP107"}
    assert all(doc for doc in rules.values())


# --------------------------------------------------------------- lockwatch


def test_disabled_watcher_returns_plain_primitives():
    with lockwatch.isolated():
        lockwatch.disable()
        assert isinstance(lockwatch.monitored_lock("x"),
                          type(threading.Lock()))
        assert isinstance(lockwatch.monitored_condition("x"),
                          threading.Condition)


def test_consistent_lock_order_is_clean():
    with lockwatch.isolated():
        a = lockwatch.monitored_lock("order.a")
        b = lockwatch.monitored_lock("order.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert lockwatch.violations() == []


def test_seeded_lock_order_inversion_is_detected():
    with lockwatch.isolated():
        a = lockwatch.monitored_lock("inv.a")
        b = lockwatch.monitored_lock("inv.b")
        with a:
            with b:
                pass
        with b:
            with a:     # opposite order: the seeded inversion
                pass
        got = lockwatch.violations()
        assert [v.kind for v in got] == ["lock-order"]
        assert "inv.a" in got[0].detail and "inv.b" in got[0].detail
        # ...and reported once per pair, not once per acquisition.
        with b:
            with a:
                pass
        assert len(lockwatch.violations()) == 1


def test_publish_under_lock_is_detected():
    from repro.telemetry.broker import TopicBroker

    with lockwatch.isolated():
        broker = TopicBroker()
        with broker.subscribe():
            guard = lockwatch.monitored_lock("watch.guard")
            with guard:
                broker.publish("event")
            got = lockwatch.violations()
            assert [v.kind for v in got] == ["publish-under-lock"]
            assert "watch.guard" in got[0].detail


def test_publish_under_lock_honors_allow_pragma():
    from repro.telemetry.broker import TopicBroker

    with lockwatch.isolated():
        broker = TopicBroker()
        with broker.subscribe():
            guard = lockwatch.monitored_lock("watch.pragma")
            with guard:
                # repro: allow[REP102] exercising the runtime pragma lookup
                broker.publish("event")
            assert lockwatch.violations() == []


def test_publish_outside_locks_is_clean():
    from repro.telemetry.broker import TopicBroker

    with lockwatch.isolated():
        broker = TopicBroker()
        with broker.subscribe() as sub:
            broker.publish("event")
            assert sub.get(timeout=1.0) == "event"
        assert lockwatch.violations() == []


def test_condition_wait_updates_held_stack():
    with lockwatch.isolated():
        cond = lockwatch.monitored_condition("wait.cond")
        seen = []

        def waiter():
            with cond:
                cond.wait(timeout=0.5)
                seen.append(lockwatch.held())

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            cond.notify_all()
        thread.join()
        assert seen == [("wait.cond",)]
        assert lockwatch.violations() == []
        assert lockwatch.held() == ()


def test_assert_clean_raises_with_seeded_violation():
    with lockwatch.isolated():
        a = lockwatch.monitored_lock("gate.a")
        b = lockwatch.monitored_lock("gate.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        with pytest.raises(AssertionError, match="lock-order"):
            lockwatch.assert_clean()
