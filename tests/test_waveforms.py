"""Tests for stimulus waveforms."""

import numpy as np
import pytest

from repro.circuit.waveforms import DC, BitPattern, PiecewiseLinear, Pulse, Sine, prbs_bits


class TestDC:
    def test_constant_value(self):
        assert DC(1.2)(0.0) == 1.2
        assert DC(1.2)(1e-6) == 1.2

    def test_dc_value_property(self):
        assert DC(-0.3).dc_value == -0.3

    def test_sample_vectorised(self):
        w = DC(0.5)
        assert np.all(w.sample(np.linspace(0, 1, 5)) == 0.5)


class TestSine:
    def test_value_at_zero_without_delay(self):
        w = Sine(offset=1.0, amplitude=0.5, frequency=1e6)
        assert w(0.0) == pytest.approx(1.0)

    def test_peak_value(self):
        w = Sine(offset=0.0, amplitude=2.0, frequency=1.0)
        assert w(0.25) == pytest.approx(2.0, abs=1e-12)

    def test_period(self):
        w = Sine(offset=0.0, amplitude=1.0, frequency=10.0)
        assert w(0.05) == pytest.approx(w(0.15), abs=1e-12)

    def test_holds_offset_before_delay(self):
        w = Sine(offset=0.7, amplitude=0.5, frequency=1e6, delay=1e-6)
        assert w(0.5e-6) == pytest.approx(0.7)

    def test_phase_shift(self):
        w = Sine(offset=0.0, amplitude=1.0, frequency=1.0, phase=np.pi / 2)
        assert w(0.0) == pytest.approx(1.0)

    def test_damping_reduces_amplitude(self):
        w = Sine(amplitude=1.0, frequency=1.0, damping=1.0)
        assert abs(w(1.25)) < 1.0


class TestPulse:
    def test_initial_level_before_delay(self):
        w = Pulse(initial=0.0, pulsed=1.0, delay=1e-9)
        assert w(0.5e-9) == 0.0

    def test_pulsed_level_on_plateau(self):
        w = Pulse(initial=0.0, pulsed=1.0, delay=0.0, rise=1e-12, width=1e-9, period=2e-9)
        assert w(0.5e-9) == pytest.approx(1.0)

    def test_rise_is_linear(self):
        w = Pulse(initial=0.0, pulsed=1.0, delay=0.0, rise=1e-9, width=1e-9, period=4e-9)
        assert w(0.5e-9) == pytest.approx(0.5)

    def test_returns_to_initial(self):
        w = Pulse(initial=0.2, pulsed=1.0, delay=0.0, rise=1e-12, fall=1e-12,
                  width=1e-9, period=4e-9)
        assert w(3e-9) == pytest.approx(0.2)

    def test_periodicity(self):
        w = Pulse(initial=0.0, pulsed=1.0, delay=0.0, rise=1e-12, fall=1e-12,
                  width=1e-9, period=2e-9)
        assert w(0.5e-9) == pytest.approx(w(2.5e-9))


class TestPiecewiseLinear:
    def test_interpolation(self):
        w = PiecewiseLinear([(0.0, 0.0), (1.0, 2.0)])
        assert w(0.5) == pytest.approx(1.0)

    def test_clamps_outside_range(self):
        w = PiecewiseLinear([(0.0, 1.0), (1.0, 3.0)])
        assert w(-1.0) == pytest.approx(1.0)
        assert w(2.0) == pytest.approx(3.0)

    def test_empty_points_is_zero(self):
        assert PiecewiseLinear([])(0.3) == 0.0

    def test_unsorted_points_are_sorted(self):
        w = PiecewiseLinear([(1.0, 2.0), (0.0, 0.0)])
        assert w(0.5) == pytest.approx(1.0)


class TestPrbsBits:
    def test_length(self):
        assert len(prbs_bits(100)) == 100

    def test_binary_values(self):
        assert set(prbs_bits(64)) <= {0, 1}

    def test_deterministic_for_same_seed(self):
        assert prbs_bits(32, seed=5) == prbs_bits(32, seed=5)

    def test_different_seeds_differ(self):
        assert prbs_bits(64, seed=3) != prbs_bits(64, seed=77)

    def test_prbs7_period(self):
        bits = prbs_bits(254, order=7)
        assert bits[:127] == bits[127:254]

    def test_contains_both_symbols(self):
        bits = prbs_bits(50)
        assert 0 in bits and 1 in bits

    def test_invalid_order_raises(self):
        with pytest.raises(ValueError):
            prbs_bits(10, order=4)


class TestBitPattern:
    def test_levels(self):
        w = BitPattern(bits=[1, 1, 0, 0], bit_rate=1e9, low=0.2, high=1.0)
        assert w(0.5e-9) == pytest.approx(1.0)
        assert w(3.5e-9) == pytest.approx(0.2)

    def test_duration(self):
        w = BitPattern(bits=[1, 0, 1], bit_rate=1e9)
        assert w.duration == pytest.approx(3e-9)

    def test_holds_last_bit_after_pattern(self):
        w = BitPattern(bits=[0, 1], bit_rate=1e9, low=0.0, high=1.0)
        assert w(10e-9) == pytest.approx(1.0)

    def test_raised_cosine_edge_midpoint(self):
        w = BitPattern(bits=[0, 1], bit_rate=1e9, low=0.0, high=1.0, edge_time=0.4e-9)
        assert w(1.2e-9) == pytest.approx(0.5, abs=1e-9)

    def test_values_within_levels(self):
        w = BitPattern(bits=prbs_bits(16), bit_rate=2.5e9, low=0.4, high=1.4)
        t = np.linspace(0, w.duration, 500)
        values = w.sample(t)
        assert values.min() >= 0.4 - 1e-12
        assert values.max() <= 1.4 + 1e-12

    def test_delay_shifts_pattern(self):
        w = BitPattern(bits=[1, 0], bit_rate=1e9, low=0.0, high=1.0, delay=1e-9)
        assert w(0.5e-9) == pytest.approx(1.0)  # before delay: first bit level


class TestVectorisedSampling:
    """The NumPy ``sample`` overrides must agree with the scalar reference.

    ``sample`` is the hot path of ``stack_stimuli`` and of excitation
    evaluation for long bit patterns; the scalar ``value`` stays the
    reference implementation.
    """

    WAVEFORMS = [
        Sine(offset=0.9, amplitude=0.5, frequency=2e6, delay=3e-9, phase=0.3,
             damping=2e6),
        Sine(offset=0.0, amplitude=1.0, frequency=1e8),
        Pulse(initial=0.1, pulsed=1.0, delay=2e-9, rise=1e-9, fall=2e-9,
              width=3e-9, period=10e-9),
        Pulse(),
        PiecewiseLinear([(0.0, 0.0), (1e-9, 1.0), (5e-9, 0.2)]),
        PiecewiseLinear([]),
        BitPattern(bits=prbs_bits(32), bit_rate=2.5e9, low=0.5, high=1.3),
        BitPattern(bits=[1, 0, 1, 1], bit_rate=1e9, edge_time=0.0),
        BitPattern(bits=[1, 0, 0, 1], bit_rate=1e9, delay=2e-9),
        BitPattern(bits=[], bit_rate=1e9),
    ]

    @pytest.mark.parametrize("waveform", WAVEFORMS,
                             ids=lambda w: type(w).__name__)
    def test_sample_matches_scalar_value(self, waveform):
        rng = np.random.default_rng(42)
        times = np.concatenate([
            rng.uniform(-5e-9, 25e-9, 500),
            np.arange(0.0, 20e-9, 0.4e-9),      # exact bit/period boundaries
            [0.0, 2e-9, 3e-9],                  # exact delays
        ])
        reference = np.array([waveform.value(float(t)) for t in times])
        vectorised = waveform.sample(times)
        assert vectorised.shape == times.shape
        np.testing.assert_allclose(vectorised, reference, rtol=0, atol=1e-14)

    def test_sample_preserves_shape(self):
        w = Sine(amplitude=1.0, frequency=1e6)
        grid = np.linspace(0, 1e-6, 12).reshape(3, 4)
        assert w.sample(grid).shape == (3, 4)

    def test_sample_accepts_lists(self):
        w = Pulse()
        out = w.sample([0.0, 0.5e-9, 1.5e-9])
        assert out.shape == (3,)


class TestBreakpoints:
    """Corner-time registration consumed by the adaptive step controller."""

    def test_smooth_waveforms_have_none(self):
        assert DC(0.7).breakpoints(0.0, 1.0).size == 0
        assert Sine(0.5, 0.1, 1e6).breakpoints(0.0, 1e-6).size == 0

    def test_sine_hold_end_is_a_corner(self):
        w = Sine(0.5, 0.1, 1e6, delay=2e-7)
        np.testing.assert_allclose(w.breakpoints(0.0, 1e-6), [2e-7])
        assert w.breakpoints(3e-7, 1e-6).size == 0      # outside the span

    def test_pulse_corners_across_periods(self):
        w = Pulse(initial=0.0, pulsed=1.0, delay=1e-9, rise=1e-9, fall=2e-9,
                  width=3e-9, period=10e-9)
        corners = w.breakpoints(0.0, 20e-9)
        expected = [1e-9, 2e-9, 5e-9, 7e-9,             # first period
                    11e-9, 12e-9, 15e-9, 17e-9]         # second period
        np.testing.assert_allclose(corners, expected)

    def test_pulse_window_clips_and_keeps_order(self):
        w = Pulse(rise=1e-9, fall=1e-9, width=2e-9, period=10e-9)
        corners = w.breakpoints(10.5e-9, 14e-9)
        np.testing.assert_allclose(corners, [11e-9, 13e-9, 14e-9])

    def test_piecewise_linear_knots(self):
        w = PiecewiseLinear([(0.0, 0.0), (1e-9, 1.0), (5e-9, 0.2)])
        np.testing.assert_allclose(w.breakpoints(0.5e-9, 10e-9), [1e-9, 5e-9])

    def test_bitpattern_transition_starts_and_ends(self):
        w = BitPattern(bits=[0, 1, 1, 0], bit_rate=1e9, edge_time=0.2e-9)
        corners = w.breakpoints(0.0, 4e-9)
        # Transitions into bits 1 and 3 only; start and end of each edge.
        np.testing.assert_allclose(corners, [1e-9, 1.2e-9, 3e-9, 3.2e-9])

    def test_bitpattern_constant_pattern_has_none(self):
        assert BitPattern(bits=[1, 1, 1], bit_rate=1e9).breakpoints(0, 3e-9).size == 0

    def test_breakpoints_sorted_unique(self):
        w = Pulse(rise=1e-9, fall=1e-9, width=8e-9, period=10e-9)
        corners = w.breakpoints(0.0, 50e-9)
        assert np.all(np.diff(corners) > 0)             # strictly increasing
