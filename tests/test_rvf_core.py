"""Tests for residue functions, analytic integration, recursive fitting and the
Hammerstein model — the core of the RVF reproduction."""

import numpy as np
import pytest

from repro.exceptions import ModelError
from repro.rvf import (
    HammersteinBranch,
    HammersteinModel,
    IntegratedPartialFraction,
    PartialFractionFunction,
    StateFitOptions,
    basis_primitive,
    fit_recursive_expansion,
    fit_residue_trajectories,
    simulate_hammerstein,
)
from repro.rvf.timedomain import _phi1, _phi2
from repro.tft import StateEstimator


class TestBasisPrimitive:
    def test_derivative_matches_basis_function(self):
        pole = -0.3 + 0.7j
        u = np.linspace(-1, 2, 200)
        primitive = basis_primitive(u, pole)
        numeric = np.gradient(primitive, u)
        expected = 1.0 / (1j * u - pole)
        assert np.allclose(numeric[5:-5], expected[5:-5], rtol=1e-3)

    def test_smooth_across_pole_imaginary_part(self):
        # With Re(b) != 0 the primitive must be continuous even where u passes
        # Im(b) (no branch-cut jump).
        pole = 0.05 + 0.9j
        u = np.linspace(0.8, 1.0, 400)
        values = basis_primitive(u, pole)
        assert np.max(np.abs(np.diff(values))) < 0.2

    def test_scalar_input_returns_complex(self):
        assert isinstance(basis_primitive(0.3, -1 + 1j), complex)

    def test_pole_on_imaginary_axis_rejected(self):
        with pytest.raises(ModelError):
            basis_primitive(0.5, 1j * 0.7)


class TestPartialFractionFunction:
    def test_evaluation(self):
        f = PartialFractionFunction([-1 + 0.5j], [2.0], constant=1.0)
        x = 0.7
        expected = 1.0 + 2.0 / (1j * x - (-1 + 0.5j))
        assert f(x) == pytest.approx(expected)

    def test_vectorised_evaluation(self):
        f = PartialFractionFunction([-1 + 0.5j, -0.2 - 0.3j], [1.0, 2.0])
        x = np.linspace(0, 1, 7)
        assert f(x).shape == (7,)

    def test_conjugate_function_values(self):
        f = PartialFractionFunction([-1 + 0.5j], [2.0 + 1j], constant=0.3 + 0.1j)
        x = np.linspace(-1, 1, 9)
        assert np.allclose(f.conjugate()(x), np.conj(f(x)))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ModelError):
            PartialFractionFunction([-1.0], [1.0, 2.0])

    def test_antiderivative_roundtrip(self):
        f = PartialFractionFunction([-0.5 + 0.8j, 0.3 - 0.6j], [1.2, -0.7 + 0.2j],
                                    constant=0.4)
        F = f.antiderivative()
        u = np.linspace(0.0, 2.0, 400)
        numeric = np.gradient(F(u), u)
        assert np.allclose(numeric[5:-5], f(u)[5:-5], rtol=1e-3, atol=1e-4)

    def test_integrated_with_value_at(self):
        f = PartialFractionFunction([-0.5 + 0.8j], [1.0])
        F = f.antiderivative().with_value_at(0.9, 2.5)
        assert F(0.9) == pytest.approx(2.5)

    def test_integrated_derivative_recovers_function(self):
        f = PartialFractionFunction([-0.5 + 0.8j], [1.0 + 2j], constant=0.1)
        g = f.antiderivative().derivative()
        x = np.linspace(0, 1, 5)
        assert np.allclose(g(x), f(x))

    def test_expression_rendering(self):
        f = PartialFractionFunction([-0.5 + 0.8j], [1.0], constant=0.25, variable="u")
        text = f.to_expression()
        assert "j*u" in text and "0.25" in text
        assert "atan" in f.antiderivative().to_expression()

    def test_is_effectively_real(self):
        # A function built from a (b, -conj(b)) pair with matched coefficients
        # is real on the real axis.
        b = 0.2 + 0.9j
        f = PartialFractionFunction([b, -np.conj(b)], [1j, 1j])
        x = np.linspace(0, 2, 20)
        assert np.max(np.abs(f(x).imag)) < 1e-12 * max(1, np.max(np.abs(f(x))))


class TestFitResidueTrajectories:
    def test_fits_smooth_real_function(self):
        x = np.linspace(0.4, 1.4, 90)
        target = 2.0 / (1.0 + np.exp(-8 * (x - 0.9)))
        functions, report = fit_residue_trajectories(
            x, target.astype(complex), StateFitOptions(error_bound=1e-3, max_order=16))
        fitted = functions[0](x)
        error = np.sqrt(np.mean(np.abs(fitted - target) ** 2)) / np.std(target)
        assert error < 2e-2

    def test_fits_multiple_functions_with_common_poles(self):
        x = np.linspace(-1, 1, 80)
        rows = np.array([np.tanh(3 * x), 1.0 / (1.0 + x ** 2), x ** 2]).astype(complex)
        functions, report = fit_residue_trajectories(
            x, rows, StateFitOptions(error_bound=1e-3, max_order=18))
        assert len(functions) == 3
        for f, row in zip(functions, rows):
            assert np.sqrt(np.mean(np.abs(f(x) - row) ** 2)) < 5e-2
        # Common poles: every function shares the report's pole set.
        for f in functions:
            assert np.allclose(f.poles, report.poles)

    def test_complex_valued_trajectory(self):
        x = np.linspace(0, 1, 70)
        row = (np.tanh(4 * (x - 0.5)) + 1j * np.exp(-10 * (x - 0.5) ** 2)).astype(complex)
        functions, _ = fit_residue_trajectories(
            x, row, StateFitOptions(error_bound=1e-3, max_order=16))
        error = np.sqrt(np.mean(np.abs(functions[0](x) - row) ** 2))
        assert error < 5e-2

    def test_poles_are_integrable(self):
        x = np.linspace(0.4, 1.4, 60)
        target = np.exp(-30 * (x - 0.9) ** 2).astype(complex)
        _, report = fit_residue_trajectories(x, target,
                                             StateFitOptions(error_bound=1e-4, max_order=14))
        assert np.all(np.abs(report.poles.real) > 0)

    def test_report_orders_monotone(self):
        x = np.linspace(0, 1, 50)
        target = np.tanh(5 * (x - 0.5)).astype(complex)
        _, report = fit_residue_trajectories(x, target, StateFitOptions(max_order=10))
        assert report.orders_tried == sorted(report.orders_tried)

    def test_too_few_samples_rejected(self):
        from repro.exceptions import FittingError
        with pytest.raises(FittingError):
            fit_residue_trajectories(np.array([0.0, 1.0]), np.array([1.0, 2.0]))


class TestRecursiveExpansion:
    def test_one_dimensional_grid_delegates(self):
        u = np.linspace(0, 1, 40)
        samples = np.array([np.tanh(3 * (u - 0.5))]).astype(complex)
        functions, reports = fit_recursive_expansion([u], samples,
                                                     StateFitOptions(max_order=10))
        assert len(functions) == 1 and len(reports) == 1
        assert isinstance(functions[0], PartialFractionFunction)

    def test_two_dimensional_separable_surface(self):
        u = np.linspace(-1, 1, 25)
        x2 = np.linspace(0.5, 1.5, 12)
        surface = np.tanh(2 * u)[None, :, None] * (1.0 / (x2 ** 2 + 1.0))[None, None, :]
        functions, reports = fit_recursive_expansion(
            [u, x2], surface.astype(complex), StateFitOptions(error_bound=1e-3, max_order=10))
        nested = functions[0]
        # Evaluate on a few grid points and compare with the reference surface.
        errors = []
        for i in (2, 12, 22):
            for j in (1, 6, 10):
                value = nested(np.array([u[i], x2[j]]))
                errors.append(abs(value - surface[0, i, j]))
        assert max(errors) < 5e-2

    def test_two_dimensional_antiderivative_along_u(self):
        u = np.linspace(-1, 1, 30)
        x2 = np.linspace(0.5, 1.5, 10)
        surface = (u[None, :, None] ** 2) * x2[None, None, :]
        functions, _ = fit_recursive_expansion(
            [u, x2], surface.astype(complex), StateFitOptions(error_bound=1e-4, max_order=10))
        nested = functions[0]
        integral = nested.antiderivative()
        # Fundamental theorem of calculus on the *fitted* expansion: the change
        # of the antiderivative along u equals the quadrature of the expansion
        # itself (robust against sharp basis features, unlike a point-wise
        # finite difference).
        j = 4
        u_grid = np.linspace(-0.6, 0.6, 4001)
        values = np.array([nested(np.array([ui, x2[j]])) for ui in u_grid])
        quadrature = np.trapezoid(values, u_grid)
        delta = (integral(np.array([u_grid[-1], x2[j]]))
                 - integral(np.array([u_grid[0], x2[j]])))
        # Compare the physically meaningful (real) part; narrow basis spikes
        # below the quadrature resolution can leave a tiny imaginary residue.
        assert delta.real == pytest.approx(quadrature.real, rel=2e-2, abs=2e-3)

    def test_shape_mismatch_rejected(self):
        from repro.exceptions import FittingError
        with pytest.raises(FittingError):
            fit_recursive_expansion([np.linspace(0, 1, 5)], np.zeros((1, 7)))


def make_linear_model(pole=-2e9, residue=3e9, gain=0.2, dc_input=0.5, dc_output=0.0):
    """Single-real-pole Hammerstein model with *linear* static blocks."""
    residue_function = PartialFractionFunction([-100.0 + 1j], [0.0], constant=residue)
    static = residue_function.antiderivative().with_value_at(dc_input, 0.0)
    branch = HammersteinBranch(pole=pole, residue_function=residue_function,
                               static_function=static, is_complex_pair=False)
    gain_function = PartialFractionFunction([-100.0 + 1j], [0.0], constant=gain)
    static_path = gain_function.antiderivative().with_value_at(dc_input, dc_output)
    return HammersteinModel([branch], gain_function, static_path, StateEstimator(),
                            dc_input, dc_output)


class TestHammersteinModel:
    def test_unstable_branch_rejected(self):
        f = PartialFractionFunction([-1 + 1j], [1.0])
        with pytest.raises(ModelError):
            HammersteinBranch(pole=+1e9, residue_function=f,
                              static_function=f.antiderivative(), is_complex_pair=False)

    def test_model_is_stable_by_construction(self):
        assert make_linear_model().is_stable()

    def test_transfer_function_of_linear_model(self):
        model = make_linear_model(pole=-2e9, residue=3e9, gain=0.2)
        freqs = np.array([1e6, 1e9, 5e9])
        surface = model.transfer_function(np.array([0.5]), freqs)
        expected = 0.2 + 3e9 / (2j * np.pi * freqs - (-2e9))
        assert np.allclose(surface[0], expected, rtol=1e-9)

    def test_dc_transfer(self):
        model = make_linear_model(pole=-2e9, residue=3e9, gain=0.2)
        dc = model.dc_transfer(np.array([0.5]))
        assert dc[0] == pytest.approx(0.2 + 3e9 / 2e9)

    def test_complex_pair_branch_contributes_conjugate(self):
        f = PartialFractionFunction([-100.0 + 1j], [0.0], constant=1e9 + 5e8j)
        branch = HammersteinBranch(pole=-1e9 + 3e9j, residue_function=f,
                                   static_function=f.antiderivative(), is_complex_pair=True)
        s = 2j * np.pi * np.array([2e9])
        value = branch.small_signal(np.array([0.0]), s)[0, 0]
        expected = (1e9 + 5e8j) / (s[0] + 1e9 - 3e9j) + (1e9 - 5e8j) / (s[0] + 1e9 + 3e9j)
        assert value == pytest.approx(expected)

    def test_frequency_poles_include_conjugates(self):
        f = PartialFractionFunction([-100.0 + 1j], [0.0], constant=1.0)
        branch = HammersteinBranch(pole=-1e9 + 3e9j, residue_function=f,
                                   static_function=f.antiderivative(), is_complex_pair=True)
        model = HammersteinModel([branch], f, f.antiderivative(), StateEstimator(), 0.0, 0.0)
        assert model.frequency_poles.size == 2
        assert model.dynamic_order == 2

    def test_describe_mentions_branch_count(self):
        model = make_linear_model()
        assert "1 branches" in model.describe()


class TestTimeDomainSimulation:
    def test_phi_functions_small_argument_series(self):
        assert _phi1(1e-12) == pytest.approx(1.0, rel=1e-9)
        assert _phi2(1e-12) == pytest.approx(0.5, rel=1e-9)

    def test_phi_functions_large_argument(self):
        z = -50.0
        assert _phi1(z) == pytest.approx((np.exp(z) - 1) / z)
        assert _phi2(z) == pytest.approx((np.exp(z) - 1 - z) / z ** 2)

    def test_linear_model_step_response(self):
        # dy/dt = a y + r*u with u stepping from 0.5 to 1.5 => first-order step.
        pole, residue = -2e9, 3e9
        model = make_linear_model(pole=pole, residue=residue, gain=0.0, dc_input=0.5)
        times = np.linspace(0, 5e-9, 2001)
        inputs = np.where(times > 0.5e-9, 1.5, 0.5)
        result = simulate_hammerstein(model, times, inputs)
        # Analytic: y settles to (-residue/pole) * (u - u_dc) relative to start.
        final_expected = (-residue / pole) * (1.5 - 0.5)
        assert result.outputs[-1] == pytest.approx(final_expected, rel=1e-3)
        tau_index = np.searchsorted(times, 0.5e-9 + 1.0 / abs(pole))
        assert result.outputs[tau_index] == pytest.approx(final_expected * (1 - np.exp(-1)),
                                                          rel=2e-2)

    def test_equilibrium_initial_condition(self):
        model = make_linear_model()
        times = np.linspace(0, 1e-9, 101)
        inputs = np.full_like(times, model.dc_input)
        result = simulate_hammerstein(model, times, inputs)
        assert np.allclose(result.outputs, model.dc_output, atol=1e-12)

    def test_callable_input(self):
        model = make_linear_model()
        times = np.linspace(0, 1e-9, 101)
        result = simulate_hammerstein(model, times, lambda t: 0.5)
        assert result.n_points == 101

    def test_non_uniform_time_grid(self):
        model = make_linear_model(pole=-1e9, residue=1e9, gain=0.0)
        times = np.concatenate([np.linspace(0, 1e-9, 50), np.linspace(1.05e-9, 12e-9, 80)])
        inputs = np.where(times > 0.2e-9, 1.0, 0.5)
        result = simulate_hammerstein(model, times, inputs)
        # Settled value: (-residue/pole) * (1.0 - 0.5) = 0.5 after >> tau = 1 ns.
        assert result.outputs[-1] == pytest.approx(0.5, rel=1e-2)

    def test_invalid_inputs_rejected(self):
        model = make_linear_model()
        with pytest.raises(ModelError):
            simulate_hammerstein(model, np.array([0.0, 1e-9]), np.array([1.0]))
        with pytest.raises(ModelError):
            simulate_hammerstein(model, np.array([0.0]), np.array([1.0]))
        with pytest.raises(ModelError):
            simulate_hammerstein(model, np.array([0.0, 0.0]), np.array([1.0, 1.0]))

    def test_model_simulate_method_matches_function(self):
        model = make_linear_model()
        times = np.linspace(0, 1e-9, 51)
        inputs = np.linspace(0.5, 1.0, 51)
        assert np.allclose(model.simulate(times, inputs),
                           simulate_hammerstein(model, times, inputs).outputs)
