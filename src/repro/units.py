"""Engineering-unit helpers used by the netlist parser and reports.

SPICE netlists express component values with engineering suffixes
(``10k``, ``2.5u``, ``1meg``), and the analysis reports print values back in
the same style.  This module provides the two directions:

* :func:`parse_value` — turn a netlist token into a ``float``.
* :func:`format_si` — render a ``float`` with an SI prefix for reports.
"""

from __future__ import annotations

import math
import re

from .exceptions import NetlistParseError

__all__ = ["parse_value", "format_si", "SI_PREFIXES"]

# Suffixes accepted by the netlist parser (SPICE convention, case-insensitive).
# ``meg`` must be matched before ``m`` (milli); the regex below handles that by
# matching the longest alphabetic suffix and looking it up here.
_SPICE_SUFFIXES = {
    "t": 1e12,
    "g": 1e9,
    "meg": 1e6,
    "x": 1e6,
    "k": 1e3,
    "m": 1e-3,
    "u": 1e-6,
    "µ": 1e-6,
    "n": 1e-9,
    "p": 1e-12,
    "f": 1e-15,
    "a": 1e-18,
}

#: SI prefixes used when formatting values for reports, largest first.
SI_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]

_VALUE_RE = re.compile(
    r"""^\s*
        (?P<number>[+-]?(?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?)
        (?P<suffix>[a-zA-Zµ]*)
        \s*$""",
    re.VERBOSE,
)


def parse_value(token: str | float | int, strict_spice: bool = False) -> float:
    """Parse a SPICE-style value token such as ``"10k"`` or ``"2.5u"``.

    Numeric inputs are passed through unchanged.  Unknown alphabetic
    suffixes are tolerated the SPICE way: only the leading recognised prefix
    counts (``100pF`` parses as ``100e-12``), but a completely unknown suffix
    on its own raises :class:`~repro.exceptions.NetlistParseError`.

    By default an *uppercase* ``M`` means mega (SI convention, matching
    :func:`format_si` output so that format/parse round-trips), while
    lowercase ``m`` remains milli and the classic ``meg``/``MEG`` spelling
    works in any case.  The netlist parser passes ``strict_spice=True``,
    under which suffixes are fully case-insensitive and ``M`` keeps its
    traditional SPICE meaning of milli — a netlist imported from another
    tool must not silently change by nine orders of magnitude.
    """
    if isinstance(token, (int, float)):
        return float(token)
    match = _VALUE_RE.match(token)
    if match is None:
        raise NetlistParseError(f"cannot parse value {token!r}")
    value = float(match.group("number"))
    raw_suffix = match.group("suffix")
    suffix = raw_suffix.lower()
    if not suffix:
        return value
    if suffix.startswith("meg"):
        return value * 1e6
    if not strict_spice and raw_suffix[0] == "M":
        return value * 1e6
    prefix = suffix[0]
    if prefix in _SPICE_SUFFIXES:
        return value * _SPICE_SUFFIXES[prefix]
    # A bare unit such as "V", "Hz" or "Ohm" carries no scale factor.
    if suffix.isalpha():
        return value
    raise NetlistParseError(f"unknown unit suffix {suffix!r} in {token!r}")


def format_si(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an SI prefix, e.g. ``format_si(2.2e-9, "s")``.

    Zero, NaN and infinities are printed literally.  The number of significant
    digits defaults to three, which matches the precision used in the paper's
    tables.
    """
    if value == 0:
        return f"0 {unit}".strip()
    if math.isnan(value) or math.isinf(value):
        return f"{value} {unit}".strip()
    magnitude = abs(value)
    for scale, prefix in SI_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            return f"{scaled:.{digits}g} {prefix}{unit}".strip()
    scale, prefix = SI_PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".strip()
