"""repro — analytical nonlinear macromodels from analog circuits.

Reproduction of De Jonghe, Deschrijver, Dhaene and Gielen,
"Extracting Analytical Nonlinear Models from Analog Circuits by Recursive
Vector Fitting of Transfer Function Trajectories", DATE 2013.

The package is organised bottom-up:

* :mod:`repro.circuit` — nonlinear MNA circuit simulator (the SPICE substrate),
* :mod:`repro.tft` — Jacobian snapshots and Transfer Function Trajectories,
* :mod:`repro.vectfit` — (relaxed) vector fitting of frequency responses,
* :mod:`repro.rvf` — recursive vector fitting and Hammerstein model synthesis
  (the paper's core contribution),
* :mod:`repro.baselines` — the CAFFEINE-style regression baseline,
* :mod:`repro.circuits` — ready-made example circuits including the
  high-speed output buffer used in the paper's evaluation,
* :mod:`repro.sweep` — batched scenario sweeps (many stimuli / parameter
  corners in one call) feeding trajectory families into the TFT extraction,
* :mod:`repro.runtime` — compiled model runtime: batch serving of extracted
  models (recurrence compilation, registry persistence, sim-vs-model
  validation),
* :mod:`repro.serve` — traffic serving: micro-batching, per-model dispatch
  lanes, sharded worker processes, per-request futures,
* :mod:`repro.gateway` — asyncio TCP front-end and clients so remote
  processes reach the same scheduler,
* :mod:`repro.analysis` — error metrics, timing and report helpers.
"""

from __future__ import annotations

__version__ = "1.1.0"

from .analysis import compare_surfaces, time_domain_rmse
from .baselines import extract_caffeine_model
from .circuit import (
    Circuit,
    Sine,
    TransientOptions,
    ac_analysis,
    dc_operating_point,
    transient_analysis,
)
from .circuits import build_output_buffer, buffer_test_pattern, buffer_training_waveform
from .rvf import (
    HammersteinModel,
    RVFOptions,
    extract_rvf_model,
    simulate_hammerstein,
)
from .runtime import (
    CompiledModel,
    ModelRegistry,
    compile_model,
    validate_model,
)
from .sweep import Scenario, SweepOptions, run_sweep, waveform_sweep
from .tft import SnapshotTrajectory, StateEstimator, TFTDataset, extract_tft

__all__ = [
    "__version__",
    # circuit substrate
    "Circuit", "Sine", "TransientOptions",
    "dc_operating_point", "ac_analysis", "transient_analysis",
    # example circuits
    "build_output_buffer", "buffer_training_waveform", "buffer_test_pattern",
    # TFT
    "SnapshotTrajectory", "StateEstimator", "TFTDataset", "extract_tft",
    # scenario sweeps
    "Scenario", "SweepOptions", "run_sweep", "waveform_sweep",
    # RVF core
    "extract_rvf_model", "RVFOptions", "HammersteinModel", "simulate_hammerstein",
    # compiled runtime
    "compile_model", "CompiledModel", "ModelRegistry", "validate_model",
    # baseline + analysis
    "extract_caffeine_model", "compare_surfaces", "time_domain_rmse",
]
