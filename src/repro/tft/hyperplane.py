"""The Transfer Function Trajectory dataset (the "TFT hyperplane").

A :class:`TFTDataset` holds the state-dependent transfer functions
``H^(k)_{lm}(s)`` sampled on a grid of frequencies for every captured circuit
state ``k``, together with the low-dimensional state-estimator coordinates
``x^(k)``.  It is the object plotted in the paper's Fig. 6 and the input to
the Recursive Vector Fitting model extraction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..exceptions import ReproError

__all__ = ["TFTDataset"]


@dataclass
class TFTDataset:
    """State x frequency samples of the circuit's small-signal response.

    Attributes
    ----------
    frequencies:
        Frequency grid in Hz, shape ``(L,)``.
    states:
        State-estimator coordinates ``x^(k)``, shape ``(K, q)``.
    response:
        Complex transfer functions ``H^(k)(s_l)``, shape ``(K, L, M_o, M_i)``.
    dc_response:
        Instantaneous DC (``s = 0``) transfer functions, shape ``(K, M_o, M_i)``.
    times:
        Time stamps of the originating snapshots, shape ``(K,)`` (optional).
    """

    frequencies: np.ndarray
    states: np.ndarray
    response: np.ndarray
    dc_response: np.ndarray
    times: np.ndarray | None = None
    outputs: np.ndarray | None = None
    input_names: list[str] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.frequencies = np.asarray(self.frequencies, dtype=float).ravel()
        self.states = np.atleast_2d(np.asarray(self.states, dtype=float))
        if self.states.shape[0] != self.response.shape[0]:
            self.states = self.states.T
        self.response = np.asarray(self.response, dtype=complex)
        if self.response.ndim == 2:
            self.response = self.response[:, :, None, None]
        self.dc_response = np.asarray(self.dc_response, dtype=complex)
        if self.dc_response.ndim == 1:
            self.dc_response = self.dc_response[:, None, None]
        k, l = self.response.shape[:2]
        if self.frequencies.size != l:
            raise ReproError(
                f"response has {l} frequency samples but grid has {self.frequencies.size}")
        if self.states.shape[0] != k:
            raise ReproError(
                f"response has {k} states but {self.states.shape[0]} state vectors given")
        if self.outputs is not None:
            self.outputs = np.atleast_2d(np.asarray(self.outputs, dtype=float))
            if self.outputs.shape[0] != k:
                self.outputs = self.outputs.T

    # ------------------------------------------------------------------ shape
    @property
    def n_states(self) -> int:
        return int(self.response.shape[0])

    @property
    def n_frequencies(self) -> int:
        return int(self.response.shape[1])

    @property
    def n_outputs(self) -> int:
        return int(self.response.shape[2])

    @property
    def n_inputs(self) -> int:
        return int(self.response.shape[3])

    @property
    def state_dimension(self) -> int:
        return int(self.states.shape[1])

    def state_axis(self, dimension: int = 0) -> np.ndarray:
        """One coordinate of the state estimator for every sample, shape ``(K,)``."""
        return self.states[:, dimension]

    # ------------------------------------------------------------- SISO views
    def siso_response(self, output: int = 0, input_: int = 0) -> np.ndarray:
        """Full response for one input/output pair, shape ``(K, L)``."""
        return self.response[:, :, output, input_]

    def siso_dc(self, output: int = 0, input_: int = 0) -> np.ndarray:
        """Instantaneous DC gains along the trajectory, shape ``(K,)``."""
        return self.dc_response[:, output, input_]

    def dynamic_response(self, output: int = 0, input_: int = 0) -> np.ndarray:
        """Dynamic part ``H(s) - H(0)`` (paper's H-bar), shape ``(K, L)``."""
        return self.siso_response(output, input_) - self.siso_dc(output, input_)[:, None]

    def gain_db(self, output: int = 0, input_: int = 0) -> np.ndarray:
        """Gain surface in dB, shape ``(K, L)`` (the paper's Fig. 6 top)."""
        magnitude = np.abs(self.siso_response(output, input_))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-300))

    def phase_deg(self, output: int = 0, input_: int = 0, unwrap: bool = True) -> np.ndarray:
        """Phase surface in degrees, unwrapped along the frequency axis."""
        phase = np.angle(self.siso_response(output, input_))
        if unwrap:
            phase = np.unwrap(phase, axis=1)
        return np.degrees(phase)

    # ------------------------------------------------------------ manipulation
    def sorted_by_state(self, dimension: int = 0) -> "TFTDataset":
        """Copy with samples ordered by one state coordinate (for plotting)."""
        order = np.argsort(self.states[:, dimension], kind="stable")
        return TFTDataset(
            frequencies=self.frequencies.copy(),
            states=self.states[order],
            response=self.response[order],
            dc_response=self.dc_response[order],
            times=None if self.times is None else self.times[order],
            outputs=None if self.outputs is None else self.outputs[order],
            input_names=list(self.input_names),
            output_names=list(self.output_names),
        )

    def subsample_states(self, max_states: int) -> "TFTDataset":
        """Uniformly thin the state axis to at most ``max_states`` samples."""
        if max_states < 2:
            raise ReproError("need at least two states")
        if self.n_states <= max_states:
            return self
        indices = np.unique(np.linspace(0, self.n_states - 1, max_states).astype(int))
        return TFTDataset(
            frequencies=self.frequencies.copy(),
            states=self.states[indices],
            response=self.response[indices],
            dc_response=self.dc_response[indices],
            times=None if self.times is None else self.times[indices],
            outputs=None if self.outputs is None else self.outputs[indices],
            input_names=list(self.input_names),
            output_names=list(self.output_names),
        )

    def restrict_frequencies(self, f_min: float, f_max: float) -> "TFTDataset":
        """Copy restricted to the frequency band ``[f_min, f_max]``."""
        mask = (self.frequencies >= f_min) & (self.frequencies <= f_max)
        if not np.any(mask):
            raise ReproError("no frequency samples inside the requested band")
        return TFTDataset(
            frequencies=self.frequencies[mask],
            states=self.states.copy(),
            response=self.response[:, mask],
            dc_response=self.dc_response.copy(),
            times=None if self.times is None else self.times.copy(),
            outputs=None if self.outputs is None else self.outputs.copy(),
            input_names=list(self.input_names),
            output_names=list(self.output_names),
        )

    # ------------------------------------------------------------ persistence
    def save(self, path: str | Path) -> None:
        """Serialise to a NumPy ``.npz`` archive."""
        np.savez_compressed(
            Path(path),
            frequencies=self.frequencies,
            states=self.states,
            response=self.response,
            dc_response=self.dc_response,
            times=np.array([]) if self.times is None else self.times,
            outputs=np.array([]) if self.outputs is None else self.outputs,
            input_names=np.array(self.input_names, dtype=object),
            output_names=np.array(self.output_names, dtype=object),
        )

    @classmethod
    def load(cls, path: str | Path) -> "TFTDataset":
        """Load a dataset saved with :meth:`save`."""
        archive = np.load(Path(path), allow_pickle=True)
        times = archive["times"]
        outputs = archive["outputs"] if "outputs" in archive else np.array([])
        return cls(
            frequencies=archive["frequencies"],
            states=archive["states"],
            response=archive["response"],
            dc_response=archive["dc_response"],
            times=None if times.size == 0 else times,
            outputs=None if outputs.size == 0 else outputs,
            input_names=[str(n) for n in archive["input_names"]],
            output_names=[str(n) for n in archive["output_names"]],
        )

    def describe(self) -> str:
        lo, hi = self.state_axis().min(), self.state_axis().max()
        return (f"TFT dataset: {self.n_states} states x {self.n_frequencies} frequencies, "
                f"{self.n_outputs} output(s) x {self.n_inputs} input(s), "
                f"state axis [{lo:.3f}, {hi:.3f}], "
                f"frequency span [{self.frequencies[0]:.3g}, {self.frequencies[-1]:.3g}] Hz")
