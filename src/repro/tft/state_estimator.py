"""Low-dimensional state estimators built from delayed input samples.

The TFT method maps each sampled circuit state ``k`` onto a low-dimensional
vector ``x(t_k)`` composed of the input and delayed copies of the input
(paper eq. (4)):

.. math:: k \\;\\rightarrow\\; x(t) = (u(t), u(t-\\Delta_1), \\ldots, u(t-\\Delta_{q-1}))

For the output-buffer demonstrator a single dimension ``x = u(t)`` is enough
(the paper's Fig. 6 uses exactly that), but the classes here support an
arbitrary number of delays so MIMO / higher-order embeddings can be built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ReproError

__all__ = ["StateEstimator", "DelayLine"]


@dataclass
class StateEstimator:
    """Delayed-input embedding ``x(t) = (u(t), u(t - delays[0]), ...)``.

    ``delays`` is the tuple of *additional* delays; the undelayed input is
    always the first coordinate, so ``dimension == len(delays) + 1``.
    ``input_index`` selects which circuit input is embedded (SISO circuits
    have a single input).
    """

    delays: tuple[float, ...] = ()
    input_index: int = 0

    def __post_init__(self) -> None:
        delays = tuple(float(d) for d in self.delays)
        if any(d <= 0 for d in delays):
            raise ReproError("state-estimator delays must be positive")
        self.delays = tuple(sorted(delays))

    @property
    def dimension(self) -> int:
        """Dimension ``q`` of the state estimator."""
        return len(self.delays) + 1

    def embed(self, times: np.ndarray, inputs: np.ndarray) -> np.ndarray:
        """Embed a sampled input waveform; returns ``(K, q)``.

        ``inputs`` may be 1-D (one input) or 2-D ``(K, M_i)``; delayed values
        are obtained by linear interpolation of the sampled waveform, and
        times before the start of the record clamp to the first sample
        (the circuit is assumed to sit at its DC point before ``t=0``).
        """
        times = np.asarray(times, dtype=float).ravel()
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim == 2:
            inputs = inputs[:, self.input_index]
        if times.size != inputs.size:
            raise ReproError("times and inputs must have the same length")
        columns = [inputs]
        for delay in self.delays:
            delayed_times = np.clip(times - delay, times[0], times[-1])
            columns.append(np.interp(delayed_times, times, inputs))
        return np.column_stack(columns)

    def embed_snapshot_trajectory(self, trajectory) -> np.ndarray:
        """Embed the inputs recorded in a :class:`SnapshotTrajectory`."""
        return self.embed(trajectory.times, trajectory.inputs())

    def delay_line(self, initial_value: float = 0.0) -> "DelayLine":
        """Streaming evaluator for time-domain model simulation."""
        return DelayLine(self.delays, initial_value)


class DelayLine:
    """Streaming delayed-input evaluator used during model simulation.

    The Hammerstein model needs ``x(t)`` at every integration step; this class
    keeps a short history of ``(t, u)`` samples and produces the delayed
    coordinates by interpolation, so the extracted model can be simulated with
    any step size without storing the whole waveform up front.
    """

    def __init__(self, delays: tuple[float, ...], initial_value: float = 0.0) -> None:
        self.delays = tuple(float(d) for d in delays)
        self._history_t: list[float] = []
        self._history_u: list[float] = []
        self._initial_value = float(initial_value)
        self._max_delay = max(self.delays) if self.delays else 0.0

    def push(self, t: float, u: float) -> np.ndarray:
        """Record ``u(t)`` and return the embedded vector ``x(t)``."""
        self._history_t.append(float(t))
        self._history_u.append(float(u))
        # Trim history older than the largest delay (keep a small margin).
        if self._max_delay > 0 and len(self._history_t) > 2:
            cutoff = t - 2.0 * self._max_delay
            while len(self._history_t) > 2 and self._history_t[1] < cutoff:
                self._history_t.pop(0)
                self._history_u.pop(0)
        coords = [u]
        for delay in self.delays:
            coords.append(self._value_at(t - delay))
        return np.array(coords)

    def _value_at(self, t: float) -> float:
        if not self._history_t or t <= self._history_t[0]:
            return self._history_u[0] if self._history_u else self._initial_value
        return float(np.interp(t, self._history_t, self._history_u))
