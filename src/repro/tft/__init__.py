"""Transfer Function Trajectories: Jacobian snapshots to state/frequency data."""

from .hyperplane import TFTDataset
from .snapshots import JacobianSnapshot, SnapshotTrajectory
from .state_estimator import DelayLine, StateEstimator
from .trajectory import default_frequency_grid, extract_tft, snapshot_transfer_function

__all__ = [
    "JacobianSnapshot",
    "SnapshotTrajectory",
    "StateEstimator",
    "DelayLine",
    "TFTDataset",
    "extract_tft",
    "snapshot_transfer_function",
    "default_frequency_grid",
]
