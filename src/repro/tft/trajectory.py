"""Transforming Jacobian snapshots into Transfer Function Trajectories.

Implements the sampling loop of Algorithm 1 (lines 3-12): for every captured
state ``k`` the state-dependent transfer function

.. math:: H^{(k)}(s_l) = D^T \\left(G^{(k)} + s_l\\,C^{(k)}\\right)^{-1} B

is evaluated on a discrete frequency grid ``{s_l}``, and the instantaneous
small-signal conductance ``H^{(k)}(0)`` is evaluated separately so the static
and dynamic parts of the response can be split downstream.
"""

from __future__ import annotations

import numpy as np

from ..circuit.ac import frequency_grid
from ..exceptions import ReproError, SingularMatrixError
from .hyperplane import TFTDataset
from .snapshots import JacobianSnapshot, SnapshotTrajectory
from .state_estimator import StateEstimator

__all__ = ["extract_tft", "snapshot_transfer_function", "default_frequency_grid"]


def default_frequency_grid(f_min: float = 1.0, f_max: float = 10e9,
                           points_per_decade: int = 4) -> np.ndarray:
    """Logarithmic frequency grid matching the span used in the paper's Fig. 6.

    The paper plots the TFT hyperplane from ~1 Hz up to 10 GHz; four points
    per decade over ten decades gives ~40 frequency samples, comparable to the
    discretisation used there.
    """
    return frequency_grid(f_min, f_max, points_per_decade)


def snapshot_transfer_function(snapshot: JacobianSnapshot, input_matrix: np.ndarray,
                               output_matrix: np.ndarray, frequencies: np.ndarray,
                               gmin: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate ``H(s)`` and ``H(0)`` for one snapshot.

    Returns ``(response, dc_response)`` with shapes ``(L, M_o, M_i)`` and
    ``(M_o, M_i)``.  A small ``gmin`` can be added on the diagonal of ``G`` to
    regularise floating nodes; the default of zero matches the paper, which
    relies on the circuit itself being well posed.
    """
    g_mat = snapshot.conductance
    c_mat = snapshot.capacitance
    n = g_mat.shape[0]
    if gmin:
        g_mat = g_mat + gmin * np.eye(n)
    frequencies = np.asarray(frequencies, dtype=float).ravel()
    n_outputs = output_matrix.shape[1]
    n_inputs = input_matrix.shape[1]
    try:
        dc_solve = np.linalg.solve(g_mat, input_matrix)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError(
            "G(k) is singular at s=0; the circuit has a floating node or an "
            "all-capacitive cutset — add a leakage path or pass gmin > 0") from exc
    dc_response = output_matrix.T @ dc_solve

    s_values = 2j * np.pi * frequencies
    try:
        # Batched LAPACK solves, chunked along the frequency axis to bound
        # the peak memory of the (chunk, n, n) system stack.
        from ..circuit.linalg import batched_transfer
        return batched_transfer(g_mat, c_mat, s_values,
                                input_matrix, output_matrix), dc_response
    except np.linalg.LinAlgError:
        pass
    # Fall back to the per-frequency loop to report *which* frequency failed.
    response = np.empty((frequencies.size, n_outputs, n_inputs), dtype=complex)
    for idx, freq in enumerate(frequencies):
        s = 2j * np.pi * freq
        try:
            solved = np.linalg.solve(g_mat + s * c_mat, input_matrix)
        except np.linalg.LinAlgError as exc:
            raise SingularMatrixError(
                f"(G + sC) is singular at f={freq:.3g} Hz") from exc
        response[idx] = output_matrix.T @ solved
    return response, dc_response


def extract_tft(trajectory: SnapshotTrajectory, frequencies: np.ndarray | None = None,
                state_estimator: StateEstimator | None = None,
                max_snapshots: int | None = None, gmin: float = 0.0) -> TFTDataset:
    """Transform a snapshot trajectory into a :class:`TFTDataset`.

    Parameters
    ----------
    trajectory:
        Jacobian snapshots recorded during a transient analysis.
    frequencies:
        Frequency grid in Hz; defaults to :func:`default_frequency_grid`.
    state_estimator:
        Mapping from the input waveform to the low-dimensional state ``x``;
        defaults to the one-dimensional estimator ``x = u(t)`` used by the
        paper's example.
    max_snapshots:
        Optional thinning of the trajectory before the transform (the paper
        uses about 100 samples).
    gmin:
        Optional diagonal regularisation of ``G(k)``.
    """
    if len(trajectory) == 0:
        raise ReproError("cannot extract a TFT from an empty trajectory")
    if frequencies is None:
        frequencies = default_frequency_grid()
    if state_estimator is None:
        state_estimator = StateEstimator()
    if max_snapshots is not None:
        trajectory = trajectory.subsample(max_snapshots)

    frequencies = np.asarray(frequencies, dtype=float).ravel()
    states = state_estimator.embed_snapshot_trajectory(trajectory)

    k_count = len(trajectory)
    n_outputs = trajectory.n_outputs
    n_inputs = trajectory.n_inputs
    response = np.empty((k_count, frequencies.size, n_outputs, n_inputs), dtype=complex)
    dc_response = np.empty((k_count, n_outputs, n_inputs), dtype=complex)

    for k, snapshot in enumerate(trajectory):
        response[k], dc_response[k] = snapshot_transfer_function(
            snapshot, trajectory.input_matrix, trajectory.output_matrix,
            frequencies, gmin=gmin)

    return TFTDataset(
        frequencies=frequencies,
        states=states,
        response=response,
        dc_response=dc_response,
        times=trajectory.times,
        outputs=trajectory.outputs(),
        input_names=list(trajectory.input_names),
        output_names=list(trajectory.output_names),
    )
