"""Jacobian snapshots captured along a transient trajectory.

The first step of the paper's flow "extracts the MNA matrix from the ELDO
simulator at each time step t_k during transient simulation".  In this
reproduction the :class:`SnapshotTrajectory` object plays that role: it is the
snapshot callback handed to :func:`repro.circuit.transient.transient_analysis`
and collects, for every accepted time point,

* the linearised conductance matrix ``G(k) = di/dv |_{v(t_k)}``,
* the linearised capacitance matrix ``C(k) = dq/dv |_{v(t_k)}``,
* the input value ``u(t_k)``, the output ``y(t_k)`` and the full solution.

Together with the constant incidence matrices ``B`` and ``D`` of the circuit
this is exactly the data set ``{C(k), G(k), B, D}, u_k, y_k`` consumed by
Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuit.mna import MNASystem
from ..exceptions import ReproError

__all__ = ["JacobianSnapshot", "SnapshotTrajectory"]


@dataclass
class JacobianSnapshot:
    """One sample of the circuit's internal linearisation."""

    time: float
    state: np.ndarray          # full MNA solution vector v(t_k)
    inputs: np.ndarray         # u(t_k), shape (M_i,)
    outputs: np.ndarray        # y(t_k), shape (M_o,)
    conductance: np.ndarray    # G(k), shape (N, N)
    capacitance: np.ndarray    # C(k), shape (N, N)

    @property
    def order(self) -> int:
        return int(self.conductance.shape[0])


class SnapshotTrajectory:
    """Ordered collection of Jacobian snapshots along one transient run.

    Implements the transient solver's snapshot-callback protocol, so an
    instance can be passed directly as ``snapshot_callback``.
    """

    def __init__(self, system: MNASystem) -> None:
        self.system = system
        self.input_matrix = system.input_matrix.copy()
        self.output_matrix = system.output_matrix.copy()
        self.input_names = list(system.input_names)
        self.output_names = list(system.output_names)
        self.snapshots: list[JacobianSnapshot] = []

    # -------------------------------------------------------------- recording
    @staticmethod
    def _as_dense(matrix) -> np.ndarray:
        """Dense copy of a Jacobian handed in by the solver.

        The sparse-assembly transient engine delivers ``scipy.sparse`` CSC
        matrices; the TFT transform math downstream is dense, so snapshots
        are stored densified either way.
        """
        if hasattr(matrix, "toarray"):
            return matrix.toarray()
        return np.array(matrix, copy=True)

    def record(self, t: float, v: np.ndarray, u: np.ndarray, y: np.ndarray,
               g_matrix: np.ndarray, c_matrix: np.ndarray) -> None:
        self.snapshots.append(JacobianSnapshot(
            time=float(t),
            state=np.array(v, copy=True),
            inputs=np.atleast_1d(np.array(u, copy=True, dtype=float)),
            outputs=np.atleast_1d(np.array(y, copy=True, dtype=float)),
            conductance=self._as_dense(g_matrix),
            capacitance=self._as_dense(c_matrix),
        ))

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self.snapshots)

    def __getitem__(self, index: int) -> JacobianSnapshot:
        return self.snapshots[index]

    def __iter__(self):
        return iter(self.snapshots)

    @property
    def times(self) -> np.ndarray:
        return np.array([s.time for s in self.snapshots])

    @property
    def n_inputs(self) -> int:
        return self.input_matrix.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.output_matrix.shape[1]

    def inputs(self) -> np.ndarray:
        """Input samples, shape ``(K, M_i)``."""
        if not self.snapshots:
            return np.zeros((0, self.n_inputs))
        return np.array([s.inputs for s in self.snapshots])

    def outputs(self) -> np.ndarray:
        """Output samples, shape ``(K, M_o)``."""
        if not self.snapshots:
            return np.zeros((0, self.n_outputs))
        return np.array([s.outputs for s in self.snapshots])

    def input_excursion(self, input_index: int = 0) -> tuple[float, float]:
        """(min, max) of one input over the trajectory — the sampled state range."""
        if not self.snapshots:
            raise ReproError("trajectory contains no snapshots")
        u = self.inputs()[:, input_index]
        return float(u.min()), float(u.max())

    # ------------------------------------------------------------- reductions
    def subsample(self, max_snapshots: int, by: str = "index") -> "SnapshotTrajectory":
        """Uniformly thinned copy with at most ``max_snapshots`` snapshots.

        The paper uses "about 100 TFT samples"; a transient run usually
        produces more accepted steps than that, so the trajectory is thinned
        before the (dense-solve heavy) TFT transform.

        ``by`` selects the thinning axis: ``"index"`` keeps every k-th
        snapshot, which is uniform in *time* only on a fixed-``dt`` grid;
        ``"time"`` picks the snapshot nearest each of ``max_snapshots``
        uniformly spaced time targets.  Adaptive (LTE-controlled) transients
        cluster their accepted steps on fast transitions, so index thinning
        would oversample the edges and starve the flat stretches — sweeps
        over adaptive runs should thin ``by="time"``.
        """
        if max_snapshots < 2:
            raise ReproError("subsample needs max_snapshots >= 2")
        if by not in ("index", "time"):
            raise ReproError(f"unknown subsample axis {by!r}; use 'index' or 'time'")
        thinned = SnapshotTrajectory(self.system)
        if len(self.snapshots) <= max_snapshots:
            thinned.snapshots = list(self.snapshots)
            return thinned
        if by == "time":
            times = self.times
            targets = np.linspace(times[0], times[-1], max_snapshots)
            right = np.clip(np.searchsorted(times, targets), 1, times.size - 1)
            nearest = np.where(targets - times[right - 1] <= times[right] - targets,
                               right - 1, right)
            indices = np.unique(nearest)
        else:
            indices = np.unique(
                np.linspace(0, len(self.snapshots) - 1, max_snapshots).astype(int))
        thinned.snapshots = [self.snapshots[i] for i in indices]
        return thinned

    def sorted_by_input(self, input_index: int = 0) -> "SnapshotTrajectory":
        """Copy with snapshots sorted by the value of one input (state axis)."""
        ordered = SnapshotTrajectory(self.system)
        ordered.snapshots = sorted(self.snapshots, key=lambda s: s.inputs[input_index])
        return ordered

    def describe(self) -> str:
        if not self.snapshots:
            return "empty snapshot trajectory"
        lo, hi = self.input_excursion()
        return (f"{len(self.snapshots)} Jacobian snapshots over "
                f"t = [{self.times[0]:.3e}, {self.times[-1]:.3e}] s, "
                f"input excursion [{lo:.3f}, {hi:.3f}]")
