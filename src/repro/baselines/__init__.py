"""Baseline residue-regression methods the paper compares against."""

from .caffeine import (
    BasisTerm,
    CaffeineExtractionResult,
    CaffeineFunction,
    CaffeineIntegral,
    CaffeineOptions,
    default_basis_library,
    extract_caffeine_model,
    fit_caffeine,
)
from .polynomial import PolynomialFunction, fit_polynomial

__all__ = [
    "BasisTerm",
    "CaffeineFunction",
    "CaffeineIntegral",
    "CaffeineOptions",
    "default_basis_library",
    "fit_caffeine",
    "extract_caffeine_model",
    "CaffeineExtractionResult",
    "PolynomialFunction",
    "fit_polynomial",
]
