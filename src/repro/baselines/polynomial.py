"""Plain polynomial residue regression — a sanity baseline below CAFFEINE."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FittingError

__all__ = ["PolynomialFunction", "fit_polynomial"]


@dataclass
class PolynomialFunction:
    """``f(x) = sum_k coefficients[k] * ((x - center)/scale)**k`` (complex coefficients)."""

    coefficients: np.ndarray
    center: float = 0.0
    scale: float = 1.0

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=complex)

    def _z(self, x: np.ndarray | float) -> np.ndarray:
        return (np.asarray(x, dtype=float) - self.center) / self.scale

    def __call__(self, x: np.ndarray | float) -> np.ndarray | complex:
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        if x_arr.ndim == 2:
            x_arr = x_arr[:, 0]
        z = self._z(x_arr)
        value = np.zeros(z.shape, dtype=complex)
        for k, c in enumerate(self.coefficients):
            value = value + c * z ** k
        if np.isscalar(x):
            return complex(value[0])
        return value

    @property
    def degree(self) -> int:
        return int(self.coefficients.size - 1)

    def antiderivative(self) -> "PolynomialFunction":
        """Exact antiderivative with respect to ``x`` (degree increases by one)."""
        new = np.zeros(self.coefficients.size + 1, dtype=complex)
        for k, c in enumerate(self.coefficients):
            new[k + 1] = c * self.scale / (k + 1)
        return PolynomialFunction(new, self.center, self.scale)

    def with_value_at(self, x0: float, value: complex) -> "PolynomialFunction":
        shifted = self.coefficients.copy()
        shifted[0] += value - complex(self(float(x0)))
        return PolynomialFunction(shifted, self.center, self.scale)

    def to_expression(self, precision: int = 6) -> str:
        z = f"((x - {self.center:.{precision}g})/{self.scale:.{precision}g})"
        return " + ".join(f"({c.real:.{precision}g}{c.imag:+.{precision}g}j)*{z}**{k}"
                          for k, c in enumerate(self.coefficients))


def fit_polynomial(states: np.ndarray, samples: np.ndarray, degree: int = 6
                   ) -> PolynomialFunction:
    """Least-squares polynomial fit of a (possibly complex) state trajectory."""
    x = np.asarray(states, dtype=float).ravel()
    y = np.asarray(samples, dtype=complex).ravel()
    if x.size != y.size:
        raise FittingError("states and samples must have the same length")
    if degree < 0 or x.size <= degree:
        raise FittingError("polynomial degree must be non-negative and below the sample count")
    center = float(np.mean(x))
    scale = float(np.std(x)) or 1.0
    z = (x - center) / scale
    matrix = np.column_stack([z ** k for k in range(degree + 1)])
    solution, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    return PolynomialFunction(solution, center, scale)
