"""CAFFEINE-style baseline for residue regression (the paper's comparison).

The paper compares the RVF residue regression against CAFFEINE
(McConaghy & Gielen, "Template-free symbolic performance modeling of analog
circuits via canonical-form functions and genetic programming").  CAFFEINE
builds models as *canonical-form functions*: a linear combination of product
terms drawn from a library of simple basis functions, with the structure
searched by an evolutionary algorithm and the coefficients fitted linearly.

This module implements a faithful, compact version of that idea:

* a library of unary basis functions (powers, exponentials, logarithms,
  rational and saturation shapes) of the state variable,
* an evolutionary structure search (selection + mutation + crossover over
  basis subsets) with a complexity penalty,
* linear least-squares coefficient fitting for every candidate structure.

Two properties of the baseline that the paper highlights are reproduced
explicitly:

* **automation**: the indefinite integral over the input that the Hammerstein
  synthesis requires exists in closed form only for a subset of the basis
  library.  ``integrable_only=True`` restricts the search to that subset
  (what the paper did manually: "relatively simple base functions ... such
  that the indefinite integral could be calculated manually");
  with ``integrable_only=False`` the fitted function may not be integrable
  and :meth:`CaffeineFunction.integrate` raises, flagging the manual step.
* **accuracy**: with the restricted basis the fit is typically less accurate
  and less uniform over the state space than the RVF partial fractions, which
  is the behaviour seen in the paper's Fig. 8 and Table I.
"""

from __future__ import annotations

import math
import time as _time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np
from scipy.special import erf as _erf

from ..exceptions import FittingError, ModelError
from ..rvf.hammerstein import HammersteinBranch, HammersteinModel, ModelMetadata
from ..tft.hyperplane import TFTDataset
from ..tft.state_estimator import StateEstimator
from ..vectfit import VectorFitOptions, fit_auto_order
from ..vectfit.poles import initial_complex_poles, split_real_complex

__all__ = [
    "BasisTerm",
    "CaffeineFunction",
    "CaffeineIntegral",
    "CaffeineOptions",
    "fit_caffeine",
    "extract_caffeine_model",
    "CaffeineExtractionResult",
    "default_basis_library",
]


@dataclass(frozen=True)
class BasisTerm:
    """One canonical-form basis function ``g(x)`` with an optional antiderivative."""

    name: str
    function: Callable[[np.ndarray], np.ndarray]
    antiderivative: Callable[[np.ndarray], np.ndarray] | None = None

    @property
    def integrable(self) -> bool:
        return self.antiderivative is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"BasisTerm({self.name})"


def default_basis_library(x_center: float = 0.0, x_scale: float = 1.0) -> list[BasisTerm]:
    """The canonical-form basis library used by the baseline.

    The variable is normalised as ``z = (x - x_center) / x_scale`` so the
    library is well conditioned regardless of the physical state range.
    Polynomials, exponentials and the hyperbolic saturation have closed-form
    antiderivatives; the logarithmic and rational terms do not integrate to
    elementary functions once they appear inside products, which is exactly
    the automation gap the paper points out.
    """
    c, s = float(x_center), float(x_scale)

    def z(x: np.ndarray) -> np.ndarray:
        return (np.asarray(x, dtype=float) - c) / s

    terms = [
        BasisTerm("1", lambda x: np.ones_like(np.asarray(x, dtype=float)),
                  lambda x: np.asarray(x, dtype=float)),
        BasisTerm("z", lambda x: z(x), lambda x: s * z(x) ** 2 / 2.0),
        BasisTerm("z^2", lambda x: z(x) ** 2, lambda x: s * z(x) ** 3 / 3.0),
        BasisTerm("z^3", lambda x: z(x) ** 3, lambda x: s * z(x) ** 4 / 4.0),
        BasisTerm("z^4", lambda x: z(x) ** 4, lambda x: s * z(x) ** 5 / 5.0),
        BasisTerm("z^5", lambda x: z(x) ** 5, lambda x: s * z(x) ** 6 / 6.0),
        BasisTerm("exp(z)", lambda x: np.exp(np.clip(z(x), -40, 40)),
                  lambda x: s * np.exp(np.clip(z(x), -40, 40))),
        BasisTerm("exp(-z)", lambda x: np.exp(np.clip(-z(x), -40, 40)),
                  lambda x: -s * np.exp(np.clip(-z(x), -40, 40))),
        BasisTerm("tanh(2z)", lambda x: np.tanh(2.0 * z(x)),
                  lambda x: s * 0.5 * np.log(np.cosh(2.0 * z(x)))),
        BasisTerm("tanh(5z)", lambda x: np.tanh(5.0 * z(x)),
                  lambda x: s * 0.2 * np.log(np.cosh(5.0 * z(x)))),
        BasisTerm("sech^2(z)", lambda x: 1.0 / np.cosh(z(x)) ** 2,
                  lambda x: s * np.tanh(z(x))),
        BasisTerm("sech^2(2z)", lambda x: 1.0 / np.cosh(2.0 * z(x)) ** 2,
                  lambda x: s * 0.5 * np.tanh(2.0 * z(x))),
        BasisTerm("sech^2(4z)", lambda x: 1.0 / np.cosh(4.0 * z(x)) ** 2,
                  lambda x: s * 0.25 * np.tanh(4.0 * z(x))),
        BasisTerm("exp(-z^2)", lambda x: np.exp(-z(x) ** 2),
                  lambda x: s * 0.5 * np.sqrt(np.pi) * _erf(z(x))),
        BasisTerm("z*exp(-z^2)", lambda x: z(x) * np.exp(-z(x) ** 2),
                  lambda x: -s * 0.5 * np.exp(-z(x) ** 2)),
        # Non-integrable (in the automated sense) terms: these widen the
        # search space but poison the closed-form integration step.
        BasisTerm("log(0.1+|z|)", lambda x: np.log(0.1 + np.abs(z(x)))),
        BasisTerm("1/(1+z^2)", lambda x: 1.0 / (1.0 + z(x) ** 2)),
        BasisTerm("z/(1+z^2)", lambda x: z(x) / (1.0 + z(x) ** 2)),
        BasisTerm("|z|", lambda x: np.abs(z(x))),
    ]
    return terms


def _as_x(states: np.ndarray) -> np.ndarray:
    states = np.asarray(states, dtype=float)
    if states.ndim == 2:
        return states[:, 0]
    return states


@dataclass
class CaffeineFunction:
    """Canonical-form function: ``f(x) = sum_i coefficients[i] * terms[i](x)``."""

    terms: list[BasisTerm]
    coefficients: np.ndarray
    fit_error: float = np.nan

    def __post_init__(self) -> None:
        self.coefficients = np.asarray(self.coefficients, dtype=complex)
        if len(self.terms) != self.coefficients.size:
            raise ModelError("one coefficient per basis term is required")

    def __call__(self, x: np.ndarray | float) -> np.ndarray | complex:
        x_arr = _as_x(np.atleast_1d(np.asarray(x, dtype=float)))
        value = np.zeros(x_arr.shape, dtype=complex)
        for term, coeff in zip(self.terms, self.coefficients):
            value = value + coeff * term.function(x_arr)
        if np.isscalar(x):
            return complex(value[0])
        return value

    @property
    def complexity(self) -> int:
        return len(self.terms)

    @property
    def is_integrable(self) -> bool:
        return all(term.integrable for term in self.terms)

    def integrate(self) -> "CaffeineIntegral":
        """Closed-form antiderivative; raises when manual work would be needed."""
        if not self.is_integrable:
            missing = [t.name for t in self.terms if not t.integrable]
            raise ModelError(
                "CAFFEINE expression contains terms without an automated "
                f"antiderivative ({', '.join(missing)}); the integral must be "
                "computed manually (the automation drawback reported in the paper)")
        return CaffeineIntegral(terms=list(self.terms),
                                coefficients=self.coefficients.copy())

    # Alias so the Hammerstein assembly can treat RVF and CAFFEINE functions alike.
    def antiderivative(self) -> "CaffeineIntegral":
        return self.integrate()

    def to_expression(self, precision: int = 6) -> str:
        parts = [f"({coeff.real:.{precision}g}{coeff.imag:+.{precision}g}j)*{term.name}"
                 for term, coeff in zip(self.terms, self.coefficients)]
        return " + ".join(parts) if parts else "0"


@dataclass
class CaffeineIntegral:
    """Antiderivative of a :class:`CaffeineFunction` (term-by-term)."""

    terms: list[BasisTerm]
    coefficients: np.ndarray
    offset: complex = 0.0

    def __call__(self, x: np.ndarray | float) -> np.ndarray | complex:
        x_arr = _as_x(np.atleast_1d(np.asarray(x, dtype=float)))
        value = np.full(x_arr.shape, complex(self.offset), dtype=complex)
        for term, coeff in zip(self.terms, self.coefficients):
            value = value + coeff * term.antiderivative(x_arr)
        if np.isscalar(x):
            return complex(value[0])
        return value

    def with_value_at(self, x0: float, value: complex) -> "CaffeineIntegral":
        current = complex(self(float(x0)))
        return CaffeineIntegral(terms=list(self.terms),
                                coefficients=self.coefficients.copy(),
                                offset=self.offset + (value - current))

    def to_expression(self, precision: int = 6) -> str:
        parts = [f"({coeff.real:.{precision}g}{coeff.imag:+.{precision}g}j)*Int[{term.name}]"
                 for term, coeff in zip(self.terms, self.coefficients)]
        parts.append(f"{complex(self.offset).real:.{precision}g}")
        return " + ".join(parts)


@dataclass
class CaffeineOptions:
    """Evolutionary search configuration."""

    population_size: int = 32
    generations: int = 25
    max_terms: int = 6
    complexity_penalty: float = 2e-3
    mutation_rate: float = 0.35
    crossover_rate: float = 0.5
    seed: int = 2013
    integrable_only: bool = True
    basis_library: list[BasisTerm] | None = None


def _fit_coefficients(terms: Sequence[BasisTerm], x: np.ndarray,
                      y: np.ndarray) -> tuple[np.ndarray, float]:
    matrix = np.column_stack([term.function(x) for term in terms])
    solution, *_ = np.linalg.lstsq(matrix, y, rcond=None)
    residual = matrix @ solution - y
    scale = float(np.sqrt(np.mean(np.abs(y) ** 2))) or 1.0
    error = float(np.sqrt(np.mean(np.abs(residual) ** 2))) / scale
    return solution, error


def fit_caffeine(states: np.ndarray, samples: np.ndarray,
                 options: CaffeineOptions | None = None) -> CaffeineFunction:
    """Fit one (possibly complex-valued) function of the state with CAFFEINE.

    ``samples`` may be complex; the canonical-form terms are real functions of
    the state and the coefficients become complex, which mirrors using the
    same symbolic template for the real and imaginary parts.
    """
    opts = options or CaffeineOptions()
    x = _as_x(states)
    y = np.asarray(samples, dtype=complex).ravel()
    if x.size != y.size:
        raise FittingError("states and samples must have the same length")
    if x.size < 8:
        raise FittingError("CAFFEINE regression needs at least eight samples")

    library = opts.basis_library
    if library is None:
        library = default_basis_library(x_center=float(np.mean(x)),
                                        x_scale=float(np.std(x)) or 1.0)
    if opts.integrable_only:
        library = [term for term in library if term.integrable]
    if not library:
        raise FittingError("the basis library is empty")

    rng = np.random.default_rng(opts.seed)
    n_library = len(library)

    def random_individual() -> tuple[int, ...]:
        size = rng.integers(2, opts.max_terms + 1)
        size = min(size, n_library)
        return tuple(sorted(rng.choice(n_library, size=size, replace=False).tolist()))

    def evaluate(individual: tuple[int, ...]) -> tuple[float, np.ndarray]:
        terms = [library[i] for i in individual]
        coeffs, error = _fit_coefficients(terms, x, y)
        fitness = error + opts.complexity_penalty * len(individual)
        return fitness, coeffs

    def mutate(individual: tuple[int, ...]) -> tuple[int, ...]:
        genes = set(individual)
        action = rng.random()
        if action < 0.4 and len(genes) < min(opts.max_terms, n_library):
            genes.add(int(rng.integers(n_library)))
        elif action < 0.7 and len(genes) > 1:
            genes.discard(int(rng.choice(sorted(genes))))
        else:
            if genes:
                genes.discard(int(rng.choice(sorted(genes))))
            genes.add(int(rng.integers(n_library)))
        if not genes:
            genes.add(int(rng.integers(n_library)))
        return tuple(sorted(genes))

    def crossover(parent_a: tuple[int, ...], parent_b: tuple[int, ...]) -> tuple[int, ...]:
        union = sorted(set(parent_a) | set(parent_b))
        if len(union) <= 1:
            return tuple(union)
        keep = rng.random(len(union)) < 0.5
        genes = [g for g, k in zip(union, keep) if k]
        if not genes:
            genes = [union[int(rng.integers(len(union)))]]
        return tuple(sorted(genes[:opts.max_terms]))

    population = [random_individual() for _ in range(opts.population_size)]
    scored = {ind: evaluate(ind) for ind in set(population)}

    for _ in range(opts.generations):
        ranked = sorted(population, key=lambda ind: scored[ind][0])
        elite = ranked[: max(2, opts.population_size // 4)]
        next_population = list(elite)
        while len(next_population) < opts.population_size:
            if rng.random() < opts.crossover_rate and len(elite) >= 2:
                idx = rng.choice(len(elite), size=2, replace=False)
                child = crossover(elite[int(idx[0])], elite[int(idx[1])])
            else:
                child = elite[int(rng.integers(len(elite)))]
            if rng.random() < opts.mutation_rate or child in scored:
                child = mutate(child)
            next_population.append(child)
        population = next_population
        for individual in population:
            if individual not in scored:
                scored[individual] = evaluate(individual)

    best = min(scored, key=lambda ind: scored[ind][0])
    _, coefficients = scored[best]
    terms = [library[i] for i in best]
    _, error = _fit_coefficients(terms, x, y)
    return CaffeineFunction(terms=terms, coefficients=coefficients, fit_error=error)


# --------------------------------------------------------------------------- #
# full baseline extraction flow (ordinary VF poles + CAFFEINE residues)
# --------------------------------------------------------------------------- #

@dataclass
class CaffeineExtractionResult:
    """Extracted baseline model plus diagnostics for the Table I comparison."""

    model: HammersteinModel
    residue_errors: list[float]
    n_frequency_poles: int
    build_time: float
    fully_automated: bool
    tft: TFTDataset

    def model_surface(self) -> np.ndarray:
        return self.model.transfer_function(self.tft.states, self.tft.frequencies)

    def summary(self) -> str:
        return (f"CAFFEINE model: {self.n_frequency_poles} frequency poles, "
                f"max residue fit error {max(self.residue_errors):.2e}, "
                f"build time {self.build_time:.2f} s, "
                f"fully automated: {self.fully_automated}")


def extract_caffeine_model(tft: TFTDataset, error_bound: float = 1e-3,
                           caffeine_options: CaffeineOptions | None = None,
                           max_frequency_poles: int = 24,
                           split_static: bool = True,
                           output_index: int = 0, input_index: int = 0
                           ) -> CaffeineExtractionResult:
    """Baseline flow: ordinary VF for the frequency poles, CAFFEINE residues.

    This mirrors the paper's comparison setup: "the same TFT data is fitted
    using the regular vector fitting algorithm for frequency pole allocation
    and the CAFFEINE regression toolbox is used for residue regression".
    """
    start = _time.perf_counter()
    opts = caffeine_options or CaffeineOptions()
    if tft.state_dimension != 1:
        raise ModelError("the CAFFEINE baseline supports one-dimensional state estimators")

    response = tft.siso_response(output_index, input_index)
    dc_gain = tft.siso_dc(output_index, input_index).real
    states = tft.state_axis(0)
    frequencies = tft.frequencies
    svals = 2j * np.pi * frequencies

    k_dc = int(np.argmin(tft.times)) if tft.times is not None else 0
    dc_input = float(states[k_dc])
    dc_output = float(tft.outputs[k_dc, output_index]) if tft.outputs is not None else 0.0

    dynamic = response - dc_gain[:, None] if split_static else response
    positive = frequencies[frequencies > 0]
    report = fit_auto_order(
        svals, dynamic, error_bound, max_order=max_frequency_poles,
        options=VectorFitOptions(real_coefficients=True, fit_constant=True),
        initial_pole_factory=lambda order: initial_complex_poles(
            float(positive.min()), float(positive.max()), order))
    vf = report.result
    poles = vf.poles
    real_idx, pair_idx = split_real_complex(poles)
    representative = list(real_idx) + list(pair_idx)

    gain_samples = (dc_gain if split_static else np.zeros_like(dc_gain)) + vf.constants.real

    residue_errors: list[float] = []
    gain_function = fit_caffeine(states, gain_samples.astype(complex), opts)
    residue_errors.append(gain_function.fit_error)

    branches: list[HammersteinBranch] = []
    fully_automated = True
    for p in representative:
        residue_function = fit_caffeine(states, vf.residues[:, p], opts)
        residue_errors.append(residue_function.fit_error)
        try:
            static = residue_function.integrate().with_value_at(dc_input, 0.0)
        except ModelError:
            # Non-integrable expression: fall back to the constant-gain branch
            # (what a designer would have to fix by hand) and record that the
            # flow is no longer automated.
            fully_automated = False
            fallback = CaffeineFunction(
                terms=[t for t in default_basis_library(float(np.mean(states)),
                                                        float(np.std(states)) or 1.0)
                       if t.name == "1"],
                coefficients=np.array([np.mean(vf.residues[:, p])]))
            static = fallback.integrate().with_value_at(dc_input, 0.0)
        branches.append(HammersteinBranch(
            pole=poles[p],
            residue_function=residue_function,
            static_function=static,
            is_complex_pair=bool(poles[p].imag != 0.0),
        ))

    static_function = gain_function.integrate().with_value_at(dc_input, dc_output)

    metadata = ModelMetadata(
        n_frequency_poles=poles.size,
        n_state_poles=0,
        frequency_fit_error=vf.relative_error,
        state_fit_error=float(max(residue_errors)),
        error_bound=error_bound,
        training_snapshots=tft.n_states,
        split_static=split_static,
        notes={"regressor": "caffeine"},
    )
    model = HammersteinModel(
        branches=branches,
        gain_function=gain_function,
        static_function=static_function,
        state_estimator=StateEstimator(),
        dc_input=dc_input,
        dc_output=dc_output,
        input_name=tft.input_names[input_index] if tft.input_names else "u",
        output_name=tft.output_names[output_index] if tft.output_names else "y",
        metadata=metadata,
    )
    build_time = _time.perf_counter() - start
    metadata.build_time_seconds = build_time
    # The paper flags CAFFEINE as "not fully automated" because of the manual
    # integration step; when the search is restricted to integrable bases the
    # integral exists but the restriction itself is a manual modelling choice.
    fully_automated = fully_automated and not opts.integrable_only

    return CaffeineExtractionResult(
        model=model,
        residue_errors=residue_errors,
        n_frequency_poles=int(poles.size),
        build_time=build_time,
        fully_automated=fully_automated,
        tft=tft,
    )
