"""Batched execution of simulation scenarios with snapshot capture.

:func:`run_sweep` fans a list of :class:`~repro.sweep.scenarios.Scenario`
objects across a multiprocessing pool (or runs them serially).  Every worker
rebuilds its scenario's circuit from the picklable builder recipe, runs the
transient analysis on the compiled assembly engine and captures a private
:class:`~repro.tft.SnapshotTrajectory` — the per-scenario ``{G(k), C(k)}``
snapshot set that the TFT extraction consumes.  Results come back in scenario
order inside a :class:`SweepResult`, which offers both per-scenario TFT
datasets and a combined trajectory covering the union of all runs.
"""

from __future__ import annotations

import time as _time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..circuit.transient import TransientResult, transient_analysis
from ..exceptions import ReproError
from ..telemetry.broker import TopicBroker
from ..telemetry.events import (EngineProfile, ScenarioCompleted,
                                SweepCompleted, SweepStarted)
from ..tft import SnapshotTrajectory, TFTDataset, extract_tft
from .scenarios import Scenario, validate_scenarios

__all__ = ["SweepOptions", "ScenarioResult", "SweepResult", "run_sweep"]


@dataclass
class SweepOptions:
    """Execution options of a sweep."""

    #: Number of worker processes; ``None``, 0 or 1 runs serially in-process.
    n_workers: int | None = None
    #: Capture Jacobian snapshots during each transient (disable for pure
    #: waveform sweeps where only the outputs matter — much lighter results).
    capture_snapshots: bool = True
    #: Raise if any scenario fails (otherwise failures are collected on the
    #: individual :class:`ScenarioResult` objects).
    raise_on_error: bool = True
    #: Optional :class:`~repro.telemetry.TopicBroker`.  When set (and it has
    #: subscribers), the sweep publishes :class:`SweepStarted`, one
    #: :class:`ScenarioCompleted` plus one :class:`EngineProfile` (Newton /
    #: LTE / factorisation-cache counters) per finished scenario as results
    #: stream in from the pool, and a closing :class:`SweepCompleted`.  The
    #: broker stays in the driving process — it is never shipped to workers.
    broker: TopicBroker | None = None


@dataclass
class ScenarioResult:
    """Outcome of one scenario."""

    scenario: Scenario
    transient: TransientResult | None = None
    trajectory: SnapshotTrajectory | None = None
    wall_time: float = 0.0
    error: str | None = None

    @property
    def name(self) -> str:
        return self.scenario.name

    @property
    def ok(self) -> bool:
        return self.error is None


def _run_scenario(scenario: Scenario, capture_snapshots: bool) -> ScenarioResult:
    """Build, simulate and snapshot one scenario (runs inside workers)."""
    start = _time.perf_counter()
    try:
        system = scenario.build_circuit().build()
        trajectory = SnapshotTrajectory(system) if capture_snapshots else None
        result = transient_analysis(system, scenario.transient,
                                    snapshot_callback=trajectory)
        if trajectory is not None and scenario.max_snapshots is not None:
            # Adaptive runs cluster accepted steps on fast transitions; thin
            # uniformly in time so the snapshot family still covers the
            # whole trajectory instead of oversampling the edges.
            by = "time" if scenario.transient.adaptive else "index"
            trajectory = trajectory.subsample(scenario.max_snapshots, by=by)
        return ScenarioResult(scenario=scenario, transient=result,
                              trajectory=trajectory,
                              wall_time=_time.perf_counter() - start)
    except Exception:  # noqa: BLE001 - workers must report, not crash the pool
        return ScenarioResult(scenario=scenario, error=traceback.format_exc(),
                              wall_time=_time.perf_counter() - start)


def _run_pickled_scenario(payload: bytes, capture_snapshots: bool) -> ScenarioResult:
    """Worker entry point taking the pre-pickled scenario payload.

    ``run_sweep`` already serialises every scenario once for its
    fail-fast picklability check; shipping those bytes (instead of the
    scenario object, which the executor would pickle a second time) reuses
    that work and keeps the object-graph traversal out of the dispatch loop.
    """
    import pickle

    return _run_scenario(pickle.loads(payload), capture_snapshots)


class SweepResult:
    """Ordered collection of scenario results with TFT-ready accessors."""

    def __init__(self, results: Sequence[ScenarioResult], wall_time: float,
                 n_workers: int) -> None:
        self.results = list(results)
        self.wall_time = float(wall_time)
        self.n_workers = int(n_workers)

    # ----------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, key: int | str) -> ScenarioResult:
        if isinstance(key, str):
            for result in self.results:
                if result.name == key:
                    return result
            raise KeyError(f"no scenario named {key!r} in sweep")
        return self.results[key]

    @property
    def names(self) -> list[str]:
        return [r.name for r in self.results]

    @property
    def failed(self) -> list[ScenarioResult]:
        return [r for r in self.results if not r.ok]

    def trajectories(self) -> dict[str, SnapshotTrajectory]:
        """Per-scenario snapshot trajectories (successful scenarios only)."""
        return {r.name: r.trajectory for r in self.results
                if r.ok and r.trajectory is not None}

    # ---------------------------------------------------------------- TFT feed
    def extract_tfts(self, frequencies: np.ndarray | None = None,
                     max_snapshots: int | None = None,
                     gmin: float = 0.0) -> dict[str, TFTDataset]:
        """One TFT dataset per successful scenario."""
        return {name: extract_tft(trajectory, frequencies,
                                  max_snapshots=max_snapshots, gmin=gmin)
                for name, trajectory in self.trajectories().items()}

    def combined_trajectory(self) -> SnapshotTrajectory:
        """All scenarios' snapshots merged into one trajectory.

        Requires every scenario to share the circuit topology (identical
        unknown count and input/output dimensions) — i.e. waveform or value
        corners of *one* circuit family.  The merged trajectory's state axis
        covers the union of the per-scenario input excursions, which is what
        makes multi-stimulus TFT training cover more of the hyperplane than
        any single transient.
        """
        trajectories = list(self.trajectories().values())
        if not trajectories:
            raise ReproError("sweep produced no snapshot trajectories to combine")
        first = trajectories[0]
        shape = (first.system.n_unknowns, first.n_inputs, first.n_outputs)
        merged = SnapshotTrajectory(first.system)
        for trajectory in trajectories:
            t_shape = (trajectory.system.n_unknowns, trajectory.n_inputs,
                       trajectory.n_outputs)
            if t_shape != shape:
                raise ReproError(
                    "cannot combine snapshot trajectories of different circuit "
                    f"topologies: {t_shape} vs {shape}")
            merged.snapshots.extend(trajectory.snapshots)
        return merged

    def extract_combined_tft(self, frequencies: np.ndarray | None = None,
                             max_snapshots: int | None = None,
                             gmin: float = 0.0) -> TFTDataset:
        """TFT dataset of the merged snapshot family (see above)."""
        return extract_tft(self.combined_trajectory(), frequencies,
                           max_snapshots=max_snapshots, gmin=gmin)

    # -------------------------------------------------------------- provenance
    def provenance(self) -> dict:
        """JSON-able record of what this sweep ran (for registry entries)."""
        return {
            "scenarios": [r.scenario.recipe() for r in self.results],
            "n_workers": self.n_workers,
            "wall_time": self.wall_time,
            "failed": [r.name for r in self.failed],
        }

    # ------------------------------------------------------------- diagnostics
    def describe(self) -> str:
        ok = sum(1 for r in self.results if r.ok)
        snaps = sum(len(r.trajectory) for r in self.results
                    if r.ok and r.trajectory is not None)
        return (f"sweep of {len(self.results)} scenario(s): {ok} succeeded, "
                f"{len(self.results) - ok} failed, {snaps} snapshots captured, "
                f"{self.wall_time:.2f}s wall on {self.n_workers} worker(s)")


def run_sweep(scenarios: Iterable[Scenario],
              options: SweepOptions | None = None) -> SweepResult:
    """Execute all scenarios and collect their trajectories.

    With ``options.n_workers > 1`` the scenarios run on a process pool; each
    worker rebuilds its circuit from the scenario recipe (circuits, waveforms
    and results are plain picklable objects).  Results are returned in
    scenario order regardless of completion order.
    """
    opts = options or SweepOptions()
    scenario_list = validate_scenarios(scenarios)
    n_workers = int(opts.n_workers or 1)
    wall_start = _time.perf_counter()

    broker = opts.broker
    if n_workers <= 1 or len(scenario_list) <= 1:
        n_workers = 1
    else:
        n_workers = min(n_workers, len(scenario_list))

    if broker:
        broker.publish(SweepStarted(n_scenarios=len(scenario_list),
                                    n_workers=n_workers))

    def _completed(result: ScenarioResult) -> ScenarioResult:
        if broker:
            broker.publish(ScenarioCompleted(name=result.name, ok=result.ok,
                                             wall_time_s=result.wall_time))
            transient = result.transient
            if transient is not None:
                # Engine profile: the solver-level counters the transient
                # accumulated (Newton work, LTE controller verdicts, LU
                # factorisation cache economics).  Workers never see the
                # broker — the counters ride back on the picklable result
                # and are published here, in the driving process.
                broker.publish(EngineProfile(
                    name=result.name,
                    newton_iterations=transient.newton_iterations,
                    accepted_steps=transient.accepted_steps,
                    rejected_steps=transient.rejected_steps,
                    lte_rejections=transient.lte_rejections,
                    cache_factorizations=transient.cache_factorizations,
                    cache_reuses=transient.cache_reuses,
                    cache_invalidations=transient.cache_invalidations,
                    cache_hit_rate=transient.cache_hit_rate,
                    wall_time_s=transient.wall_time))
        return result

    if n_workers == 1:
        results = [_completed(_run_scenario(s, opts.capture_snapshots))
                   for s in scenario_list]
    else:
        # Fail fast with a named scenario instead of the executor's opaque
        # PicklingError mid-map (lambdas/closures as builders are the usual
        # culprit; builders must be module-level callables).  The payloads of
        # this pre-check are shipped to the workers as-is, so each scenario
        # is pickled exactly once.
        import pickle

        payloads: list[bytes] = []
        for scenario in scenario_list:
            try:
                payloads.append(pickle.dumps(scenario))
            except Exception as exc:
                raise ReproError(
                    f"scenario {scenario.name!r} is not picklable and cannot be "
                    f"shipped to a worker process ({exc}); use module-level "
                    "builder callables and waveforms, or run with n_workers=1"
                ) from exc
        with ProcessPoolExecutor(max_workers=n_workers) as pool:
            # Iterate lazily so ScenarioCompleted events fire as scenarios
            # finish, not all at once when the whole map is done.
            results = [_completed(result) for result in pool.map(
                _run_pickled_scenario, payloads,
                [opts.capture_snapshots] * len(scenario_list))]

    sweep = SweepResult(results, _time.perf_counter() - wall_start, n_workers)
    if broker:
        broker.publish(SweepCompleted(n_ok=len(sweep) - len(sweep.failed),
                                      n_failed=len(sweep.failed),
                                      wall_time_s=sweep.wall_time))
    if opts.raise_on_error and sweep.failed:
        details = "\n".join(f"--- {r.name} ---\n{r.error}" for r in sweep.failed)
        raise ReproError(
            f"{len(sweep.failed)} of {len(sweep)} sweep scenario(s) failed:\n{details}")
    return sweep
