"""Scenario descriptions for batched circuit sweeps.

A :class:`Scenario` is a *recipe*, not a built circuit: it stores a circuit
builder callable plus keyword arguments and rebuilds the circuit on demand.
That keeps scenarios cheap to create, trivially picklable (builders must be
module-level callables, e.g. the factories in :mod:`repro.circuits`) and safe
to ship to multiprocessing workers, which each construct and simulate their
own private circuit instance.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..circuit.netlist import Circuit
from ..circuit.transient import TransientOptions
from ..circuit.waveforms import Waveform
from ..exceptions import ReproError

__all__ = ["Scenario", "waveform_sweep", "corner_sweep", "cross_sweep"]


@dataclass
class Scenario:
    """One simulation scenario of a sweep.

    Attributes
    ----------
    name:
        Unique label of the scenario within its sweep.
    builder:
        Module-level callable returning a :class:`Circuit`.  Called as
        ``builder(**builder_kwargs)`` with ``input_waveform=waveform`` merged
        in when :attr:`waveform` is set (the convention of every circuit
        factory in :mod:`repro.circuits`).
    builder_kwargs:
        Keyword arguments of the builder — the scenario's parameter corner.
    waveform:
        Optional stimulus injected as the builder's ``input_waveform``.
    transient:
        Time span, step and solver options of the scenario's transient run.
    max_snapshots:
        Optional per-scenario thinning of the captured snapshot trajectory
        (applied before the TFT transform; the paper uses ~100 samples).
    """

    name: str
    builder: Callable[..., Circuit]
    builder_kwargs: dict[str, Any] = field(default_factory=dict)
    waveform: Waveform | None = None
    transient: TransientOptions = field(default_factory=TransientOptions)
    max_snapshots: int | None = None

    def build_circuit(self) -> Circuit:
        """Construct a fresh circuit for this scenario."""
        kwargs = dict(self.builder_kwargs)
        if self.waveform is not None:
            kwargs["input_waveform"] = self.waveform
        circuit = self.builder(**kwargs)
        if not isinstance(circuit, Circuit):
            raise ReproError(
                f"scenario {self.name!r}: builder returned {type(circuit).__name__}, "
                "expected a Circuit")
        # Unique circuit name so reports/errors can be traced to the scenario.
        circuit.name = f"{circuit.name}[{self.name}]"
        return circuit

    def with_transient(self, **changes: Any) -> "Scenario":
        """Copy with fields of the transient options replaced."""
        return replace(self, transient=replace(copy.deepcopy(self.transient),
                                               **changes))

    def recipe(self) -> dict[str, Any]:
        """JSON-able provenance record of this scenario.

        The record names the builder (module-qualified), its keyword
        arguments, the stimulus and the solver settings — enough for a human
        (or a registry audit) to re-create the scenario, without trying to be
        an executable serialisation.  Threaded into
        :class:`repro.runtime.ModelRegistry` entries so a served model can be
        traced back to the sweep that trained it.
        """
        return {
            "name": self.name,
            "builder": f"{getattr(self.builder, '__module__', '?')}."
                       f"{getattr(self.builder, '__qualname__', repr(self.builder))}",
            "builder_kwargs": {k: _jsonable(v) for k, v in self.builder_kwargs.items()},
            "waveform": _jsonable(self.waveform),
            "transient": {
                "t_start": self.transient.t_start,
                "t_stop": self.transient.t_stop,
                "dt": self.transient.dt,
                "method": self.transient.method,
                "assembly": self.transient.assembly,
                "adaptive": self.transient.adaptive,
                "lte_rel_tol": self.transient.lte_rel_tol,
                "lte_abs_tol": self.transient.lte_abs_tol,
                "jacobian_reuse_tol": self.transient.jacobian_reuse_tol,
            },
            "max_snapshots": self.max_snapshots,
        }


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of scenario ingredients to JSON-able values."""
    import dataclasses

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {"class": type(value).__name__,
                **{f.name: _jsonable(getattr(value, f.name))
                   for f in dataclasses.fields(value)}}
    return repr(value)


def waveform_sweep(builder: Callable[..., Circuit],
                   waveforms: Mapping[str, Waveform] | Sequence[Waveform],
                   transient: TransientOptions | None = None,
                   builder_kwargs: Mapping[str, Any] | None = None,
                   max_snapshots: int | None = None,
                   prefix: str = "wave") -> list[Scenario]:
    """One scenario per input waveform, sharing circuit and solver options.

    ``waveforms`` may be a mapping (names become scenario names) or a plain
    sequence (scenarios are named ``{prefix}0``, ``{prefix}1``, ...).
    """
    if isinstance(waveforms, Mapping):
        named: list[tuple[str, Waveform]] = list(waveforms.items())
    else:
        named = [(f"{prefix}{i}", w) for i, w in enumerate(waveforms)]
    base = transient or TransientOptions()
    # deepcopy, not replace: scenarios must not share the nested
    # NewtonOptions/DCOptions either, or a per-scenario tweak leaks.
    return [Scenario(name=name, builder=builder,
                     builder_kwargs=dict(builder_kwargs or {}),
                     waveform=waveform, transient=copy.deepcopy(base),
                     max_snapshots=max_snapshots)
            for name, waveform in named]


def corner_sweep(builder: Callable[..., Circuit],
                 corners: Mapping[str, Mapping[str, Any]],
                 waveform: Waveform | None = None,
                 transient: TransientOptions | None = None,
                 max_snapshots: int | None = None) -> list[Scenario]:
    """One scenario per named parameter corner, sharing the stimulus.

    ``corners`` maps a corner name to the builder keyword arguments of that
    corner, e.g. ``{"slow": {"resistance": 1.2e3}, "fast": {...}}``.
    """
    base = transient or TransientOptions()
    return [Scenario(name=name, builder=builder, builder_kwargs=dict(kwargs),
                     waveform=waveform, transient=copy.deepcopy(base),
                     max_snapshots=max_snapshots)
            for name, kwargs in corners.items()]


def cross_sweep(builder: Callable[..., Circuit],
                waveforms: Mapping[str, Waveform] | Sequence[Waveform],
                corners: Mapping[str, Mapping[str, Any]],
                transient: TransientOptions | None = None,
                max_snapshots: int | None = None) -> list[Scenario]:
    """Cartesian product of waveforms and corners (``corner/wave`` names)."""
    scenarios: list[Scenario] = []
    for corner_name, kwargs in corners.items():
        for scenario in waveform_sweep(builder, waveforms, transient=transient,
                                       builder_kwargs=kwargs,
                                       max_snapshots=max_snapshots):
            scenarios.append(replace(scenario, name=f"{corner_name}/{scenario.name}"))
    return scenarios


def validate_scenarios(scenarios: Iterable[Scenario]) -> list[Scenario]:
    """Check uniqueness of names; returns the scenarios as a list."""
    out = list(scenarios)
    if not out:
        raise ReproError("sweep needs at least one scenario")
    seen: set[str] = set()
    for scenario in out:
        if scenario.name in seen:
            raise ReproError(f"duplicate scenario name {scenario.name!r} in sweep")
        seen.add(scenario.name)
    return out
