"""Batched scenario sweeps: one circuit family, many stimuli and corners.

The paper's extraction flow consumes Jacobian snapshots sampled along *one*
training transient.  In practice a trustworthy macromodel needs trajectory
*families*: the same circuit driven by several waveforms (amplitudes,
frequencies, bit patterns) and built at several parameter corners, so the
TFT hyperplane is sampled over the whole reachable state space and the
extracted model can be validated against stimuli it was not trained on.

This subpackage turns that into a one-call workflow:

1. Describe each run as a :class:`~repro.sweep.scenarios.Scenario` — a
   picklable circuit *builder* plus its keyword arguments, an optional input
   waveform and per-run transient options.  Helpers
   (:func:`~repro.sweep.scenarios.waveform_sweep`,
   :func:`~repro.sweep.scenarios.corner_sweep`,
   :func:`~repro.sweep.scenarios.cross_sweep`) fan a base configuration
   across waveform lists and parameter grids.
2. :func:`~repro.sweep.runner.run_sweep` executes the scenarios — serially
   or on a multiprocessing pool, each worker rebuilding its circuit and
   capturing its own :class:`~repro.tft.SnapshotTrajectory` — and returns a
   :class:`~repro.sweep.runner.SweepResult`.
3. The result feeds straight into the TFT flow:
   :meth:`~repro.sweep.runner.SweepResult.extract_tfts` yields one
   :class:`~repro.tft.TFTDataset` per scenario, and
   :meth:`~repro.sweep.runner.SweepResult.combined_trajectory` /
   :meth:`~repro.sweep.runner.SweepResult.extract_combined_tft` merge the
   snapshot families of same-topology scenarios into a single dataset whose
   state axis covers the union of all input excursions — exactly the
   ``{C(k), G(k), B, D}`` collection Algorithm 1 consumes, just sampled from
   many transients instead of one.

Every simulation inside a sweep uses the compiled sparse/dense assembly
engine (:mod:`repro.circuit.assembly`), so wide sweeps inherit the
factor-cached fast path for free.
"""

from .runner import ScenarioResult, SweepOptions, SweepResult, run_sweep
from .scenarios import Scenario, corner_sweep, cross_sweep, waveform_sweep

__all__ = [
    "Scenario",
    "waveform_sweep",
    "corner_sweep",
    "cross_sweep",
    "run_sweep",
    "SweepOptions",
    "SweepResult",
    "ScenarioResult",
]
