"""Micro-batching: coalesce individual stimulus requests into lock-step batches.

Serving traffic arrives one stimulus at a time, but the compiled runtime's
entire speed advantage comes from advancing *many* stimuli in lock-step
(:mod:`repro.runtime.batch`).  The :class:`MicroBatcher` bridges the two: it
holds per-model queues of pending requests and closes them into rectangular
``(rows, n_steps)`` batches under the standard micro-batching policy — a
batch dispatches when it reaches ``max_batch`` rows or when its oldest
request has waited ``max_wait`` seconds.

Requests to the same model can only share a lock-step batch when their
sample counts match, so the coalescing key is ``(model key, n_steps)``.
Mixed-length traffic to one model simply forms parallel groups.

This module is a *pure data structure*: no threads, no locks, no clock of
its own (every method takes ``now``).  The server serialises access under
its lock and owns the time base, which keeps the coalescing logic trivially
testable.
"""

from __future__ import annotations

from concurrent.futures import Future, InvalidStateError
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MicroBatch", "MicroBatcher", "ServeRequest"]


@dataclass
class ServeRequest:
    """One submitted stimulus and the future its caller is waiting on."""

    key: str
    samples: np.ndarray
    future: Future = field(default_factory=Future)
    #: Scheduler timestamps (server's monotonic clock): submission and batch
    #: closure (end of coalescing wait).  Completion is accounted by the
    #: server at resolve time and never stored per request.  These two stamps
    #: are also the span boundaries the server's tracer materialises the
    #: ``serve_queue`` / ``serve_coalesce`` stages from — the batcher itself
    #: stays clock-free and tracer-free; it only carries the timestamps.
    t_submit: float = 0.0
    t_closed: float = 0.0
    #: Telemetry trace id assigned by :meth:`ModelServer.submit
    #: <repro.serve.server.ModelServer.submit>`; rides with the request
    #: through coalescing, dispatch and shard evaluation so the telemetry
    #: events of one request chain together (``0`` = untraced).
    trace_id: int = 0

    @property
    def n_steps(self) -> int:
        return int(self.samples.size)


@dataclass
class MicroBatch:
    """A closed batch: requests frozen in dispatch order."""

    key: str
    n_steps: int
    requests: list[ServeRequest]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def trace_ids(self) -> tuple[int, ...]:
        """Trace ids of the member requests, in row order."""
        return tuple(request.trace_id for request in self.requests)

    def stack(self) -> np.ndarray:
        """The lock-step input array, one request per row."""
        return np.vstack([request.samples for request in self.requests])

    def resolve(self, outputs: np.ndarray) -> None:
        """Fulfil every request's future with its own output row.

        Rows are copied out of the batch array: handing out views would keep
        the whole ``(rows, n_steps)`` result alive for as long as any single
        caller held on to its row.
        """
        for i, request in enumerate(self.requests):
            try:
                request.future.set_result(outputs[i].copy())
            except InvalidStateError:     # caller cancelled while queued
                pass

    def fail(self, exc: BaseException) -> None:
        """Fail every request's future with the same exception."""
        for request in self.requests:
            try:
                request.future.set_exception(exc)
            except InvalidStateError:
                pass


class _Group:
    __slots__ = ("requests", "deadline")

    def __init__(self, deadline: float) -> None:
        self.requests: list[ServeRequest] = []
        self.deadline = deadline


class MicroBatcher:
    """Per-``(model, n_steps)`` coalescing queues with deadline tracking.

    ``on_close`` (optional) is invoked with each :class:`MicroBatch` the
    moment it closes, in whatever thread drove the transition — the server
    uses it to publish ``BatchClosed`` telemetry under its own lock, keeping
    this module free of clocks *and* of broker knowledge.
    """

    def __init__(self, max_batch: int, max_wait: float,
                 on_close=None) -> None:
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait)
        self.on_close = on_close
        self._groups: dict[tuple[str, int], _Group] = {}

    # ------------------------------------------------------------------ state
    def pending(self, key: str | None = None) -> int:
        """Requests enqueued but not yet closed into a batch.

        With ``key``, only the open groups of that model are counted (the
        per-model lane stats report this as the model's coalescing backlog).
        """
        return sum(len(group.requests)
                   for (group_key, _), group in self._groups.items()
                   if key is None or group_key == key)

    def keys(self) -> set[str]:
        """Model keys with at least one open (not yet closed) group."""
        return {group_key for group_key, _ in self._groups}

    def next_deadline(self) -> float | None:
        """Earliest coalescing deadline among open groups (None when empty)."""
        if not self._groups:
            return None
        return min(group.deadline for group in self._groups.values())

    # ------------------------------------------------------------- transitions
    def add(self, request: ServeRequest, now: float) -> MicroBatch | None:
        """Enqueue one request; returns a batch if it filled one up.

        The group's deadline is pinned by its *oldest* request — later
        arrivals never extend another request's wait.
        """
        request.t_submit = now
        group_key = (request.key, request.n_steps)
        group = self._groups.get(group_key)
        if group is None:
            group = self._groups[group_key] = _Group(now + self.max_wait)
        group.requests.append(request)
        if len(group.requests) >= self.max_batch:
            del self._groups[group_key]
            return self._close(group_key, group.requests, now)
        return None

    def due(self, now: float) -> list[MicroBatch]:
        """Close every group whose coalescing deadline has passed."""
        expired = [key for key, group in self._groups.items()
                   if group.deadline <= now]
        return [self._close(key, self._groups.pop(key).requests, now)
                for key in expired]

    def drain(self, now: float, key: str | None = None) -> list[MicroBatch]:
        """Close everything immediately (flush / shutdown path).

        With ``key``, only that model's open groups are closed — the other
        models' coalescing windows are left undisturbed.
        """
        if key is None:
            groups, self._groups = self._groups, {}
        else:
            groups = {group_key: self._groups.pop(group_key)
                      for group_key in [gk for gk in self._groups
                                        if gk[0] == key]}
        return [self._close(group_key, group.requests, now)
                for group_key, group in groups.items()]

    def _close(self, group_key: tuple[str, int],
               requests: list[ServeRequest], now: float) -> MicroBatch:
        for request in requests:
            request.t_closed = now
        key, n_steps = group_key
        batch = MicroBatch(key=key, n_steps=n_steps, requests=requests)
        if self.on_close is not None:
            self.on_close(batch)
        return batch
