"""Model-serving layer: sharded micro-batching over the compiled runtime.

:mod:`repro.runtime` made extracted models *fast* — thousands of stimuli in
one lock-step NumPy call.  This package makes them *servable*: individual
requests from many callers are coalesced into lock-step batches, dispatched
by per-model lanes (batches for different models execute concurrently),
sharded across warm worker processes, and answered through per-request
futures, with the registry's integrity guarantees and the batch kernel's
bitwise determinism carried through end to end.

* :mod:`~repro.serve.policy` — one frozen :class:`ServePolicy` value holds
  every deployment knob (``max_batch``, ``max_wait``, lane/worker counts,
  cache budget, request/connection limits);
* :mod:`~repro.serve.batcher` — per-``(model, n_steps)`` coalescing queues
  closing into :class:`MicroBatch` objects (pure data structure);
* :mod:`~repro.serve.shards` — :class:`ShardPool` worker processes with warm
  model caches, crash detection, respawn, deterministic reassembly, and
  per-worker leasing so concurrent lanes split the pool instead of queueing;
* :mod:`~repro.serve.cache` — byte-budget LRU :class:`ModelCache` so a
  server fronts more models than fit in memory;
* :mod:`~repro.serve.server` — :class:`ModelServer`, the submit → batch →
  lane-dispatch → shard → respond front-end;
* :mod:`~repro.serve.stats` — :class:`ServeStats` latency/throughput
  snapshots (queue vs end-to-end percentiles, per-model lane breakdown)
  and the gateway's :class:`GatewayCounters`.

The canonical flow::

    from repro.serve import ModelServer, ServePolicy

    server = ModelServer(registry, ServePolicy(max_batch=256, max_wait=2e-3,
                                               n_workers=4, n_lanes=4))
    future = server.submit(key, waveform_samples)      # one stimulus
    output = future.result()                           # that stimulus's output
    server.close()

Remote clients reach the same scheduler over TCP through
:mod:`repro.gateway`.  See ``examples/serving_cluster.py`` /
``examples/gateway_cluster.py`` for the end-to-end demos and
``benchmarks/test_serve_speedup.py`` / ``benchmarks/test_gateway_speedup.py``
for the gated throughput/latency acceptance runs.
"""

from .batcher import MicroBatch, MicroBatcher, ServeRequest
from .cache import CacheStats, ModelCache
from .policy import ServePolicy
from .server import ModelServer
from .shards import ShardPool
from .stats import (
    GatewayCounters,
    LatencySummary,
    ModelLaneStats,
    ServeStats,
)

__all__ = [
    "CacheStats",
    "GatewayCounters",
    "LatencySummary",
    "MicroBatch",
    "MicroBatcher",
    "ModelCache",
    "ModelLaneStats",
    "ModelServer",
    "ServePolicy",
    "ServeRequest",
    "ServeStats",
    "ShardPool",
]
