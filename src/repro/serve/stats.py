"""Latency / throughput accounting of a running model server.

The server records two timestamps per request on its monotonic clock —
submission and batch closure — and takes the completion time when it
resolves the batch.  Their differences separate the two costs a
micro-batching deployment tunes against each other:

* **queue (coalescing) latency** ``t_closed - t_submit``: the wait the
  batching policy *added* to the request; bounded by ``max_wait`` for every
  deadline-flushed batch and ~0 for requests that completed a full batch;
* **end-to-end latency** ``t_done - t_submit``: what the caller observed,
  including evaluation and any crash-retry stalls.

:meth:`ModelServer.stats <repro.serve.server.ModelServer.stats>` snapshots
these into a :class:`ServeStats` value with percentile summaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LatencySummary", "ServeStats"]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency population (seconds)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    max: float

    @classmethod
    def of(cls, samples) -> "LatencySummary":
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            return cls(count=0, mean=0.0, p50=0.0, p90=0.0, p99=0.0, max=0.0)
        p50, p90, p99 = np.percentile(values, [50.0, 90.0, 99.0])
        return cls(count=int(values.size), mean=float(values.mean()),
                   p50=float(p50), p90=float(p90), p99=float(p99),
                   max=float(values.max()))

    def as_dict(self) -> dict:
        return {"count": self.count, "mean_s": self.mean, "p50_s": self.p50,
                "p90_s": self.p90, "p99_s": self.p99, "max_s": self.max}


@dataclass(frozen=True)
class ServeStats:
    """Point-in-time snapshot of a server's counters and latencies."""

    n_submitted: int
    n_completed: int
    n_failed: int
    n_pending: int
    n_batches: int
    mean_batch_size: float
    queue_latency: LatencySummary
    e2e_latency: LatencySummary
    cache: dict = field(default_factory=dict)
    pool: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_failed": self.n_failed,
            "n_pending": self.n_pending,
            "n_batches": self.n_batches,
            "mean_batch_size": self.mean_batch_size,
            "queue_latency": self.queue_latency.as_dict(),
            "e2e_latency": self.e2e_latency.as_dict(),
            "cache": dict(self.cache),
            "pool": dict(self.pool),
        }

    def describe(self) -> str:
        return (f"served {self.n_completed}/{self.n_submitted} request(s) "
                f"({self.n_failed} failed, {self.n_pending} pending) in "
                f"{self.n_batches} batch(es) of {self.mean_batch_size:.1f} "
                f"rows avg; queue p50 {self.queue_latency.p50 * 1e3:.2f} ms, "
                f"e2e p50 {self.e2e_latency.p50 * 1e3:.2f} ms")
