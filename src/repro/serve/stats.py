"""Latency / throughput accounting of a running model server and gateway.

The server records two timestamps per request on its monotonic clock —
submission and batch closure — and takes the completion time when it
resolves the batch.  Their differences separate the two costs a
micro-batching deployment tunes against each other:

* **queue (coalescing) latency** ``t_closed - t_submit``: the wait the
  batching policy *added* to the request; bounded by ``max_wait`` for every
  deadline-flushed batch and ~0 for requests that completed a full batch;
* **end-to-end latency** ``t_done - t_submit``: what the caller observed,
  including evaluation and any crash-retry stalls.

:meth:`ModelServer.stats <repro.serve.server.ModelServer.stats>` snapshots
these into a :class:`ServeStats` value with percentile summaries — both the
server-wide populations and a per-model breakdown attributed to the dispatch
lane serving each model.  The TCP gateway (:mod:`repro.gateway`) keeps its
connection/frame accounting in a :class:`GatewayCounters`.

Every summary here is **empty-window safe**: a freshly started server (or a
model that has not completed a batch yet) reports zeroed percentiles, never
NaN and never an indexing error, so dashboards can poll ``stats()`` from the
moment the server starts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GatewayCounters", "LatencySummary", "ModelLaneStats", "ServeStats"]


@dataclass(frozen=True)
class LatencySummary:
    """Percentile summary of one latency population (seconds).

    Non-finite samples are dropped before the percentiles are taken, and an
    empty (or all-non-finite) window summarises to zeros — querying a server
    before its first batch completes must never trip on an empty percentile.
    """

    count: int
    mean: float
    min: float
    p50: float
    p90: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, samples) -> "LatencySummary":
        values = np.asarray(samples, dtype=float).ravel()
        if values.size:
            values = values[np.isfinite(values)]
        if values.size == 0:
            return cls(count=0, mean=0.0, min=0.0, p50=0.0, p90=0.0, p95=0.0,
                       p99=0.0, max=0.0)
        p50, p90, p95, p99 = np.percentile(values, [50.0, 90.0, 95.0, 99.0])
        return cls(count=int(values.size), mean=float(values.mean()),
                   min=float(values.min()), p50=float(p50), p90=float(p90),
                   p95=float(p95), p99=float(p99), max=float(values.max()))

    def percentile(self, q: float) -> float:
        """Interpolate an arbitrary percentile from the stored summary knots.

        The q=0 knot is the true window minimum, so low percentiles
        interpolate between min and p50 instead of collapsing onto p50.
        NaN-safe by construction: an empty summary answers 0.0 for every
        ``q`` instead of propagating NaN into dashboards or gates.
        """
        if self.count == 0:
            return 0.0
        knots_q = [0.0, 50.0, 90.0, 95.0, 99.0, 100.0]
        knots_v = [self.min, self.p50, self.p90, self.p95, self.p99, self.max]
        return float(np.interp(float(q), knots_q, knots_v))

    @classmethod
    def merge(cls, summaries) -> "LatencySummary":
        """Fold several window summaries into one rolling summary.

        The windowed-percentile primitive of the metrics aggregator: each
        fixed-duration window keeps only its own :class:`LatencySummary`,
        and a rolling view over N windows merges them without re-touching
        the raw samples.  ``count``/``mean``/``min``/``max`` merge exactly;
        the percentile knots merge as count-weighted means, which is the
        standard streaming approximation (exact when the windows are
        identically distributed, and never outside [min, max]).  Empty
        summaries contribute nothing; merging none (or only empties) is the
        zeroed summary, keeping the empty-window-safe contract.
        """
        live = [s for s in summaries if s.count]
        if not live:
            return cls.of(())
        total = sum(s.count for s in live)
        weighted = lambda field: sum(
            getattr(s, field) * s.count for s in live) / total
        return cls(count=total, mean=weighted("mean"),
                   min=min(s.min for s in live),
                   p50=weighted("p50"), p90=weighted("p90"),
                   p95=weighted("p95"), p99=weighted("p99"),
                   max=max(s.max for s in live))

    def as_dict(self) -> dict:
        return {"count": self.count, "mean_s": self.mean, "min_s": self.min,
                "p50_s": self.p50, "p90_s": self.p90, "p95_s": self.p95,
                "p99_s": self.p99, "max_s": self.max}


@dataclass(frozen=True)
class ModelLaneStats:
    """One model's share of the traffic, attributed to its dispatch lane."""

    key: str
    lane: int
    n_batches: int
    n_rows: int
    n_completed: int
    n_failed: int
    n_coalescing: int
    queue_latency: LatencySummary
    e2e_latency: LatencySummary
    #: ``ServePolicy.max_batch`` at snapshot time — the denominator of the
    #: batch-fill ratio (0 when unknown, e.g. hand-built test values).
    max_batch: int = 0

    @property
    def mean_batch_size(self) -> float:
        return (self.n_rows / self.n_batches) if self.n_batches else 0.0

    @property
    def fill_ratio(self) -> float:
        """Mean batch occupancy vs ``max_batch`` (0.0 when unknown).

        The metric that tells whether a model's traffic saturates its
        batches (ratio near 1: throughput-bound, raise ``max_batch``) or
        mostly flushes on the deadline (low ratio: latency-bound, the
        ``max_wait`` knob is doing the closing).
        """
        if not self.max_batch or not self.n_batches:
            return 0.0
        return self.mean_batch_size / self.max_batch

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "lane": self.lane,
            "n_batches": self.n_batches,
            "n_rows": self.n_rows,
            "n_completed": self.n_completed,
            "n_failed": self.n_failed,
            "n_coalescing": self.n_coalescing,
            "mean_batch_size": self.mean_batch_size,
            "max_batch": self.max_batch,
            "fill_ratio": self.fill_ratio,
            "queue_latency": self.queue_latency.as_dict(),
            "e2e_latency": self.e2e_latency.as_dict(),
        }

    def describe(self) -> str:
        return (f"model {self.key[:12]}... [lane {self.lane}]: "
                f"{self.n_completed} served / {self.n_failed} failed in "
                f"{self.n_batches} batch(es) of {self.mean_batch_size:.1f} "
                f"rows avg (fill {self.fill_ratio * 100.0:.0f}%); "
                f"queue p50 {self.queue_latency.p50 * 1e3:.2f} ms, "
                f"e2e p50 {self.e2e_latency.p50 * 1e3:.2f} ms")


@dataclass(frozen=True)
class ServeStats:
    """Point-in-time snapshot of a server's counters and latencies."""

    n_submitted: int
    n_completed: int
    n_failed: int
    n_pending: int
    n_batches: int
    mean_batch_size: float
    queue_latency: LatencySummary
    e2e_latency: LatencySummary
    cache: dict = field(default_factory=dict)
    pool: dict = field(default_factory=dict)
    #: Per-model breakdown keyed by model key (only models that have had at
    #: least one request routed to a lane appear).
    per_model: dict = field(default_factory=dict)
    n_lanes: int = 1
    #: When this snapshot was taken, on the server's monotonic clock — the
    #: same time base as the telemetry event timestamps, so consecutive
    #: snapshots difference into rates (req/s, batches/s) without wall-clock
    #: jumps.
    t_snapshot: float = 0.0
    #: Seconds the server had been up when the snapshot was taken.
    uptime_s: float = 0.0
    #: ``ServePolicy.max_batch`` of the serving policy (0 when unknown).
    max_batch: int = 0

    @property
    def fill_ratio(self) -> float:
        """Server-wide mean batch occupancy vs ``max_batch`` (0 if unknown)."""
        if not self.max_batch or not self.n_batches:
            return 0.0
        return self.mean_batch_size / self.max_batch

    def as_dict(self) -> dict:
        return {
            "t_snapshot": self.t_snapshot,
            "uptime_s": self.uptime_s,
            "n_submitted": self.n_submitted,
            "n_completed": self.n_completed,
            "n_failed": self.n_failed,
            "n_pending": self.n_pending,
            "n_batches": self.n_batches,
            "mean_batch_size": self.mean_batch_size,
            "max_batch": self.max_batch,
            "fill_ratio": self.fill_ratio,
            "n_lanes": self.n_lanes,
            "queue_latency": self.queue_latency.as_dict(),
            "e2e_latency": self.e2e_latency.as_dict(),
            "cache": dict(self.cache),
            "pool": dict(self.pool),
            "per_model": {key: stats.as_dict()
                          for key, stats in self.per_model.items()},
        }

    def describe(self, per_model: bool = True) -> str:
        lines = [
            f"up {self.uptime_s:.1f} s: "
            f"served {self.n_completed}/{self.n_submitted} request(s) "
            f"({self.n_failed} failed, {self.n_pending} pending) in "
            f"{self.n_batches} batch(es) of {self.mean_batch_size:.1f} "
            f"rows avg (fill {self.fill_ratio * 100.0:.0f}%) across "
            f"{self.n_lanes} lane(s); queue p50 "
            f"{self.queue_latency.p50 * 1e3:.2f} ms, e2e p50 "
            f"{self.e2e_latency.p50 * 1e3:.2f} ms"]
        if per_model:
            lines.extend("  " + stats.describe()
                         for stats in self.per_model.values())
        return "\n".join(lines)


class GatewayCounters:
    """Mutable connection/frame counters of one gateway front-end.

    Mutated only from the gateway's event-loop thread; snapshots via
    :meth:`as_dict` are consistent enough for monitoring (single attribute
    reads are atomic under the GIL).
    """

    __slots__ = ("n_connections", "n_open_connections",
                 "n_rejected_connections", "n_frames_in", "n_frames_out",
                 "n_requests", "n_rejected_requests", "n_protocol_errors",
                 "n_chunk_stream_errors")

    def __init__(self) -> None:
        #: Connections ever accepted (the admission-rejected ones excluded).
        self.n_connections = 0
        self.n_open_connections = 0
        #: Connections refused by the ``max_connections`` admission limit.
        self.n_rejected_connections = 0
        self.n_frames_in = 0
        self.n_frames_out = 0
        #: Request frames admitted into the model server.
        self.n_requests = 0
        #: Request frames the model server rejected at submit time.
        self.n_rejected_requests = 0
        #: Malformed frames (bad magic/version/dtype, truncated, oversized).
        self.n_protocol_errors = 0
        #: Chunked-request streams that failed reassembly (inconsistent
        #: series, out-of-budget totals, or abandoned mid-stream at
        #: disconnect).  Also counted in ``n_protocol_errors`` — this
        #: breakdown tells truncated streams apart from garbled frames.
        self.n_chunk_stream_errors = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def describe(self) -> str:
        return (f"{self.n_open_connections} open connection(s) "
                f"({self.n_connections} accepted, "
                f"{self.n_rejected_connections} refused); "
                f"{self.n_frames_in} frame(s) in / {self.n_frames_out} out, "
                f"{self.n_requests} request(s) admitted, "
                f"{self.n_rejected_requests} rejected, "
                f"{self.n_protocol_errors} protocol error(s) "
                f"({self.n_chunk_stream_errors} chunk-stream)")
