"""Serving policy: the knobs that shape batching, sharding and caching.

One frozen :class:`ServePolicy` value parameterises the whole serving stack —
the micro-batching scheduler (:mod:`repro.serve.batcher`), the shard pool
(:mod:`repro.serve.shards`) and the model cache (:mod:`repro.serve.cache`) —
so a deployment is described by a single reviewable object instead of knobs
scattered across constructors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ServeError

__all__ = ["ServePolicy"]


@dataclass(frozen=True)
class ServePolicy:
    """Configuration of a :class:`~repro.serve.server.ModelServer`.

    The two batching knobs trade latency for throughput exactly as in any
    micro-batching server: a request is dispatched as soon as its coalesced
    batch reaches ``max_batch`` rows, or when the oldest request in the batch
    has waited ``max_wait`` seconds, whichever comes first.
    """

    #: Rows per coalesced lock-step batch; a full batch dispatches
    #: immediately.
    max_batch: int = 256
    #: Longest time (seconds) a request may wait for co-batching before its
    #: partial batch is dispatched anyway.
    max_wait: float = 2e-3
    #: Per-request sample limit.  Oversized requests are rejected at submit
    #: time with a :class:`~repro.exceptions.ServeError` naming this limit —
    #: one runaway client must not be able to wedge a whole batch.
    max_request_samples: int = 1 << 20
    #: Upper bound on in-flight requests (accepted but not yet answered,
    #: whether still coalescing, queued as a closed batch, or executing);
    #: submissions beyond it are rejected, not silently queued.
    max_queue_depth: int = 100_000
    #: Worker processes in the shard pool.  ``0`` evaluates batches inline in
    #: the dispatcher thread — the single-process reference configuration.
    n_workers: int = 0
    #: Shard-job retries after a worker crash before the affected requests
    #: fail (cleanly, with a ServeError — never a hang).
    max_retries: int = 2
    #: Byte budget of each warm-model LRU cache (the dispatcher holds one;
    #: every shard worker holds its own).
    cache_bytes: int = 256 << 20

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ServeError("ServePolicy.max_batch must be at least 1")
        if self.max_wait < 0.0:
            raise ServeError("ServePolicy.max_wait must be non-negative")
        if self.max_request_samples < 1:
            raise ServeError("ServePolicy.max_request_samples must be at least 1")
        if self.max_queue_depth < 1:
            raise ServeError("ServePolicy.max_queue_depth must be at least 1")
        if self.n_workers < 0:
            raise ServeError("ServePolicy.n_workers must be non-negative")
        if self.max_retries < 0:
            raise ServeError("ServePolicy.max_retries must be non-negative")
        if self.cache_bytes < 0:
            raise ServeError("ServePolicy.cache_bytes must be non-negative")
