"""Serving policy: the knobs that shape batching, sharding and caching.

One frozen :class:`ServePolicy` value parameterises the whole serving stack —
the micro-batching scheduler (:mod:`repro.serve.batcher`), the shard pool
(:mod:`repro.serve.shards`) and the model cache (:mod:`repro.serve.cache`) —
so a deployment is described by a single reviewable object instead of knobs
scattered across constructors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ServeError

__all__ = ["ServePolicy"]


@dataclass(frozen=True)
class ServePolicy:
    """Configuration of a :class:`~repro.serve.server.ModelServer`.

    The two batching knobs trade latency for throughput exactly as in any
    micro-batching server: a request is dispatched as soon as its coalesced
    batch reaches ``max_batch`` rows, or when the oldest request in the batch
    has waited ``max_wait`` seconds, whichever comes first.
    """

    #: Rows per coalesced lock-step batch; a full batch dispatches
    #: immediately.
    max_batch: int = 256
    #: Longest time (seconds) a request may wait for co-batching before its
    #: partial batch is dispatched anyway.
    max_wait: float = 2e-3
    #: Per-request sample limit.  Oversized requests are rejected at submit
    #: time with a :class:`~repro.exceptions.ServeError` naming this limit —
    #: one runaway client must not be able to wedge a whole batch.
    max_request_samples: int = 1 << 20
    #: Upper bound on in-flight requests (accepted but not yet answered,
    #: whether still coalescing, queued as a closed batch, or executing);
    #: submissions beyond it are rejected, not silently queued.
    max_queue_depth: int = 100_000
    #: Worker processes in the shard pool.  ``0`` evaluates batches inline in
    #: the dispatching lane thread — the single-process reference
    #: configuration.
    n_workers: int = 0
    #: Dispatch lanes: each model key is pinned to one lane thread, and lanes
    #: execute their batches concurrently (each leasing its own subset of
    #: shard workers), so multi-model traffic overlaps instead of queueing
    #: behind whichever model's batch happens to be running.  ``1``
    #: reproduces the original single-lane dispatcher: every batch, for every
    #: model, executes strictly one at a time.
    n_lanes: int = 4
    #: Admission control of the TCP gateway (:mod:`repro.gateway`):
    #: connections beyond this are refused with a named error frame instead
    #: of being accepted and buffered without bound.
    max_connections: int = 1024
    #: Per-connection in-flight request cap for the gateway.  A connection at
    #: its cap simply stops being read until replies drain — backpressure
    #: through the TCP window, not unbounded server-side buffering.  It also
    #: bounds each connection's outgoing reply queue.
    max_inflight_per_conn: int = 256
    #: Largest frame (length prefix value, bytes) the gateway will read or a
    #: client will accept.  An oversized frame fails its connection with a
    #: named error — it is never read into memory.
    max_frame_bytes: int = 64 << 20
    #: Shard-job retries after a worker crash before the affected requests
    #: fail (cleanly, with a ServeError — never a hang).
    max_retries: int = 2
    #: Byte size of each shard worker's shared-memory dataplane segment.
    #: Batch rows travel to the worker (and results travel back) through
    #: this segment — the pipe carries only ``(job_id, key, offset, shape)``
    #: descriptors, so dispatch → evaluate → reassembly never pickles a
    #: float64 row.  A job too large for half the segment falls back to the
    #: pickle-over-pipe transport transparently; ``0`` disables the shared
    #: segments entirely (every job takes the pipe path).
    segment_bytes: int = 64 << 20
    #: Per shard-job deadline (seconds).  A worker that is *alive but wedged*
    #: (stuck in evaluate, deadlocked allocator) can otherwise hang its lane
    #: forever — the liveness check only catches processes that died.  When
    #: the deadline passes, the job is treated exactly like a crash: the
    #: worker is respawned and the shard's retry budget is charged.  ``0``
    #: (the default) disables the deadline.
    job_timeout: float = 0.0
    #: Byte budget of each warm-model LRU cache (the dispatcher holds one;
    #: every shard worker holds its own).
    cache_bytes: int = 256 << 20
    #: Fastest cadence (seconds) at which the gateway emits ``STATS`` frames
    #: to a subscribed connection; a client asking for a shorter interval is
    #: clamped up to this, so one eager dashboard cannot turn stats polling
    #: into load.
    stats_interval: float = 1.0
    #: Queue bound of each gateway ``EVENTS_SUBSCRIBE`` subscription: events
    #: beyond it drop oldest-first (counted on the subscription) instead of
    #: growing server-side buffers for a slow telemetry consumer.
    telemetry_maxsize: int = 4096

    def validate(self) -> None:
        if self.max_batch < 1:
            raise ServeError("ServePolicy.max_batch must be at least 1")
        if self.max_wait < 0.0:
            raise ServeError("ServePolicy.max_wait must be non-negative")
        if self.max_request_samples < 1:
            raise ServeError("ServePolicy.max_request_samples must be at least 1")
        if self.max_queue_depth < 1:
            raise ServeError("ServePolicy.max_queue_depth must be at least 1")
        if self.n_workers < 0:
            raise ServeError("ServePolicy.n_workers must be non-negative")
        if self.n_lanes < 1:
            raise ServeError("ServePolicy.n_lanes must be at least 1")
        if self.max_connections < 1:
            raise ServeError("ServePolicy.max_connections must be at least 1")
        if self.max_inflight_per_conn < 1:
            raise ServeError(
                "ServePolicy.max_inflight_per_conn must be at least 1")
        if self.max_frame_bytes < 64:
            raise ServeError(
                "ServePolicy.max_frame_bytes must be at least 64 (one frame "
                "header plus a sample)")
        if self.max_retries < 0:
            raise ServeError("ServePolicy.max_retries must be non-negative")
        if self.segment_bytes < 0:
            raise ServeError(
                "ServePolicy.segment_bytes must be non-negative (0 disables "
                "the shared-memory dataplane)")
        if self.job_timeout < 0.0:
            raise ServeError(
                "ServePolicy.job_timeout must be non-negative (0 disables "
                "the per-job deadline)")
        if self.cache_bytes < 0:
            raise ServeError("ServePolicy.cache_bytes must be non-negative")
        if self.stats_interval <= 0.0:
            raise ServeError("ServePolicy.stats_interval must be positive")
        if self.telemetry_maxsize < 1:
            raise ServeError(
                "ServePolicy.telemetry_maxsize must be at least 1")
