"""The serving front-end: submit → coalesce → shard → respond.

:class:`ModelServer` accepts individual stimulus requests (model key +
waveform sample array) and returns a future per request.  A dispatcher
thread closes requests into lock-step micro-batches under the
``max_batch`` / ``max_wait`` policy (:mod:`repro.serve.batcher`) and executes
each batch either inline (``n_workers == 0``) or across the shard pool
(:mod:`repro.serve.shards`).  Models come from a
:class:`~repro.runtime.registry.ModelRegistry` and stay warm in byte-budget
LRU caches, so one server instance can front far more registered models than
fit in memory.

Request validation happens at **submit time**, in the caller's thread: an
oversized, empty, non-finite or unknown-key request is rejected with a
:class:`~repro.exceptions.ServeError` naming the violated limit before it
can touch a batch — one bad request must never poison the lock-step batch it
would have joined.

Every guarantee the batch runtime gives carries through: the outputs a
future resolves to are bitwise-equal to evaluating the same rows through a
single-process :meth:`CompiledModel.evaluate
<repro.runtime.compiled.CompiledModel.evaluate>`.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from ..exceptions import ServeError
from ..runtime.registry import ModelRegistry
from .batcher import MicroBatch, MicroBatcher, ServeRequest
from .cache import ModelCache
from .policy import ServePolicy
from .shards import ShardPool
from .stats import LatencySummary, ServeStats

__all__ = ["ModelServer"]

#: Most recent per-request latency samples kept for :meth:`ModelServer.stats`
#: percentiles; a long-running server must not grow its accounting without
#: bound alongside its traffic.
LATENCY_WINDOW = 100_000


class ModelServer:
    """Sharded micro-batching server over a model registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.runtime.registry.ModelRegistry` (or its root
        directory) holding the compiled models to serve.
    policy:
        Batching / sharding / caching configuration.
    fault_injection:
        Test instrumentation forwarded to the shard pool (crash-once keys).
    """

    def __init__(self, registry: ModelRegistry | str | Path,
                 policy: ServePolicy | None = None,
                 fault_injection=None) -> None:
        self.policy = policy or ServePolicy()
        self.policy.validate()
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry))
        self._cache = ModelCache(self.policy.cache_bytes)
        self._pool: ShardPool | None = None
        if self.policy.n_workers > 0:
            self._pool = ShardPool(
                self.registry.root, self.policy.n_workers,
                cache_bytes=self.policy.cache_bytes,
                max_retries=self.policy.max_retries,
                fault_injection=fault_injection)
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._batcher = MicroBatcher(self.policy.max_batch, self.policy.max_wait)
        self._ready: deque[MicroBatch] = deque()
        self._closed = False
        # Counters and windowed latency populations (guarded by _lock).
        self._n_submitted = 0
        self._n_completed = 0
        self._n_failed = 0
        self._n_batches = 0
        self._n_rows_batched = 0
        #: Requests accepted but not yet resolved/failed — the real backlog
        #: the ``max_queue_depth`` limit guards (batcher queues AND closed
        #: batches waiting on / inside the dispatcher).
        self._n_inflight = 0
        self._queue_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._e2e_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._dispatcher = threading.Thread(
            target=self._run, name="repro-serve-dispatcher", daemon=True)
        self._dispatcher.start()

    # ------------------------------------------------------------- submission
    def submit(self, key: str, samples) -> Future:
        """Enqueue one stimulus for model ``key``; returns its future.

        ``samples`` is the 1-D waveform sampled on the model's ``dt`` grid.
        The future resolves to the model's 1-D output row (or raises
        :class:`~repro.exceptions.ServeError` on failure).
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or samples.size < 1:
            raise ServeError(
                f"request samples must be a non-empty 1-D array; got shape "
                f"{samples.shape}")
        if samples.size > self.policy.max_request_samples:
            raise ServeError(
                f"request of {samples.size} samples exceeds the per-request "
                f"limit ServePolicy.max_request_samples="
                f"{self.policy.max_request_samples}")
        if not np.isfinite(samples).all():
            bad = int(np.flatnonzero(~np.isfinite(samples))[0])
            raise ServeError(
                f"request contains a non-finite sample at step {bad}; "
                "rejected before batching (it would poison its lock-step "
                "batch)")
        if key not in self.registry:
            raise ServeError(
                f"unknown model key {key[:12]!r}... — not in "
                f"{self.registry.describe()}")
        request = ServeRequest(key=key, samples=samples)
        with self._wakeup:
            if self._closed:
                raise ServeError("server is closed")
            if self._n_inflight >= self.policy.max_queue_depth:
                raise ServeError(
                    f"scheduler queue is full: ServePolicy.max_queue_depth="
                    f"{self.policy.max_queue_depth} requests already pending")
            self._n_submitted += 1
            self._n_inflight += 1
            now = time.monotonic()
            batch = self._batcher.add(request, now)
            if batch is not None:
                self._ready.append(batch)
            # Close overdue groups from the submit path too: the dispatcher
            # may be deep in a batch evaluation, and the max_wait bound must
            # hold as long as *any* traffic is flowing.
            self._ready.extend(self._batcher.due(now))
            self._wakeup.notify()
        return request.future

    def serve(self, key: str, batch) -> np.ndarray:
        """Blocking convenience: submit every row of ``(rows, n_steps)`` and
        gather the outputs in order."""
        batch = np.asarray(batch, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        futures = [self.submit(key, row) for row in batch]
        return np.vstack([future.result() for future in futures])

    # -------------------------------------------------------------- dispatcher
    def _run(self) -> None:
        while True:
            with self._wakeup:
                batch = None
                while batch is None:
                    if self._ready:
                        batch = self._ready.popleft()
                        break
                    if self._closed and self._batcher.pending() == 0:
                        return
                    now = time.monotonic()
                    due = self._batcher.due(now)
                    if due:
                        self._ready.extend(due)
                        continue
                    deadline = self._batcher.next_deadline()
                    timeout = None if deadline is None else max(0.0, deadline - now)
                    self._wakeup.wait(timeout)
            self._execute(batch)

    def _execute(self, batch: MicroBatch) -> None:
        try:
            inputs = batch.stack()
            if self._pool is not None:
                outputs = self._pool.evaluate(batch.key, inputs)
            else:
                model = self._cache.get_or_load(
                    batch.key, lambda: self.registry.load(batch.key))
                outputs = model.evaluate(inputs)
            failure = None
        except Exception as exc:   # noqa: BLE001 - must resolve the futures
            failure = (exc if isinstance(exc, ServeError)
                       else ServeError(f"batch evaluation failed: {exc!r}"))
        now = time.monotonic()
        # Account first, then wake the callers: a caller returning from
        # future.result() must find its own request already counted when it
        # immediately asks for stats().
        with self._lock:
            self._n_batches += 1
            self._n_rows_batched += len(batch)
            for request in batch.requests:
                self._queue_latencies.append(request.t_closed - request.t_submit)
                self._e2e_latencies.append(now - request.t_submit)
            self._n_inflight -= len(batch)
            if failure is None:
                self._n_completed += len(batch)
            else:
                self._n_failed += len(batch)
        if failure is None:
            batch.resolve(outputs)
        else:
            batch.fail(failure)

    # ----------------------------------------------------------------- control
    def flush(self) -> None:
        """Close all partially-filled batches immediately (no waiting)."""
        with self._wakeup:
            self._ready.extend(self._batcher.drain(time.monotonic()))
            self._wakeup.notify()

    def close(self, timeout: float | None = None) -> None:
        """Drain pending work, stop the dispatcher and the shard pool.

        Every already-submitted future is resolved (or failed) before the
        dispatcher exits; submissions after ``close`` raise.
        """
        with self._wakeup:
            if not self._closed:
                self._closed = True
                self._ready.extend(self._batcher.drain(time.monotonic()))
            self._wakeup.notify()
        self._dispatcher.join(timeout)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- diagnostics
    def stats(self) -> ServeStats:
        """Snapshot of counters and latency percentiles.

        Counters (and the mean batch size) are lifetime totals; the latency
        percentiles summarise the most recent :data:`LATENCY_WINDOW`
        samples.
        """
        with self._lock:
            queue = list(self._queue_latencies)
            e2e = list(self._e2e_latencies)
            submitted, completed = self._n_submitted, self._n_completed
            failed, pending = self._n_failed, self._n_inflight
            n_batches, n_rows = self._n_batches, self._n_rows_batched
        return ServeStats(
            n_submitted=submitted, n_completed=completed, n_failed=failed,
            n_pending=pending, n_batches=n_batches,
            mean_batch_size=(n_rows / n_batches) if n_batches else 0.0,
            queue_latency=LatencySummary.of(queue),
            e2e_latency=LatencySummary.of(e2e),
            cache=self._cache.stats.as_dict(),
            pool=self._pool.stats() if self._pool is not None else {},
        )
