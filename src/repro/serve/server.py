"""The serving front-end: submit → coalesce → lane-dispatch → shard → respond.

:class:`ModelServer` accepts individual stimulus requests (model key +
waveform sample array) and returns a future per request.  Requests are closed
into lock-step micro-batches under the ``max_batch`` / ``max_wait`` policy
(:mod:`repro.serve.batcher`) and executed by **per-model dispatch lanes**:
each model key is pinned to one lane thread (lanes are created on demand up
to ``ServePolicy.n_lanes``; beyond that, keys share the least-loaded lane),
and lanes execute their batches concurrently — each leasing its own subset
of shard-pool workers (:mod:`repro.serve.shards`) — so traffic for one model
never queues behind another model's running batch.  ``n_lanes=1`` reproduces
the original single-lane dispatcher: one batch at a time, globally.

A lightweight timer thread enforces the coalescing deadlines when no
submissions are arriving; the submit path closes due batches too, so the
``max_wait`` bound holds whenever any traffic is flowing.

Request validation happens at **submit time**, in the caller's thread: an
oversized, empty, non-finite or unknown-key request is rejected with a
:class:`~repro.exceptions.ServeError` naming the violated limit before it
can touch a batch — one bad request must never poison the lock-step batch it
would have joined.

Every guarantee the batch runtime gives carries through: the outputs a
future resolves to are bitwise-equal to evaluating the same rows through a
single-process :meth:`CompiledModel.evaluate
<repro.runtime.compiled.CompiledModel.evaluate>` (the batch kernel is
bitwise chunk-invariant, so neither sharding nor lane count changes a bit).
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from pathlib import Path

import numpy as np

from ..checks import lockwatch
from ..exceptions import ServeError, ServerClosedError
from ..runtime.registry import ModelRegistry
from ..telemetry.broker import TopicBroker
from ..telemetry.events import (BatchClosed, BatchServed, CacheEvicted,
                                RequestRejected, RequestSubmitted)
from ..telemetry.spans import ROOT_SPAN, Tracer, TracerConfig
from .batcher import MicroBatch, MicroBatcher, ServeRequest
from .cache import ModelCache
from .policy import ServePolicy
from .shards import ShardPool
from .stats import LatencySummary, ModelLaneStats, ServeStats

__all__ = ["ModelServer"]

#: Most recent per-request latency samples kept for :meth:`ModelServer.stats`
#: percentiles; a long-running server must not grow its accounting without
#: bound alongside its traffic.
LATENCY_WINDOW = 100_000

#: Per-model latency window (each served model keeps its own, smaller one).
MODEL_LATENCY_WINDOW = 20_000


class _Lane:
    """One dispatch lane: a daemon thread draining batches for its models."""

    __slots__ = ("index", "keys", "queue", "ready", "executing", "thread")

    def __init__(self, server: "ModelServer", index: int) -> None:
        self.index = index
        self.keys: set[str] = set()
        self.queue: deque[MicroBatch] = deque()
        #: Signalled (under the server lock) when a batch is routed here or
        #: the server starts shutting down.
        self.ready = lockwatch.monitored_condition("serve.server", server._lock)
        #: True while this lane's thread is inside a batch evaluation
        #: (guarded by the server lock; feeds the fair-share worker split).
        self.executing = False
        self.thread = threading.Thread(
            target=server._lane_run, args=(self,),
            name=f"repro-serve-lane-{index}", daemon=True)


class _ModelStats:
    """Per-model accounting (guarded by the server lock)."""

    __slots__ = ("lane", "n_batches", "n_rows", "n_completed", "n_failed",
                 "queue_latencies", "e2e_latencies")

    def __init__(self, lane: int) -> None:
        self.lane = lane
        self.n_batches = 0
        self.n_rows = 0
        self.n_completed = 0
        self.n_failed = 0
        self.queue_latencies: deque[float] = deque(maxlen=MODEL_LATENCY_WINDOW)
        self.e2e_latencies: deque[float] = deque(maxlen=MODEL_LATENCY_WINDOW)


class ModelServer:
    """Sharded micro-batching server over a model registry.

    Parameters
    ----------
    registry:
        The :class:`~repro.runtime.registry.ModelRegistry` (or its root
        directory) holding the compiled models to serve.
    policy:
        Batching / lane / sharding / caching configuration.
    fault_injection:
        Test instrumentation forwarded to the shard pool (crash-once keys).
    stall_injection:
        Test instrumentation forwarded to the shard pool (wedge-once keys,
        exercising ``ServePolicy.job_timeout``).
    delay_injection:
        Benchmark instrumentation forwarded to the shard pool (per-job
        worker stall in seconds, modelling remote-shard latency).
    tracing:
        :class:`~repro.telemetry.spans.TracerConfig` for the span tracer
        (default: sample every trace — costs nothing until somebody
        subscribes to the broker).
    """

    def __init__(self, registry: ModelRegistry | str | Path,
                 policy: ServePolicy | None = None,
                 fault_injection=None, stall_injection=None,
                 delay_injection: float = 0.0,
                 broker: TopicBroker | None = None,
                 tracing: TracerConfig | None = None) -> None:
        self.policy = policy or ServePolicy()
        self.policy.validate()
        self.registry = (registry if isinstance(registry, ModelRegistry)
                         else ModelRegistry(registry))
        #: Push-telemetry broker: every lifecycle event of this server (and
        #: its shard pool) is published here.  Falsy while nobody subscribes,
        #: so every instrumentation site below guards with
        #: ``if self.telemetry:`` and publishing stays near-free unobserved.
        self.telemetry = broker if broker is not None else TopicBroker()
        #: Span tracer over the same broker: per-stage latency attribution
        #: keyed by trace id.  Falsy together with the broker (and when
        #: ``tracing.sample_rate`` is 0), so untraced serving pays one
        #: truthiness check per instrumentation site.
        self.tracer = Tracer(self.telemetry, tracing)
        self._trace_ids = itertools.count(1)
        self._cache = ModelCache(self.policy.cache_bytes,
                                 on_evict=self._on_cache_evict)
        self._cache_lock = lockwatch.monitored_lock("serve.cache")
        self._pool: ShardPool | None = None
        if self.policy.n_workers > 0:
            self._pool = ShardPool(
                self.registry.root, self.policy.n_workers,
                cache_bytes=self.policy.cache_bytes,
                max_retries=self.policy.max_retries,
                segment_bytes=self.policy.segment_bytes,
                job_timeout=self.policy.job_timeout,
                fault_injection=fault_injection,
                stall_injection=stall_injection,
                delay_injection=delay_injection,
                broker=self.telemetry,
                tracer=self.tracer)
        self._lock = lockwatch.monitored_lock("serve.server")
        self._wakeup = lockwatch.monitored_condition("serve.server", self._lock)
        self._batcher = MicroBatcher(self.policy.max_batch,
                                     self.policy.max_wait,
                                     on_close=self._on_batch_closed)
        self._closed = False
        self._t_started = time.monotonic()
        # Dispatch lanes (guarded by _lock): created on demand as model keys
        # first appear, up to policy.n_lanes; then keys share lanes.
        self._lanes: list[_Lane] = []
        self._lane_by_key: dict[str, _Lane] = {}
        # Counters and windowed latency populations (guarded by _lock).
        self._n_submitted = 0
        self._n_completed = 0
        self._n_failed = 0
        self._n_batches = 0
        self._n_rows_batched = 0
        #: Requests accepted but not yet resolved/failed — the real backlog
        #: the ``max_queue_depth`` limit guards (batcher queues AND closed
        #: batches waiting on / inside a lane).
        self._n_inflight = 0
        self._queue_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._e2e_latencies: deque[float] = deque(maxlen=LATENCY_WINDOW)
        self._model_stats: dict[str, _ModelStats] = {}
        self._timer = threading.Thread(
            target=self._timer_run, name="repro-serve-timer", daemon=True)
        self._timer.start()

    def describe(self) -> str:
        return (f"ModelServer({self.registry.root}, "
                f"n_lanes={self.policy.n_lanes}, "
                f"n_workers={self.policy.n_workers})")

    # -------------------------------------------------------------- telemetry
    def _on_batch_closed(self, batch: MicroBatch) -> None:
        """Batcher ``on_close`` hook (runs under the server lock)."""
        if self.telemetry:
            # repro: allow[REP102] closes happen under the server lock so BatchClosed follows its RequestSubmitted
            self.telemetry.publish(BatchClosed(
                key=batch.key, n_steps=batch.n_steps, n_rows=len(batch),
                trace_ids=batch.trace_ids))

    def _on_cache_evict(self, key: str, nbytes: int) -> None:
        """Dispatcher-cache eviction hook (runs under the cache lock)."""
        if self.telemetry:
            # repro: allow[REP102] eviction order is the contract; publish is non-blocking drop-oldest
            self.telemetry.publish(CacheEvicted(key=key, nbytes=nbytes))

    def _reject(self, key: str, reason: str, exc: ServeError) -> ServeError:
        """Publish a ``RequestRejected`` event and hand back ``exc`` to raise."""
        if self.telemetry:
            self.telemetry.publish(RequestRejected(key=key, reason=reason))
        return exc

    # ------------------------------------------------------------------ lanes
    def _lane_for(self, key: str) -> _Lane:
        """The lane serving ``key`` (created/assigned on first sight).

        Caller holds ``_lock``.
        """
        lane = self._lane_by_key.get(key)
        if lane is None:
            if len(self._lanes) < self.policy.n_lanes:
                lane = _Lane(self, len(self._lanes))
                self._lanes.append(lane)
                lane.thread.start()
            else:
                lane = min(self._lanes, key=lambda lane: len(lane.keys))
            lane.keys.add(key)
            self._lane_by_key[key] = lane
            self._model_stats[key] = _ModelStats(lane.index)
        return lane

    def _route(self, batches) -> None:
        """Hand closed batches to their lanes (caller holds ``_lock``)."""
        for batch in batches:
            lane = self._lane_for(batch.key)
            lane.queue.append(batch)
            lane.ready.notify_all()

    def _lane_run(self, lane: _Lane) -> None:
        while True:
            with self._lock:
                lane.executing = False
                while not lane.queue:
                    if self._closed:
                        return
                    lane.ready.wait()
                batch = lane.queue.popleft()
                lane.executing = True
            self._execute(batch)

    def _worker_share(self) -> int:
        """Fair share of shard workers for one dispatching lane.

        The pool's lease is first-come-first-served, so without a cap the
        first lane to dispatch would grab every free worker and serialise
        the other lanes behind its batch.  The share divides the pool by the
        number of lanes that currently have work — executing, queued, or
        still coalescing requests in the batcher (counting model keys that
        have not been assigned a lane yet as future lanes).
        """
        assert self._pool is not None
        with self._lock:
            busy = {lane.index for lane in self._lanes
                    if lane.executing or lane.queue}
            unassigned = 0
            for key in self._batcher.keys():
                lane = self._lane_by_key.get(key)
                if lane is None:
                    unassigned += 1
                else:
                    busy.add(lane.index)
            # An unassigned key only adds concurrency if a lane can still be
            # created for it; beyond the lane budget it will share an
            # existing (already counted or serial) lane.
            unassigned = min(unassigned,
                             self.policy.n_lanes - len(self._lanes))
        n_busy = max(1, len(busy) + unassigned)
        return max(1, self._pool.n_workers // n_busy)

    def _timer_run(self) -> None:
        """Close overdue coalescing groups while traffic is quiet."""
        while True:
            with self._wakeup:
                if self._closed:
                    return
                now = time.monotonic()
                self._route(self._batcher.due(now))
                deadline = self._batcher.next_deadline()
                timeout = None if deadline is None else max(0.0, deadline - now)
                self._wakeup.wait(timeout)

    # ------------------------------------------------------------- submission
    def submit(self, key: str, samples) -> Future:
        """Enqueue one stimulus for model ``key``; returns its future.

        ``samples`` is the 1-D waveform sampled on the model's ``dt`` grid.
        The future resolves to the model's 1-D output row (or raises
        :class:`~repro.exceptions.ServeError` on failure).
        """
        samples = np.asarray(samples, dtype=float)
        if samples.ndim != 1 or samples.size < 1:
            raise self._reject(key, "bad_shape", ServeError(
                f"request samples must be a non-empty 1-D array; got shape "
                f"{samples.shape}"))
        if samples.size > self.policy.max_request_samples:
            raise self._reject(key, "oversized", ServeError(
                f"request of {samples.size} samples exceeds the per-request "
                f"limit ServePolicy.max_request_samples="
                f"{self.policy.max_request_samples}"))
        if not np.isfinite(samples).all():
            bad = int(np.flatnonzero(~np.isfinite(samples))[0])
            raise self._reject(key, "non_finite", ServeError(
                f"request contains a non-finite sample at step {bad}; "
                "rejected before batching (it would poison its lock-step "
                "batch)"))
        if key not in self.registry:
            raise self._reject(key, "unknown_key", ServeError(
                f"unknown model key {key[:12]!r}... — not in "
                f"{self.registry.describe()}"))
        request = ServeRequest(key=key, samples=samples)
        with self._wakeup:
            if self._closed:
                raise self._reject(key, "closed", ServerClosedError(
                    f"{self.describe()} is closed; a submission after "
                    "close() would enqueue a future that can never resolve"))
            if self._n_inflight >= self.policy.max_queue_depth:
                raise self._reject(key, "queue_full", ServeError(
                    f"scheduler queue is full: ServePolicy.max_queue_depth="
                    f"{self.policy.max_queue_depth} requests already pending"))
            self._n_submitted += 1
            self._n_inflight += 1
            now = time.monotonic()
            request.trace_id = next(self._trace_ids)
            # Stamped on the future so transport layers (the gateway) can
            # attribute their own decode/encode/write spans to this trace
            # without a side channel.
            request.future.trace_id = request.trace_id
            # Published before the batcher sees the request, under the same
            # lock that closes batches: a request's RequestSubmitted always
            # precedes the BatchClosed naming its trace id.
            if self.telemetry:
                # repro: allow[REP102] publish is non-blocking (drop-oldest) and the ordering contract needs the lock
                self.telemetry.publish(RequestSubmitted(
                    key=key, n_steps=request.n_steps,
                    trace_id=request.trace_id))
            batch = self._batcher.add(request, now)
            if batch is not None:
                self._route([batch])
            # Close overdue groups from the submit path too: every lane may
            # be deep in a batch evaluation, and the max_wait bound must
            # hold as long as *any* traffic is flowing.
            self._route(self._batcher.due(now))
            self._wakeup.notify()
        return request.future

    def serve(self, key: str, batch) -> np.ndarray:
        """Blocking convenience: submit every row of ``(rows, n_steps)`` and
        gather the outputs in order."""
        batch = np.asarray(batch, dtype=float)
        if batch.ndim == 1:
            batch = batch[None, :]
        futures = [self.submit(key, row) for row in batch]
        return np.vstack([future.result() for future in futures])

    # -------------------------------------------------------------- execution
    def _execute(self, batch: MicroBatch) -> None:
        t_started = time.monotonic()
        try:
            inputs = batch.stack()
            t_stacked = time.monotonic()
            if self._pool is not None:
                outputs = self._pool.evaluate(batch.key, inputs,
                                              max_workers=self._worker_share(),
                                              trace_ids=batch.trace_ids)
            else:
                # The dispatcher cache is shared across lanes: loads are
                # serialised under a lock, evaluation (a pure function of
                # the model arrays) runs outside it.
                with self._cache_lock:
                    model = self._cache.get_or_load(
                        batch.key, lambda: self.registry.load(batch.key))
                t_eval = time.monotonic()
                outputs = model.evaluate(inputs)
                if self.tracer:
                    duration = time.monotonic() - t_eval
                    evaluated = self.tracer.batch()
                    for trace_id in batch.trace_ids:
                        if self.tracer.sampled(trace_id):
                            evaluated.add("serve_evaluate", trace_id, t_eval,
                                          duration, parent="serve_execute")
                    evaluated.flush()
            failure = None
        except Exception as exc:   # noqa: BLE001 - must resolve the futures
            t_stacked = t_started
            failure = (exc if isinstance(exc, ServeError)
                       else ServeError(f"batch evaluation failed: {exc!r}"))
        now = time.monotonic()
        # Account first, then wake the callers: a caller returning from
        # future.result() must find its own request already counted when it
        # immediately asks for stats().
        with self._lock:
            self._n_batches += 1
            self._n_rows_batched += len(batch)
            model = self._model_stats.get(batch.key)
            if model is not None:
                model.n_batches += 1
                model.n_rows += len(batch)
            for request in batch.requests:
                queue_s = request.t_closed - request.t_submit
                e2e_s = now - request.t_submit
                self._queue_latencies.append(queue_s)
                self._e2e_latencies.append(e2e_s)
                if model is not None:
                    model.queue_latencies.append(queue_s)
                    model.e2e_latencies.append(e2e_s)
            self._n_inflight -= len(batch)
            if failure is None:
                self._n_completed += len(batch)
                if model is not None:
                    model.n_completed += len(batch)
            else:
                self._n_failed += len(batch)
                if model is not None:
                    model.n_failed += len(batch)
        # Span emission sits outside the lock (REP102/lockwatch clean) and
        # before the futures resolve, mirroring the BatchServed contract: a
        # caller returning from future.result() finds its trace complete.
        tracer = self.tracer
        if tracer:
            closing = tracer.batch()
            for request in batch.requests:
                trace_id = request.trace_id
                if not tracer.sampled(trace_id):
                    continue
                t_submit, t_closed = request.t_submit, request.t_closed
                closing.add("serve_queue", trace_id, t_submit,
                            t_closed - t_submit)
                closing.add("serve_coalesce", trace_id, t_closed,
                            t_started - t_closed)
                closing.add("serve_dispatch", trace_id, t_started,
                            t_stacked - t_started, parent="serve_execute")
                closing.add("serve_execute", trace_id, t_started,
                            now - t_started)
                closing.add(ROOT_SPAN, trace_id, t_submit, now - t_submit,
                            parent="")
            closing.flush()
        # Published before the futures resolve, mirroring the accounting
        # order: a caller returning from future.result() finds its request's
        # full submit → closed → served chain already on the wire.
        if self.telemetry:
            self.telemetry.publish(BatchServed(
                key=batch.key, n_steps=batch.n_steps, n_rows=len(batch),
                ok=failure is None, duration_s=now - t_started,
                trace_ids=batch.trace_ids))
        if failure is None:
            batch.resolve(outputs)
        else:
            batch.fail(failure)

    # ----------------------------------------------------------------- control
    def flush(self) -> None:
        """Close all partially-filled batches immediately (no waiting)."""
        with self._wakeup:
            self._route(self._batcher.drain(time.monotonic()))
            self._wakeup.notify()

    def close(self, timeout: float | None = None) -> None:
        """Drain pending work, stop the lanes, the timer and the shard pool.

        Every already-submitted future is resolved (or failed) before the
        lanes exit; submissions after ``close`` raise a
        :class:`~repro.exceptions.ServeError` naming this server.
        """
        with self._wakeup:
            if not self._closed:
                self._closed = True
                self._route(self._batcher.drain(time.monotonic()))
            # Wake the timer and every lane: queued batches are still
            # processed (lanes only exit on an empty queue), then threads
            # fall out on the closed flag.
            self._wakeup.notify_all()
            for lane in self._lanes:
                lane.ready.notify_all()
        self._timer.join(timeout)
        for lane in self._lanes:
            lane.thread.join(timeout)
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ModelServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- diagnostics
    def stats(self) -> ServeStats:
        """Snapshot of counters and latency percentiles.

        Counters (and the mean batch size) are lifetime totals; the latency
        percentiles summarise the most recent :data:`LATENCY_WINDOW` samples
        (:data:`MODEL_LATENCY_WINDOW` per model).  Safe to call at any time,
        including before the first batch completes — empty windows summarise
        to zeros.
        """
        t_snapshot = time.monotonic()
        with self._lock:
            queue = list(self._queue_latencies)
            e2e = list(self._e2e_latencies)
            submitted, completed = self._n_submitted, self._n_completed
            failed, pending = self._n_failed, self._n_inflight
            n_batches, n_rows = self._n_batches, self._n_rows_batched
            # Copy the raw windows only; the percentile math runs after the
            # lock is released so a many-model stats() poll cannot stall
            # submits and lane accounting behind it.
            model_rows = [
                (key, model.lane, model.n_batches, model.n_rows,
                 model.n_completed, model.n_failed,
                 self._batcher.pending(key),
                 list(model.queue_latencies), list(model.e2e_latencies))
                for key, model in self._model_stats.items()]
            n_lanes = max(1, len(self._lanes))
        per_model = {
            key: ModelLaneStats(
                key=key, lane=lane, n_batches=n_batches, n_rows=n_rows,
                n_completed=n_completed, n_failed=n_failed,
                n_coalescing=n_coalescing,
                queue_latency=LatencySummary.of(queue_window),
                e2e_latency=LatencySummary.of(e2e_window),
                max_batch=self.policy.max_batch)
            for (key, lane, n_batches, n_rows, n_completed, n_failed,
                 n_coalescing, queue_window, e2e_window) in model_rows}
        return ServeStats(
            n_submitted=submitted, n_completed=completed, n_failed=failed,
            n_pending=pending, n_batches=n_batches,
            mean_batch_size=(n_rows / n_batches) if n_batches else 0.0,
            queue_latency=LatencySummary.of(queue),
            e2e_latency=LatencySummary.of(e2e),
            cache=self._cache.stats.as_dict(),
            pool=self._pool.stats() if self._pool is not None else {},
            per_model=per_model,
            n_lanes=n_lanes,
            t_snapshot=t_snapshot,
            uptime_s=t_snapshot - self._t_started,
            max_batch=self.policy.max_batch,
        )
