"""Byte-budget LRU cache of loaded compiled models.

One server instance (and each shard worker) fronts far more registered
models than fit in memory: models are loaded from the registry on first use
and evicted least-recently-used once the resident set exceeds the byte
budget.  Charging real array bytes (:attr:`CompiledModel.nbytes
<repro.runtime.compiled.CompiledModel.nbytes>`) rather than an entry count
makes the budget meaningful when model sizes vary by orders of magnitude
(table sizes, branch counts).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

__all__ = ["CacheStats", "ModelCache"]


class CacheStats:
    """Mutable counters of one cache's lifetime behaviour."""

    __slots__ = ("hits", "misses", "evictions", "uncached")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Loads that bypassed the cache because a single model exceeded the
        #: whole budget (served anyway, never resident).
        self.uncached = 0

    def as_dict(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "uncached": self.uncached}


class ModelCache:
    """LRU cache keyed by model key, bounded by total model bytes.

    ``get_or_load(key, loader)`` is the single entry point: it returns the
    resident model or calls ``loader()`` (typically
    :meth:`ModelHandle.load <repro.runtime.registry.ModelHandle.load>`),
    admits the result and evicts from the least-recently-used end until the
    budget holds again.  A model larger than the entire budget is returned
    but never admitted — serving it must not flush every other warm model.
    """

    def __init__(self, max_bytes: int,
                 on_evict: Callable[[str, int], None] | None = None) -> None:
        self.max_bytes = int(max_bytes)
        #: Optional ``(key, nbytes)`` hook fired on each LRU eviction — the
        #: server's telemetry tap.  Called under whatever lock the caller
        #: already holds, so it must be cheap and non-blocking.
        self.on_evict = on_evict
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._nbytes: dict[str, int] = {}
        self.current_bytes = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def keys(self) -> list[str]:
        """Resident keys, least-recently-used first."""
        return list(self._entries)

    def get_or_load(self, key: str, loader: Callable[[], object]):
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry
        self.stats.misses += 1
        model = loader()
        nbytes = int(getattr(model, "nbytes", 0))
        if self.max_bytes <= 0 or nbytes > self.max_bytes:
            self.stats.uncached += 1
            return model
        self._entries[key] = model
        self._nbytes[key] = nbytes
        self.current_bytes += nbytes
        while self.current_bytes > self.max_bytes and len(self._entries) > 1:
            self._evict_lru()
        return model

    def _evict_lru(self) -> None:
        evicted, _ = self._entries.popitem(last=False)
        nbytes = self._nbytes.pop(evicted)
        self.current_bytes -= nbytes
        self.stats.evictions += 1
        if self.on_evict is not None:
            self.on_evict(evicted, nbytes)

    def drop(self, key: str) -> None:
        """Forget one entry (no-op when absent)."""
        if self._entries.pop(key, None) is not None:
            self.current_bytes -= self._nbytes.pop(key)

    def clear(self) -> None:
        self._entries.clear()
        self._nbytes.clear()
        self.current_bytes = 0
