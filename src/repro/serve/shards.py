"""Shard pool: partition lock-step batches across warm worker processes.

Each worker process holds its own byte-budget LRU cache of compiled models,
loaded once from the registry (integrity-checked via
:class:`~repro.runtime.registry.ModelHandle`) and kept warm across batches —
only the stimulus rows and result rows cross the process boundary per batch.

Sharding is the deterministic contiguous partition of
:func:`repro.runtime.batch.shard_slices`; because the batched kernel is
element-wise along the batch axis and bitwise chunk-invariant, reassembling
the shard results into the original row order reproduces the single-process
``evaluate`` bit for bit — for *any* number of shards, which is what lets
concurrent callers lease different worker subsets.

Concurrency model: workers are **leased per batch**.  An ``evaluate()`` call
takes every currently-free worker (at least one — it blocks while none are
free), shards its batch across exactly that lease, and returns the workers
on completion.  A lone caller therefore still gets the whole pool, while
concurrent callers — the per-model dispatch lanes of
:class:`~repro.serve.server.ModelServer` — split the pool between them and
execute their batches *simultaneously* instead of queueing on a global lock.

Failure model: a worker that dies mid-batch (OOM-killed, segfaulted,
``kill -9``) is detected through its broken pipe / liveness check, respawned
with a cold cache, and the affected shard is retried up to ``max_retries``
times.  Requests beyond the retry budget fail with a
:class:`~repro.exceptions.ServeError`; they never hang.  Worker-side Python
exceptions (corrupt registry entry, bad key) are not crashes: they propagate
back once, immediately, without a retry.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback

import numpy as np

from ..exceptions import ServeError
from ..runtime.batch import shard_slices
from ..runtime.registry import ModelHandle
from .cache import ModelCache

__all__ = ["ShardPool"]

#: Seconds between liveness checks while waiting on a worker's result.
_POLL_INTERVAL = 0.05


def _worker_main(conn, registry_root: str, cache_bytes: int,
                 fault_keys: frozenset[str], delay_s: float) -> None:
    """Worker loop: receive ``(job_id, key, rows)``, evaluate, send back.

    ``fault_keys`` is crash-injection instrumentation for the failure-path
    tests: serving a listed key terminates the process the way a segfault
    would (``os._exit``, no cleanup, no reply).  Respawned workers never
    inherit injections, which gives deterministic crash-once semantics.
    ``delay_s`` is latency-injection instrumentation for the dispatch-lane
    benchmark: every job stalls that long before evaluating, modelling the
    I/O / remote-shard latency that per-model lanes exist to hide.
    """
    cache = ModelCache(cache_bytes)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        if message is None:
            conn.close()
            return
        job_id, key, rows = message
        if key in fault_keys:
            os._exit(43)
        if delay_s > 0.0:
            time.sleep(delay_s)
        try:
            model = cache.get_or_load(key, ModelHandle(registry_root, key).load)
            outputs = model.evaluate(rows)
            conn.send((job_id, True, outputs))
        except Exception:   # noqa: BLE001 - workers must report, never crash
            conn.send((job_id, False, traceback.format_exc()))


class _Worker:
    __slots__ = ("process", "conn")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn


class ShardPool:
    """Fixed-size pool of model-serving worker processes.

    Parameters
    ----------
    registry_root:
        Directory of the :class:`~repro.runtime.registry.ModelRegistry` the
        workers load models from.
    n_workers:
        Worker process count (at least 1).
    cache_bytes:
        Byte budget of each worker's warm-model LRU cache.
    max_retries:
        Crash-retries per shard job before the batch fails.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (platform default
        when omitted; ``fork`` on Linux keeps worker start-up cheap).
    fault_injection:
        Test instrumentation: model keys whose service crashes the first
        worker that picks them up (see :func:`_worker_main`).
    delay_injection:
        Benchmark instrumentation: a per-job stall (seconds) in every
        worker, modelling remote-shard / I/O latency (see
        :func:`_worker_main`).  Unlike fault injection it survives respawns.
    """

    def __init__(self, registry_root, n_workers: int, cache_bytes: int = 256 << 20,
                 max_retries: int = 2, mp_context: str | None = None,
                 fault_injection=None, delay_injection: float = 0.0) -> None:
        if n_workers < 1:
            raise ServeError("ShardPool needs at least one worker")
        self.registry_root = str(registry_root)
        self.cache_bytes = int(cache_bytes)
        self.max_retries = int(max_retries)
        self._ctx = multiprocessing.get_context(mp_context)
        self._fault_keys = frozenset(fault_injection or ())
        self._delay_s = float(delay_injection)
        #: Worker leasing: each evaluate() call takes some exclusive subset
        #: of worker indices (every free one, at least one) and returns them
        #: when its batch is collected.  The condition's lock also guards the
        #: job-id sequence and the public counters.
        self._lease = threading.Condition()
        self._free: set[int] = set(range(int(n_workers)))
        self.respawns = 0
        self.retried_jobs = 0
        self._closed = False
        #: Monotonic job id; replies are matched against it so a batch
        #: abandoned mid-collection (crash, worker exception) can never leak
        #: its stale replies into the next batch's results.
        self._sequence = 0
        self._workers: list[_Worker] = [
            self._spawn(self._fault_keys) for _ in range(int(n_workers))]

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------ process mgmt
    def _spawn(self, fault_keys: frozenset[str]) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.registry_root, self.cache_bytes, fault_keys,
                  self._delay_s),
            daemon=True)
        process.start()
        child_conn.close()      # parent's copy; the worker holds the live end
        return _Worker(process, parent_conn)

    def _respawn(self, index: int) -> None:
        """Replace a dead worker with a fresh one (cold cache, no faults).

        Only ever called by the thread currently holding worker ``index``'s
        lease, so the slot mutation needs no extra locking.
        """
        worker = self._workers[index]
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        self._workers[index] = self._spawn(frozenset())
        with self._lease:
            self.respawns += 1

    # --------------------------------------------------------------- transport
    def _send(self, index: int, payload) -> bool:
        worker = self._workers[index]
        if not worker.process.is_alive():
            return False
        try:
            worker.conn.send(payload)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _recv(self, index: int, expect_id: int):
        """The reply for job ``expect_id``, or ``None`` if the worker died.

        Stale replies from previously abandoned batches are discarded.
        """
        worker = self._workers[index]
        while True:
            try:
                if worker.conn.poll(_POLL_INTERVAL):
                    reply = worker.conn.recv()
                    if reply[0] == expect_id:
                        return reply
                    continue        # stale reply from an abandoned batch
            except Exception:   # noqa: BLE001 - EOF/partial pickle = crash
                return None
            if not worker.process.is_alive():
                # Drain a reply that raced the death, then report the crash.
                try:
                    while worker.conn.poll(0):
                        reply = worker.conn.recv()
                        if reply[0] == expect_id:
                            return reply
                except Exception:   # noqa: BLE001
                    pass
                return None

    # ----------------------------------------------------------------- leasing
    def _acquire_workers(self, max_needed: int) -> list[int]:
        """Lease up to ``max_needed`` free worker indices (at least one).

        Blocks while no worker is free; raises once the pool is closed — a
        caller blocked here must not wait forever on workers that are being
        shut down.
        """
        with self._lease:
            while True:
                if self._closed:
                    raise ServeError("shard pool is closed")
                if self._free:
                    leased = sorted(self._free)[:max(1, max_needed)]
                    self._free.difference_update(leased)
                    return leased
                self._lease.wait()

    def _release_workers(self, leased: list[int]) -> None:
        with self._lease:
            self._free.update(leased)
            self._lease.notify_all()

    # --------------------------------------------------------------- execution
    def evaluate(self, key: str, inputs: np.ndarray,
                 max_workers: int | None = None) -> np.ndarray:
        """Evaluate a lock-step batch, sharded across leased workers.

        Returns outputs in the input's row order, bitwise-equal to a
        single-process :meth:`CompiledModel.evaluate
        <repro.runtime.compiled.CompiledModel.evaluate>` of the same array
        (the batch kernel is bitwise chunk-invariant, so the lease size
        never changes results).

        Thread-safe by leasing: each concurrent call owns a disjoint subset
        of workers (each pipe still has exactly one reader — the lease
        holder), so batches for different models execute simultaneously.
        ``max_workers`` caps this call's lease — a fair-share hint from the
        dispatch lanes so the first lane to dispatch cannot starve the
        others by grabbing the whole pool; a lone caller (no cap) leases
        every free worker.
        """
        if self._closed:
            raise ServeError("shard pool is closed")
        inputs = np.asarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[0] < 1:
            raise ServeError(f"shard batch must be (rows, n_steps); got {inputs.shape}")
        cap = inputs.shape[0]
        if max_workers is not None:
            cap = min(cap, max(1, int(max_workers)))
        leased = self._acquire_workers(cap)
        try:
            return self._evaluate_on(leased, key, inputs)
        finally:
            self._release_workers(leased)

    def _evaluate_on(self, leased: list[int], key: str,
                     inputs: np.ndarray) -> np.ndarray:
        slices = shard_slices(inputs.shape[0], len(leased))
        outputs = np.empty_like(inputs)
        pending = list(range(len(slices)))
        crashes = [0] * len(slices)
        while pending:
            dispatched: list[tuple[int, int]] = []
            spawn_failure: int | None = None
            for job in pending:
                job_id = self._dispatch(leased[job], key, inputs[slices[job]])
                if job_id is None:
                    spawn_failure = job
                    break
                dispatched.append((job, job_id))
            # Collect EVERY dispatched reply before acting on any failure:
            # abandoning an in-flight job would leave its worker blocked in a
            # send larger than the pipe buffer, and the next dispatch to that
            # worker would then deadlock against it.  Between rounds every
            # leased worker is idle and every leased pipe drained.
            pending = []
            failure: ServeError | None = None
            for job, job_id in dispatched:
                reply = self._recv(leased[job], job_id)
                if reply is None:           # crash: respawn, maybe retry
                    crashes[job] += 1
                    self._respawn(leased[job])
                    if crashes[job] > self.max_retries:
                        failure = failure or ServeError(
                            f"shard job for rows {slices[job]} of model "
                            f"{key[:12]}... crashed {crashes[job]} time(s); "
                            f"retry budget max_retries={self.max_retries} "
                            "exhausted")
                        continue
                    with self._lease:
                        self.retried_jobs += 1
                    pending.append(job)
                    continue
                _, ok, payload = reply
                if not ok:                  # worker-side exception: no retry
                    failure = failure or ServeError(
                        f"shard worker failed to evaluate model {key[:12]}...:"
                        f"\n{payload}")
                    continue
                outputs[slices[job]] = payload
            if spawn_failure is not None:
                failure = failure or ServeError(
                    f"shard worker for rows {slices[spawn_failure]} of model "
                    f"{key[:12]}... could not be (re)started")
            if failure is not None:
                raise failure
        return outputs

    # ----------------------------------------------------------------- control
    def _dispatch(self, worker_index: int, key: str, rows: np.ndarray) -> int | None:
        """Send one job (respawning a dead worker once); returns its job id."""
        with self._lease:
            self._sequence += 1
            job_id = self._sequence
        if self._send(worker_index, (job_id, key, rows)):
            return job_id
        self._respawn(worker_index)
        if self._send(worker_index, (job_id, key, rows)):
            return job_id
        return None

    def stats(self) -> dict:
        with self._lease:
            return {"n_workers": self.n_workers, "respawns": self.respawns,
                    "retried_jobs": self.retried_jobs,
                    "free_workers": len(self._free)}

    def close(self, timeout: float = 10.0) -> None:
        """Shut every worker down (idempotent).

        Outstanding leases are given ``timeout`` seconds to return their
        workers first, so a batch mid-collection is never raced for its
        pipe; callers blocked waiting for a lease are woken and fail with a
        "pool is closed" :class:`~repro.exceptions.ServeError`.
        """
        with self._lease:
            if self._closed:
                return
            self._closed = True
            self._lease.notify_all()
            deadline = time.monotonic() + timeout
            while len(self._free) < len(self._workers):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lease.wait(remaining)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:   # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:   # noqa: BLE001
            pass
