"""Shard pool: partition lock-step batches across warm worker processes.

Each worker process holds its own byte-budget LRU cache of compiled models,
loaded once from the registry (integrity-checked via
:class:`~repro.runtime.registry.ModelHandle`) and kept warm across batches —
only the stimulus rows and result rows cross the process boundary per batch.

**Zero-copy dataplane**: every worker owns a ``multiprocessing.shared_memory``
segment created by the pool.  Dispatch writes the shard's rows straight into
the worker's segment and the pipe carries only a ``(job_id, key, offsets,
shape)`` descriptor; the worker evaluates *in place* — the compiled kernel
writes its outputs directly into the segment (``evaluate_batch(out=...)``) —
and replies with another descriptor, so neither request rows nor result rows
are ever pickled.  A job too large for half the segment transparently falls
back to the original pickle-over-pipe transport; ``segment_bytes=0`` disables
the segments entirely.  Every job uses the same region (rows at offset 0,
results right after): a worker holds at most one job at a time, a respawned
worker gets a *fresh* segment (so a retried job can never alias a dead
job's bytes), and reusing the region keeps its pages warm — the kernel
faults them in once, not once per batch.

Sharding is the deterministic contiguous partition of
:func:`repro.runtime.batch.shard_slices`; because the batched kernel is
element-wise along the batch axis and bitwise chunk-invariant, reassembling
the shard results into the original row order reproduces the single-process
``evaluate`` bit for bit — for *any* number of shards, which is what lets
concurrent callers lease different worker subsets.

Concurrency model: workers are **leased per batch**.  An ``evaluate()`` call
takes every currently-free worker (at least one — it blocks while none are
free), shards its batch across exactly that lease, and returns the workers
on completion.  A lone caller therefore still gets the whole pool, while
concurrent callers — the per-model dispatch lanes of
:class:`~repro.serve.server.ModelServer` — split the pool between them and
execute their batches *simultaneously* instead of queueing on a global lock.

Failure model: a worker that dies mid-batch (OOM-killed, segfaulted,
``kill -9``) is detected through its broken pipe / liveness check, respawned
with a cold cache (and a fresh segment — the dead worker's is reclaimed),
and the affected shard is retried up to ``max_retries`` times.  A worker
that is *alive but wedged* is caught by the optional per-job deadline
(``job_timeout``): a job that misses it is treated exactly like a crash.
Requests beyond the retry budget fail with a
:class:`~repro.exceptions.ServeError`; they never hang.  Worker-side Python
exceptions (corrupt registry entry, bad key) are not crashes: they propagate
back once, immediately, without a retry.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import traceback
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..checks import lockwatch
from ..exceptions import ServeError
from ..runtime.batch import evaluate_batch, shard_slices
from ..runtime.registry import ModelHandle
from ..telemetry.events import JobTimedOut, WorkerCrashed, WorkerRespawned
from .cache import ModelCache

__all__ = ["ShardPool"]

#: Seconds between liveness checks while waiting on a worker's result.
_POLL_INTERVAL = 0.05

#: Stall-injection sleep: long enough to model "wedged forever" against any
#: realistic ``job_timeout`` without leaving a sleeping process behind should
#: termination somehow fail.
_STALL_SECONDS = 3600.0

# Transport descriptor tags (pipe messages stay tiny tuples, never arrays).
_SHM = "shm"
_PIPE = "pipe"


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach a worker to the pool-owned segment without adopting ownership.

    Attaching registers the segment with the process's resource tracker,
    which would try to unlink it at worker exit (and warn about a "leaked"
    segment the parent is still using).  Unregistering after the fact is
    wrong under the fork start method — the child shares the parent's
    tracker process, so the child's unregister would also cancel the
    parent's own registration.  Instead the registration is suppressed: the
    parent alone tracks the segment's lifetime.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _destroy_segment(segment: shared_memory.SharedMemory | None) -> None:
    """Release and unlink a pool-owned segment (tolerates double destruction)."""
    if segment is None:
        return
    try:
        segment.close()
    except (BufferError, OSError):
        pass
    try:
        segment.unlink()
    except (FileNotFoundError, OSError):
        pass


def _worker_main(conn, segment_name: str | None, registry_root: str,
                 cache_bytes: int, fault_keys: frozenset[str],
                 stall_keys: frozenset[str], delay_s: float) -> None:
    """Worker loop: receive a job descriptor, evaluate, reply with one.

    Shared-memory jobs arrive as ``(job_id, key, ("shm", in_off, out_off,
    shape))``: the rows live in the worker's segment at ``in_off`` and the
    kernel writes its outputs at ``out_off`` (``evaluate_batch(out=...)``),
    so the reply pipes back only ``(job_id, True, ("shm", out_off, shape),
    (t_start, eval_s, stage_out_s))`` — the trailing stage stamps feed the
    parent-materialised worker spans.  Oversized jobs arrive as ``(job_id,
    key, ("pipe", rows))`` and reply in kind — the pre-dataplane transport
    kept as the fallback.

    ``fault_keys`` is crash-injection instrumentation for the failure-path
    tests: serving a listed key terminates the process the way a segfault
    would (``os._exit``, no cleanup, no reply).  ``stall_keys`` is
    wedge-injection for the job-deadline tests: serving a listed key sleeps
    as if stuck in a deadlocked evaluate — alive, but never replying.
    Respawned workers never inherit either injection, which gives
    deterministic crash-once / stall-once semantics.  ``delay_s`` is
    latency-injection instrumentation for the dispatch-lane benchmark:
    every job stalls that long before evaluating, modelling the I/O /
    remote-shard latency that per-model lanes exist to hide.
    """
    segment = _attach_segment(segment_name) if segment_name else None
    cache = ModelCache(cache_bytes)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                return
            if message is None:
                conn.close()
                return
            job_id, key, descriptor = message
            if key in fault_keys:
                os._exit(43)
            if key in stall_keys:
                time.sleep(_STALL_SECONDS)
            if delay_s > 0.0:
                time.sleep(delay_s)
            try:
                # Stage stamps ride the reply descriptor as three floats
                # (t_start, eval_s, stage_out_s) on the shared Linux
                # CLOCK_MONOTONIC; the parent materialises the worker-side
                # spans from them, so the worker never needs (and per
                # REP106 must never capture) the tracer itself.
                t_job = time.monotonic()
                model = cache.get_or_load(
                    key, ModelHandle(registry_root, key).load)
                if descriptor[0] == _SHM:
                    _, in_off, out_off, shape = descriptor
                    rows = np.ndarray(shape, dtype=np.float64,
                                      buffer=segment.buf, offset=in_off)
                    out = np.ndarray(shape, dtype=np.float64,
                                     buffer=segment.buf, offset=out_off)
                    stamps: dict = {}
                    evaluate_batch(model, rows, out=out, timings=stamps)
                    del rows, out    # views must not pin segment.buf
                    out_s = stamps.get("stage_out_s", 0.0)
                    eval_s = max(0.0, time.monotonic() - t_job - out_s)
                    conn.send((job_id, True, (_SHM, out_off, shape),
                               (t_job, eval_s, out_s)))
                else:
                    outputs = model.evaluate(descriptor[1])
                    eval_s = time.monotonic() - t_job
                    conn.send((job_id, True, (_PIPE, outputs),
                               (t_job, eval_s, 0.0)))
            except Exception:   # noqa: BLE001 - workers must report, never crash
                conn.send((job_id, False, traceback.format_exc()))
    finally:
        if segment is not None:
            try:
                segment.close()
            except (BufferError, OSError):   # pragma: no cover - best effort
                pass


class _Worker:
    __slots__ = ("process", "conn", "segment")

    def __init__(self, process, conn, segment) -> None:
        self.process = process
        self.conn = conn
        #: Pool-owned shared-memory segment (None when the dataplane is off).
        self.segment = segment


class ShardPool:
    """Fixed-size pool of model-serving worker processes.

    Parameters
    ----------
    registry_root:
        Directory of the :class:`~repro.runtime.registry.ModelRegistry` the
        workers load models from.
    n_workers:
        Worker process count (at least 1).
    cache_bytes:
        Byte budget of each worker's warm-model LRU cache.
    max_retries:
        Crash-retries per shard job before the batch fails.
    mp_context:
        Optional :mod:`multiprocessing` start-method name (platform default
        when omitted; ``fork`` on Linux keeps worker start-up cheap).
    segment_bytes:
        Size of each worker's shared-memory dataplane segment.  A job needs
        two regions (rows in, results out); one larger than half the segment
        falls back to the pipe transport.  ``0`` disables the segments.
    job_timeout:
        Per-job deadline in seconds; a worker that holds a job longer is
        treated as crashed (respawned, retry budget charged).  ``0``
        disables the deadline.
    fault_injection:
        Test instrumentation: model keys whose service crashes the first
        worker that picks them up (see :func:`_worker_main`).
    stall_injection:
        Test instrumentation: model keys whose first service wedges the
        worker — alive but never replying — to exercise ``job_timeout``.
    delay_injection:
        Benchmark instrumentation: a per-job stall (seconds) in every
        worker, modelling remote-shard / I/O latency (see
        :func:`_worker_main`).  Unlike fault injection it survives respawns.
    broker:
        Optional :class:`~repro.telemetry.broker.TopicBroker` the pool
        publishes its failure-path events to (``WorkerCrashed``,
        ``JobTimedOut``, ``WorkerRespawned``); the server passes its own.
    tracer:
        Optional :class:`~repro.telemetry.spans.Tracer` for per-stage span
        attribution (lease, stage-in, worker evaluate/stage-out,
        reassembly).  Parent-side only: workers never receive it (REP106);
        their stage timings ride the reply descriptors instead.
    """

    def __init__(self, registry_root, n_workers: int, cache_bytes: int = 256 << 20,
                 max_retries: int = 2, mp_context: str | None = None,
                 segment_bytes: int = 64 << 20, job_timeout: float = 0.0,
                 fault_injection=None, stall_injection=None,
                 delay_injection: float = 0.0, broker=None,
                 tracer=None) -> None:
        if n_workers < 1:
            raise ServeError("ShardPool needs at least one worker")
        self.broker = broker
        self.tracer = tracer
        self.registry_root = str(registry_root)
        self.cache_bytes = int(cache_bytes)
        self.max_retries = int(max_retries)
        self.segment_bytes = max(0, int(segment_bytes))
        self.job_timeout = float(job_timeout)
        self._ctx = multiprocessing.get_context(mp_context)
        self._fault_keys = frozenset(fault_injection or ())
        self._stall_keys = frozenset(stall_injection or ())
        self._delay_s = float(delay_injection)
        #: Worker leasing: each evaluate() call takes some exclusive subset
        #: of worker indices (every free one, at least one) and returns them
        #: when its batch is collected.  The condition's lock also guards the
        #: job-id sequence and the public counters.
        self._lease = lockwatch.monitored_condition("serve.shards.lease")
        self._free: set[int] = set(range(int(n_workers)))
        self.respawns = 0
        self.retried_jobs = 0
        self.timed_out_jobs = 0
        self._closed = False
        #: Monotonic job id; replies are matched against it so a batch
        #: abandoned mid-collection (crash, worker exception) can never leak
        #: its stale replies into the next batch's results.
        self._sequence = 0
        self._workers: list[_Worker] = [
            self._spawn(self._fault_keys, self._stall_keys)
            for _ in range(int(n_workers))]

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    # ------------------------------------------------------------ process mgmt
    def _spawn(self, fault_keys: frozenset[str],
               stall_keys: frozenset[str]) -> _Worker:
        segment = (shared_memory.SharedMemory(create=True,
                                              size=self.segment_bytes)
                   if self.segment_bytes > 0 else None)
        parent_conn, child_conn = self._ctx.Pipe()
        try:
            process = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, segment.name if segment else None,
                      self.registry_root, self.cache_bytes, fault_keys,
                      stall_keys, self._delay_s),
                daemon=True)
            process.start()
        except BaseException:
            _destroy_segment(segment)
            raise
        child_conn.close()      # parent's copy; the worker holds the live end
        return _Worker(process, parent_conn, segment)

    def _respawn(self, index: int) -> None:
        """Replace a dead (or wedged) worker with a fresh one.

        The fresh worker starts with a cold cache, no injections, and a new
        shared segment — the old segment is reclaimed here, so a worker
        killed while holding shm regions can never strand kernel memory or
        leave reassembly pointing at an unlinked segment.

        Only ever called by the thread currently holding worker ``index``'s
        lease, so the slot mutation needs no extra locking.  Refuses once
        the pool is closed: ``close()`` joins the workers it knows about,
        and a lease holder racing it must not spawn processes (or segments)
        that nobody would ever reap.
        """
        with self._lease:
            if self._closed:
                raise ServeError(
                    "shard pool is closed; refusing to respawn a worker "
                    "after close() — the replacement would outlive the pool")
        worker = self._workers[index]
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5.0)
        if worker.process.is_alive():   # pragma: no cover - SIGTERM ignored
            worker.process.kill()
            worker.process.join(timeout=5.0)
        _destroy_segment(worker.segment)
        worker.segment = None
        self._workers[index] = self._spawn(frozenset(), frozenset())
        with self._lease:
            self.respawns += 1
        if self.broker:
            self.broker.publish(WorkerRespawned(worker_index=index))

    # --------------------------------------------------------------- transport
    def _place_job(self, index: int, key: str, job_id: int,
                   rows: np.ndarray):
        """Build one job message, staging the rows in shared memory.

        Copies ``rows`` into the worker's segment (the only copy on the
        dispatch side — the worker reads and writes the segment in place)
        and returns a descriptor-only pipe message.  Falls back to the
        pickle-over-pipe transport when the job would not fit twice (rows in
        + results out) in the segment.

        The region is always the front of the segment: a worker holds at
        most one job at a time, and a crashed or timed-out worker is
        respawned with a fresh segment before any retry, so reuse can never
        alias a dead job's bytes — while keeping the pages warm across
        batches instead of faulting fresh ones per job.
        """
        worker = self._workers[index]
        nbytes = rows.nbytes
        if worker.segment is None or 2 * nbytes > worker.segment.size:
            return (job_id, key, (_PIPE, rows))
        in_off, out_off = 0, nbytes
        staged = np.ndarray(rows.shape, dtype=np.float64,
                            buffer=worker.segment.buf, offset=in_off)
        staged[:] = rows
        del staged                       # views must not pin segment.buf
        return (job_id, key, (_SHM, in_off, out_off, rows.shape))

    def _send(self, index: int, payload) -> bool:
        worker = self._workers[index]
        if not worker.process.is_alive():
            return False
        try:
            worker.conn.send(payload)
            return True
        except (BrokenPipeError, OSError):
            return False

    def _recv(self, index: int, expect_id: int):
        """``(reply, None)`` for job ``expect_id``, or ``(None, reason)``.

        ``reason`` is ``"crash"`` for a worker that died and ``"timeout"``
        for one that is alive but has held the job past ``job_timeout`` —
        the caller treats both identically for recovery (respawn, charge the
        retry budget) and only uses the reason to publish the right
        telemetry event: a wedged worker must never hang a lane.  Stale
        replies from previously abandoned batches are discarded.
        """
        worker = self._workers[index]
        deadline = (time.monotonic() + self.job_timeout
                    if self.job_timeout > 0.0 else None)
        while True:
            try:
                if worker.conn.poll(_POLL_INTERVAL):
                    reply = worker.conn.recv()
                    if reply[0] == expect_id:
                        return reply, None
                    continue        # stale reply from an abandoned batch
            except Exception:   # repro: allow[REP104] EOF/partial pickle means the worker died; surfaced as a crash result
                return None, "crash"
            if not worker.process.is_alive():
                # Drain a reply that raced the death, then report the crash.
                try:
                    while worker.conn.poll(0):
                        reply = worker.conn.recv()
                        if reply[0] == expect_id:
                            return reply, None
                except Exception:   # repro: allow[REP104] draining a dead worker's pipe is best-effort; crash is reported below
                    pass
                return None, "crash"
            if deadline is not None and time.monotonic() >= deadline:
                with self._lease:
                    self.timed_out_jobs += 1
                return None, "timeout"  # alive but wedged: treat as a crash

    # ----------------------------------------------------------------- leasing
    def _acquire_workers(self, max_needed: int) -> list[int]:
        """Lease up to ``max_needed`` free worker indices (at least one).

        Blocks while no worker is free; raises once the pool is closed — a
        caller blocked here must not wait forever on workers that are being
        shut down.
        """
        with self._lease:
            while True:
                if self._closed:
                    raise ServeError("shard pool is closed")
                if self._free:
                    leased = sorted(self._free)[:max(1, max_needed)]
                    self._free.difference_update(leased)
                    return leased
                self._lease.wait()

    def _release_workers(self, leased: list[int]) -> None:
        with self._lease:
            self._free.update(leased)
            self._lease.notify_all()

    # --------------------------------------------------------------- execution
    def evaluate(self, key: str, inputs: np.ndarray,
                 max_workers: int | None = None,
                 trace_ids=None) -> np.ndarray:
        """Evaluate a lock-step batch, sharded across leased workers.

        Returns outputs in the input's row order, bitwise-equal to a
        single-process :meth:`CompiledModel.evaluate
        <repro.runtime.compiled.CompiledModel.evaluate>` of the same array
        (the batch kernel is bitwise chunk-invariant, so neither the lease
        size nor the transport — shared segment or pipe fallback — changes
        results).

        Thread-safe by leasing: each concurrent call owns a disjoint subset
        of workers (each pipe still has exactly one reader — the lease
        holder), so batches for different models execute simultaneously.
        ``max_workers`` caps this call's lease — a fair-share hint from the
        dispatch lanes so the first lane to dispatch cannot starve the
        others by grabbing the whole pool; a lone caller (no cap) leases
        every free worker.  ``trace_ids`` (one per input row, in row order)
        only feeds telemetry: failure events name exactly the requests that
        were riding on the affected shard.
        """
        if self._closed:
            raise ServeError("shard pool is closed")
        inputs = np.ascontiguousarray(inputs, dtype=float)
        if inputs.ndim != 2 or inputs.shape[0] < 1:
            raise ServeError(f"shard batch must be (rows, n_steps); got {inputs.shape}")
        cap = inputs.shape[0]
        if max_workers is not None:
            cap = min(cap, max(1, int(max_workers)))
        t_lease = time.monotonic()
        leased = self._acquire_workers(cap)
        tracer = self.tracer
        if tracer and trace_ids is not None:
            lease_s = time.monotonic() - t_lease
            leases = tracer.batch()
            for trace_id in trace_ids:
                if tracer.sampled(trace_id):
                    leases.add("shard_lease", trace_id, t_lease, lease_s,
                               parent="serve_execute")
            leases.flush()
        try:
            return self._evaluate_on(leased, key, inputs, trace_ids)
        finally:
            self._release_workers(leased)

    def _shard_traces(self, trace_ids, shard_slice) -> tuple:
        if trace_ids is None:
            return ()
        return tuple(trace_ids[shard_slice])

    def _evaluate_on(self, leased: list[int], key: str,
                     inputs: np.ndarray, trace_ids=None) -> np.ndarray:
        slices = shard_slices(inputs.shape[0], len(leased))
        outputs = np.empty_like(inputs)
        pending = list(range(len(slices)))
        crashes = [0] * len(slices)
        tracer = self.tracer if (self.tracer and trace_ids is not None) \
            else None
        # One span batch for the whole evaluation: the parent-materialised
        # shard/worker stages publish in a single broker hop per call
        # instead of one per span (flushed on failure too, so the spans of
        # crashed-then-retried attempts survive an exhausted retry budget).
        closing = tracer.batch() if tracer is not None else None
        while pending:
            dispatched: list[tuple[int, int]] = []
            spawn_failure: int | None = None
            for job in pending:
                t_stage = time.monotonic()
                job_id = self._dispatch(leased[job], key, inputs[slices[job]])
                if tracer is not None:
                    # Stage-in covers staging the shard's rows into the
                    # worker's segment plus the descriptor send; a retried
                    # job re-emits it, so retry attempts show up as sibling
                    # spans under the same parent.
                    stage_s = time.monotonic() - t_stage
                    for trace_id in self._shard_traces(trace_ids,
                                                       slices[job]):
                        if tracer.sampled(trace_id):
                            closing.add("shard_stage_in", trace_id, t_stage,
                                        stage_s, parent="serve_execute",
                                        worker_index=leased[job])
                if job_id is None:
                    spawn_failure = job
                    break
                dispatched.append((job, job_id))
            # Collect EVERY dispatched reply before acting on any failure:
            # abandoning an in-flight job would leave its worker blocked in a
            # send larger than the pipe buffer, and the next dispatch to that
            # worker would then deadlock against it.  Between rounds every
            # leased worker is idle and every leased pipe drained.
            pending = []
            failure: ServeError | None = None
            for job, job_id in dispatched:
                reply, reason = self._recv(leased[job], job_id)
                if reply is None:           # crash/wedge: respawn, maybe retry
                    if self.broker:
                        shard_traces = self._shard_traces(trace_ids,
                                                          slices[job])
                        if reason == "timeout":
                            self.broker.publish(JobTimedOut(
                                worker_index=leased[job], key=key,
                                timeout_s=self.job_timeout,
                                trace_ids=shard_traces))
                        else:
                            self.broker.publish(WorkerCrashed(
                                worker_index=leased[job], key=key,
                                trace_ids=shard_traces))
                    crashes[job] += 1
                    self._respawn(leased[job])
                    if crashes[job] > self.max_retries:
                        failure = failure or ServeError(
                            f"shard job for rows {slices[job]} of model "
                            f"{key[:12]}... crashed {crashes[job]} time(s); "
                            f"retry budget max_retries={self.max_retries} "
                            "exhausted")
                        continue
                    with self._lease:
                        self.retried_jobs += 1
                    pending.append(job)
                    continue
                _, ok, payload = reply[:3]
                if not ok:                  # worker-side exception: no retry
                    failure = failure or ServeError(
                        f"shard worker failed to evaluate model {key[:12]}...:"
                        f"\n{payload}")
                    continue
                shard_traces = (tuple(
                    trace_id
                    for trace_id in self._shard_traces(trace_ids, slices[job])
                    if tracer.sampled(trace_id))
                    if tracer is not None else ())
                if tracer is not None and len(reply) > 3:
                    # Materialise the worker-side spans from the stamped
                    # timings (same CLOCK_MONOTONIC, different process).
                    t_job, eval_s, out_s = reply[3]
                    for trace_id in shard_traces:
                        closing.add("worker_evaluate", trace_id, t_job,
                                    eval_s, parent="serve_execute",
                                    worker_index=leased[job])
                        closing.add("worker_stage_out", trace_id,
                                    t_job + eval_s, out_s,
                                    parent="serve_execute",
                                    worker_index=leased[job])
                t_reassemble = time.monotonic()
                if payload[0] == _SHM:
                    _, out_off, shape = payload
                    segment = self._workers[leased[job]].segment
                    view = np.ndarray(shape, dtype=np.float64,
                                      buffer=segment.buf, offset=out_off)
                    outputs[slices[job]] = view
                    del view                 # must not pin segment.buf
                else:
                    outputs[slices[job]] = payload[1]
                if tracer is not None:
                    reassemble_s = time.monotonic() - t_reassemble
                    for trace_id in shard_traces:
                        closing.add("serve_reassemble", trace_id,
                                    t_reassemble, reassemble_s,
                                    parent="serve_execute",
                                    worker_index=leased[job])
            if spawn_failure is not None:
                failure = failure or ServeError(
                    f"shard worker for rows {slices[spawn_failure]} of model "
                    f"{key[:12]}... could not be (re)started")
            if failure is not None:
                if closing is not None:
                    closing.flush()
                raise failure
        if closing is not None:
            closing.flush()
        return outputs

    # ----------------------------------------------------------------- control
    def _dispatch(self, worker_index: int, key: str, rows: np.ndarray) -> int | None:
        """Send one job (respawning a dead worker once); returns its job id."""
        with self._lease:
            self._sequence += 1
            job_id = self._sequence
        if self._send(worker_index, self._place_job(worker_index, key, job_id,
                                                    rows)):
            return job_id
        # Dead before the job even reached it — no rows were riding on it
        # yet, so the crash event names the worker and key but no traces.
        if self.broker:
            self.broker.publish(WorkerCrashed(worker_index=worker_index,
                                              key=key))
        self._respawn(worker_index)
        # The respawned worker owns a fresh segment: re-stage the rows.
        if self._send(worker_index, self._place_job(worker_index, key, job_id,
                                                    rows)):
            return job_id
        return None

    def stats(self) -> dict:
        with self._lease:
            return {"n_workers": self.n_workers, "respawns": self.respawns,
                    "retried_jobs": self.retried_jobs,
                    "timed_out_jobs": self.timed_out_jobs,
                    "segment_bytes": self.segment_bytes,
                    "free_workers": len(self._free)}

    def close(self, timeout: float = 10.0) -> None:
        """Shut every worker down and reclaim the segments (idempotent).

        Outstanding leases are given ``timeout`` seconds to return their
        workers first, so a batch mid-collection is never raced for its
        pipe; callers blocked waiting for a lease are woken and fail with a
        "pool is closed" :class:`~repro.exceptions.ServeError`, and a lease
        holder that hits a crash after this point cannot respawn (see
        :meth:`_respawn`) — no worker process can outlive the close.
        """
        with self._lease:
            if self._closed:
                return
            self._closed = True
            self._lease.notify_all()
            deadline = time.monotonic() + timeout
            while len(self._free) < len(self._workers):
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._lease.wait(remaining)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5.0)
            try:
                worker.conn.close()
            except OSError:
                pass
            _destroy_segment(worker.segment)
            worker.segment = None

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:   # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:   # repro: allow[REP104] __del__ during interpreter teardown must never raise
            pass
