"""Linear-solver backends with LU-factor caching for the MNA analyses.

The Newton iterations of the DC and transient analyses solve a long sequence
of linear systems whose matrices differ only slightly from one another (and,
for linear circuits with a fixed time step, not at all).  The
:class:`FactorizationCache` exploits that: it keeps the LU factors of the last
factorised matrix and re-uses them — a *modified Newton* bypass — as long as
the matrix entries have drifted less than a relative tolerance since the
factorisation.  Convergence is unaffected because the Newton residual is
always evaluated exactly; a stale factor only changes the search direction.

Both dense matrices (``scipy.linalg.lu_factor``) and sparse CSC matrices
(``scipy.sparse.linalg.splu``) are supported; since the compiled assembly
(:mod:`repro.circuit.assembly`) emits every Jacobian on one shared sparsity
pattern, the drift check reduces to a vector comparison of the CSC data
arrays.
"""

from __future__ import annotations

import warnings

import numpy as np
import scipy.linalg as _sla
import scipy.sparse as _sp
import scipy.sparse.linalg as _spla

from ..exceptions import SingularMatrixError

__all__ = ["FactorizationCache", "batched_transfer", "solve_linear"]


class FactorizationCache:
    """Caches LU factors and re-uses them while the matrix barely changes.

    Parameters
    ----------
    reuse_tolerance:
        Maximum relative drift ``max|A - A_factored| / max|A_factored|`` for
        which the cached factors are still used.  ``0.0`` re-uses factors only
        for bit-identical matrices (which still pays off handsomely for linear
        circuits, whose Jacobian is constant across a whole transient).
    singular_threshold:
        A dense factorisation whose smallest pivot magnitude falls at or below
        this value raises :class:`SingularMatrixError`.
    drift_indices:
        Optional *per-block* drift metric: positions (into the CSC ``data``
        vector, or flat indices into the raveled dense matrix) of the entries
        whose drift should be compared — in the MNA analyses, the entries
        that nonlinear devices stamp.  Both the drift and its reference scale
        are then measured over this block only, so the tolerance is relative
        to the nonlinear entries' own magnitude rather than to the largest
        (often linear) entry of the whole matrix.  This is what makes a
        modified-Newton ``reuse_tolerance`` meaningful on large mostly-linear
        systems.  Callers are responsible for :meth:`invalidate` when entries
        *outside* the block change for structural reasons (e.g. the
        ``G + (2/dt) C`` combination after a time-step change).

    Attributes
    ----------
    factorizations / reuses / solves / invalidations:
        Counters for benchmarking, tests and the engine profile
        (:class:`~repro.telemetry.events.EngineProfile`).
    reused_last:
        Whether the most recent :meth:`solve` used stale (cached) factors.
    """

    def __init__(self, reuse_tolerance: float = 0.0,
                 singular_threshold: float = 0.0,
                 drift_indices: np.ndarray | None = None) -> None:
        if reuse_tolerance < 0.0:
            raise ValueError("reuse_tolerance must be non-negative")
        self.reuse_tolerance = float(reuse_tolerance)
        self.singular_threshold = float(singular_threshold)
        self.drift_indices = (None if drift_indices is None
                              else np.unique(np.asarray(drift_indices, dtype=np.intp)))
        self.factorizations = 0
        self.reuses = 0
        self.solves = 0
        self.invalidations = 0
        self.reused_last = False
        self._force_refactor = False
        self._sparse: bool | None = None
        self._data: np.ndarray | None = None
        self._lu = None          # splu object (sparse) or (lu, piv) (dense)

    # ----------------------------------------------------------------- control
    def invalidate(self) -> None:
        """Force a refactorisation on the next :meth:`solve` (counted)."""
        self.invalidations += 1
        self._force_refactor = True

    def clear(self) -> None:
        """Drop the cached factors entirely."""
        self._data = None
        self._lu = None
        self._sparse = None
        self._force_refactor = False

    # ------------------------------------------------------------------ solve
    def solve(self, matrix, rhs: np.ndarray) -> np.ndarray:
        """Solve ``matrix @ x = rhs``, re-using cached factors when possible."""
        self.solves += 1
        sparse = _sp.issparse(matrix)
        data = matrix.data if sparse else np.asarray(matrix)

        if self._can_reuse(sparse, data):
            self.reuses += 1
            self.reused_last = True
            return self._apply(rhs)

        self._factorize(matrix, sparse, data)
        self.reused_last = False
        return self._apply(rhs)

    # --------------------------------------------------------------- internals
    def _can_reuse(self, sparse: bool, data: np.ndarray) -> bool:
        if self._lu is None or self._force_refactor or sparse != self._sparse:
            self._force_refactor = False
            return False
        cached = self._data
        if cached is None or cached.shape != data.shape:
            return False
        idx = self.drift_indices
        if idx is not None:
            if idx.size == 0:
                # Purely linear block set: entries only move for structural
                # reasons the caller signals through invalidate().
                return True
            flat = data.reshape(-1)
            if idx[-1] >= flat.size:          # mask built for another pattern
                return False
            cflat = cached.reshape(-1)
            drift = float(np.max(np.abs(flat[idx] - cflat[idx])))
            scale = float(np.max(np.abs(cflat[idx])))
        else:
            drift = float(np.max(np.abs(data - cached))) if data.size else 0.0
            scale = float(np.max(np.abs(cached))) if cached.size else 0.0
        return drift <= self.reuse_tolerance * scale

    def _factorize(self, matrix, sparse: bool, data: np.ndarray) -> None:
        self.factorizations += 1
        self._sparse = sparse
        self._data = np.array(data, copy=True)
        if sparse:
            try:
                self._lu = _spla.splu(_sp.csc_matrix(matrix))
            except RuntimeError as exc:  # "Factor is exactly singular"
                self._lu = None
                raise SingularMatrixError(f"sparse LU factorisation failed: {exc}") from exc
        else:
            with warnings.catch_warnings():
                # Singular probes are routine during gmin/source stepping; the
                # pivot check below raises a typed error, so the LinAlgWarning
                # scipy emits alongside it is pure noise.
                warnings.simplefilter("ignore", _sla.LinAlgWarning)
                lu, piv = _sla.lu_factor(matrix, check_finite=False)
            pivots = np.abs(np.diag(lu))
            if pivots.size and np.nanmin(pivots) <= self.singular_threshold:
                self._lu = None
                raise SingularMatrixError(
                    "dense LU factorisation produced a zero pivot (singular matrix)")
            self._lu = (lu, piv)

    def _apply(self, rhs: np.ndarray) -> np.ndarray:
        if self._sparse:
            return self._lu.solve(rhs)
        lu, piv = self._lu
        return _sla.lu_solve((lu, piv), rhs, check_finite=False)


def batched_transfer(g_mat: np.ndarray, c_mat: np.ndarray, s_values: np.ndarray,
                     input_matrix: np.ndarray, output_matrix: np.ndarray,
                     max_chunk_bytes: int = 64 << 20) -> np.ndarray:
    """``D^T (G + s C)^{-1} B`` for every ``s``, via batched LAPACK solves.

    The frequency axis is chunked so the transient ``(chunk, n, n)`` complex
    stack stays below ``max_chunk_bytes`` — large densified systems would
    otherwise multiply their peak memory by the full frequency count.
    Returns shape ``(len(s_values), n_outputs, n_inputs)``.  Raises
    ``numpy.linalg.LinAlgError`` if any system in the batch is singular.
    """
    n = g_mat.shape[0]
    rhs_full = input_matrix.astype(complex)
    chunk = max(1, int(max_chunk_bytes // max(16 * n * n, 1)))
    result = np.empty((s_values.size, output_matrix.shape[1], input_matrix.shape[1]),
                      dtype=complex)
    for start in range(0, s_values.size, chunk):
        s_chunk = s_values[start:start + chunk]
        systems = g_mat[None, :, :] + s_chunk[:, None, None] * c_mat[None, :, :]
        rhs = np.broadcast_to(rhs_full, (s_chunk.size,) + rhs_full.shape)
        solved = np.linalg.solve(systems, rhs)
        result[start:start + chunk] = np.einsum("no,fni->foi", output_matrix, solved)
    return result


def solve_linear(matrix, rhs: np.ndarray) -> np.ndarray:
    """One-shot linear solve for dense or sparse matrices.

    Raises :class:`SingularMatrixError` on singular input, mirroring the
    behaviour of the Newton iteration's legacy ``np.linalg.solve`` path.
    """
    if _sp.issparse(matrix):
        try:
            return _spla.splu(_sp.csc_matrix(matrix)).solve(rhs)
        except RuntimeError as exc:
            raise SingularMatrixError(f"sparse LU factorisation failed: {exc}") from exc
    try:
        return np.linalg.solve(matrix, rhs)
    except np.linalg.LinAlgError as exc:
        raise SingularMatrixError("singular dense system matrix") from exc
