"""SPICE-like text netlist parser.

The paper's flow starts "from the netlist of a nonlinear analog circuit", so
this module provides a small SPICE-dialect reader that covers the element
types of the device library.  Supported card types::

    R<name> n+ n- value
    C<name> n+ n- value
    L<name> n+ n- value
    V<name> n+ n- [DC value | SIN(off amp freq [delay phase]) | PULSE(...)] [INPUT]
    I<name> n+ n- [DC value | SIN(...)] [INPUT]
    D<name> n+ n- model
    M<name> nd ng ns nb model [W=value] [L=value]
    E<name> n+ n- nc+ nc- gain            (VCVS)
    G<name> n+ n- nc+ nc- gm              (VCCS)
    .model <name> <NMOS|PMOS|D> (param=value ...)
    .output <name> n+ [n-]
    .title / * comments / .end

Values understand engineering suffixes (``10k``, ``2.5u``, ``1meg``).  The
``INPUT`` flag on a V/I card marks it as a circuit input (a column of the
``B`` matrix used by the TFT extraction).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..exceptions import NetlistParseError
import functools

from ..units import parse_value as _parse_value

# Netlist tokens keep classic case-insensitive SPICE semantics ("1M" = 1 milli);
# the SI-style uppercase-M-as-mega reading is for report round-trips only.
parse_value = functools.partial(_parse_value, strict_spice=True)
from .devices import MOSFETParams
from .netlist import Circuit
from .waveforms import DC, Pulse, Sine, Waveform

__all__ = ["parse_netlist", "ModelCard"]


@dataclass
class ModelCard:
    """A ``.model`` card: model name, type and parameter dictionary."""

    name: str
    kind: str
    parameters: dict[str, float] = field(default_factory=dict)


_PAREN_RE = re.compile(r"\(([^)]*)\)")


def _strip_comment(line: str) -> str:
    for marker in (";", "$"):
        if marker in line:
            line = line.split(marker, 1)[0]
    return line.strip()


def _join_continuations(lines: list[str]) -> list[tuple[int, str]]:
    """Merge SPICE ``+`` continuation lines, keeping original line numbers."""
    merged: list[tuple[int, str]] = []
    for number, raw in enumerate(lines, start=1):
        line = _strip_comment(raw)
        if not line or line.startswith("*"):
            continue
        if line.startswith("+"):
            if not merged:
                raise NetlistParseError("continuation line with nothing to continue",
                                        number, raw)
            prev_number, prev_line = merged[-1]
            merged[-1] = (prev_number, prev_line + " " + line[1:].strip())
        else:
            merged.append((number, line))
    return merged


def _parse_source_value(tokens: list[str], line_number: int, line: str) -> tuple[Waveform, bool]:
    """Parse the value part of a V/I card; returns (waveform, is_input)."""
    text = " ".join(tokens)
    is_input = False
    if re.search(r"\bINPUT\b", text, flags=re.IGNORECASE):
        is_input = True
        text = re.sub(r"\bINPUT\b", "", text, flags=re.IGNORECASE).strip()
    if not text:
        return DC(0.0), is_input

    upper = text.upper()
    if upper.startswith("SIN"):
        match = _PAREN_RE.search(text)
        if not match:
            raise NetlistParseError("malformed SIN() specification", line_number, line)
        args = [parse_value(tok) for tok in match.group(1).split()]
        if len(args) < 3:
            raise NetlistParseError("SIN() needs offset, amplitude and frequency",
                                    line_number, line)
        offset, amplitude, frequency = args[:3]
        delay = args[3] if len(args) > 3 else 0.0
        phase = args[4] if len(args) > 4 else 0.0
        return Sine(offset=offset, amplitude=amplitude, frequency=frequency,
                    delay=delay, phase=phase), is_input
    if upper.startswith("PULSE"):
        match = _PAREN_RE.search(text)
        if not match:
            raise NetlistParseError("malformed PULSE() specification", line_number, line)
        args = [parse_value(tok) for tok in match.group(1).split()]
        if len(args) < 7:
            raise NetlistParseError(
                "PULSE() needs v1 v2 delay rise fall width period", line_number, line)
        v1, v2, delay, rise, fall, width, period = args[:7]
        return Pulse(initial=v1, pulsed=v2, delay=delay, rise=rise,
                     fall=fall, width=width, period=period), is_input
    if upper.startswith("DC"):
        remainder = text[2:].strip()
        return DC(parse_value(remainder) if remainder else 0.0), is_input
    return DC(parse_value(text)), is_input


def _parse_model_card(tokens: list[str], line_number: int, line: str) -> ModelCard:
    if len(tokens) < 3:
        raise NetlistParseError(".model needs a name and a type", line_number, line)
    name, kind = tokens[1], tokens[2].upper()
    param_text = " ".join(tokens[3:])
    param_text = param_text.strip().lstrip("(").rstrip(")")
    parameters: dict[str, float] = {}
    for assignment in re.split(r"[\s,]+", param_text):
        if not assignment:
            continue
        if "=" not in assignment:
            raise NetlistParseError(f"malformed model parameter {assignment!r}",
                                    line_number, line)
        key, value = assignment.split("=", 1)
        parameters[key.strip().lower()] = parse_value(value.strip())
    return ModelCard(name=name, kind=kind, parameters=parameters)


def _mosfet_params(card: ModelCard, width: float | None, length: float | None) -> MOSFETParams:
    p = card.parameters
    return MOSFETParams(
        width=width if width is not None else p.get("w", 1e-6),
        length=length if length is not None else p.get("l", 0.13e-6),
        kp=p.get("kp", 300e-6),
        vto=abs(p.get("vto", 0.35)),
        lam=p.get("lambda", 0.15),
        cox=p.get("cox", 8e-3),
        cgs_overlap=p.get("cgso", 0.3e-9),
        cgd_overlap=p.get("cgdo", 0.3e-9),
        cjd=p.get("cjd", 1e-15),
        cjs=p.get("cjs", 1e-15),
    )


def parse_netlist(text: str, name: str | None = None) -> Circuit:
    """Parse a SPICE-like netlist string into a :class:`Circuit`."""
    lines = text.splitlines()
    cards = _join_continuations(lines)
    circuit_name = name or "netlist"

    # First pass: collect .model cards and the title.
    models: dict[str, ModelCard] = {}
    element_cards: list[tuple[int, str]] = []
    for line_number, line in cards:
        tokens = line.split()
        keyword = tokens[0].lower()
        if keyword == ".title":
            circuit_name = " ".join(tokens[1:]) or circuit_name
        elif keyword == ".model":
            card = _parse_model_card(tokens, line_number, line)
            models[card.name.lower()] = card
        elif keyword == ".end":
            break
        else:
            element_cards.append((line_number, line))

    circuit = Circuit(circuit_name)

    for line_number, line in element_cards:
        tokens = line.split()
        head = tokens[0]
        kind = head[0].upper()
        try:
            if kind == "R":
                circuit.resistor(head, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "C":
                circuit.capacitor(head, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind == "L":
                circuit.inductor(head, tokens[1], tokens[2], parse_value(tokens[3]))
            elif kind in ("V", "I"):
                waveform, is_input = _parse_source_value(tokens[3:], line_number, line)
                if kind == "V":
                    circuit.voltage_source(head, tokens[1], tokens[2], waveform,
                                           is_input=is_input)
                else:
                    circuit.current_source(head, tokens[1], tokens[2], waveform,
                                           is_input=is_input)
            elif kind == "D":
                card = models.get(tokens[3].lower()) if len(tokens) > 3 else None
                params = card.parameters if card else {}
                circuit.diode(head, tokens[1], tokens[2],
                              saturation_current=params.get("is", 1e-14),
                              emission_coefficient=params.get("n", 1.0),
                              junction_capacitance=params.get("cjo", 0.0),
                              junction_potential=params.get("vj", 0.8),
                              grading_coefficient=params.get("m", 0.5),
                              transit_time=params.get("tt", 0.0))
            elif kind == "M":
                if len(tokens) < 6:
                    raise NetlistParseError("MOSFET card needs 4 nodes and a model",
                                            line_number, line)
                model_name = tokens[5].lower()
                if model_name not in models:
                    raise NetlistParseError(f"unknown MOSFET model {tokens[5]!r}",
                                            line_number, line)
                card = models[model_name]
                width = length = None
                for extra in tokens[6:]:
                    if "=" not in extra:
                        continue
                    key, value = extra.split("=", 1)
                    if key.lower() == "w":
                        width = parse_value(value)
                    elif key.lower() == "l":
                        length = parse_value(value)
                params = _mosfet_params(card, width, length)
                if card.kind == "PMOS":
                    circuit.pmos(head, tokens[1], tokens[2], tokens[3], tokens[4], params=params)
                else:
                    circuit.nmos(head, tokens[1], tokens[2], tokens[3], tokens[4], params=params)
            elif kind == "E":
                from .devices import VCVS
                circuit.add(VCVS(head, tokens[1], tokens[2], tokens[3], tokens[4],
                                 parse_value(tokens[5])))
            elif kind == "G":
                from .devices import VCCS
                circuit.add(VCCS(head, tokens[1], tokens[2], tokens[3], tokens[4],
                                 parse_value(tokens[5])))
            elif head.lower() == ".output":
                negative = tokens[3] if len(tokens) > 3 else "0"
                circuit.add_output(tokens[1], tokens[2], negative)
            else:
                raise NetlistParseError(f"unsupported card {head!r}", line_number, line)
        except NetlistParseError:
            raise
        except (IndexError, ValueError) as exc:
            raise NetlistParseError(f"malformed card: {exc}", line_number, line) from exc

    return circuit
