"""Nonlinear transient analysis with Jacobian-snapshot capture.

The transient solver integrates the MNA descriptor system

.. math:: \\frac{d}{dt} q(v) + i(v) = B u(t) + b_{fixed}(t)

with backward Euler or the trapezoidal rule, solving a damped Newton iteration
at every time step.  Whenever a step is accepted the solver can hand the
already-evaluated Jacobians ``G(t_k)`` and ``C(t_k)`` to a *snapshot callback*
— this is the reproduction of the paper's "subsequent snapshots of the
internal circuit Jacobian are sampled during time-domain analysis" and is what
feeds the Transfer Function Trajectory extraction.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol

import numpy as np

from ..exceptions import ConvergenceError, SingularMatrixError
from .assembly import select_engine
from .dc import DCOptions, dc_operating_point
from .linalg import FactorizationCache
from .mna import MNASystem
from .newton import NewtonOptions, newton_solve

__all__ = ["TransientOptions", "TransientResult", "SnapshotCallback", "transient_analysis"]


class SnapshotCallback(Protocol):
    """Interface of the per-step snapshot recorder.

    ``record`` is called once per accepted time step with the time, solution,
    input vector, output vector and the static/dynamic Jacobians evaluated at
    the accepted solution.
    """

    def record(self, t: float, v: np.ndarray, u: np.ndarray, y: np.ndarray,
               g_matrix: np.ndarray, c_matrix: np.ndarray) -> None: ...


@dataclass
class TransientOptions:
    """Options for the transient analysis."""

    t_stop: float = 1e-9
    dt: float = 1e-12
    t_start: float = 0.0
    method: str = "trapezoidal"          # or "backward_euler"
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(max_iterations=50))
    dc: DCOptions = field(default_factory=DCOptions)
    gmin: float = 1e-12
    #: Smallest step allowed when halving after a Newton failure.
    min_dt_factor: float = 1e-4
    #: Maximum number of accepted points kept (guards against runaway loops).
    max_points: int = 2_000_000
    #: Record a snapshot every ``snapshot_stride`` accepted steps (0 disables).
    snapshot_stride: int = 1
    #: Matrix assembly backend: "auto" (compiled engine, sparse CSC storage
    #: above the size threshold), "dense", "sparse" or "legacy" (the original
    #: per-device dense stamping path, kept as reference and benchmark
    #: baseline).
    assembly: str = "auto"
    #: Relative Jacobian drift below which cached LU factors are re-used
    #: across Newton iterations and time steps (modified-Newton bypass).
    #: Only active for non-legacy assembly.  The default of 0.0 re-uses
    #: factors only for bit-identical Jacobians — a large win for linear
    #: circuits (one factorisation per dt) at zero convergence cost; raising
    #: it trades Newton iterations for factorisations, which only pays off
    #: for systems large enough that the LU dominates an iteration.  The
    #: drift is measured per-block (over the entries nonlinear devices
    #: stamp) on the compiled engines, so the tolerance is relative to the
    #: nonlinear entries' own magnitude; the solver invalidates the cache
    #: explicitly whenever ``dt`` changes, which is the only way the linear
    #: entries move.
    jacobian_reuse_tol: float = 0.0
    #: Extrapolate the previous two solutions as the Newton initial guess.
    predictor: bool = True
    #: LTE-controlled adaptive time stepping: estimate the local truncation
    #: error of each step from the predictor–corrector difference and grow /
    #: shrink ``dt`` to hold a weighted error norm at 1.  ``dt`` becomes the
    #: *initial* step; the controller moves it within
    #: ``[dt * min_dt_factor, dt * max_dt_factor]``.
    adaptive: bool = False
    #: Absolute and relative weights of the LTE norm: a step is accepted when
    #: ``rms(lte / (lte_abs_tol + lte_rel_tol * |v|)) <= 1``.
    lte_rel_tol: float = 1e-3
    lte_abs_tol: float = 1e-6
    #: Safety factor on the optimal-step formula and the per-step growth /
    #: shrink clamps of the controller (standard values).
    lte_safety: float = 0.9
    max_growth: float = 2.0
    min_shrink: float = 0.2
    #: Largest adaptive step as a multiple of the nominal ``dt``.  Keep this
    #: below the fastest feature of the stimulus: a step that clears an
    #: entire input transition lands on a smooth solution and leaves the LTE
    #: estimate nothing to reject.
    max_dt_factor: float = 50.0
    #: Breakpoint-aware step cap (adaptive mode only): clamp the step so no
    #: accepted interval straddles a stimulus corner — pulse edges, PWL
    #: knots, bit-pattern transition starts/ends, as registered by
    #: :meth:`Waveform.breakpoints <repro.circuit.waveforms.Waveform.
    #: breakpoints>`.  The integrator lands exactly on each corner, which
    #: removes the failure mode ``max_dt_factor`` only mitigates.
    breakpoints: bool = True

    def validate(self) -> None:
        if self.t_stop <= self.t_start:
            raise ValueError("t_stop must be greater than t_start")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.method not in ("trapezoidal", "backward_euler"):
            raise ValueError(f"unknown integration method {self.method!r}")
        if self.adaptive:
            if self.lte_rel_tol <= 0.0 and self.lte_abs_tol <= 0.0:
                raise ValueError("adaptive stepping needs a positive LTE tolerance")
            if not 0.0 < self.min_shrink < 1.0:
                raise ValueError("min_shrink must lie in (0, 1)")
            if self.max_growth < 1.0:
                raise ValueError("max_growth must be at least 1")
            if self.max_dt_factor < 1.0:
                raise ValueError("max_dt_factor must be at least 1")


@dataclass
class TransientResult:
    """Result of a transient analysis."""

    times: np.ndarray                    # shape (K,)
    states: np.ndarray                   # shape (K, n_unknowns)
    outputs: np.ndarray                  # shape (K, n_outputs)
    inputs: np.ndarray                   # shape (K, n_inputs)
    newton_iterations: int
    rejected_steps: int
    wall_time: float
    method: str
    #: Steps rejected by the LTE controller (subset of ``rejected_steps``;
    #: the rest are Newton convergence failures).
    lte_rejections: int = 0
    #: :class:`~repro.circuit.linalg.FactorizationCache` counters captured at
    #: the end of the run (all zero under the legacy assembly, which solves
    #: without a cache) — the raw material of the
    #: :class:`~repro.telemetry.events.EngineProfile` event.
    cache_factorizations: int = 0
    cache_reuses: int = 0
    cache_invalidations: int = 0
    cache_solves: int = 0

    @property
    def n_points(self) -> int:
        return int(self.times.size)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of linear solves answered from cached LU factors."""
        return (self.cache_reuses / self.cache_solves
                if self.cache_solves else 0.0)

    @property
    def accepted_steps(self) -> int:
        """Number of accepted integration steps (time points minus the IC)."""
        return int(self.times.size) - 1

    def output(self, index: int = 0) -> np.ndarray:
        """Waveform of one output as a 1-D array."""
        return self.outputs[:, index]

    def input(self, index: int = 0) -> np.ndarray:
        """Waveform of one input as a 1-D array."""
        return self.inputs[:, index]

    def node_voltage(self, system: MNASystem, node: str) -> np.ndarray:
        """Waveform of a node voltage by node name."""
        idx = system.node_index[node]
        if idx < 0:
            return np.zeros_like(self.times)
        return self.states[:, idx]

    def resample(self, times: np.ndarray) -> np.ndarray:
        """Linear interpolation of the first output onto a new time grid.

        Contract: :attr:`times` is strictly increasing but **not necessarily
        uniform** — adaptive (LTE-controlled) runs place points densely on
        fast transitions and sparsely on flat stretches.  Consumers that need
        a uniform grid (the compiled runtime's fixed-``dt`` kernel,
        :func:`repro.runtime.validate.validate_model`'s RMSE comparison)
        must resample through this method (or ``np.interp``) rather than
        assume ``times[1] - times[0]`` spacing.  Query points outside the
        simulated span clamp to the first/last output sample.
        """
        return np.interp(times, self.times, self.outputs[:, 0])


def transient_analysis(system: MNASystem, options: TransientOptions,
                       snapshot_callback: SnapshotCallback | None = None,
                       initial_state: np.ndarray | None = None,
                       progress: Callable[[float], None] | None = None) -> TransientResult:
    """Run a nonlinear transient simulation.

    Parameters
    ----------
    system:
        Built MNA system.
    options:
        Time span, step, integration method and solver tolerances.
    snapshot_callback:
        Optional recorder receiving ``(t, v, u, y, G, C)`` at accepted steps.
    initial_state:
        Optional starting solution; when omitted the DC operating point at
        ``t_start`` is used (the standard SPICE behaviour).
    progress:
        Optional callable receiving the fraction of simulated time.
    """
    options.validate()
    wall_start = _time.perf_counter()

    engine = select_engine(system, options.assembly)
    legacy = options.assembly == "legacy"
    cache = None if legacy else FactorizationCache(
        reuse_tolerance=options.jacobian_reuse_tol,
        singular_threshold=options.newton.singular_threshold,
        drift_indices=getattr(engine, "nonlinear_positions", None))
    use_predictor = options.predictor and not legacy

    if initial_state is None:
        dc_options = options.dc
        if legacy and dc_options.assembly != "legacy":
            dc_options = replace(dc_options, assembly="legacy")
        dc_result = dc_operating_point(system, t=options.t_start, options=dc_options)
        v = dc_result.solution.copy()
    else:
        v = np.array(initial_state, dtype=float, copy=True)

    n_nodes = system.n_nodes
    gmin = options.gmin
    use_trap = options.method == "trapezoidal"

    times = [options.t_start]
    states = [v.copy()]
    u0 = system.input_vector(options.t_start)
    inputs = [u0]
    outputs = [system.output(v)]

    i_vec, g_op = engine.eval_static(v)
    q_vec, c_op = engine.eval_dynamic(v)
    # dq/dt at the initial point; at a true DC point this is ~0.
    qdot = system.excitation(options.t_start) - i_vec

    total_newton = 0
    rejected = 0
    lte_rejected = 0

    if snapshot_callback is not None and options.snapshot_stride > 0:
        snapshot_callback.record(options.t_start, v.copy(), u0,
                                 system.output(v),
                                 engine.materialize(g_op.copy()),
                                 engine.materialize(c_op.copy()))

    t = options.t_start
    t_stop = options.t_stop
    span = t_stop - options.t_start
    # Relative end-of-interval guard: an absolute epsilon is meaningless at
    # large t_stop, and float accumulation of t can otherwise leave a sliver
    # that becomes a near-zero step with a catastrophically scaled 2/dt.
    end_eps = 1e-12 * span
    dt = options.dt
    min_dt = options.dt * options.min_dt_factor
    adaptive = options.adaptive
    max_dt = options.dt * options.max_dt_factor if adaptive else options.dt
    stimulus_corners: np.ndarray | None = None
    if adaptive and options.breakpoints:
        corner_times = system.waveform_breakpoints(options.t_start, t_stop)
        # Corners within min_dt of t_stop belong to the final snap: landing
        # on one would leave a sub-min_dt sliver to t_stop whose 2/dt scaling
        # the snap exists to prevent.
        corner_times = corner_times[corner_times < t_stop - max(end_eps, min_dt)]
        if corner_times.size:
            stimulus_corners = corner_times
    #: Integration method of the *next* step.  The adaptive controller retries
    #: rejected steps with backward Euler: the trapezoidal qdot recursion
    #: ``(2/dt)(q - q_prev) - qdot_prev`` propagates perturbations with
    #: alternating sign and no decay (the classic trap "ringing"), so once an
    #: edge seeds an oscillation, shrinking dt can never bring the LTE down.
    #: One L-stable BE step does not consume ``qdot_prev`` at all and resets
    #: the recursion; the nominal method resumes on the following step.
    trap_next = use_trap
    step_index = 0
    v_prev: np.ndarray | None = None
    dt_prev = dt
    dt_factored = None       # dt whose G + (alpha/dt) C the cache last saw

    while t < t_stop - end_eps:
        dt = min(dt, max_dt)
        dt_preferred = dt
        remaining = t_stop - t
        # Snap the final step exactly onto t_stop: take the whole remainder
        # whenever the nominal step would overshoot it or leave a sub-percent
        # sliver behind (whose near-zero dt would wreck the 2/dt scaling).
        snap_to_stop = remaining <= dt * 1.01
        if snap_to_stop:
            dt = remaining
        # Breakpoint cap: land exactly on the next stimulus corner instead of
        # straddling it (same sliver guard as the t_stop snap).  Corners lie
        # strictly inside the interval, so they take precedence over the snap.
        # Corners closer than min_dt ahead are ignored: they cannot be
        # resolved at the step floor, and clamping to them would build a
        # catastrophically scaled 2/dt (degenerate corner pairs, e.g. a
        # zero-rise pulse edge, land here).
        corner_target: float | None = None
        if stimulus_corners is not None:
            j = int(np.searchsorted(stimulus_corners, t + max(end_eps, min_dt),
                                    side="right"))
            if j < stimulus_corners.size:
                corner = float(stimulus_corners[j])
                if corner - t <= dt * 1.01:
                    dt = corner - t
                    corner_target = corner
                    snap_to_stop = False
        if cache is not None and dt != dt_factored:
            # The linear Jacobian entries move only through the 1/dt factor
            # of the G + alpha C combination; with the per-block drift metric
            # the cache cannot see that, so signal it explicitly.
            cache.invalidate()
            dt_factored = dt
        # t + (t_stop - t) is not guaranteed to round to t_stop exactly.
        if snap_to_stop:
            t_new = t_stop
        elif corner_target is not None:
            t_new = corner_target
        else:
            t_new = t + dt
        trap_step = trap_next
        excitation = system.excitation(t_new)
        q_prev = q_vec
        qdot_prev = qdot

        captured: dict[str, np.ndarray] = {}

        def residual_and_jacobian(v_trial: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            i_trial, g_trial = engine.eval_static(v_trial)
            q_trial, c_trial = engine.eval_dynamic(v_trial)
            if trap_step:
                residual = (2.0 / dt) * (q_trial - q_prev) - qdot_prev + i_trial - excitation
                jac = engine.combine(g_trial, c_trial, 2.0 / dt)
            else:
                residual = (q_trial - q_prev) / dt + i_trial - excitation
                jac = engine.combine(g_trial, c_trial, 1.0 / dt)
            if gmin:
                residual[:n_nodes] += gmin * v_trial[:n_nodes]
                engine.add_diag(jac, gmin, n_nodes)
            captured["i"], captured["G"] = i_trial, g_trial
            captured["q"], captured["C"] = q_trial, c_trial
            return residual, engine.materialize(jac)

        # Polynomial predictor: extrapolate the last two accepted solutions.
        # Computed even when not used as the Newton guess — the LTE estimate
        # of the adaptive controller is the predictor-corrector difference.
        predicted: np.ndarray | None = None
        if v_prev is not None and dt_prev > 0.0:
            extrapolated = v + (v - v_prev) * (dt / dt_prev)
            if np.all(np.isfinite(extrapolated)):
                predicted = extrapolated
        guess = predicted if (use_predictor and predicted is not None) else v

        try:
            result = newton_solve(residual_and_jacobian, guess, options.newton,
                                  linear_solver=cache)
            total_newton += result.iterations
            predictor_failed = not result.converged and guess is not v
        except SingularMatrixError:
            # Overshooting into a pathological region can make the Jacobian
            # singular/non-finite; only the extrapolated guess may recover by
            # restarting — from the accepted solution this is fatal, as before.
            if guess is v:
                raise
            predictor_failed = True
        if predictor_failed:
            # The extrapolated guess can overshoot strong nonlinearities;
            # retry once from the last accepted solution before shrinking dt.
            if cache is not None:
                cache.invalidate()
            result = newton_solve(residual_and_jacobian, v, options.newton,
                                  linear_solver=cache)
            total_newton += result.iterations

        if not result.converged:
            rejected += 1
            dt *= 0.5
            if adaptive:
                trap_next = False      # L-stable retry, see trap_next above
            if cache is not None:
                cache.invalidate()
            if dt < min_dt:
                raise ConvergenceError(
                    f"transient analysis of {system.circuit.name!r} failed at "
                    f"t={t_new:.3e}s even with dt={dt:.3e}s",
                    iterations=total_newton, residual=result.residual_norm)
            continue

        # LTE estimate from the predictor-corrector difference: the linear
        # extrapolation and the implicit corrector bracket the true solution,
        # so their (scaled) difference tracks the step's truncation error.
        # Optimal-step exponent 1/(p+1) of this step's integration order p.
        lte_exponent = 1.0 / 3.0 if trap_step else 0.5
        lte_err: float | None = None
        if adaptive and predicted is not None:
            v_new = result.solution
            diff = v_new - predicted
            if trap_step:
                # Second-order corrector vs first-order predictor: the
                # classical Milne-type estimate with non-uniform step weights.
                est = diff * (dt / (3.0 * (dt + dt_prev)))
            else:
                est = diff * (dt / (dt + dt_prev))
            weight = options.lte_abs_tol + options.lte_rel_tol * np.maximum(
                np.abs(v_new), np.abs(v))
            with np.errstate(divide="ignore", invalid="ignore"):
                lte_err = float(np.sqrt(np.mean(np.square(est / weight))))
            if not np.isfinite(lte_err):
                lte_err = None
            elif lte_err > 1.0:
                # Reject: shrink towards the optimal step and retry with BE.
                rejected += 1
                lte_rejected += 1
                trap_next = False
                shrink = max(options.min_shrink,
                             options.lte_safety * lte_err ** -lte_exponent)
                dt *= shrink
                if cache is not None:
                    cache.invalidate()
                if dt < min_dt:
                    raise ConvergenceError(
                        f"transient analysis of {system.circuit.name!r} cannot "
                        f"meet the LTE tolerance at t={t_new:.3e}s even with "
                        f"dt={dt:.3e}s (error norm {lte_err:.2e})",
                        iterations=total_newton, residual=result.residual_norm)
                continue

        # Accept the step.
        v_prev = v
        dt_prev = dt
        v = result.solution
        q_vec = captured["q"]
        g_op, c_op = captured["G"], captured["C"]
        i_vec = captured["i"]
        if trap_step:
            qdot = (2.0 / dt) * (q_vec - q_prev) - qdot_prev
        else:
            qdot = (q_vec - q_prev) / dt
        trap_next = use_trap           # resume the nominal method

        t = t_new
        step_index += 1
        u_new = system.input_vector(t)
        y_new = system.output(v)
        times.append(t)
        states.append(v.copy())
        inputs.append(u_new)
        outputs.append(y_new)

        if (snapshot_callback is not None and options.snapshot_stride > 0
                and step_index % options.snapshot_stride == 0):
            snapshot_callback.record(t, v.copy(), u_new, y_new,
                                     engine.materialize(g_op.copy()),
                                     engine.materialize(c_op.copy()))

        if progress is not None:
            progress((t - options.t_start) / (options.t_stop - options.t_start))

        if adaptive:
            # Grow/shrink towards the step whose predicted error norm is 1,
            # damped by the safety factor and the growth/shrink clamps.
            # Bootstrap steps (no estimate yet) hold dt unchanged.
            if lte_err is not None:
                factor = (options.lte_safety * lte_err ** -lte_exponent
                          if lte_err > 0.0 else options.max_growth)
                factor = min(options.max_growth, max(options.min_shrink, factor))
                next_dt = dt * factor
                if corner_target is not None and factor >= 1.0:
                    # A step shortened only to land on a corner says nothing
                    # about the controller's own step; resume its preference.
                    next_dt = max(next_dt, dt_preferred)
                dt = min(max_dt, max(min_dt, next_dt))
            elif corner_target is not None:
                dt = dt_preferred
        elif dt < options.dt:
            # Fixed-step mode: recover the nominal step after halvings.
            dt = min(options.dt, dt * 2.0)

        if len(times) > options.max_points:
            raise ConvergenceError(
                f"transient analysis exceeded max_points={options.max_points}")

    return TransientResult(
        times=np.array(times),
        states=np.array(states),
        outputs=np.array(outputs),
        inputs=np.array(inputs),
        newton_iterations=total_newton,
        rejected_steps=rejected,
        wall_time=_time.perf_counter() - wall_start,
        method=options.method,
        lte_rejections=lte_rejected,
        cache_factorizations=cache.factorizations if cache else 0,
        cache_reuses=cache.reuses if cache else 0,
        cache_invalidations=cache.invalidations if cache else 0,
        cache_solves=cache.solves if cache else 0,
    )
