"""Nonlinear transient analysis with Jacobian-snapshot capture.

The transient solver integrates the MNA descriptor system

.. math:: \\frac{d}{dt} q(v) + i(v) = B u(t) + b_{fixed}(t)

with backward Euler or the trapezoidal rule, solving a damped Newton iteration
at every time step.  Whenever a step is accepted the solver can hand the
already-evaluated Jacobians ``G(t_k)`` and ``C(t_k)`` to a *snapshot callback*
— this is the reproduction of the paper's "subsequent snapshots of the
internal circuit Jacobian are sampled during time-domain analysis" and is what
feeds the Transfer Function Trajectory extraction.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field, replace
from typing import Callable, Protocol

import numpy as np

from ..exceptions import ConvergenceError, SingularMatrixError
from .assembly import select_engine
from .dc import DCOptions, dc_operating_point
from .linalg import FactorizationCache
from .mna import MNASystem
from .newton import NewtonOptions, newton_solve

__all__ = ["TransientOptions", "TransientResult", "SnapshotCallback", "transient_analysis"]


class SnapshotCallback(Protocol):
    """Interface of the per-step snapshot recorder.

    ``record`` is called once per accepted time step with the time, solution,
    input vector, output vector and the static/dynamic Jacobians evaluated at
    the accepted solution.
    """

    def record(self, t: float, v: np.ndarray, u: np.ndarray, y: np.ndarray,
               g_matrix: np.ndarray, c_matrix: np.ndarray) -> None: ...


@dataclass
class TransientOptions:
    """Options for the transient analysis."""

    t_stop: float = 1e-9
    dt: float = 1e-12
    t_start: float = 0.0
    method: str = "trapezoidal"          # or "backward_euler"
    newton: NewtonOptions = field(default_factory=lambda: NewtonOptions(max_iterations=50))
    dc: DCOptions = field(default_factory=DCOptions)
    gmin: float = 1e-12
    #: Smallest step allowed when halving after a Newton failure.
    min_dt_factor: float = 1e-4
    #: Maximum number of accepted points kept (guards against runaway loops).
    max_points: int = 2_000_000
    #: Record a snapshot every ``snapshot_stride`` accepted steps (0 disables).
    snapshot_stride: int = 1
    #: Matrix assembly backend: "auto" (compiled engine, sparse CSC storage
    #: above the size threshold), "dense", "sparse" or "legacy" (the original
    #: per-device dense stamping path, kept as reference and benchmark
    #: baseline).
    assembly: str = "auto"
    #: Relative Jacobian drift below which cached LU factors are re-used
    #: across Newton iterations and time steps (modified-Newton bypass).
    #: Only active for non-legacy assembly.  The default of 0.0 re-uses
    #: factors only for bit-identical Jacobians — a large win for linear
    #: circuits (one factorisation per dt) at zero convergence cost; raising
    #: it trades Newton iterations for factorisations, which only pays off
    #: for systems large enough that the LU dominates an iteration.
    jacobian_reuse_tol: float = 0.0
    #: Extrapolate the previous two solutions as the Newton initial guess.
    predictor: bool = True

    def validate(self) -> None:
        if self.t_stop <= self.t_start:
            raise ValueError("t_stop must be greater than t_start")
        if self.dt <= 0:
            raise ValueError("dt must be positive")
        if self.method not in ("trapezoidal", "backward_euler"):
            raise ValueError(f"unknown integration method {self.method!r}")


@dataclass
class TransientResult:
    """Result of a transient analysis."""

    times: np.ndarray                    # shape (K,)
    states: np.ndarray                   # shape (K, n_unknowns)
    outputs: np.ndarray                  # shape (K, n_outputs)
    inputs: np.ndarray                   # shape (K, n_inputs)
    newton_iterations: int
    rejected_steps: int
    wall_time: float
    method: str

    @property
    def n_points(self) -> int:
        return int(self.times.size)

    def output(self, index: int = 0) -> np.ndarray:
        """Waveform of one output as a 1-D array."""
        return self.outputs[:, index]

    def input(self, index: int = 0) -> np.ndarray:
        """Waveform of one input as a 1-D array."""
        return self.inputs[:, index]

    def node_voltage(self, system: MNASystem, node: str) -> np.ndarray:
        """Waveform of a node voltage by node name."""
        idx = system.node_index[node]
        if idx < 0:
            return np.zeros_like(self.times)
        return self.states[:, idx]

    def resample(self, times: np.ndarray) -> np.ndarray:
        """Linear interpolation of the first output onto a new time grid."""
        return np.interp(times, self.times, self.outputs[:, 0])


def transient_analysis(system: MNASystem, options: TransientOptions,
                       snapshot_callback: SnapshotCallback | None = None,
                       initial_state: np.ndarray | None = None,
                       progress: Callable[[float], None] | None = None) -> TransientResult:
    """Run a nonlinear transient simulation.

    Parameters
    ----------
    system:
        Built MNA system.
    options:
        Time span, step, integration method and solver tolerances.
    snapshot_callback:
        Optional recorder receiving ``(t, v, u, y, G, C)`` at accepted steps.
    initial_state:
        Optional starting solution; when omitted the DC operating point at
        ``t_start`` is used (the standard SPICE behaviour).
    progress:
        Optional callable receiving the fraction of simulated time.
    """
    options.validate()
    wall_start = _time.perf_counter()

    engine = select_engine(system, options.assembly)
    legacy = options.assembly == "legacy"
    cache = None if legacy else FactorizationCache(
        reuse_tolerance=options.jacobian_reuse_tol,
        singular_threshold=options.newton.singular_threshold)
    use_predictor = options.predictor and not legacy

    if initial_state is None:
        dc_options = options.dc
        if legacy and dc_options.assembly != "legacy":
            dc_options = replace(dc_options, assembly="legacy")
        dc_result = dc_operating_point(system, t=options.t_start, options=dc_options)
        v = dc_result.solution.copy()
    else:
        v = np.array(initial_state, dtype=float, copy=True)

    n_nodes = system.n_nodes
    gmin = options.gmin
    use_trap = options.method == "trapezoidal"

    times = [options.t_start]
    states = [v.copy()]
    u0 = system.input_vector(options.t_start)
    inputs = [u0]
    outputs = [system.output(v)]

    i_vec, g_op = engine.eval_static(v)
    q_vec, c_op = engine.eval_dynamic(v)
    # dq/dt at the initial point; at a true DC point this is ~0.
    qdot = system.excitation(options.t_start) - i_vec

    total_newton = 0
    rejected = 0

    if snapshot_callback is not None and options.snapshot_stride > 0:
        snapshot_callback.record(options.t_start, v.copy(), u0,
                                 system.output(v),
                                 engine.materialize(g_op.copy()),
                                 engine.materialize(c_op.copy()))

    t = options.t_start
    dt = options.dt
    min_dt = options.dt * options.min_dt_factor
    step_index = 0
    v_prev: np.ndarray | None = None
    dt_prev = dt

    while t < options.t_stop - 1e-18:
        dt = min(dt, options.t_stop - t)
        t_new = t + dt
        excitation = system.excitation(t_new)
        q_prev = q_vec
        qdot_prev = qdot

        captured: dict[str, np.ndarray] = {}

        def residual_and_jacobian(v_trial: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            i_trial, g_trial = engine.eval_static(v_trial)
            q_trial, c_trial = engine.eval_dynamic(v_trial)
            if use_trap:
                residual = (2.0 / dt) * (q_trial - q_prev) - qdot_prev + i_trial - excitation
                jac = engine.combine(g_trial, c_trial, 2.0 / dt)
            else:
                residual = (q_trial - q_prev) / dt + i_trial - excitation
                jac = engine.combine(g_trial, c_trial, 1.0 / dt)
            if gmin:
                residual[:n_nodes] += gmin * v_trial[:n_nodes]
                engine.add_diag(jac, gmin, n_nodes)
            captured["i"], captured["G"] = i_trial, g_trial
            captured["q"], captured["C"] = q_trial, c_trial
            return residual, engine.materialize(jac)

        # Polynomial predictor: extrapolate the last two accepted solutions.
        guess = v
        if use_predictor and v_prev is not None and dt_prev > 0.0:
            predicted = v + (v - v_prev) * (dt / dt_prev)
            if np.all(np.isfinite(predicted)):
                guess = predicted

        try:
            result = newton_solve(residual_and_jacobian, guess, options.newton,
                                  linear_solver=cache)
            total_newton += result.iterations
            predictor_failed = not result.converged and guess is not v
        except SingularMatrixError:
            # Overshooting into a pathological region can make the Jacobian
            # singular/non-finite; only the extrapolated guess may recover by
            # restarting — from the accepted solution this is fatal, as before.
            if guess is v:
                raise
            predictor_failed = True
        if predictor_failed:
            # The extrapolated guess can overshoot strong nonlinearities;
            # retry once from the last accepted solution before shrinking dt.
            if cache is not None:
                cache.invalidate()
            result = newton_solve(residual_and_jacobian, v, options.newton,
                                  linear_solver=cache)
            total_newton += result.iterations

        if not result.converged:
            rejected += 1
            dt *= 0.5
            if cache is not None:
                cache.invalidate()
            if dt < min_dt:
                raise ConvergenceError(
                    f"transient analysis of {system.circuit.name!r} failed at "
                    f"t={t_new:.3e}s even with dt={dt:.3e}s",
                    iterations=total_newton, residual=result.residual_norm)
            continue

        # Accept the step.
        v_prev = v
        dt_prev = dt
        v = result.solution
        q_vec = captured["q"]
        g_op, c_op = captured["G"], captured["C"]
        i_vec = captured["i"]
        if use_trap:
            qdot = (2.0 / dt) * (q_vec - q_prev) - qdot_prev
        else:
            qdot = (q_vec - q_prev) / dt

        t = t_new
        step_index += 1
        u_new = system.input_vector(t)
        y_new = system.output(v)
        times.append(t)
        states.append(v.copy())
        inputs.append(u_new)
        outputs.append(y_new)

        if (snapshot_callback is not None and options.snapshot_stride > 0
                and step_index % options.snapshot_stride == 0):
            snapshot_callback.record(t, v.copy(), u_new, y_new,
                                     engine.materialize(g_op.copy()),
                                     engine.materialize(c_op.copy()))

        if progress is not None:
            progress((t - options.t_start) / (options.t_stop - options.t_start))

        # Recover the step size after successful steps following a halving.
        if dt < options.dt:
            dt = min(options.dt, dt * 2.0)

        if len(times) > options.max_points:
            raise ConvergenceError(
                f"transient analysis exceeded max_points={options.max_points}")

    return TransientResult(
        times=np.array(times),
        states=np.array(states),
        outputs=np.array(outputs),
        inputs=np.array(inputs),
        newton_iterations=total_newton,
        rejected_steps=rejected,
        wall_time=_time.perf_counter() - wall_start,
        method=options.method,
    )
