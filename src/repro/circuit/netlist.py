"""Circuit container: nodes, devices, designated inputs and outputs.

A :class:`Circuit` is a plain in-memory description.  Calling
:meth:`Circuit.build` produces an :class:`repro.circuit.mna.MNASystem`, the
numerical object that the DC/AC/transient solvers and the TFT extraction
operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..exceptions import CircuitError
from .devices import (
    Capacitor,
    CurrentSource,
    Device,
    Diode,
    Inductor,
    MOSFET,
    MOSFETParams,
    NMOS,
    PMOS,
    Resistor,
    VoltageSource,
)
from .waveforms import Waveform

__all__ = ["Circuit", "Output", "GROUND_NAMES"]

#: Node names treated as the global reference node.
GROUND_NAMES = {"0", "gnd", "GND", "ground", "vss!", "0v"}


@dataclass(frozen=True)
class Output:
    """A named differential output ``y = v(positive) - v(negative)``."""

    name: str
    positive: str
    negative: str = "0"


class Circuit:
    """A netlist-level description of an analog circuit.

    Devices are added either through :meth:`add` or through the convenience
    factory methods (:meth:`resistor`, :meth:`capacitor`, ...), which also
    return the created device so parameters can be tweaked afterwards.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._devices: list[Device] = []
        self._device_names: set[str] = set()
        self._outputs: list[Output] = []

    # ------------------------------------------------------------------ access
    @property
    def devices(self) -> tuple[Device, ...]:
        return tuple(self._devices)

    @property
    def outputs(self) -> tuple[Output, ...]:
        return tuple(self._outputs)

    @property
    def inputs(self) -> tuple[Device, ...]:
        """Sources flagged as circuit inputs, in the order they were added."""
        return tuple(d for d in self._devices if getattr(d, "is_input", False))

    def node_names(self) -> list[str]:
        """All non-ground node names, in first-appearance order."""
        seen: list[str] = []
        for device in self._devices:
            for node in device.nodes:
                if node in GROUND_NAMES or node in seen:
                    continue
                seen.append(node)
        return seen

    def device(self, name: str) -> Device:
        """Look up a device by (case-sensitive) name."""
        for dev in self._devices:
            if dev.name == name:
                return dev
        raise CircuitError(f"no device named {name!r} in circuit {self.name!r}")

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices)

    def __len__(self) -> int:
        return len(self._devices)

    def component_count(self) -> dict[str, int]:
        """Histogram of device types, e.g. ``{"Resistor": 8, "NMOS": 27}``."""
        counts: dict[str, int] = {}
        for dev in self._devices:
            counts[type(dev).__name__] = counts.get(type(dev).__name__, 0) + 1
        return counts

    # ----------------------------------------------------------------- editing
    def add(self, device: Device) -> Device:
        if device.name in self._device_names:
            raise CircuitError(f"duplicate device name {device.name!r}")
        self._devices.append(device)
        self._device_names.add(device.name)
        return device

    def extend(self, devices: Iterable[Device]) -> None:
        for device in devices:
            self.add(device)

    def add_output(self, name: str, positive: str, negative: str = "0") -> Output:
        """Register a differential output ``v(positive) - v(negative)``."""
        if any(o.name == name for o in self._outputs):
            raise CircuitError(f"duplicate output name {name!r}")
        output = Output(name, str(positive), str(negative))
        self._outputs.append(output)
        return output

    # -------------------------------------------------------- factory helpers
    def resistor(self, name: str, pos: str, neg: str, value: float) -> Resistor:
        return self.add(Resistor(name, pos, neg, value))

    def capacitor(self, name: str, pos: str, neg: str, value: float) -> Capacitor:
        return self.add(Capacitor(name, pos, neg, value))

    def inductor(self, name: str, pos: str, neg: str, value: float) -> Inductor:
        return self.add(Inductor(name, pos, neg, value))

    def voltage_source(self, name: str, pos: str, neg: str,
                       value: float | Waveform = 0.0, *, is_input: bool = False) -> VoltageSource:
        return self.add(VoltageSource(name, pos, neg, value, is_input=is_input))

    def current_source(self, name: str, pos: str, neg: str,
                       value: float | Waveform = 0.0, *, is_input: bool = False) -> CurrentSource:
        return self.add(CurrentSource(name, pos, neg, value, is_input=is_input))

    def diode(self, name: str, pos: str, neg: str, **params: float) -> Diode:
        return self.add(Diode(name, pos, neg, **params))

    def nmos(self, name: str, drain: str, gate: str, source: str, bulk: str,
             params: MOSFETParams | None = None, **overrides: float) -> MOSFET:
        return self.add(NMOS(name, drain, gate, source, bulk, params=params, **overrides))

    def pmos(self, name: str, drain: str, gate: str, source: str, bulk: str,
             params: MOSFETParams | None = None, **overrides: float) -> MOSFET:
        return self.add(PMOS(name, drain, gate, source, bulk, params=params, **overrides))

    # ------------------------------------------------------------------- build
    def build(self) -> "MNASystem":
        """Assemble the MNA system (resolving node names to unknown indices)."""
        from .mna import MNASystem

        if not self._devices:
            raise CircuitError(f"circuit {self.name!r} contains no devices")
        if not self._outputs:
            raise CircuitError(
                f"circuit {self.name!r} has no outputs; call add_output() before build()")
        return MNASystem(self)

    # --------------------------------------------------------------- reporting
    def summary(self) -> str:
        """Human-readable one-paragraph summary used by examples and reports."""
        counts = self.component_count()
        total = sum(counts.values())
        parts = ", ".join(f"{n} {t}" for t, n in sorted(counts.items()))
        nodes = len(self.node_names())
        inputs = ", ".join(d.name for d in self.inputs) or "none"
        outputs = ", ".join(o.name for o in self._outputs) or "none"
        return (f"Circuit {self.name!r}: {total} devices ({parts}); {nodes} nodes; "
                f"inputs: {inputs}; outputs: {outputs}")
