"""Damped Newton-Raphson solver shared by the DC and transient analyses.

The Jacobian handed back by the residual callback may be a dense NumPy array
or a ``scipy.sparse`` matrix; sparse Jacobians are factorised with SuperLU.
Passing a persistent :class:`repro.circuit.linalg.FactorizationCache` enables
the modified-Newton bypass: LU factors are re-used across iterations (and, in
the transient analysis, across time steps) while the Jacobian drifts less
than the cache's tolerance, with an automatic refactor when the residual
stops contracting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np
import scipy.sparse as _sp

from ..exceptions import SingularMatrixError
from .linalg import FactorizationCache, solve_linear

__all__ = ["NewtonOptions", "NewtonResult", "newton_solve"]


@dataclass
class NewtonOptions:
    """Tuning knobs of the Newton iteration.

    ``abs_tol``/``rel_tol`` follow the SPICE convention: convergence requires
    the residual norm to drop below ``abs_tol`` *and* the last update to be
    small relative to the solution (``rel_tol * |v| + abs_tol``).
    ``max_step`` limits the per-iteration change of any unknown, which acts as
    a crude but effective junction-voltage limiter for exponential devices.
    """

    max_iterations: int = 100
    abs_tol: float = 1e-9
    rel_tol: float = 1e-6
    max_step: float = 1.0
    #: Dense LU pivots at or below this magnitude raise SingularMatrixError
    #: (0 keeps NumPy's exact-singularity detection only).  Forwarded to the
    #: FactorizationCache the analyses build around this iteration.
    singular_threshold: float = 0.0
    #: Residual contraction factor above which a cached (stale) LU factor is
    #: invalidated so the next iteration refactors the fresh Jacobian.
    stale_contraction_limit: float = 0.5


@dataclass
class NewtonResult:
    """Outcome of a Newton solve."""

    solution: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.converged


def _solve_step(jacobian, rhs: np.ndarray, iteration: int,
                linear_solver: FactorizationCache | None,
                singular_threshold: float) -> np.ndarray:
    try:
        if linear_solver is not None:
            return linear_solver.solve(jacobian, rhs)
        if _sp.issparse(jacobian):
            return solve_linear(jacobian, rhs)
        if singular_threshold > 0.0:
            cache = FactorizationCache(singular_threshold=singular_threshold)
            return cache.solve(jacobian, rhs)
        return np.linalg.solve(jacobian, rhs)
    except (np.linalg.LinAlgError, SingularMatrixError) as exc:
        raise SingularMatrixError(
            f"singular Jacobian during Newton iteration {iteration}") from exc


def newton_solve(residual_and_jacobian: Callable[[np.ndarray], tuple[np.ndarray, np.ndarray]],
                 initial_guess: np.ndarray,
                 options: NewtonOptions | None = None,
                 linear_solver: FactorizationCache | None = None) -> NewtonResult:
    """Solve ``f(v) = 0`` with a damped Newton iteration.

    Parameters
    ----------
    residual_and_jacobian:
        Callable returning ``(f(v), J(v))`` for a trial solution ``v``.  The
        Jacobian may be dense or ``scipy.sparse``.
    initial_guess:
        Starting point; not modified.
    options:
        :class:`NewtonOptions`; defaults are suitable for the circuits in this
        repository.
    linear_solver:
        Optional :class:`FactorizationCache` used to solve the Newton updates.
        A cache with a non-zero reuse tolerance turns the iteration into a
        modified Newton method that skips refactorisation while the Jacobian
        barely changes; convergence is still judged on the exact residual.
    """
    opts = options or NewtonOptions()
    v = np.array(initial_guess, dtype=float, copy=True)
    residual, jacobian = residual_and_jacobian(v)
    residual_norm = float(np.linalg.norm(residual, ord=np.inf))

    for iteration in range(1, opts.max_iterations + 1):
        delta = _solve_step(jacobian, -residual, iteration, linear_solver,
                            opts.singular_threshold)
        if not np.all(np.isfinite(delta)):
            raise SingularMatrixError(
                f"non-finite Newton update at iteration {iteration}")

        # Damping: limit the largest per-unknown update.
        max_delta = float(np.max(np.abs(delta))) if delta.size else 0.0
        if max_delta > opts.max_step:
            delta *= opts.max_step / max_delta
        v_new = v + delta

        residual_new, jacobian_new = residual_and_jacobian(v_new)
        residual_norm_new = float(np.linalg.norm(residual_new, ord=np.inf))

        # Simple line search: if the residual grew a lot, halve the step a few
        # times before accepting.
        backtrack = 0
        while (residual_norm_new > 10.0 * residual_norm + opts.abs_tol
               and backtrack < 4):
            delta *= 0.5
            v_new = v + delta
            residual_new, jacobian_new = residual_and_jacobian(v_new)
            residual_norm_new = float(np.linalg.norm(residual_new, ord=np.inf))
            backtrack += 1

        # Stale factors that no longer contract the residual are evicted so
        # the next solve refactors the up-to-date Jacobian.
        if (linear_solver is not None and linear_solver.reused_last
                and residual_norm_new > opts.stale_contraction_limit * residual_norm
                and residual_norm_new > opts.abs_tol):
            linear_solver.invalidate()

        update_norm = float(np.max(np.abs(v_new - v))) if v.size else 0.0
        v, residual, jacobian = v_new, residual_new, jacobian_new
        residual_norm = residual_norm_new

        solution_scale = float(np.max(np.abs(v))) if v.size else 0.0
        update_ok = update_norm <= opts.rel_tol * solution_scale + opts.abs_tol
        residual_ok = residual_norm <= opts.abs_tol
        if update_ok and residual_ok:
            return NewtonResult(v, True, iteration, residual_norm)

    return NewtonResult(v, False, opts.max_iterations, residual_norm)
