"""Nonlinear MNA circuit simulator substrate.

This subpackage replaces the commercial ELDO/SPICE simulator used by the
paper: it provides circuit description, DC operating-point, AC and nonlinear
transient analyses, and — crucially for the reproduction — access to the
internal MNA Jacobians ``G(k)`` and ``C(k)`` at every accepted transient time
step.
"""

from .ac import ACResult, ac_analysis, frequency_grid
from .assembly import SPARSE_THRESHOLD, CompiledMNA, LegacyEngine, select_engine
from .dc import DCOptions, DCResult, dc_operating_point
from .linalg import FactorizationCache, solve_linear
from .devices import (
    MOSFET,
    NMOS,
    PMOS,
    VCCS,
    VCVS,
    Capacitor,
    CubicConductance,
    CurrentSource,
    Device,
    Diode,
    Inductor,
    MOSFETParams,
    PolynomialConductance,
    Resistor,
    TanhTransconductor,
    VoltageSource,
)
from .mna import MNASystem
from .netlist import Circuit, Output
from .newton import NewtonOptions, NewtonResult, newton_solve
from .parser import parse_netlist
from .transient import TransientOptions, TransientResult, transient_analysis
from .waveforms import DC, BitPattern, PiecewiseLinear, Pulse, Sine, Waveform, prbs_bits

__all__ = [
    # description
    "Circuit", "Output", "MNASystem", "parse_netlist",
    # devices
    "Device", "Resistor", "Capacitor", "Inductor", "VoltageSource", "CurrentSource",
    "VCVS", "VCCS", "Diode", "MOSFET", "NMOS", "PMOS", "MOSFETParams",
    "PolynomialConductance", "CubicConductance", "TanhTransconductor",
    # waveforms
    "Waveform", "DC", "Sine", "Pulse", "PiecewiseLinear", "BitPattern", "prbs_bits",
    # analyses
    "dc_operating_point", "DCOptions", "DCResult",
    "ac_analysis", "ACResult", "frequency_grid",
    "transient_analysis", "TransientOptions", "TransientResult",
    "newton_solve", "NewtonOptions", "NewtonResult",
    # compiled assembly + linear algebra
    "CompiledMNA", "LegacyEngine", "select_engine", "SPARSE_THRESHOLD",
    "FactorizationCache", "solve_linear",
]
