"""Time-domain stimulus waveforms for independent sources.

The paper trains the model with a "low-frequency high-amplitude sinusoidal
input for 1 period" and validates it with a "spectrally-rich bit pattern input
at 2.5 GS/s".  This module provides those stimuli plus the usual SPICE
primitives (DC, pulse, piecewise-linear) as small callable objects.

A waveform is a callable ``w(t) -> float`` that also supports vectorised
evaluation on NumPy arrays via :meth:`Waveform.sample`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "Waveform",
    "DC",
    "Sine",
    "Pulse",
    "PiecewiseLinear",
    "BitPattern",
    "prbs_bits",
]


class Waveform:
    """Base class for time-domain stimuli.

    Subclasses implement :meth:`value`; the base class provides vectorised
    sampling and simple arithmetic (offsetting by a DC level).
    """

    def value(self, t: float) -> float:
        raise NotImplementedError

    def __call__(self, t: float) -> float:
        return self.value(float(t))

    def sample(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        """Evaluate the waveform on an array of time points.

        The base implementation loops over :meth:`value`; the built-in
        waveforms override it with vectorised NumPy evaluation (this is the
        hot path of :func:`repro.runtime.batch.stack_stimuli` and of
        excitation evaluation for long bit patterns) and are tested to agree
        with the scalar reference.
        """
        times = np.asarray(times, dtype=float)
        return np.array([self.value(float(t)) for t in times.ravel()]).reshape(times.shape)

    def breakpoints(self, t_start: float, t_stop: float) -> np.ndarray:
        """Times in ``[t_start, t_stop]`` where the waveform has a corner.

        A *breakpoint* is a point where the waveform or its derivative is
        discontinuous — pulse edges, piecewise-linear knots, bit-pattern
        transitions.  The adaptive transient controller clamps its step so no
        accepted interval straddles one (stepping clean across a transition
        lands on a smooth solution and leaves the LTE estimate nothing to
        reject).  Smooth waveforms return an empty array.
        """
        return np.empty(0)

    # -- introspection helpers -------------------------------------------------
    @property
    def dc_value(self) -> float:
        """Value at ``t = 0``; used for the DC operating-point solve."""
        return self.value(0.0)


def _clip_breakpoints(times, t_start: float, t_stop: float) -> np.ndarray:
    """Sorted unique corner times restricted to ``[t_start, t_stop]``."""
    times = np.unique(np.asarray(times, dtype=float))
    return times[(times >= t_start) & (times <= t_stop)]


@dataclass
class DC(Waveform):
    """Constant waveform."""

    level: float = 0.0

    def value(self, t: float) -> float:
        return self.level


@dataclass
class Sine(Waveform):
    """``offset + amplitude * sin(2*pi*frequency*(t - delay) + phase)``.

    Before ``delay`` the waveform sits at ``offset`` (SPICE ``SIN`` semantics).
    """

    offset: float = 0.0
    amplitude: float = 1.0
    frequency: float = 1.0
    delay: float = 0.0
    phase: float = 0.0
    damping: float = 0.0

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.offset + self.amplitude * math.sin(self.phase)
        tau = t - self.delay
        envelope = math.exp(-self.damping * tau) if self.damping else 1.0
        return self.offset + self.amplitude * envelope * math.sin(
            2.0 * math.pi * self.frequency * tau + self.phase)

    def sample(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        tau = np.maximum(times - self.delay, 0.0)   # clamp: pre-delay is masked
        envelope = np.exp(-self.damping * tau) if self.damping else 1.0
        running = self.offset + self.amplitude * envelope * np.sin(
            2.0 * math.pi * self.frequency * tau + self.phase)
        held = self.offset + self.amplitude * math.sin(self.phase)
        return np.where(times < self.delay, held, running)

    def breakpoints(self, t_start: float, t_stop: float) -> np.ndarray:
        # Smooth everywhere except the slope kink where the hold ends.
        if self.delay > 0.0:
            return _clip_breakpoints([self.delay], t_start, t_stop)
        return np.empty(0)


@dataclass
class Pulse(Waveform):
    """SPICE ``PULSE`` source with linear rise/fall edges."""

    initial: float = 0.0
    pulsed: float = 1.0
    delay: float = 0.0
    rise: float = 1e-12
    fall: float = 1e-12
    width: float = 1e-9
    period: float = 2e-9

    def value(self, t: float) -> float:
        if t < self.delay:
            return self.initial
        tau = (t - self.delay) % self.period
        rise = max(self.rise, 1e-18)
        fall = max(self.fall, 1e-18)
        if tau < rise:
            return self.initial + (self.pulsed - self.initial) * tau / rise
        if tau < rise + self.width:
            return self.pulsed
        if tau < rise + self.width + fall:
            frac = (tau - rise - self.width) / fall
            return self.pulsed + (self.initial - self.pulsed) * frac
        return self.initial

    def sample(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        rise = max(self.rise, 1e-18)
        fall = max(self.fall, 1e-18)
        tau = np.mod(times - self.delay, self.period)
        ramp_up = self.initial + (self.pulsed - self.initial) * tau / rise
        frac = (tau - rise - self.width) / fall
        ramp_down = self.pulsed + (self.initial - self.pulsed) * frac
        # Conditions tested in the same order as the scalar reference.
        return np.select(
            [times < self.delay, tau < rise, tau < rise + self.width,
             tau < rise + self.width + fall],
            [self.initial, ramp_up, self.pulsed, ramp_down],
            default=self.initial)

    def breakpoints(self, t_start: float, t_stop: float) -> np.ndarray:
        rise = max(self.rise, 1e-18)
        fall = max(self.fall, 1e-18)
        corners = np.array([0.0, rise, rise + self.width,
                            rise + self.width + fall])
        first = max(0, int(math.floor((t_start - self.delay) / self.period)))
        last = int(math.floor((t_stop - self.delay) / self.period))
        if last < first:
            return np.empty(0)
        periods = self.delay + self.period * np.arange(first, last + 1)
        return _clip_breakpoints((periods[:, None] + corners[None, :]).ravel(),
                                 t_start, t_stop)


@dataclass
class PiecewiseLinear(Waveform):
    """Piecewise-linear waveform defined by ``(time, value)`` breakpoints."""

    points: Sequence[tuple[float, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        pts = sorted((float(t), float(v)) for t, v in self.points)
        if not pts:
            pts = [(0.0, 0.0)]
        self._times = np.array([p[0] for p in pts])
        self._values = np.array([p[1] for p in pts])

    def value(self, t: float) -> float:
        return float(np.interp(t, self._times, self._values))

    def sample(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        return np.interp(np.asarray(times, dtype=float), self._times, self._values)

    def breakpoints(self, t_start: float, t_stop: float) -> np.ndarray:
        return _clip_breakpoints(self._times, t_start, t_stop)


def prbs_bits(n_bits: int, order: int = 7, seed: int = 0b1010101) -> list[int]:
    """Generate a pseudo-random binary sequence using an LFSR.

    ``order`` selects the PRBS polynomial (7, 9, 15 or 23 are the usual
    choices); the default PRBS-7 (x^7 + x^6 + 1) gives the "spectrally-rich
    bit pattern" flavour used for validation in the paper.
    """
    taps = {7: (7, 6), 9: (9, 5), 15: (15, 14), 23: (23, 18)}
    if order not in taps:
        raise ValueError(f"unsupported PRBS order {order}; choose from {sorted(taps)}")
    a, b = taps[order]
    state = seed & ((1 << order) - 1)
    if state == 0:
        state = 1
    bits: list[int] = []
    for _ in range(n_bits):
        new_bit = ((state >> (a - 1)) ^ (state >> (b - 1))) & 1
        bits.append(state & 1)
        state = ((state << 1) | new_bit) & ((1 << order) - 1)
    return bits


@dataclass
class BitPattern(Waveform):
    """Random or user-supplied bit pattern with raised-cosine edges.

    This reproduces the paper's validation stimulus: a spectrally-rich bit
    pattern at ``bit_rate`` symbols per second swinging between ``low`` and
    ``high``.  Raised-cosine edges of duration ``edge_time`` keep the
    excitation band-limited so that the transistor-level reference transient
    remains well behaved.
    """

    bits: Sequence[int] = field(default_factory=lambda: prbs_bits(32))
    bit_rate: float = 2.5e9
    low: float = 0.0
    high: float = 1.0
    edge_time: float | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        self._bits = [1 if b else 0 for b in self.bits]
        if not self._bits:
            self._bits = [0]
        self._bit_period = 1.0 / float(self.bit_rate)
        if self.edge_time is None:
            self.edge_time = 0.25 * self._bit_period
        self._edge = min(float(self.edge_time), self._bit_period)
        self._levels = np.where(np.array(self._bits, dtype=bool),
                                float(self.high), float(self.low))

    @property
    def duration(self) -> float:
        """Total duration of the pattern (delay + all bits)."""
        return self.delay + len(self._bits) * self._bit_period

    def _level(self, bit_index: int) -> float:
        if bit_index < 0:
            bit_index = 0
        if bit_index >= len(self._bits):
            bit_index = len(self._bits) - 1
        return self.high if self._bits[bit_index] else self.low

    def value(self, t: float) -> float:
        tau = t - self.delay
        if tau <= 0.0:
            return self._level(0)
        index = int(tau // self._bit_period)
        if index >= len(self._bits):
            return self._level(len(self._bits) - 1)
        t_in_bit = tau - index * self._bit_period
        current = self._level(index)
        previous = self._level(index - 1) if index > 0 else current
        if t_in_bit >= self._edge or current == previous:
            return current
        # Raised-cosine transition from the previous level to the current one.
        phase = t_in_bit / self._edge
        blend = 0.5 * (1.0 - math.cos(math.pi * phase))
        return previous + (current - previous) * blend

    def sample(self, times: Sequence[float] | np.ndarray) -> np.ndarray:
        times = np.asarray(times, dtype=float)
        levels = self._levels
        n = levels.size
        tau = times - self.delay
        index = np.floor_divide(tau, self._bit_period).astype(np.intp)
        clipped = np.clip(index, 0, n - 1)
        current = levels[clipped]
        previous = np.where(index > 0, levels[np.clip(index - 1, 0, n - 1)], current)
        t_in_bit = tau - index * self._bit_period
        edge = self._edge
        phase = t_in_bit / (edge if edge > 0.0 else 1.0)
        blend = 0.5 * (1.0 - np.cos(math.pi * phase))
        value = np.where((t_in_bit >= edge) | (current == previous),
                         current, previous + (current - previous) * blend)
        value = np.where(index >= n, levels[-1], value)
        return np.where(tau <= 0.0, levels[0], value)

    def breakpoints(self, t_start: float, t_stop: float) -> np.ndarray:
        """Start and end of every raised-cosine transition between bits.

        The curve is smooth inside a transition but its second derivative
        jumps at both ends; landing the integrator on those times keeps the
        LTE controller from stepping across an entire bit edge.
        """
        levels = self._levels
        changed = np.flatnonzero(levels[1:] != levels[:-1]) + 1
        if changed.size == 0:
            return np.empty(0)
        starts = self.delay + changed * self._bit_period
        return _clip_breakpoints(np.concatenate([starts, starts + self._edge]),
                                 t_start, t_stop)
