"""DC operating-point analysis with gmin and source stepping continuation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ConvergenceError, SingularMatrixError
from .assembly import select_engine
from .linalg import FactorizationCache
from .mna import MNASystem
from .newton import NewtonOptions, NewtonResult, newton_solve

__all__ = ["DCOptions", "DCResult", "dc_operating_point"]


@dataclass
class DCOptions:
    """Options controlling the DC operating-point search."""

    gmin: float = 1e-12
    newton: NewtonOptions = field(default_factory=NewtonOptions)
    #: gmin-stepping ladder tried when plain Newton fails (largest first).
    gmin_steps: tuple[float, ...] = (1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8, 1e-10, 1e-12)
    #: Number of source-stepping ramp points tried as the last resort.
    source_steps: int = 20
    #: Matrix assembly backend: "auto" (compiled, sparse above the size
    #: threshold), "dense", "sparse" or "legacy" (original dense stamping).
    assembly: str = "auto"
    #: LU factors are re-used while the Jacobian drifts less than this.
    jacobian_reuse_tol: float = 0.0


@dataclass
class DCResult:
    """DC operating point of a circuit."""

    solution: np.ndarray
    outputs: np.ndarray
    iterations: int
    strategy: str
    residual_norm: float

    def voltage(self, system: MNASystem, node: str) -> float:
        """Node voltage by name (ground returns 0)."""
        index = system.node_index[node]
        return 0.0 if index < 0 else float(self.solution[index])


def _solve_fixed(system: MNASystem, engine, excitation: np.ndarray, gmin: float,
                 guess: np.ndarray, newton_options: NewtonOptions,
                 linear_solver: FactorizationCache | None = None) -> NewtonResult:
    """Newton solve of ``i(v) + gmin*v_nodes - excitation = 0``."""
    n_nodes = system.n_nodes

    def residual_and_jacobian(v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        i_vec, g_op = engine.eval_static(v)
        residual = i_vec - excitation
        if gmin:
            residual[:n_nodes] += gmin * v[:n_nodes]
            g_op = g_op.copy()
            engine.add_diag(g_op, gmin, n_nodes)
        return residual, engine.materialize(g_op)

    return newton_solve(residual_and_jacobian, guess, newton_options,
                        linear_solver=linear_solver)


def dc_operating_point(system: MNASystem, t: float = 0.0,
                       options: DCOptions | None = None,
                       initial_guess: np.ndarray | None = None) -> DCResult:
    """Compute the DC operating point of the circuit at time ``t``.

    The excitation is evaluated at ``t`` (normally 0), so sources described by
    waveforms contribute their value at that instant.  Three strategies are
    tried in order: plain Newton, gmin stepping and source stepping.  The
    strategy that produced the result is recorded in :attr:`DCResult.strategy`
    so tests and reports can assert on it.
    """
    opts = options or DCOptions()
    engine = select_engine(system, opts.assembly)
    cache = (FactorizationCache(reuse_tolerance=opts.jacobian_reuse_tol,
                                singular_threshold=opts.newton.singular_threshold)
             if opts.assembly != "legacy" else None)
    excitation = system.excitation(t)
    guess = (np.array(initial_guess, dtype=float, copy=True)
             if initial_guess is not None else system.zero_state())

    total_iterations = 0

    # Strategy 1: plain Newton from the supplied guess.
    try:
        result = _solve_fixed(system, engine, excitation, opts.gmin, guess,
                              opts.newton, cache)
        total_iterations += result.iterations
        if result.converged:
            return _package(system, result, total_iterations, "newton")
    except SingularMatrixError:
        pass

    # Strategy 2: gmin stepping.
    stepping_guess = guess
    converged_chain = True
    for gmin in opts.gmin_steps:
        try:
            result = _solve_fixed(system, engine, excitation, gmin, stepping_guess,
                                  opts.newton, cache)
        except SingularMatrixError:
            converged_chain = False
            break
        total_iterations += result.iterations
        if not result.converged:
            converged_chain = False
            break
        stepping_guess = result.solution
    if converged_chain:
        final_gmin = min(opts.gmin, opts.gmin_steps[-1])
        result = _solve_fixed(system, engine, excitation, final_gmin, stepping_guess,
                              opts.newton, cache)
        total_iterations += result.iterations
        if result.converged:
            return _package(system, result, total_iterations, "gmin-stepping")

    # Strategy 3: source stepping.
    stepping_guess = system.zero_state()
    result = None
    for k in range(1, opts.source_steps + 1):
        alpha = k / opts.source_steps
        try:
            result = _solve_fixed(system, engine, alpha * excitation, opts.gmin,
                                  stepping_guess, opts.newton, cache)
        except SingularMatrixError as exc:
            raise ConvergenceError(
                f"DC analysis of {system.circuit.name!r} failed: singular matrix during "
                f"source stepping at alpha={alpha:.2f}") from exc
        total_iterations += result.iterations
        if not result.converged:
            raise ConvergenceError(
                f"DC analysis of {system.circuit.name!r} failed during source stepping",
                iterations=total_iterations, residual=result.residual_norm)
        stepping_guess = result.solution
    assert result is not None
    return _package(system, result, total_iterations, "source-stepping")


def _package(system: MNASystem, result: NewtonResult, iterations: int,
             strategy: str) -> DCResult:
    return DCResult(
        solution=result.solution,
        outputs=system.output(result.solution),
        iterations=iterations,
        strategy=strategy,
        residual_norm=result.residual_norm,
    )
