"""Small-signal AC analysis about an operating point."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dc import DCOptions, dc_operating_point
from .mna import MNASystem

__all__ = ["ACResult", "ac_analysis", "frequency_grid"]


def frequency_grid(f_start: float, f_stop: float, points_per_decade: int = 10) -> np.ndarray:
    """Logarithmically spaced frequency grid (inclusive of both endpoints)."""
    if f_start <= 0 or f_stop <= f_start:
        raise ValueError("require 0 < f_start < f_stop")
    decades = np.log10(f_stop / f_start)
    n_points = max(2, int(round(decades * points_per_decade)) + 1)
    return np.logspace(np.log10(f_start), np.log10(f_stop), n_points)


@dataclass
class ACResult:
    """Small-signal transfer functions ``H(j 2 pi f)`` about a DC point.

    ``response`` has shape ``(n_freq, n_outputs, n_inputs)``.
    """

    frequencies: np.ndarray
    response: np.ndarray
    operating_point: np.ndarray

    def transfer(self, output: int = 0, input_: int = 0) -> np.ndarray:
        """One SISO transfer function as a complex 1-D array."""
        return self.response[:, output, input_]

    def gain_db(self, output: int = 0, input_: int = 0) -> np.ndarray:
        """Magnitude in dB of one SISO transfer function."""
        magnitude = np.abs(self.transfer(output, input_))
        return 20.0 * np.log10(np.maximum(magnitude, 1e-300))

    def phase_deg(self, output: int = 0, input_: int = 0, unwrap: bool = True) -> np.ndarray:
        """Phase in degrees (unwrapped by default)."""
        phase = np.angle(self.transfer(output, input_))
        if unwrap:
            phase = np.unwrap(phase)
        return np.degrees(phase)

    def dc_gain(self, output: int = 0, input_: int = 0) -> float:
        """Low-frequency gain (value at the first frequency point)."""
        return float(np.abs(self.transfer(output, input_)[0]))

    def bandwidth(self, output: int = 0, input_: int = 0) -> float:
        """-3 dB bandwidth relative to the low-frequency gain.

        Returns the last frequency if the response never drops 3 dB within
        the analysed span.
        """
        gain = np.abs(self.transfer(output, input_))
        threshold = gain[0] / np.sqrt(2.0)
        below = np.nonzero(gain < threshold)[0]
        if below.size == 0:
            return float(self.frequencies[-1])
        k = below[0]
        if k == 0:
            return float(self.frequencies[0])
        # Log-linear interpolation between the bracketing points.
        f_lo, f_hi = self.frequencies[k - 1], self.frequencies[k]
        g_lo, g_hi = gain[k - 1], gain[k]
        frac = (g_lo - threshold) / max(g_lo - g_hi, 1e-300)
        return float(f_lo * (f_hi / f_lo) ** frac)


def ac_analysis(system: MNASystem, frequencies: np.ndarray,
                operating_point: np.ndarray | None = None,
                dc_options: DCOptions | None = None,
                gmin: float = 1e-12, assembly: str = "auto") -> ACResult:
    """Linearise the circuit about its DC point and sweep the frequency grid.

    The sweep solves batched right-hand sides: in dense mode all frequencies
    go through one LAPACK call, in sparse mode each frequency is factorised
    once for every input column.  ``assembly="legacy"`` restores the original
    per-frequency dense loop (and keeps the implicit DC solve on the legacy
    path too, so circuits the compiled engine rejects remain analysable).
    """
    if operating_point is None:
        if assembly == "legacy" and (dc_options is None
                                     or dc_options.assembly != "legacy"):
            from dataclasses import replace
            dc_options = replace(dc_options or DCOptions(), assembly="legacy")
        operating_point = dc_operating_point(system, options=dc_options).solution
    response = system.transfer_function(operating_point, frequencies, gmin=gmin,
                                        assembly=assembly)
    return ACResult(frequencies=np.asarray(frequencies, dtype=float),
                    response=response,
                    operating_point=np.array(operating_point, copy=True))
