"""Modified nodal analysis (MNA) assembly.

The :class:`MNASystem` turns a :class:`repro.circuit.netlist.Circuit` into the
nonlinear descriptor system used throughout the paper (its eq. (1)):

.. math::

    \\frac{d}{dt} q(v) + i(v) = B\\,u(t) + b_{fixed}(t), \\qquad y = D^T v

with dense NumPy evaluation of ``i``, ``q`` and their Jacobians
``G = \\partial i/\\partial v`` and ``C = \\partial q/\\partial v``.  Those two
Jacobians, sampled along a transient trajectory, are exactly the snapshots the
Transfer Function Trajectory extraction consumes.
"""

from __future__ import annotations

import os as _os
from concurrent.futures import ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..exceptions import CircuitError
from .devices import Device
from .netlist import GROUND_NAMES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .netlist import Circuit

__all__ = ["MNASystem"]

#: Thread cap of the sparse transfer-function sweep: per-frequency SuperLU
#: factorisations are independent, but beyond a handful of threads the
#: shared-memory bandwidth of the triangular solves saturates.
_MAX_TRANSFER_THREADS = 8


class MNASystem:
    """Numerical MNA description of a circuit.

    Attributes
    ----------
    n_nodes / n_branches / n_unknowns:
        Sizes of the unknown vector: node voltages first, branch currents after.
    node_index:
        Mapping from node name to unknown index (ground maps to ``-1``).
    input_matrix / output_matrix:
        The constant incidence matrices ``B`` (``n x M_i``) and ``D``
        (``n x M_o``) of the descriptor system.
    """

    def __init__(self, circuit: "Circuit") -> None:
        self.circuit = circuit
        self.node_names: list[str] = circuit.node_names()
        self.node_index: dict[str, int] = {name: i for i, name in enumerate(self.node_names)}
        for ground in GROUND_NAMES:
            self.node_index[ground] = -1
        self.n_nodes = len(self.node_names)

        # Allocate branch unknowns and bind every device.
        branch_cursor = self.n_nodes
        self._branch_owner: list[str] = []
        for device in circuit.devices:
            device.bind(self.node_index, branch_cursor)
            branch_cursor += device.n_branch
            self._branch_owner.extend([device.name] * device.n_branch)
        self.n_branches = branch_cursor - self.n_nodes
        self.n_unknowns = branch_cursor

        self._devices: tuple[Device, ...] = circuit.devices
        self._nonlinear = tuple(d for d in self._devices if d.is_nonlinear())
        self._input_sources = circuit.inputs
        if not self._input_sources:
            raise CircuitError(
                f"circuit {circuit.name!r} declares no input source; "
                "mark the signal source with is_input=True")

        self.input_matrix = self._build_input_matrix()
        self.output_matrix = self._build_output_matrix()
        self.output_names = [o.name for o in circuit.outputs]
        self.input_names = [d.name for d in self._input_sources]
        #: Lazily compiled evaluation engines, keyed by resolved storage mode.
        self._compiled: dict[bool, object] = {}

    # ----------------------------------------------------------------- helpers
    @property
    def n_inputs(self) -> int:
        return self.input_matrix.shape[1]

    @property
    def n_outputs(self) -> int:
        return self.output_matrix.shape[1]

    def unknown_labels(self) -> list[str]:
        """Human-readable labels, ``v(node)`` then ``i(device)``."""
        labels = [f"v({name})" for name in self.node_names]
        labels.extend(f"i({name})" for name in self._branch_owner)
        return labels

    def _build_input_matrix(self) -> np.ndarray:
        columns = [src.input_incidence(self.n_unknowns) for src in self._input_sources]
        return np.column_stack(columns) if columns else np.zeros((self.n_unknowns, 0))

    def _build_output_matrix(self) -> np.ndarray:
        columns = []
        for output in self.circuit.outputs:
            column = np.zeros(self.n_unknowns)
            for node, sign in ((output.positive, 1.0), (output.negative, -1.0)):
                if node in GROUND_NAMES:
                    continue
                if node not in self.node_index:
                    raise CircuitError(
                        f"output {output.name!r} references unknown node {node!r}")
                column[self.node_index[node]] += sign
            columns.append(column)
        return np.column_stack(columns) if columns else np.zeros((self.n_unknowns, 0))

    # ------------------------------------------------------------ evaluations
    def zero_state(self) -> np.ndarray:
        return np.zeros(self.n_unknowns)

    def eval_static(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Static currents ``i(v)`` and conductance Jacobian ``G(v)``."""
        i_vec = np.zeros(self.n_unknowns)
        g_mat = np.zeros((self.n_unknowns, self.n_unknowns))
        for device in self._devices:
            device.stamp_static(v, i_vec, g_mat)
        return i_vec, g_mat

    def eval_dynamic(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Charges/fluxes ``q(v)`` and capacitance Jacobian ``C(v)``."""
        q_vec = np.zeros(self.n_unknowns)
        c_mat = np.zeros((self.n_unknowns, self.n_unknowns))
        for device in self._devices:
            device.stamp_dynamic(v, q_vec, c_mat)
        return q_vec, c_mat

    def source_vector(self, t: float) -> np.ndarray:
        """Excitation of the *non-input* sources at time ``t``."""
        b_vec = np.zeros(self.n_unknowns)
        for device in self._devices:
            device.stamp_rhs(t, b_vec)
        return b_vec

    def input_vector(self, t: float) -> np.ndarray:
        """Input signal values ``u(t)`` of the designated input sources."""
        return np.array([src.waveform(t) for src in self._input_sources])

    def excitation(self, t: float) -> np.ndarray:
        """Total right-hand-side excitation ``B u(t) + b_fixed(t)``."""
        return self.source_vector(t) + self.input_matrix @ self.input_vector(t)

    def output(self, v: np.ndarray) -> np.ndarray:
        """Outputs ``y = D^T v`` for a solution vector ``v``."""
        return self.output_matrix.T @ v

    def waveform_breakpoints(self, t_start: float, t_stop: float) -> np.ndarray:
        """Merged stimulus corner times of every source in ``(t_start, t_stop)``.

        Collects :meth:`Waveform.breakpoints
        <repro.circuit.waveforms.Waveform.breakpoints>` from all sources
        (input or not — a fixed supply ramp forces steps just like the signal
        input does) into one sorted unique array.  The interval end points
        are excluded: the integrator is already there.
        """
        from .waveforms import Waveform

        collected = []
        for device in self._devices:
            waveform = getattr(device, "waveform", None)
            if isinstance(waveform, Waveform):
                collected.append(waveform.breakpoints(t_start, t_stop))
        if not collected:
            return np.empty(0)
        merged = np.unique(np.concatenate(collected))
        return merged[(merged > t_start) & (merged < t_stop)]

    # ------------------------------------------------------------- compilation
    def compile(self, assembly: str = "auto"):
        """Compiled pattern-cached evaluator of this system (cached per mode).

        ``assembly`` is ``"auto"`` (sparse CSC storage above
        :data:`repro.circuit.assembly.SPARSE_THRESHOLD` unknowns, dense
        below), ``"dense"`` or ``"sparse"``.  See
        :class:`repro.circuit.assembly.CompiledMNA`.

        The compiled engine freezes the device *values* it probed (linear
        stamps, MOSFET parameters).  Mutating device attributes after an
        analysis has run therefore requires :meth:`invalidate_compiled` (or a
        fresh :meth:`Circuit.build <repro.circuit.netlist.Circuit.build>`);
        the legacy path re-stamps every evaluation and never caches.
        """
        from .assembly import SPARSE_THRESHOLD, CompiledMNA
        if assembly == "auto":
            sparse = self.n_unknowns >= SPARSE_THRESHOLD
        elif assembly in ("dense", "sparse"):
            sparse = assembly == "sparse"
        else:
            raise ValueError(f"cannot compile assembly mode {assembly!r}")
        engine = self._compiled.get(sparse)
        if engine is None:
            engine = CompiledMNA(self, sparse=sparse)
            self._compiled[sparse] = engine
        return engine

    def invalidate_compiled(self) -> None:
        """Drop cached compiled engines after mutating device parameters.

        Compiled engines bake in the device values seen at compile time; call
        this (or rebuild the circuit) before re-running analyses on a system
        whose devices were modified in place.
        """
        self._compiled.clear()

    # ------------------------------------------------------------- diagnostics
    def describe(self) -> str:
        return (f"MNA system for {self.circuit.name!r}: {self.n_nodes} node voltages, "
                f"{self.n_branches} branch currents, {self.n_inputs} input(s), "
                f"{self.n_outputs} output(s)")

    def transfer_function(self, v: np.ndarray, frequencies: Sequence[float] | np.ndarray,
                          gmin: float = 0.0, assembly: str = "auto") -> np.ndarray:
        """Small-signal transfer functions about the point ``v``.

        Returns an array of shape ``(n_freq, n_outputs, n_inputs)`` containing
        ``D^T (G + s C)^{-1} B`` evaluated at ``s = j 2 pi f`` for every
        frequency ``f``.  This is the elementary operation behind both the AC
        analysis and the TFT extraction (paper eq. (3)).

        In ``"dense"``/small ``"auto"`` mode the whole frequency sweep is one
        batched LAPACK call; in sparse mode each frequency factorises
        ``G + s C`` once and solves all input columns together, and the
        per-frequency factorisations — which are independent of each other —
        are fanned across a thread pool (SuperLU releases the GIL inside the
        numerical factorisation).  Pass ``assembly="legacy"`` for the
        original per-frequency dense loop.

        A singular ``G + s C`` raises :class:`~repro.exceptions.
        SingularMatrixError` from every compiled mode (dense and sparse
        alike); only the legacy path keeps its historical
        ``numpy.linalg.LinAlgError``.
        """
        frequencies = np.asarray(frequencies, dtype=float).ravel()
        s_values = 2j * np.pi * frequencies
        result = np.empty((frequencies.size, self.n_outputs, self.n_inputs), dtype=complex)

        if assembly == "legacy":
            _, g_mat = self.eval_static(v)
            _, c_mat = self.eval_dynamic(v)
            if gmin:
                g_mat = g_mat + gmin * np.eye(self.n_unknowns)
            for idx, s in enumerate(s_values):
                solved = np.linalg.solve(g_mat + s * c_mat, self.input_matrix)
                result[idx] = self.output_matrix.T @ solved
            return result

        engine = self.compile(assembly)
        _, g_op = engine.eval_static(v)
        _, c_op = engine.eval_dynamic(v)
        if engine.is_sparse:
            from .linalg import solve_linear
            g_data = g_op.astype(complex, copy=True)
            if gmin:
                engine.add_diag(g_data, gmin, self.n_unknowns)
            b_cols = self.input_matrix.astype(complex)
            d_mat = self.output_matrix.T

            def solve_one(idx: int) -> None:
                matrix = engine.materialize(g_data + s_values[idx] * c_op)
                result[idx] = d_mat @ solve_linear(matrix, b_cols)

            n_freq = s_values.size
            workers = min(n_freq, _os.cpu_count() or 1, _MAX_TRANSFER_THREADS)
            if workers < 2 or n_freq < 4:
                for idx in range(n_freq):
                    solve_one(idx)
            else:
                # Each thread writes a disjoint result slice, so the output
                # is deterministic regardless of completion order; list()
                # drains the map and re-raises the first worker exception.
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    list(pool.map(solve_one, range(n_freq)))
            return result

        from ..exceptions import SingularMatrixError
        from .linalg import batched_transfer
        g_mat = np.array(g_op, copy=True)
        if gmin:
            engine.add_diag(g_mat, gmin, self.n_unknowns)
        try:
            return batched_transfer(g_mat, c_op, s_values,
                                    self.input_matrix, self.output_matrix)
        except np.linalg.LinAlgError as exc:
            # Same typed error as the sparse branch, so the exception a caller
            # must catch does not flip with the circuit size in "auto" mode.
            raise SingularMatrixError(
                "(G + sC) is singular at one of the swept frequencies") from exc
