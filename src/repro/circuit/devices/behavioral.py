"""Behavioural nonlinear elements with closed-form constitutive relations.

These elements are primarily used by the test-suite and the smaller example
circuits: because their I-V relations (and hence their small-signal
conductances) are known analytically, the Jacobian snapshots and transfer
function trajectories extracted from circuits built out of them can be checked
against hand-derived expressions.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ...exceptions import CircuitError
from .base import Device, TwoTerminal, add_at, add_jac

__all__ = ["PolynomialConductance", "TanhTransconductor", "CubicConductance"]


class PolynomialConductance(TwoTerminal):
    """Two-terminal element with ``i(v) = sum_k coeffs[k] * v**k``.

    ``coeffs[0]`` is a constant current offset, ``coeffs[1]`` a linear
    conductance and higher orders introduce polynomial nonlinearity.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 coefficients: Sequence[float]) -> None:
        super().__init__(name, node_pos, node_neg)
        coeffs = [float(c) for c in coefficients]
        if not coeffs:
            raise CircuitError(f"{name}: at least one polynomial coefficient is required")
        self.coefficients = coeffs

    def is_nonlinear(self) -> bool:
        return len(self.coefficients) > 2

    def is_nonlinear_dynamic(self) -> bool:
        return False  # no dynamic stamps

    def current(self, voltage: float) -> float:
        return float(sum(c * voltage ** k for k, c in enumerate(self.coefficients)))

    def conductance(self, voltage: float) -> float:
        return float(sum(k * c * voltage ** (k - 1)
                         for k, c in enumerate(self.coefficients) if k >= 1))

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        vd = self.branch_voltage(v)
        self.stamp_current(i_out, self.current(vd))
        self.stamp_conductance(g_out, self.conductance(vd))


class CubicConductance(TwoTerminal):
    """Saturating conductance ``i = g1 * v - g3 * v**3`` (useful up to |v| < sqrt(g1/3g3)).

    This mimics the compressive large-signal behaviour of a differential pair
    in a compact two-terminal form, which makes it a convenient stand-in for
    "strongly nonlinear saturation" in unit tests.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 g1: float, g3: float) -> None:
        super().__init__(name, node_pos, node_neg)
        if g1 <= 0.0 or g3 < 0.0:
            raise CircuitError(f"{name}: require g1 > 0 and g3 >= 0")
        self.g1 = float(g1)
        self.g3 = float(g3)

    def is_nonlinear(self) -> bool:
        return self.g3 > 0.0

    def is_nonlinear_dynamic(self) -> bool:
        return False  # no dynamic stamps

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        vd = self.branch_voltage(v)
        current = self.g1 * vd - self.g3 * vd ** 3
        conductance = self.g1 - 3.0 * self.g3 * vd ** 2
        self.stamp_current(i_out, current)
        self.stamp_conductance(g_out, conductance)


class TanhTransconductor(Device):
    """Voltage-controlled current source with a saturating tanh characteristic.

    ``i(out) = i_max * tanh(gm * v(ctrl) / i_max)`` flowing from ``out_pos``
    through the element to ``out_neg``.  This is the textbook large-signal
    model of a differential pair and is used to build fast behavioural
    equivalents of the output-buffer stages.
    Terminal order: ``(out_pos, out_neg, ctrl_pos, ctrl_neg)``.
    """

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str,
                 transconductance: float, max_current: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        if transconductance <= 0.0 or max_current <= 0.0:
            raise CircuitError(f"{name}: transconductance and max_current must be positive")
        self.transconductance = float(transconductance)
        self.max_current = float(max_current)

    def is_nonlinear(self) -> bool:
        return True

    def is_nonlinear_dynamic(self) -> bool:
        return False  # no dynamic stamps

    def current_and_gm(self, v_ctrl: float) -> tuple[float, float]:
        x = self.transconductance * v_ctrl / self.max_current
        current = self.max_current * math.tanh(x)
        gm = self.transconductance * (1.0 - math.tanh(x) ** 2)
        return current, gm

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        op, on, cp, cn = self.node_index
        v_ctrl = (v[cp] if cp >= 0 else 0.0) - (v[cn] if cn >= 0 else 0.0)
        current, gm = self.current_and_gm(v_ctrl)
        add_at(i_out, op, current)
        add_at(i_out, on, -current)
        add_jac(g_out, op, cp, gm)
        add_jac(g_out, op, cn, -gm)
        add_jac(g_out, on, cp, -gm)
        add_jac(g_out, on, cn, gm)
