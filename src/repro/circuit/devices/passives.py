"""Linear passive elements: resistor, capacitor, inductor and lossy variants."""

from __future__ import annotations

import numpy as np

from ...exceptions import CircuitError
from .base import TwoTerminal, add_at, add_jac

__all__ = ["Resistor", "Capacitor", "Inductor"]


class Resistor(TwoTerminal):
    """Linear resistor ``i = (v_pos - v_neg) / resistance``."""

    def __init__(self, name: str, node_pos: str, node_neg: str, resistance: float) -> None:
        super().__init__(name, node_pos, node_neg)
        resistance = float(resistance)
        if resistance <= 0.0:
            raise CircuitError(f"{name}: resistance must be positive, got {resistance}")
        self.resistance = resistance

    @property
    def conductance(self) -> float:
        return 1.0 / self.resistance

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        g = self.conductance
        self.stamp_current(i_out, g * self.branch_voltage(v))
        self.stamp_conductance(g_out, g)


class Capacitor(TwoTerminal):
    """Linear capacitor ``q = capacitance * (v_pos - v_neg)``.

    An optional ``initial_voltage`` is used by the transient solver when the
    user requests ``use_initial_conditions=True``.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, capacitance: float,
                 initial_voltage: float | None = None) -> None:
        super().__init__(name, node_pos, node_neg)
        capacitance = float(capacitance)
        if capacitance <= 0.0:
            raise CircuitError(f"{name}: capacitance must be positive, got {capacitance}")
        self.capacitance = capacitance
        self.initial_voltage = initial_voltage

    def stamp_dynamic(self, v: np.ndarray, q_out: np.ndarray, c_out: np.ndarray) -> None:
        c = self.capacitance
        charge = c * self.branch_voltage(v)
        add_at(q_out, self.pos, charge)
        add_at(q_out, self.neg, -charge)
        add_jac(c_out, self.pos, self.pos, c)
        add_jac(c_out, self.neg, self.neg, c)
        add_jac(c_out, self.pos, self.neg, -c)
        add_jac(c_out, self.neg, self.pos, -c)


class Inductor(TwoTerminal):
    """Linear inductor modelled with an explicit branch-current unknown.

    The branch current ``i_L`` is appended to the unknown vector.  Its KCL
    contribution is static (the current flows between the terminal nodes) and
    its constitutive equation ``v_pos - v_neg - L di_L/dt = 0`` contributes a
    flux ``-L i_L`` to the dynamic part of the branch row.
    """

    n_branch = 1

    def __init__(self, name: str, node_pos: str, node_neg: str, inductance: float,
                 initial_current: float | None = None) -> None:
        super().__init__(name, node_pos, node_neg)
        inductance = float(inductance)
        if inductance <= 0.0:
            raise CircuitError(f"{name}: inductance must be positive, got {inductance}")
        self.inductance = inductance
        self.initial_current = initial_current

    @property
    def branch(self) -> int:
        return self.branch_index[0]

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        br = self.branch
        i_l = v[br]
        # KCL: the branch current leaves the positive node and enters the
        # negative node.
        add_at(i_out, self.pos, i_l)
        add_at(i_out, self.neg, -i_l)
        add_jac(g_out, self.pos, br, 1.0)
        add_jac(g_out, self.neg, br, -1.0)
        # Branch equation (static part): v_pos - v_neg ...
        add_at(i_out, br, self.branch_voltage(v))
        add_jac(g_out, br, self.pos, 1.0)
        add_jac(g_out, br, self.neg, -1.0)

    def stamp_dynamic(self, v: np.ndarray, q_out: np.ndarray, c_out: np.ndarray) -> None:
        br = self.branch
        # ... minus the flux derivative: d/dt(-L * i_L).
        add_at(q_out, br, -self.inductance * v[br])
        add_jac(c_out, br, br, -self.inductance)
