"""Square-law MOSFET with smooth triode/saturation transition.

The paper's demonstrator (a chain of four differential amplifiers in UMC
0.13 µm CMOS) uses foundry BSIM models inside ELDO.  Foundry model cards are
proprietary, so this reproduction uses a level-1-style square-law model with

* a smooth-max effective overdrive (no kink at threshold),
* an EKV-like ``tanh`` interpolation between triode and saturation (no kink at
  ``v_ds = v_ov``), and
* channel-length modulation.

The smoothness matters twice: it keeps the transient Newton iterations robust
and it yields continuously varying Jacobians ``G(k)``, which is precisely the
state dependence the Transfer Function Trajectory extraction samples.  The
charge model uses constant gate capacitances derived from the gate area
(a simplified Meyer model), which is sufficient because the dominant
nonlinearity of the buffer is the transconductance saturation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ...exceptions import CircuitError
from .base import Device, add_at, add_jac

__all__ = ["MOSFETParams", "MOSFET", "NMOS", "PMOS"]


@dataclass
class MOSFETParams:
    """Technology/geometry parameters of the square-law MOSFET.

    The defaults approximate a generic 0.13 µm CMOS process: ``kp`` is the
    process transconductance (µCox), ``vto`` the threshold voltage, ``lam``
    the channel-length-modulation coefficient and ``cox`` the gate-oxide
    capacitance per unit area.
    """

    width: float = 1e-6
    length: float = 0.13e-6
    kp: float = 300e-6
    vto: float = 0.35
    lam: float = 0.15
    cox: float = 8e-3
    cgs_overlap: float = 0.3e-9   # F per metre of width
    cgd_overlap: float = 0.3e-9   # F per metre of width
    cjd: float = 1e-15            # drain junction capacitance (constant)
    cjs: float = 1e-15            # source junction capacitance (constant)
    smoothing: float = 5e-3       # overdrive smoothing voltage

    def __post_init__(self) -> None:
        if self.width <= 0 or self.length <= 0:
            raise CircuitError("MOSFET width and length must be positive")
        if self.kp <= 0:
            raise CircuitError("MOSFET kp must be positive")
        if self.smoothing <= 0:
            raise CircuitError("MOSFET smoothing voltage must be positive")

    @property
    def beta(self) -> float:
        """Device transconductance factor ``kp * W / L``."""
        return self.kp * self.width / self.length

    @property
    def cgs(self) -> float:
        """Gate-source capacitance: 2/3 of the channel capacitance + overlap."""
        return (2.0 / 3.0) * self.cox * self.width * self.length + self.cgs_overlap * self.width

    @property
    def cgd(self) -> float:
        """Gate-drain capacitance: overlap only (saturation-dominated operation)."""
        return self.cgd_overlap * self.width


def _smooth_max(x: float, delta: float) -> tuple[float, float]:
    """Smooth approximation of ``max(x, 0)`` and its derivative."""
    root = math.sqrt(x * x + 4.0 * delta * delta)
    value = 0.5 * (x + root)
    derivative = 0.5 * (1.0 + x / root)
    return value, derivative


class MOSFET(Device):
    """Four-terminal MOSFET; terminal order is ``(drain, gate, source, bulk)``.

    ``polarity`` is ``+1`` for NMOS and ``-1`` for PMOS.  The bulk terminal
    only receives capacitive stamps (no body effect, no junction diodes); in
    the provided example circuits the bulk is tied to the source (NMOS) or the
    supply (PMOS), which the square-law model is consistent with.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 params: MOSFETParams | None = None, polarity: int = 1,
                 **param_overrides: float) -> None:
        super().__init__(name, (drain, gate, source, bulk))
        if polarity not in (+1, -1):
            raise CircuitError(f"{name}: polarity must be +1 (NMOS) or -1 (PMOS)")
        if params is None:
            params = MOSFETParams(**param_overrides)
        elif param_overrides:
            raise CircuitError(f"{name}: pass either params or keyword overrides, not both")
        self.params = params
        self.polarity = polarity

    def is_nonlinear(self) -> bool:
        return True

    def is_nonlinear_dynamic(self) -> bool:
        # The simplified Meyer charge model uses constant capacitances, so the
        # dynamic stamps are linear even though the drain current is not.
        return False

    # ------------------------------------------------------------------ model
    def drain_current(self, vgs: float, vds: float) -> tuple[float, float, float]:
        """Drain current and small-signal parameters ``(id, gm, gds)``.

        The voltages are the *polarity-normalised* gate-source and
        drain-source voltages (i.e. already multiplied by ``polarity``);
        ``vds`` may be negative, in which case drain and source roles are
        swapped internally and the returned ``gm``/``gds`` refer to the
        original terminals.
        """
        if vds >= 0.0:
            i_d, gm, gds, gms = self._forward_current(vgs, vds)
            return i_d, gm, gds
        # Reverse operation: exchange drain and source.  The physical current
        # flows source -> drain; derivatives map back to the original nodes.
        i_r, gm_r, gds_r, gms_r = self._forward_current(vgs - vds, -vds)
        i_d = -i_r
        # d(id)/d(vgs) with vgd = vgs - vds held via chain rule:
        gm = -gm_r
        gds = gm_r + gds_r + gms_r
        return i_d, gm, gds

    def _forward_current(self, vgs: float, vds: float) -> tuple[float, float, float, float]:
        """Square-law current for ``vds >= 0``; returns ``(id, gm, gds, gms)``.

        ``gms`` is the derivative with respect to the source voltage beyond the
        ``-(gm+gds)`` implied by the differential pair of arguments; it is zero
        for this model but kept for clarity of the reverse-mode mapping.
        """
        p = self.params
        vov, dvov = _smooth_max(vgs - p.vto, p.smoothing)
        vdsat = max(vov, p.smoothing)
        u = vds / vdsat
        tanh_u = math.tanh(u)
        sech2 = 1.0 - tanh_u * tanh_u
        vds_eff = vdsat * tanh_u
        dveff_dvds = sech2
        dveff_dvdsat = tanh_u - u * sech2
        dvdsat_dvgs = dvov if vov > p.smoothing else 0.0

        f = (vov - 0.5 * vds_eff) * vds_eff
        df_dvdseff = vov - vds_eff
        df_dvov = vds_eff

        clm = 1.0 + p.lam * vds
        i_d = p.beta * f * clm
        di_dvgs = p.beta * (df_dvov * dvov + df_dvdseff * dveff_dvdsat * dvdsat_dvgs) * clm
        di_dvds = p.beta * df_dvdseff * dveff_dvds * clm + p.beta * f * p.lam
        return i_d, di_dvgs, di_dvds, 0.0

    def operating_point(self, v: np.ndarray) -> dict[str, float]:
        """Small-signal quantities at the solution ``v`` (useful for reports)."""
        vd, vg, vs, _vb = (v[i] if i >= 0 else 0.0 for i in self.node_index)
        sign = self.polarity
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        i_d, gm, gds = self.drain_current(vgs, vds)
        return {
            "id": sign * i_d,
            "gm": gm,
            "gds": gds,
            "vgs": vgs,
            "vds": vds,
            "vov": vgs - self.params.vto,
        }

    # ---------------------------------------------------------------- stamping
    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        d, g, s, _b = self.node_index
        vd = v[d] if d >= 0 else 0.0
        vg = v[g] if g >= 0 else 0.0
        vs = v[s] if s >= 0 else 0.0
        sign = self.polarity
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        i_d, gm, gds = self.drain_current(vgs, vds)

        # Physical drain current (flows into the drain terminal for NMOS).
        current = sign * i_d
        add_at(i_out, d, current)
        add_at(i_out, s, -current)

        # Conductance stamps: d(current at drain)/d(node voltages).  The sign
        # normalisation cancels (sign**2 == 1) so gm/gds stamp identically for
        # NMOS and PMOS.
        add_jac(g_out, d, g, gm)
        add_jac(g_out, d, d, gds)
        add_jac(g_out, d, s, -(gm + gds))
        add_jac(g_out, s, g, -gm)
        add_jac(g_out, s, d, -gds)
        add_jac(g_out, s, s, gm + gds)

    def stamp_dynamic(self, v: np.ndarray, q_out: np.ndarray, c_out: np.ndarray) -> None:
        d, g, s, b = self.node_index
        p = self.params
        self._stamp_linear_cap(v, q_out, c_out, g, s, p.cgs)
        self._stamp_linear_cap(v, q_out, c_out, g, d, p.cgd)
        self._stamp_linear_cap(v, q_out, c_out, d, b, p.cjd)
        self._stamp_linear_cap(v, q_out, c_out, s, b, p.cjs)

    @staticmethod
    def _stamp_linear_cap(v: np.ndarray, q_out: np.ndarray, c_out: np.ndarray,
                          node_a: int, node_b: int, capacitance: float) -> None:
        if capacitance <= 0.0:
            return
        va = v[node_a] if node_a >= 0 else 0.0
        vb = v[node_b] if node_b >= 0 else 0.0
        charge = capacitance * (va - vb)
        add_at(q_out, node_a, charge)
        add_at(q_out, node_b, -charge)
        add_jac(c_out, node_a, node_a, capacitance)
        add_jac(c_out, node_b, node_b, capacitance)
        add_jac(c_out, node_a, node_b, -capacitance)
        add_jac(c_out, node_b, node_a, -capacitance)


class NMOS(MOSFET):
    """N-channel MOSFET (``polarity = +1``)."""

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 params: MOSFETParams | None = None, **param_overrides: float) -> None:
        super().__init__(name, drain, gate, source, bulk, params=params,
                         polarity=+1, **param_overrides)


class PMOS(MOSFET):
    """P-channel MOSFET (``polarity = -1``)."""

    def __init__(self, name: str, drain: str, gate: str, source: str, bulk: str,
                 params: MOSFETParams | None = None, **param_overrides: float) -> None:
        super().__init__(name, drain, gate, source, bulk, params=params,
                         polarity=-1, **param_overrides)
