"""Device base classes and stamping helpers for the MNA simulator.

Every circuit element derives from :class:`Device` and contributes to the
modified-nodal-analysis (MNA) description of the circuit

.. math::

    \\frac{d}{dt} q(v) + i(v) = B\\,u(t) + b_{fixed}(t), \\qquad y = D^T v

by *stamping* into dense NumPy arrays:

* ``i``/``G`` — static (resistive) currents and their Jacobian ``G = di/dv``,
* ``q``/``C`` — charges/fluxes and their Jacobian ``C = dq/dv``,
* ``b`` — time-dependent excitations of non-input sources,
* ``B`` — incidence column(s) of the designated circuit inputs.

Node indices follow the convention that the ground node has index ``-1`` and
is simply skipped when stamping; all other unknowns use indices
``0 .. n_unknowns-1`` (node voltages first, then branch currents).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ...exceptions import CircuitError

__all__ = ["Device", "TwoTerminal", "add_at", "add_jac"]

GROUND = -1


def add_at(vector: np.ndarray, index: int, value: float) -> None:
    """Add ``value`` to ``vector[index]`` unless the index is the ground node."""
    if index >= 0:
        vector[index] += value


def add_jac(matrix: np.ndarray, row: int, col: int, value: float) -> None:
    """Add ``value`` to ``matrix[row, col]`` unless either index is ground."""
    if row >= 0 and col >= 0:
        matrix[row, col] += value


class Device:
    """Base class for all circuit elements.

    Parameters
    ----------
    name:
        Unique element name within the circuit (SPICE style, e.g. ``"R1"``).
    nodes:
        Node *names* the element connects to, in the element's own terminal
        order.
    """

    #: Number of extra branch-current unknowns this device introduces.
    n_branch = 0

    def __init__(self, name: str, nodes: Sequence[str]) -> None:
        if not name:
            raise CircuitError("device name must be a non-empty string")
        self.name = str(name)
        self.nodes = tuple(str(n) for n in nodes)
        # Resolved unknown indices, filled in by :meth:`bind`.
        self._node_index: tuple[int, ...] = ()
        self._branch_index: tuple[int, ...] = ()

    # ------------------------------------------------------------------ binding
    def bind(self, node_map: Mapping[str, int], branch_start: int) -> None:
        """Resolve node names to unknown indices.

        ``branch_start`` is the index of the first branch unknown allocated to
        this device (only meaningful when :attr:`n_branch` is non-zero).
        """
        try:
            self._node_index = tuple(node_map[n] for n in self.nodes)
        except KeyError as exc:  # pragma: no cover - guarded by Circuit
            raise CircuitError(f"{self.name}: unknown node {exc}") from exc
        self._branch_index = tuple(range(branch_start, branch_start + self.n_branch))

    @property
    def node_index(self) -> tuple[int, ...]:
        if not self._node_index and self.nodes:
            raise CircuitError(f"{self.name}: device has not been bound to a circuit")
        return self._node_index

    @property
    def branch_index(self) -> tuple[int, ...]:
        return self._branch_index

    # ---------------------------------------------------------------- stamping
    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        """Add the device's static currents ``i(v)`` and Jacobian ``di/dv``."""

    def stamp_dynamic(self, v: np.ndarray, q_out: np.ndarray, c_out: np.ndarray) -> None:
        """Add the device's charges/fluxes ``q(v)`` and Jacobian ``dq/dv``."""

    def stamp_rhs(self, t: float, b_out: np.ndarray) -> None:
        """Add the device's independent excitation at time ``t`` to ``b``."""

    # --------------------------------------------------------------- utilities
    def voltage(self, v: np.ndarray, terminal_a: int, terminal_b: int) -> float:
        """Voltage between two of the device's terminals given the solution ``v``."""
        idx = self.node_index
        va = v[idx[terminal_a]] if idx[terminal_a] >= 0 else 0.0
        vb = v[idx[terminal_b]] if idx[terminal_b] >= 0 else 0.0
        return float(va - vb)

    def is_nonlinear(self) -> bool:
        """Whether the device has state-dependent Jacobians (default: linear)."""
        return False

    def is_nonlinear_static(self) -> bool:
        """Whether the *static* stamps depend on the solution.

        Devices returning ``False`` promise affine static stamps — a constant
        conductance Jacobian and currents of the form ``i(0) + G v`` — which
        lets the compiled assembly (:mod:`repro.circuit.assembly`) stamp them
        once instead of on every Newton iteration.
        """
        return self.is_nonlinear()

    def is_nonlinear_dynamic(self) -> bool:
        """Whether the *dynamic* stamps depend on the solution.

        Analogous to :meth:`is_nonlinear_static` for the charge stamps; e.g.
        the square-law MOSFET is statically nonlinear but uses constant gate
        capacitances, so its dynamic stamps compile to a constant matrix.
        """
        return self.is_nonlinear()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        nodes = ",".join(self.nodes)
        return f"<{type(self).__name__} {self.name} ({nodes})>"


class TwoTerminal(Device):
    """Convenience base class for elements with a positive and negative node."""

    def __init__(self, name: str, node_pos: str, node_neg: str) -> None:
        super().__init__(name, (node_pos, node_neg))

    @property
    def pos(self) -> int:
        return self.node_index[0]

    @property
    def neg(self) -> int:
        return self.node_index[1]

    def branch_voltage(self, v: np.ndarray) -> float:
        """Voltage across the element, positive node minus negative node."""
        return self.voltage(v, 0, 1)

    def stamp_conductance(self, g_out: np.ndarray, g: float) -> None:
        """Stamp a (possibly incremental) conductance ``g`` between the nodes."""
        add_jac(g_out, self.pos, self.pos, g)
        add_jac(g_out, self.neg, self.neg, g)
        add_jac(g_out, self.pos, self.neg, -g)
        add_jac(g_out, self.neg, self.pos, -g)

    def stamp_current(self, i_out: np.ndarray, current: float) -> None:
        """Stamp a current flowing from the positive to the negative node."""
        add_at(i_out, self.pos, current)
        add_at(i_out, self.neg, -current)
