"""Device library for the MNA circuit simulator."""

from .base import Device, TwoTerminal
from .behavioral import CubicConductance, PolynomialConductance, TanhTransconductor
from .diode import Diode
from .mosfet import MOSFET, NMOS, PMOS, MOSFETParams
from .passives import Capacitor, Inductor, Resistor
from .sources import VCCS, VCVS, CurrentSource, VoltageSource

__all__ = [
    "Device",
    "TwoTerminal",
    "Resistor",
    "Capacitor",
    "Inductor",
    "VoltageSource",
    "CurrentSource",
    "VCVS",
    "VCCS",
    "Diode",
    "MOSFET",
    "NMOS",
    "PMOS",
    "MOSFETParams",
    "PolynomialConductance",
    "CubicConductance",
    "TanhTransconductor",
]
