"""Independent and controlled sources.

Independent sources may be flagged as *circuit inputs* (``is_input=True``).
Input sources do not write their value into the fixed excitation vector;
instead they expose a unit incidence column which the MNA builder collects
into the input matrix ``B`` of the state-space description

.. math:: \\frac{d}{dt} q(v) + i(v) = B\\,u(t) + b_{fixed}(t).

That separation is what the transfer-function-trajectory (TFT) extraction
needs: ``B`` maps the *signal* inputs ``u(t)`` to the internal nodes, while
supplies and bias sources stay inside ``b_fixed``.
"""

from __future__ import annotations

import numpy as np

from ...exceptions import CircuitError
from .base import Device, TwoTerminal, add_at, add_jac
from ..waveforms import DC, Waveform

__all__ = ["VoltageSource", "CurrentSource", "VCVS", "VCCS"]


def _as_waveform(value: float | Waveform) -> Waveform:
    if isinstance(value, Waveform):
        return value
    return DC(float(value))


class VoltageSource(TwoTerminal):
    """Independent voltage source with an extra branch-current unknown.

    The branch row enforces ``v_pos - v_neg = value(t)``; the KCL rows route
    the branch current out of the positive node and into the negative node.
    """

    n_branch = 1

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 value: float | Waveform = 0.0, is_input: bool = False) -> None:
        super().__init__(name, node_pos, node_neg)
        self.waveform = _as_waveform(value)
        self.is_input = bool(is_input)

    @property
    def branch(self) -> int:
        return self.branch_index[0]

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        br = self.branch
        i_src = v[br]
        add_at(i_out, self.pos, i_src)
        add_at(i_out, self.neg, -i_src)
        add_jac(g_out, self.pos, br, 1.0)
        add_jac(g_out, self.neg, br, -1.0)
        add_at(i_out, br, self.branch_voltage(v))
        add_jac(g_out, br, self.pos, 1.0)
        add_jac(g_out, br, self.neg, -1.0)

    def stamp_rhs(self, t: float, b_out: np.ndarray) -> None:
        if not self.is_input:
            add_at(b_out, self.branch, self.waveform(t))

    def input_incidence(self, n_unknowns: int) -> np.ndarray:
        """Unit column mapping this input onto the branch constraint row."""
        column = np.zeros(n_unknowns)
        add_at(column, self.branch, 1.0)
        return column

    def current(self, v: np.ndarray) -> float:
        """Current delivered by the source (flowing out of the positive node)."""
        return float(-v[self.branch])


class CurrentSource(TwoTerminal):
    """Independent current source.

    Positive ``value`` drives a current from the positive node through the
    source to the negative node (SPICE convention), i.e. it *extracts* current
    from the positive node.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str,
                 value: float | Waveform = 0.0, is_input: bool = False) -> None:
        super().__init__(name, node_pos, node_neg)
        self.waveform = _as_waveform(value)
        self.is_input = bool(is_input)

    def stamp_rhs(self, t: float, b_out: np.ndarray) -> None:
        if not self.is_input:
            value = self.waveform(t)
            add_at(b_out, self.pos, -value)
            add_at(b_out, self.neg, value)

    def input_incidence(self, n_unknowns: int) -> np.ndarray:
        column = np.zeros(n_unknowns)
        add_at(column, self.pos, -1.0)
        add_at(column, self.neg, 1.0)
        return column


class VCVS(Device):
    """Voltage-controlled voltage source ``v(out) = gain * v(ctrl)``.

    Terminal order: ``(out_pos, out_neg, ctrl_pos, ctrl_neg)``.
    """

    n_branch = 1

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, gain: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.gain = float(gain)

    @property
    def branch(self) -> int:
        return self.branch_index[0]

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        op, on, cp, cn = self.node_index
        br = self.branch
        i_src = v[br]
        add_at(i_out, op, i_src)
        add_at(i_out, on, -i_src)
        add_jac(g_out, op, br, 1.0)
        add_jac(g_out, on, br, -1.0)
        v_out = (v[op] if op >= 0 else 0.0) - (v[on] if on >= 0 else 0.0)
        v_ctrl = (v[cp] if cp >= 0 else 0.0) - (v[cn] if cn >= 0 else 0.0)
        add_at(i_out, br, v_out - self.gain * v_ctrl)
        add_jac(g_out, br, op, 1.0)
        add_jac(g_out, br, on, -1.0)
        add_jac(g_out, br, cp, -self.gain)
        add_jac(g_out, br, cn, self.gain)


class VCCS(Device):
    """Voltage-controlled current source ``i(out) = gm * v(ctrl)``.

    Terminal order: ``(out_pos, out_neg, ctrl_pos, ctrl_neg)``.  The current
    flows from ``out_pos`` through the source to ``out_neg``.
    """

    def __init__(self, name: str, out_pos: str, out_neg: str,
                 ctrl_pos: str, ctrl_neg: str, transconductance: float) -> None:
        super().__init__(name, (out_pos, out_neg, ctrl_pos, ctrl_neg))
        self.transconductance = float(transconductance)
        if self.transconductance == 0.0:
            raise CircuitError(f"{name}: transconductance must be non-zero")

    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        op, on, cp, cn = self.node_index
        gm = self.transconductance
        v_ctrl = (v[cp] if cp >= 0 else 0.0) - (v[cn] if cn >= 0 else 0.0)
        current = gm * v_ctrl
        add_at(i_out, op, current)
        add_at(i_out, on, -current)
        add_jac(g_out, op, cp, gm)
        add_jac(g_out, op, cn, -gm)
        add_jac(g_out, on, cp, -gm)
        add_jac(g_out, on, cn, gm)
