"""Junction diode with exponential I-V and nonlinear junction/diffusion charge."""

from __future__ import annotations

import math

import numpy as np

from ...exceptions import CircuitError
from .base import TwoTerminal, add_at, add_jac

__all__ = ["Diode"]

#: Thermal voltage at ~300 K.
THERMAL_VOLTAGE = 0.02585


class Diode(TwoTerminal):
    """Shockley diode ``i = Is (exp(v / (n Vt)) - 1)`` with charge storage.

    To keep Newton iterations bounded, the exponential is linearised above a
    critical voltage ``v_crit`` (the standard SPICE treatment).  The charge
    model combines a depletion (junction) capacitance

    .. math:: C_j(v) = C_{j0} (1 - v/V_j)^{-m}, \\qquad v < f_c V_j

    (linearised beyond ``f_c V_j``) with a diffusion capacitance
    ``C_d = \\tau_t \\cdot g_d``.  Both the current and the charge are therefore
    genuinely nonlinear, which exercises the state dependence of both MNA
    Jacobians ``G(k)`` and ``C(k)`` used by the TFT extraction.
    """

    def __init__(self, name: str, node_pos: str, node_neg: str, *,
                 saturation_current: float = 1e-14, emission_coefficient: float = 1.0,
                 series_resistance: float = 0.0, junction_capacitance: float = 0.0,
                 junction_potential: float = 0.8, grading_coefficient: float = 0.5,
                 transit_time: float = 0.0, forward_bias_threshold: float = 0.5) -> None:
        super().__init__(name, node_pos, node_neg)
        if saturation_current <= 0.0:
            raise CircuitError(f"{name}: saturation current must be positive")
        if not 0.0 < grading_coefficient < 1.0:
            raise CircuitError(f"{name}: grading coefficient must lie in (0, 1)")
        self.saturation_current = float(saturation_current)
        self.emission_coefficient = float(emission_coefficient)
        self.series_resistance = float(series_resistance)
        self.junction_capacitance = float(junction_capacitance)
        self.junction_potential = float(junction_potential)
        self.grading_coefficient = float(grading_coefficient)
        self.transit_time = float(transit_time)
        self.forward_bias_threshold = float(forward_bias_threshold)
        self._vt = self.emission_coefficient * THERMAL_VOLTAGE
        # Critical voltage above which the exponential is linearised.
        self._v_crit = self._vt * math.log(self._vt / (math.sqrt(2.0) * self.saturation_current))

    def is_nonlinear(self) -> bool:
        return True

    def is_nonlinear_dynamic(self) -> bool:
        # Charge storage is nonlinear only when the diode actually stores
        # charge; without it the dynamic stamps are empty (trivially linear).
        return self.junction_capacitance > 0.0 or self.transit_time > 0.0

    # ------------------------------------------------------------------ models
    def current_and_conductance(self, vd: float) -> tuple[float, float]:
        """Diode current and incremental conductance at junction voltage ``vd``."""
        i_s, vt = self.saturation_current, self._vt
        if vd <= self._v_crit:
            expv = math.exp(min(vd / vt, 700.0))
            current = i_s * (expv - 1.0)
            conductance = i_s * expv / vt
        else:
            # Linear extrapolation beyond v_crit keeps Newton steps finite.
            exp_crit = math.exp(self._v_crit / vt)
            g_crit = i_s * exp_crit / vt
            i_crit = i_s * (exp_crit - 1.0)
            current = i_crit + g_crit * (vd - self._v_crit)
            conductance = g_crit
        # A tiny parallel conductance avoids an exactly singular Jacobian when
        # the diode is strongly reverse biased.
        conductance += 1e-12
        current += 1e-12 * vd
        return current, conductance

    def charge_and_capacitance(self, vd: float) -> tuple[float, float]:
        """Stored charge and incremental capacitance at junction voltage ``vd``."""
        charge = 0.0
        capacitance = 0.0
        cj0 = self.junction_capacitance
        if cj0 > 0.0:
            vj = self.junction_potential
            m = self.grading_coefficient
            fc = 0.5
            v_lin = fc * vj
            if vd < v_lin:
                factor = (1.0 - vd / vj) ** (-m)
                capacitance += cj0 * factor
                charge += cj0 * vj / (1.0 - m) * (1.0 - (1.0 - vd / vj) ** (1.0 - m))
            else:
                # Linearised depletion capacitance above fc*Vj (SPICE style).
                f1 = cj0 * vj / (1.0 - m) * (1.0 - (1.0 - fc) ** (1.0 - m))
                c_lin = cj0 * (1.0 - fc) ** (-1.0 - m)
                capacitance += c_lin * (1.0 - fc * (1.0 + m) + m * vd / vj)
                charge += f1 + c_lin * (
                    (1.0 - fc * (1.0 + m)) * (vd - v_lin)
                    + 0.5 * m / vj * (vd * vd - v_lin * v_lin))
        if self.transit_time > 0.0:
            current, conductance = self.current_and_conductance(vd)
            charge += self.transit_time * current
            capacitance += self.transit_time * conductance
        return charge, capacitance

    # ---------------------------------------------------------------- stamping
    def stamp_static(self, v: np.ndarray, i_out: np.ndarray, g_out: np.ndarray) -> None:
        vd = self.branch_voltage(v)
        current, conductance = self.current_and_conductance(vd)
        self.stamp_current(i_out, current)
        self.stamp_conductance(g_out, conductance)

    def stamp_dynamic(self, v: np.ndarray, q_out: np.ndarray, c_out: np.ndarray) -> None:
        vd = self.branch_voltage(v)
        charge, capacitance = self.charge_and_capacitance(vd)
        if capacitance == 0.0 and charge == 0.0:
            return
        add_at(q_out, self.pos, charge)
        add_at(q_out, self.neg, -charge)
        add_jac(c_out, self.pos, self.pos, capacitance)
        add_jac(c_out, self.neg, self.neg, capacitance)
        add_jac(c_out, self.pos, self.neg, -capacitance)
        add_jac(c_out, self.neg, self.pos, -capacitance)

    # ------------------------------------------------------------- Newton help
    def limit_voltage(self, v_new: float, v_old: float) -> float:
        """SPICE ``pnjlim``-style junction-voltage limiting for Newton steps."""
        vt = self._vt
        if v_new > self._v_crit and abs(v_new - v_old) > 2.0 * vt:
            if v_old > 0.0:
                arg = 1.0 + (v_new - v_old) / vt
                if arg > 0.0:
                    return v_old + vt * math.log(arg)
                return self._v_crit
            return vt * math.log(v_new / vt) if v_new > 0.0 else self._v_crit
        return v_new
