"""Compiled MNA assembly: pattern-cached sparse/dense Jacobian evaluation.

The legacy evaluation path (:meth:`repro.circuit.mna.MNASystem.eval_static` /
``eval_dynamic``) re-stamps *every* device into freshly zeroed dense matrices
on every Newton iteration.  Profiling shows that for realistic circuits this
per-device Python stamping — not the linear solve — dominates the transient
wall time.  :class:`CompiledMNA` removes that cost with three ideas:

1. **Linear stamps are compiled once.**  Devices whose stamps do not depend on
   the solution (resistors, capacitors, sources, inductors, controlled
   sources, the constant gate capacitances of the square-law MOSFET, ...)
   are probed a single time.  Their Jacobian contribution becomes a constant
   matrix and their current/charge contribution the affine map
   ``i_lin(v) = i(0) + G_lin v``.

2. **Square-law MOSFETs and Shockley diodes are evaluated vectorised.**
   All standard MOSFET (diode) instances of a circuit are grouped and their
   drain currents, ``gm`` and ``gds`` (junction currents and conductances)
   computed with NumPy array math in one pass, then scattered into the
   Jacobian through precomputed index arrays.

3. **One shared sparsity pattern.**  In sparse mode every matrix (``G``,
   ``C`` and any combination ``G + a C``) lives on a single CSC pattern that
   also contains the full diagonal, so Jacobian combination is plain vector
   arithmetic on the CSC ``data`` array and the LU factor cache
   (:class:`repro.circuit.linalg.FactorizationCache`) can compare matrices by
   their data vectors alone.

Small systems fall back to dense arrays (same compiled split, no CSC
indirection) because BLAS beats sparse overhead below a few dozen unknowns.

The compiled engine asserts its own correctness at build time by comparing a
full evaluation against the legacy dense path at a non-trivial test point.

Contract: a device whose :meth:`~repro.circuit.devices.base.Device.
is_nonlinear_static` (resp. ``is_nonlinear_dynamic``) returns ``False`` must
have affine static (resp. dynamic) stamps — constant Jacobian entries and
currents/charges of the form ``i(0) + J v``.  All built-in devices satisfy
this; the compile-time verification catches violations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np
import scipy.sparse as _sp

from ..exceptions import CircuitError
from .devices import Device
from .devices.diode import Diode
from .devices.mosfet import MOSFET

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .mna import MNASystem

__all__ = ["CompiledMNA", "LegacyEngine", "select_engine", "SPARSE_THRESHOLD"]

#: Systems with at least this many unknowns use the sparse CSC representation
#: in ``assembly="auto"`` mode; smaller systems use compiled dense arrays.
SPARSE_THRESHOLD = 64

#: Assembly mode names accepted by the analyses.
ASSEMBLY_MODES = ("auto", "dense", "sparse", "legacy")


class _TripletRecorder:
    """Array-like stamping target that records ``(row, col, value)`` triplets.

    Devices stamp Jacobians through ``matrix[row, col] += value`` (see
    :func:`repro.circuit.devices.base.add_jac`), which Python evaluates as a
    ``__getitem__`` followed by a ``__setitem__``.  Returning ``0.0`` from
    ``__getitem__`` therefore makes each in-place addition arrive here as one
    triplet; duplicate coordinates are summed when the pattern is built.
    """

    __slots__ = ("rows", "cols", "vals")

    def __init__(self) -> None:
        self.rows: list[int] = []
        self.cols: list[int] = []
        self.vals: list[float] = []

    def __getitem__(self, key) -> float:
        return 0.0

    def __setitem__(self, key, value) -> None:
        self.rows.append(key[0])
        self.cols.append(key[1])
        self.vals.append(value)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        return (np.asarray(self.rows, dtype=np.intp),
                np.asarray(self.cols, dtype=np.intp),
                np.asarray(self.vals, dtype=float))


def _record_stamps(devices: Sequence[Device], v: np.ndarray, n: int,
                   dynamic: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stamp ``devices`` at ``v`` into a vector and a triplet recorder."""
    vec = np.zeros(n)
    recorder = _TripletRecorder()
    for device in devices:
        if dynamic:
            device.stamp_dynamic(v, vec, recorder)
        else:
            device.stamp_static(v, vec, recorder)
    rows, cols, vals = recorder.arrays()
    return vec, rows, cols, vals


def _vectorizable_mosfet(device: Device) -> bool:
    """Standard square-law MOSFETs whose static stamps we can batch."""
    return (isinstance(device, MOSFET)
            and type(device).stamp_static is MOSFET.stamp_static
            and type(device).drain_current is MOSFET.drain_current
            and type(device)._forward_current is MOSFET._forward_current)


class _MOSFETGroup:
    """Vectorised static evaluation of a batch of square-law MOSFETs.

    Reproduces :meth:`MOSFET.stamp_static` (including the reverse-operation
    drain/source swap) with array math.  Ground terminals are mapped to a
    ghost slot ``n`` so gathers and scatters need no masking; the ghost slot
    of the current vector is discarded afterwards.
    """

    #: Jacobian stamp table of ``MOSFET.stamp_static``: (row key, col key,
    #: value row in the stacked ``(6, m)`` value matrix).
    _STAMPS = (("d", "g", 0), ("d", "d", 1), ("d", "s", 2),
               ("s", "g", 3), ("s", "d", 4), ("s", "s", 5))

    def __init__(self, devices: Sequence[MOSFET], n: int) -> None:
        self.devices = tuple(devices)
        self.n = n
        idx = {"d": [], "g": [], "s": []}
        for dev in devices:
            d, g, s, _b = dev.node_index
            idx["d"].append(d if d >= 0 else n)
            idx["g"].append(g if g >= 0 else n)
            idx["s"].append(s if s >= 0 else n)
        self._d = np.asarray(idx["d"], dtype=np.intp)
        self._g = np.asarray(idx["g"], dtype=np.intp)
        self._s = np.asarray(idx["s"], dtype=np.intp)
        self._sign = np.asarray([float(dev.polarity) for dev in devices])
        self._beta = np.asarray([dev.params.beta for dev in devices])
        self._vto = np.asarray([dev.params.vto for dev in devices])
        self._lam = np.asarray([dev.params.lam for dev in devices])
        self._delta = np.asarray([dev.params.smoothing for dev in devices])

    # ------------------------------------------------------------- structure
    def jacobian_entries(self) -> list[tuple[int, int, int, int]]:
        """Non-ground Jacobian stamp slots as ``(row, col, device, kind)``."""
        entries = []
        for k, dev in enumerate(self.devices):
            d, g, s, _b = dev.node_index
            nodes = {"d": d, "g": g, "s": s}
            for row_key, col_key, kind in self._STAMPS:
                row, col = nodes[row_key], nodes[col_key]
                if row >= 0 and col >= 0:
                    entries.append((row, col, k, kind))
        return entries

    # ------------------------------------------------------------ evaluation
    def currents_and_conductances(self, v_ext: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Terminal currents and the stacked ``(6, m)`` Jacobian values.

        ``v_ext`` is the solution vector extended with a trailing zero for the
        ghost (ground) slot.  The returned current array is the per-device
        physical drain current with the polarity sign applied.
        """
        vd, vg, vs = v_ext[self._d], v_ext[self._g], v_ext[self._s]
        sign = self._sign
        vgs = sign * (vg - vs)
        vds = sign * (vd - vs)
        reverse = vds < 0.0
        vgs_f = np.where(reverse, vgs - vds, vgs)
        vds_f = np.abs(vds)

        delta = self._delta
        x = vgs_f - self._vto
        root = np.sqrt(x * x + 4.0 * delta * delta)
        vov = 0.5 * (x + root)
        dvov = 0.5 * (1.0 + x / root)
        vdsat = np.maximum(vov, delta)
        u = vds_f / vdsat
        tanh_u = np.tanh(u)
        sech2 = 1.0 - tanh_u * tanh_u
        vds_eff = vdsat * tanh_u
        dveff_dvds = sech2
        dveff_dvdsat = tanh_u - u * sech2
        dvdsat_dvgs = np.where(vov > delta, dvov, 0.0)

        f = (vov - 0.5 * vds_eff) * vds_eff
        df_dvdseff = vov - vds_eff
        df_dvov = vds_eff

        clm = 1.0 + self._lam * vds_f
        beta = self._beta
        i_f = beta * f * clm
        gm_f = beta * (df_dvov * dvov + df_dvdseff * dveff_dvdsat * dvdsat_dvgs) * clm
        gds_f = beta * df_dvdseff * dveff_dvds * clm + beta * f * self._lam

        i_d = np.where(reverse, -i_f, i_f)
        gm = np.where(reverse, -gm_f, gm_f)
        gds = np.where(reverse, gm_f + gds_f, gds_f)

        current = sign * i_d
        gm_gds = gm + gds
        values = np.stack((gm, gds, -gm_gds, -gm, -gds, gm_gds))
        return current, values

    def scatter_currents(self, i_ext: np.ndarray, current: np.ndarray) -> None:
        np.add.at(i_ext, self._d, current)
        np.add.at(i_ext, self._s, -current)


def _vectorizable_diode(device: Device) -> bool:
    """Standard Shockley diodes whose static stamps we can batch."""
    return (isinstance(device, Diode)
            and type(device).stamp_static is Diode.stamp_static
            and type(device).current_and_conductance is Diode.current_and_conductance)


class _DiodeGroup:
    """Vectorised static evaluation of a batch of Shockley diodes.

    Reproduces :meth:`Diode.current_and_conductance` (exponential region,
    linearised extrapolation above ``v_crit`` and the tiny parallel
    conductance) with array math, exactly as :class:`_MOSFETGroup` does for
    the square-law MOSFET.  The nonlinear *dynamic* stamps (junction/
    diffusion charge) stay on the generic per-device path — they are absent
    for many diodes and far off the static Newton hot path.
    """

    #: Jacobian stamp table: (row key, col key, value row in the stacked
    #: ``(2, m)`` value matrix) — +g on the diagonal slots, -g off-diagonal.
    _STAMPS = (("p", "p", 0), ("n", "n", 0), ("p", "n", 1), ("n", "p", 1))

    def __init__(self, devices: Sequence[Diode], n: int) -> None:
        self.devices = tuple(devices)
        self.n = n
        self._pos = np.asarray([d.pos if d.pos >= 0 else n for d in devices],
                               dtype=np.intp)
        self._neg = np.asarray([d.neg if d.neg >= 0 else n for d in devices],
                               dtype=np.intp)
        self._i_s = np.asarray([d.saturation_current for d in devices])
        self._vt = np.asarray([d._vt for d in devices])
        self._v_crit = np.asarray([d._v_crit for d in devices])
        exp_crit = np.exp(self._v_crit / self._vt) if devices else np.zeros(0)
        self._g_crit = self._i_s * exp_crit / self._vt
        self._i_crit = self._i_s * (exp_crit - 1.0)

    # ------------------------------------------------------------- structure
    def jacobian_entries(self) -> list[tuple[int, int, int, int]]:
        """Non-ground Jacobian stamp slots as ``(row, col, device, kind)``."""
        entries = []
        for k, dev in enumerate(self.devices):
            nodes = {"p": dev.pos, "n": dev.neg}
            for row_key, col_key, kind in self._STAMPS:
                row, col = nodes[row_key], nodes[col_key]
                if row >= 0 and col >= 0:
                    entries.append((row, col, k, kind))
        return entries

    # ------------------------------------------------------------ evaluation
    def currents_and_conductances(self, v_ext: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Diode currents and the stacked ``(2, m)`` Jacobian values."""
        vd = v_ext[self._pos] - v_ext[self._neg]
        expv = np.exp(np.minimum(vd / self._vt, 700.0))
        below = vd <= self._v_crit
        current = np.where(below, self._i_s * (expv - 1.0),
                           self._i_crit + self._g_crit * (vd - self._v_crit))
        conductance = np.where(below, self._i_s * expv / self._vt, self._g_crit)
        # Same regularisation as the scalar model: a tiny parallel conductance
        # keeps strongly reverse-biased diodes off an exactly singular Jacobian.
        conductance = conductance + 1e-12
        current = current + 1e-12 * vd
        values = np.stack((conductance, -conductance))
        return current, values

    def scatter_currents(self, i_ext: np.ndarray, current: np.ndarray) -> None:
        np.add.at(i_ext, self._pos, current)
        np.add.at(i_ext, self._neg, -current)


class CompiledMNA:
    """Pattern-cached evaluator of one :class:`MNASystem`.

    The public interface (shared with :class:`LegacyEngine`) deals in opaque
    *matrix operands*: dense ``(n, n)`` arrays in dense mode, CSC ``data``
    vectors on the shared pattern in sparse mode.  Callers combine operands
    with :meth:`combine`, regularise with :meth:`add_diag` and turn them into
    a solvable/storable matrix with :meth:`materialize`.  Operands returned
    by the evaluation methods must be treated as read-only.
    """

    def __init__(self, system: "MNASystem", sparse: bool | None = None,
                 verify: bool = True) -> None:
        self.system = system
        self.n_unknowns = system.n_unknowns
        self.n_nodes = system.n_nodes
        if sparse is None:
            sparse = self.n_unknowns >= SPARSE_THRESHOLD
        self.is_sparse = bool(sparse)

        devices = list(system.circuit.devices)
        self._lin_static = [d for d in devices if not d.is_nonlinear_static()]
        nl_static = [d for d in devices if d.is_nonlinear_static()]
        self._mosfets = _MOSFETGroup([d for d in nl_static if _vectorizable_mosfet(d)],
                                     self.n_unknowns)
        self._diodes = _DiodeGroup([d for d in nl_static if _vectorizable_diode(d)],
                                   self.n_unknowns)
        self._nl_static = [d for d in nl_static
                           if not (_vectorizable_mosfet(d) or _vectorizable_diode(d))]
        self._lin_dynamic = [d for d in devices if not d.is_nonlinear_dynamic()]
        self._nl_dynamic = [d for d in devices if d.is_nonlinear_dynamic()]

        self._compile()
        if verify and self.n_unknowns <= 2000:
            self._verify()

    # ------------------------------------------------------------ compilation
    def _compile(self) -> None:
        n = self.n_unknowns
        zero = np.zeros(n)

        # Probe the affine (linear) device groups once at v = 0: their
        # Jacobian triplets are constant and the probed vector is the offset.
        self._i0, ls_rows, ls_cols, ls_vals = _record_stamps(
            self._lin_static, zero, n, dynamic=False)
        self._q0, ld_rows, ld_cols, ld_vals = _record_stamps(
            self._lin_dynamic, zero, n, dynamic=True)

        # Probe the generic nonlinear groups to learn their stamp pattern
        # (the set of touched coordinates is fixed by the topology; only the
        # values depend on v — re-verified on every evaluation).
        _, ns_rows, ns_cols, _ = _record_stamps(self._nl_static, zero, n, dynamic=False)
        _, nd_rows, nd_cols, _ = _record_stamps(self._nl_dynamic, zero, n, dynamic=True)
        self._ns_pattern = (ns_rows, ns_cols)
        self._nd_pattern = (nd_rows, nd_cols)

        mosfet_entries = self._mosfets.jacobian_entries()
        mos_rows = np.asarray([e[0] for e in mosfet_entries], dtype=np.intp)
        mos_cols = np.asarray([e[1] for e in mosfet_entries], dtype=np.intp)
        self._mos_dev = np.asarray([e[2] for e in mosfet_entries], dtype=np.intp)
        self._mos_kind = np.asarray([e[3] for e in mosfet_entries], dtype=np.intp)

        diode_entries = self._diodes.jacobian_entries()
        dio_rows = np.asarray([e[0] for e in diode_entries], dtype=np.intp)
        dio_cols = np.asarray([e[1] for e in diode_entries], dtype=np.intp)
        self._dio_dev = np.asarray([e[2] for e in diode_entries], dtype=np.intp)
        self._dio_kind = np.asarray([e[3] for e in diode_entries], dtype=np.intp)

        if self.is_sparse:
            diag = np.arange(n, dtype=np.intp)
            all_rows = np.concatenate([ls_rows, ld_rows, ns_rows, nd_rows, mos_rows,
                                       dio_rows, diag])
            all_cols = np.concatenate([ls_cols, ld_cols, ns_cols, nd_cols, mos_cols,
                                       dio_cols, diag])
            pattern = _sp.csc_matrix(
                (np.ones(all_rows.size), (all_rows, all_cols)), shape=(n, n))
            pattern.sum_duplicates()
            pattern.sort_indices()
            self._indices = pattern.indices.astype(np.int32, copy=True)
            self._indptr = pattern.indptr.astype(np.int32, copy=True)
            self.nnz = int(self._indices.size)
            pos_map: dict[tuple[int, int], int] = {}
            for col in range(n):
                for p in range(self._indptr[col], self._indptr[col + 1]):
                    pos_map[(int(self._indices[p]), col)] = p
            self._diag_pos = np.asarray([pos_map[(i, i)] for i in range(n)], dtype=np.intp)
            locate = np.vectorize(lambda r, c: pos_map[(r, c)], otypes=[np.intp])

            def positions(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
                if rows.size == 0:
                    return np.zeros(0, dtype=np.intp)
                return locate(rows, cols)

            self._ns_pos = positions(ns_rows, ns_cols)
            self._nd_pos = positions(nd_rows, nd_cols)
            self._mos_pos = positions(mos_rows, mos_cols)
            self._dio_pos = positions(dio_rows, dio_cols)
            self._g_base = np.zeros(self.nnz)
            np.add.at(self._g_base, positions(ls_rows, ls_cols), ls_vals)
            self._c_base = np.zeros(self.nnz)
            np.add.at(self._c_base, positions(ld_rows, ld_cols), ld_vals)
            self._g_lin = _sp.csc_matrix(
                (self._g_base.copy(), self._indices, self._indptr), shape=(n, n))
            self._c_lin = _sp.csc_matrix(
                (self._c_base.copy(), self._indices, self._indptr), shape=(n, n))
        else:
            self._g_base = np.zeros((n, n))
            np.add.at(self._g_base, (ls_rows, ls_cols), ls_vals)
            self._c_base = np.zeros((n, n))
            np.add.at(self._c_base, (ld_rows, ld_cols), ld_vals)
            self._g_lin = self._g_base
            self._c_lin = self._c_base
            self._mos_pos = mos_rows * n + mos_cols  # flat indices into raveled G
            self._dio_pos = dio_rows * n + dio_cols
            self._ns_pos = ns_rows * n + ns_cols
            self._nd_pos = nd_rows * n + nd_cols

        # Positions of every entry a *nonlinear* device stamps (CSC data
        # positions in sparse mode, flat raveled indices in dense mode).
        # The FactorizationCache uses these as its per-block drift metric:
        # only drift in this block invalidates cached LU factors, because
        # the remaining (linear) entries move exclusively through the
        # ``G + alpha C`` combination factor, which the analyses signal
        # explicitly via cache.invalidate() on time-step changes.
        self.nonlinear_positions = np.unique(np.concatenate([
            self._ns_pos, self._nd_pos, self._mos_pos, self._dio_pos,
        ])) if (self._ns_pos.size or self._nd_pos.size or self._mos_pos.size
                or self._dio_pos.size) else np.zeros(0, dtype=np.intp)

        self._static_has_nl = (bool(self._nl_static) or bool(self._mosfets.devices)
                               or bool(self._diodes.devices))
        self._dynamic_has_nl = bool(self._nl_dynamic)

    def _verify(self) -> None:
        """Compare one compiled evaluation against the legacy dense path."""
        n = self.n_unknowns
        v = 0.05 + 0.02 * np.cos(np.arange(n, dtype=float))
        i_ref, g_ref = self.system.eval_static(v)
        q_ref, c_ref = self.system.eval_dynamic(v)
        i_cmp, g_op = self.eval_static(v)
        q_cmp, c_op = self.eval_dynamic(v)
        g_cmp = self.to_dense(g_op)
        c_cmp = self.to_dense(c_op)
        for name, ref, cmp_ in (("i", i_ref, i_cmp), ("G", g_ref, g_cmp),
                                ("q", q_ref, q_cmp), ("C", c_ref, c_cmp)):
            scale = max(float(np.max(np.abs(ref))), 1.0)
            if not np.allclose(ref, cmp_, rtol=1e-9, atol=1e-12 * scale):
                raise CircuitError(
                    f"compiled MNA assembly of {self.system.circuit.name!r} disagrees "
                    f"with the reference evaluation on {name}; a device most likely "
                    "violates the affine-stamp contract of is_nonlinear_static/"
                    "is_nonlinear_dynamic")

    # ------------------------------------------------------------- evaluation
    def eval_static(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Static currents ``i(v)`` and the conductance operand ``G(v)``."""
        n = self.n_unknowns
        i_ext = np.empty(n + 1)
        i_ext[:n] = self._i0
        i_ext[:n] += self._g_lin @ v
        i_ext[n] = 0.0
        i_vec = i_ext[:n]

        if not self._static_has_nl:
            return i_vec.copy(), self._g_base

        g_op = self._g_base.copy()
        flat = g_op if self.is_sparse else g_op.ravel()

        if self._mosfets.devices:
            v_ext = np.append(v, 0.0)
            current, values = self._mosfets.currents_and_conductances(v_ext)
            self._mosfets.scatter_currents(i_ext, current)
            np.add.at(flat, self._mos_pos, values[self._mos_kind, self._mos_dev])

        if self._diodes.devices:
            v_ext = np.append(v, 0.0)
            current, values = self._diodes.currents_and_conductances(v_ext)
            self._diodes.scatter_currents(i_ext, current)
            np.add.at(flat, self._dio_pos, values[self._dio_kind, self._dio_dev])

        if self._nl_static:
            if self.is_sparse:
                vals = self._stamp_generic(self._nl_static, v, i_vec, False,
                                           self._ns_pattern)
                np.add.at(flat, self._ns_pos, vals)
            else:
                for device in self._nl_static:
                    device.stamp_static(v, i_vec, g_op)

        return i_vec.copy(), g_op

    def eval_dynamic(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Charges ``q(v)`` and the capacitance operand ``C(v)``."""
        q_vec = self._q0 + self._c_lin @ v
        if not self._dynamic_has_nl:
            return q_vec, self._c_base

        c_op = self._c_base.copy()
        if self.is_sparse:
            vals = self._stamp_generic(self._nl_dynamic, v, q_vec, True,
                                       self._nd_pattern)
            np.add.at(c_op, self._nd_pos, vals)
        else:
            for device in self._nl_dynamic:
                device.stamp_dynamic(v, q_vec, c_op)
        return q_vec, c_op

    def _stamp_generic(self, devices: Sequence[Device], v: np.ndarray,
                       vec: np.ndarray, dynamic: bool,
                       pattern: tuple[np.ndarray, np.ndarray]) -> np.ndarray:
        """Stamp generic nonlinear devices, checking the cached pattern."""
        recorder = _TripletRecorder()
        for device in devices:
            if dynamic:
                device.stamp_dynamic(v, vec, recorder)
            else:
                device.stamp_static(v, vec, recorder)
        rows, cols, vals = recorder.arrays()
        if not (np.array_equal(rows, pattern[0]) and np.array_equal(cols, pattern[1])):
            raise CircuitError(
                f"device stamp pattern of {self.system.circuit.name!r} changed between "
                "evaluations; state-dependent stamp topologies are not supported by "
                "the compiled assembly — use assembly='legacy' for this circuit")
        return vals

    # -------------------------------------------------------------- operands
    def combine(self, g_op: np.ndarray, c_op: np.ndarray, alpha: float) -> np.ndarray:
        """Fresh operand ``G + alpha * C``."""
        return g_op + alpha * c_op

    def add_diag(self, op: np.ndarray, value: float, n_rows: int) -> None:
        """Add ``value`` to the first ``n_rows`` diagonal entries, in place."""
        if self.is_sparse:
            op[self._diag_pos[:n_rows]] += value
        else:
            idx = np.arange(n_rows)
            op[idx, idx] += value

    def materialize(self, op: np.ndarray):
        """Turn an operand into a matrix usable by the linear solvers."""
        if self.is_sparse:
            return _sp.csc_matrix((op, self._indices, self._indptr),
                                  shape=(self.n_unknowns, self.n_unknowns))
        return op

    def to_dense(self, op: np.ndarray) -> np.ndarray:
        """Dense ``(n, n)`` array view of an operand (copies in sparse mode)."""
        if self.is_sparse:
            return self.materialize(op).toarray()
        return op


class LegacyEngine:
    """Reference engine: the original per-device dense stamping path."""

    is_sparse = False
    #: No stamp-position bookkeeping: the legacy path cannot provide a
    #: per-block drift mask, so caches fall back to the global metric.
    nonlinear_positions = None

    def __init__(self, system: "MNASystem") -> None:
        self.system = system
        self.n_unknowns = system.n_unknowns
        self.n_nodes = system.n_nodes

    def eval_static(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.system.eval_static(v)

    def eval_dynamic(self, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        return self.system.eval_dynamic(v)

    def combine(self, g_op: np.ndarray, c_op: np.ndarray, alpha: float) -> np.ndarray:
        return g_op + alpha * c_op

    def add_diag(self, op: np.ndarray, value: float, n_rows: int) -> None:
        idx = np.arange(n_rows)
        op[idx, idx] += value

    def materialize(self, op: np.ndarray) -> np.ndarray:
        return op

    def to_dense(self, op: np.ndarray) -> np.ndarray:
        return op


def select_engine(system: "MNASystem", assembly: str = "auto"):
    """Resolve an assembly mode name to an evaluation engine.

    ``"auto"`` compiles the system and picks sparse CSC storage above
    :data:`SPARSE_THRESHOLD` unknowns; ``"dense"``/``"sparse"`` force the
    compiled engine's storage; ``"legacy"`` returns the original per-device
    dense stamping path (the reference implementation).
    """
    if assembly not in ASSEMBLY_MODES:
        raise ValueError(f"unknown assembly mode {assembly!r}; expected one of "
                         f"{ASSEMBLY_MODES}")
    if assembly == "legacy":
        return LegacyEngine(system)
    return system.compile(assembly)
