"""(Relaxed) vector fitting of frequency responses and residue trajectories."""

from .basis import basis_matrix, coefficients_to_residues, residues_to_coefficients
from .orders import AutoFitReport, fit_auto_order
from .poles import (
    flip_unstable,
    initial_complex_poles,
    initial_real_poles,
    initial_state_poles,
    sort_poles,
    split_real_complex,
    zero_phase_pairs,
)
from .rational import RationalFunction
from .vectorfit import VectorFitOptions, VectorFitResult, evaluate_model, vector_fit

__all__ = [
    "vector_fit",
    "VectorFitOptions",
    "VectorFitResult",
    "evaluate_model",
    "fit_auto_order",
    "AutoFitReport",
    "RationalFunction",
    "initial_complex_poles",
    "initial_real_poles",
    "initial_state_poles",
    "flip_unstable",
    "sort_poles",
    "split_real_complex",
    "zero_phase_pairs",
    "basis_matrix",
    "coefficients_to_residues",
    "residues_to_coefficients",
]
