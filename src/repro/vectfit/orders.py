"""Automatic model-order selection for vector fitting.

Algorithm 1 of the paper increments the number of poles by two until the fit
error drops below the user-supplied bound ``epsilon``; this module implements
that loop for the frequency axis and for the state axis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import FittingError
from .poles import initial_complex_poles
from .vectorfit import VectorFitOptions, VectorFitResult, vector_fit

__all__ = ["AutoFitReport", "fit_auto_order"]


@dataclass
class AutoFitReport:
    """History of an automatic order search."""

    result: VectorFitResult
    orders_tried: list[int]
    errors: list[float]
    error_bound: float
    converged: bool

    @property
    def order(self) -> int:
        return self.result.n_poles


def fit_auto_order(svals: np.ndarray, data: np.ndarray, error_bound: float,
                   *, start_order: int = 2, max_order: int = 40, order_step: int = 2,
                   options: VectorFitOptions | None = None,
                   initial_pole_factory=None,
                   stagnation_factor: float | None = 0.75) -> AutoFitReport:
    """Increase the model order until the relative RMS error drops below the bound.

    Parameters
    ----------
    svals, data:
        Same conventions as :func:`repro.vectfit.vector_fit` (``data`` is
        ``(K, L)``, possibly with ``K = 1``).
    error_bound:
        Target *relative* RMS error (the paper's epsilon).
    start_order / max_order / order_step:
        Search range for the number of poles (the paper increments by 2).
    initial_pole_factory:
        Callable ``f(order) -> poles``; defaults to log-spaced complex pairs
        spanning the imaginary parts of ``svals``.
    stagnation_factor:
        Stop enlarging the model once an order increment fails to improve the
        error below ``stagnation_factor * best_error_so_far`` (data measured
        along a trajectory has an intrinsic noise floor).  ``None`` disables
        the guard.
    """
    if error_bound <= 0:
        raise FittingError("error_bound must be positive")
    svals = np.asarray(svals, dtype=complex).ravel()
    data = np.atleast_2d(np.asarray(data, dtype=complex))
    opts = options or VectorFitOptions()

    if initial_pole_factory is None:
        span = np.abs(svals.imag)
        span = span[span > 0]
        if span.size == 0:
            raise FittingError("cannot derive a default pole range from svals")
        f_min = float(span.min()) / (2.0 * np.pi)
        f_max = float(span.max()) / (2.0 * np.pi)

        def initial_pole_factory(order: int) -> np.ndarray:
            return initial_complex_poles(f_min, f_max, order)

    orders_tried: list[int] = []
    errors: list[float] = []
    best: VectorFitResult | None = None

    # Never attempt an order the sample count cannot support.
    max_supported = max(1, svals.size - 2)
    effective_max = min(max_order, max_supported)

    order = min(start_order, effective_max)
    while True:
        result = vector_fit(svals, data, initial_pole_factory(order), opts)
        orders_tried.append(order)
        errors.append(result.relative_error)
        if best is None or result.relative_error < best.relative_error:
            best = result
        if result.relative_error <= error_bound:
            return AutoFitReport(result, orders_tried, errors, error_bound, True)
        if order >= effective_max:
            return AutoFitReport(best, orders_tried, errors, error_bound, False)
        if (stagnation_factor is not None and len(errors) >= 2
                and errors[-1] > stagnation_factor * min(errors[:-1])):
            return AutoFitReport(best, orders_tried, errors, error_bound, False)
        order = min(order + order_step, effective_max)
