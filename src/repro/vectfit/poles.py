"""Pole utilities for vector fitting: initial guesses, pairing and stability."""

from __future__ import annotations

import numpy as np

from ..exceptions import FittingError

__all__ = [
    "initial_complex_poles",
    "initial_real_poles",
    "flip_unstable",
    "sort_poles",
    "split_real_complex",
    "zero_phase_pairs",
]


def initial_complex_poles(f_min: float, f_max: float, n_poles: int,
                          loss_ratio: float = 0.01) -> np.ndarray:
    """Log-spaced complex starting poles, the standard VF initialisation.

    Poles come in conjugate pairs ``a = -loss_ratio*omega +/- j*omega`` with the
    imaginary parts logarithmically spaced over ``[2*pi*f_min, 2*pi*f_max]``.
    When ``n_poles`` is odd, one extra real pole at ``-2*pi*f_max`` is added.
    """
    if n_poles < 1:
        raise FittingError("need at least one starting pole")
    if f_min <= 0 or f_max <= f_min:
        raise FittingError("require 0 < f_min < f_max for pole initialisation")
    n_pairs = n_poles // 2
    poles: list[complex] = []
    if n_pairs:
        omegas = 2.0 * np.pi * np.logspace(np.log10(f_min), np.log10(f_max), n_pairs)
        for omega in omegas:
            poles.append(complex(-loss_ratio * omega, omega))
            poles.append(complex(-loss_ratio * omega, -omega))
    if n_poles % 2:
        poles.append(complex(-2.0 * np.pi * f_max, 0.0))
    return np.array(poles, dtype=complex)


def initial_real_poles(x_min: float, x_max: float, n_poles: int) -> np.ndarray:
    """Real, linearly spread starting poles for fitting along a state axis."""
    if n_poles < 1:
        raise FittingError("need at least one starting pole")
    span = max(abs(x_min), abs(x_max), 1.0)
    magnitudes = np.linspace(0.5 * span, 2.0 * span, n_poles)
    return -magnitudes.astype(complex)


def initial_state_poles(x_min: float, x_max: float, n_poles: int) -> np.ndarray:
    """Starting poles for fitting functions of a *real* state variable.

    The poles are complex conjugate pairs whose real parts are spread linearly
    over the sampled state interval and whose imaginary parts keep them a
    comfortable distance away from it — the standard vector-fitting
    initialisation transplanted from the frequency axis to the state axis.
    An odd ``n_poles`` adds one real pole below the interval.
    """
    if n_poles < 1:
        raise FittingError("need at least one starting pole")
    if x_max <= x_min:
        raise FittingError("require x_min < x_max for state-pole initialisation")
    span = x_max - x_min
    n_pairs = n_poles // 2
    poles: list[complex] = []
    if n_pairs:
        centers = np.linspace(x_min, x_max, n_pairs)
        offset = span / max(n_pairs, 2)
        for center in centers:
            poles.append(complex(center, offset))
            poles.append(complex(center, -offset))
    if n_poles % 2:
        poles.append(complex(x_min - span, 0.0))
    return np.array(poles, dtype=complex)


def flip_unstable(poles: np.ndarray) -> np.ndarray:
    """Mirror right-half-plane poles into the left half plane.

    This is what makes the extracted model "guaranteed stable by construction":
    after every pole-relocation step, any unstable pole is reflected about the
    imaginary axis.
    """
    poles = np.array(poles, dtype=complex, copy=True)
    unstable = poles.real > 0.0
    poles[unstable] = -np.conj(poles[unstable])
    # Guard against exactly-zero real parts which would sit on the boundary.
    on_axis = poles.real == 0.0
    poles[on_axis] -= 1e-12 * np.maximum(np.abs(poles[on_axis].imag), 1.0)
    return poles


def enforce_conjugate_closure(poles: np.ndarray, tolerance: float = 1e-3) -> np.ndarray:
    """Return the closest pole set that is exactly closed under conjugation.

    Eigenvalues of real matrices are conjugate-closed in exact arithmetic, but
    per-pole adjustments (stability flipping, sample-separation nudges) can
    break the symmetry slightly.  Poles with a well-matched partner are
    replaced by an exact conjugate pair; complex poles without a partner are
    collapsed onto the real axis.
    """
    poles = np.asarray(poles, dtype=complex)
    result: list[complex] = []
    used = [False] * len(poles)
    for i, p in enumerate(poles):
        if used[i]:
            continue
        scale = max(abs(p), 1.0)
        if abs(p.imag) <= 1e-10 * scale:
            result.append(complex(p.real, 0.0))
            used[i] = True
            continue
        best_j, best_err = None, None
        for j, q in enumerate(poles):
            if used[j] or j == i:
                continue
            err = abs(q - np.conj(p))
            if best_err is None or err < best_err:
                best_j, best_err = j, err
        if best_j is not None and best_err <= tolerance * scale:
            used[i] = used[best_j] = True
            head = p if p.imag > 0 else np.conj(p)
            result.extend([head, np.conj(head)])
        else:
            used[i] = True
            result.append(complex(p.real, 0.0))
    return np.array(result, dtype=complex)


def sort_poles(poles: np.ndarray) -> np.ndarray:
    """Sort poles: real poles first (ascending magnitude), then conjugate pairs.

    Complex poles are normalised so the member with positive imaginary part
    comes first in each pair.  The result is the canonical ordering assumed by
    the basis construction and the state-space realisations.
    """
    poles = np.asarray(poles, dtype=complex)
    real_poles = sorted([p for p in poles if p.imag == 0.0], key=lambda p: abs(p))
    complex_poles = [p for p in poles if p.imag != 0.0]
    pairs: list[complex] = []
    used = [False] * len(complex_poles)
    order = np.argsort([abs(p) for p in complex_poles])
    for idx in order:
        if used[idx]:
            continue
        p = complex_poles[idx]
        # Find the best conjugate partner among the unused poles.
        best_j, best_err = None, None
        for j, q in enumerate(complex_poles):
            if used[j] or j == idx:
                continue
            err = abs(q - np.conj(p))
            if best_err is None or err < best_err:
                best_j, best_err = j, err
        used[idx] = True
        if best_j is None:
            # No conjugate partner exists (complex-coefficient pole sets);
            # keep the pole as it is rather than fabricating one.
            pairs.append(p)
            continue
        used[best_j] = True
        first = p if p.imag > 0 else np.conj(p)
        pairs.extend([first, np.conj(first)])
    return np.array(list(real_poles) + pairs, dtype=complex)


def split_real_complex(poles: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Indices of real poles and of the first member of each conjugate pair.

    Assumes the canonical ordering produced by :func:`sort_poles`.
    """
    poles = np.asarray(poles, dtype=complex)
    real_idx = [i for i, p in enumerate(poles) if p.imag == 0.0]
    pair_idx = [i for i, p in enumerate(poles) if p.imag > 0.0]
    return np.array(real_idx, dtype=int), np.array(pair_idx, dtype=int)


def zero_phase_pairs(poles: np.ndarray) -> np.ndarray:
    """Force poles into the +/- real-part pattern used for state-axis bases.

    The recursive VF step fits functions of the *real* state variable ``x``
    with basis ``1/(jx - b)``.  To make the fitted function real-valued (the
    paper's "zero-phase angle" condition, after [10]), the poles are arranged
    in pairs ``(b, -conj(b))`` whose real parts have opposite signs.  Given an
    arbitrary pole set this helper returns the closest such configuration.
    """
    poles = sort_poles(np.asarray(poles, dtype=complex))
    adjusted: list[complex] = []
    for p in poles:
        if p.imag == 0.0:
            adjusted.append(p)
        elif p.imag > 0.0:
            adjusted.append(p)
            adjusted.append(-np.conj(p))
    return np.array(adjusted, dtype=complex)
