"""Partial-fraction basis construction for vector fitting.

Two coefficient conventions are supported:

* **real mode** — the classic VF basis for frequency responses of real
  systems: real poles contribute one column ``1/(s-a)``; each complex
  conjugate pair contributes the two real-coefficient columns
  ``1/(s-a) + 1/(s-a*)`` and ``j/(s-a) - j/(s-a*)``.  Solving a real
  least-squares problem in these coefficients automatically produces
  conjugate-symmetric residues.
* **complex mode** — one column ``1/(s-a)`` per pole with complex
  coefficients.  This is used for fitting residue trajectories along the
  state axis, where the data is a general complex function of a real
  variable and carries no conjugate symmetry.
"""

from __future__ import annotations

import numpy as np

from .poles import split_real_complex

__all__ = [
    "basis_matrix",
    "coefficients_to_residues",
    "residues_to_coefficients",
    "n_coefficients",
]


def n_coefficients(poles: np.ndarray, real_mode: bool) -> int:
    """Number of basis coefficients for a pole set in the given mode."""
    return len(poles) if not real_mode else len(poles)


def basis_matrix(svals: np.ndarray, poles: np.ndarray, real_mode: bool) -> np.ndarray:
    """Complex basis matrix ``Phi`` with one row per sample.

    In real mode the columns are ordered: one column per real pole followed by
    two columns per conjugate pair (in the canonical pole ordering of
    :func:`repro.vectfit.poles.sort_poles`).  In complex mode there is simply
    one column per pole.
    """
    svals = np.asarray(svals, dtype=complex).ravel()
    poles = np.asarray(poles, dtype=complex)
    if not real_mode:
        return 1.0 / (svals[:, None] - poles[None, :])

    real_idx, pair_idx = split_real_complex(poles)
    columns: list[np.ndarray] = []
    for i in real_idx:
        columns.append(1.0 / (svals - poles[i]))
    for i in pair_idx:
        a = poles[i]
        phi_plus = 1.0 / (svals - a)
        phi_minus = 1.0 / (svals - np.conj(a))
        columns.append(phi_plus + phi_minus)
        columns.append(1j * phi_plus - 1j * phi_minus)
    if not columns:
        return np.zeros((svals.size, 0), dtype=complex)
    return np.column_stack(columns)


def coefficients_to_residues(coefficients: np.ndarray, poles: np.ndarray,
                             real_mode: bool) -> np.ndarray:
    """Convert basis coefficients into one complex residue per pole.

    The returned array is aligned with ``poles``; in real mode the residues of
    a conjugate pair are themselves conjugate.
    """
    coefficients = np.asarray(coefficients)
    poles = np.asarray(poles, dtype=complex)
    if not real_mode:
        return coefficients.astype(complex)

    residues = np.zeros(len(poles), dtype=complex)
    real_idx, pair_idx = split_real_complex(poles)
    cursor = 0
    for i in real_idx:
        residues[i] = coefficients[cursor]
        cursor += 1
    for i in pair_idx:
        cr = coefficients[cursor]
        ci = coefficients[cursor + 1]
        cursor += 2
        residues[i] = cr + 1j * ci
        # The conjugate partner immediately follows in canonical ordering.
        residues[i + 1] = cr - 1j * ci
    return residues


def residues_to_coefficients(residues: np.ndarray, poles: np.ndarray,
                             real_mode: bool) -> np.ndarray:
    """Inverse of :func:`coefficients_to_residues` (used by tests)."""
    residues = np.asarray(residues, dtype=complex)
    poles = np.asarray(poles, dtype=complex)
    if not real_mode:
        return residues.copy()
    real_idx, pair_idx = split_real_complex(poles)
    coefficients: list[float] = []
    for i in real_idx:
        coefficients.append(residues[i].real)
    for i in pair_idx:
        coefficients.append(residues[i].real)
        coefficients.append(residues[i].imag)
    return np.array(coefficients)
