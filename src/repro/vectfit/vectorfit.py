"""(Relaxed) vector fitting with a common pole set over many responses.

This implements the Vector Fitting algorithm of Gustavsen & Semlyen with the
relaxed non-triviality constraint and the QR-based per-response elimination of
the "fast" implementation (the paper's reference [9]).  A single pole set is
identified that is shared by *all* responses — exactly the property the TFT
method relies on ("if one is able to fix the poles over the entire state
space, then the nonlinear functionality is fully embedded in the residues").

The same engine is reused by the recursive step: fitting residue trajectories
along the state axis is just vector fitting with ``s = j*x`` and complex
(unsymmetric) coefficients, so the ``real_coefficients`` switch selects
between the two usages.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import FittingError
from .basis import basis_matrix, coefficients_to_residues
from .poles import enforce_conjugate_closure, flip_unstable, sort_poles, split_real_complex

__all__ = ["VectorFitOptions", "VectorFitResult", "vector_fit", "evaluate_model"]


@dataclass
class VectorFitOptions:
    """Configuration of a vector-fitting run."""

    n_iterations: int = 12
    real_coefficients: bool = True
    relaxed: bool = True
    fit_constant: bool = True
    fit_proportional: bool = False
    enforce_stability: bool = True
    weighting: str = "uniform"            # "uniform" | "inverse" | "inverse_sqrt"
    pole_convergence_tol: float = 1e-6
    min_relaxation_magnitude: float = 1e-8

    def validate(self) -> None:
        if self.weighting not in ("uniform", "inverse", "inverse_sqrt"):
            raise FittingError(f"unknown weighting scheme {self.weighting!r}")
        if self.n_iterations < 1:
            raise FittingError("n_iterations must be at least 1")


@dataclass
class VectorFitResult:
    """Common-pole rational approximation of a family of responses.

    ``residues[k, p]`` is the residue of pole ``p`` for response ``k``; the
    model of response ``k`` is
    ``sum_p residues[k, p] / (s - poles[p]) + constants[k] + proportionals[k] * s``.
    """

    poles: np.ndarray
    residues: np.ndarray
    constants: np.ndarray
    proportionals: np.ndarray
    rms_error: float
    relative_error: float
    iterations: int
    real_mode: bool
    svals: np.ndarray = field(repr=False, default=None)

    @property
    def n_poles(self) -> int:
        return int(self.poles.size)

    @property
    def n_responses(self) -> int:
        return int(self.residues.shape[0])

    def evaluate(self, svals: np.ndarray) -> np.ndarray:
        """Evaluate every response model on a grid; returns ``(K, len(svals))``."""
        return evaluate_model(svals, self.poles, self.residues,
                              self.constants, self.proportionals)

    def evaluate_single(self, svals: np.ndarray, response: int = 0) -> np.ndarray:
        """Evaluate one response model as a 1-D array."""
        return self.evaluate(svals)[response]

    def is_stable(self) -> bool:
        """True when every pole lies strictly in the left half plane."""
        return bool(np.all(self.poles.real < 0.0))


def evaluate_model(svals: np.ndarray, poles: np.ndarray, residues: np.ndarray,
                   constants: np.ndarray | None = None,
                   proportionals: np.ndarray | None = None) -> np.ndarray:
    """Evaluate a common-pole pole-residue model on ``svals``.

    ``residues`` has shape ``(K, P)``; the result has shape ``(K, L)``.
    """
    svals = np.asarray(svals, dtype=complex).ravel()
    poles = np.asarray(poles, dtype=complex)
    residues = np.atleast_2d(np.asarray(residues, dtype=complex))
    cauchy = 1.0 / (svals[None, :] - poles[:, None])          # (P, L)
    values = residues @ cauchy                                # (K, L)
    if constants is not None:
        values = values + np.asarray(constants, dtype=complex)[:, None]
    if proportionals is not None:
        values = values + np.asarray(proportionals, dtype=complex)[:, None] * svals[None, :]
    return values


# --------------------------------------------------------------------------- #
# internals
# --------------------------------------------------------------------------- #

def _compute_weights(data: np.ndarray, scheme: str) -> np.ndarray:
    magnitude = np.abs(data)
    floor = max(magnitude.max(), 1e-300) * 1e-12
    magnitude = np.maximum(magnitude, floor)
    if scheme == "uniform":
        return np.ones_like(magnitude)
    if scheme == "inverse":
        return 1.0 / magnitude
    return 1.0 / np.sqrt(magnitude)


def _stack_real(matrix: np.ndarray) -> np.ndarray:
    return np.vstack([matrix.real, matrix.imag])


def _numerator_columns(svals: np.ndarray, poles: np.ndarray, real_mode: bool,
                       fit_constant: bool, fit_proportional: bool) -> np.ndarray:
    phi = basis_matrix(svals, poles, real_mode)
    extra = []
    if fit_constant:
        extra.append(np.ones_like(svals, dtype=complex))
    if fit_proportional:
        extra.append(np.asarray(svals, dtype=complex))
    if extra:
        phi = np.column_stack([phi] + extra)
    return phi


def _sigma_coefficient_count(poles: np.ndarray, real_mode: bool) -> int:
    return len(poles)


def _relocate_poles(svals: np.ndarray, data: np.ndarray, weights: np.ndarray,
                    poles: np.ndarray, opts: VectorFitOptions) -> tuple[np.ndarray, float]:
    """One pole-relocation step; returns (new_poles, sigma_constant).

    For every response ``k`` the (weighted) equations
    ``p_k(s) - sigma(s) H_k(s) = 0`` (relaxed) or ``= H_k(s)`` (non-relaxed)
    are assembled; the per-response numerator coefficients are eliminated with
    a QR factorisation so only the shared ``sigma`` coefficients remain — the
    fast multiport formulation of the paper's reference [9].
    """
    real_mode = opts.real_coefficients
    n_responses = data.shape[0]
    phi_num = _numerator_columns(svals, poles, real_mode,
                                 opts.fit_constant, opts.fit_proportional)
    phi_sigma = basis_matrix(svals, poles, real_mode)
    n_num = phi_num.shape[1]
    n_sig = phi_sigma.shape[1]

    use_relaxed = opts.relaxed
    n_sig_cols = n_sig + (1 if use_relaxed else 0)

    reduced_rows: list[np.ndarray] = []
    reduced_rhs: list[np.ndarray] = []
    for k in range(n_responses):
        w = weights[k][:, None]
        h = data[k][:, None]
        sigma_block = -phi_sigma * h
        if use_relaxed:
            sigma_block = np.column_stack([sigma_block, -h])
        block = np.column_stack([phi_num, sigma_block]) * w
        rhs = np.zeros(block.shape[0], dtype=complex) if use_relaxed else (data[k] * weights[k])
        if real_mode:
            block = _stack_real(block)
            rhs = np.concatenate([rhs.real, rhs.imag])
        q, r = np.linalg.qr(block, mode="reduced")
        reduced_rows.append(r[n_num:, n_num:])
        if use_relaxed:
            reduced_rhs.append(np.zeros(r.shape[0] - n_num,
                                        dtype=float if real_mode else complex))
        else:
            projected = q.conj().T @ rhs
            reduced_rhs.append(np.asarray(projected[n_num:]))

    lhs = np.vstack(reduced_rows)
    rhs_vec = np.concatenate(reduced_rhs)

    if use_relaxed:
        # Non-triviality constraint: the sum over all samples of sigma(s)
        # equals the number of samples (Gustavsen's relaxed formulation).
        total_samples = data.size
        scale = float(np.linalg.norm(weights * data)) / max(total_samples, 1)
        sigma_full = np.column_stack([phi_sigma, np.ones_like(svals, dtype=complex)])
        if real_mode:
            constraint = scale * np.sum(sigma_full.real, axis=0) * n_responses
        else:
            constraint = scale * np.sum(sigma_full, axis=0) * n_responses
        lhs = np.vstack([lhs, constraint[None, :]])
        rhs_vec = np.concatenate([rhs_vec, [scale * total_samples]])

    solution, *_ = np.linalg.lstsq(lhs, rhs_vec, rcond=None)
    sigma_coeffs = solution[:n_sig]
    if use_relaxed:
        d_tilde = float(solution[n_sig].real) if real_mode else complex(solution[n_sig])
    else:
        d_tilde = 1.0

    if use_relaxed and abs(d_tilde) < opts.min_relaxation_magnitude:
        # Degenerate relaxation: fall back to the non-relaxed formulation.
        fallback = VectorFitOptions(**{**opts.__dict__, "relaxed": False})
        return _relocate_poles(svals, data, weights, poles, fallback)

    new_poles = _sigma_zeros(poles, sigma_coeffs, d_tilde, opts.real_coefficients)
    if opts.enforce_stability:
        new_poles = flip_unstable(new_poles)
    return _canonical_order(new_poles, opts.real_coefficients), abs(d_tilde)


def _canonical_order(poles: np.ndarray, real_mode: bool) -> np.ndarray:
    """Canonical pole ordering: conjugate pairing in real mode, |p| sort otherwise."""
    poles = np.asarray(poles, dtype=complex)
    if real_mode:
        return sort_poles(enforce_conjugate_closure(poles))
    return poles[np.argsort(np.abs(poles), kind="stable")]


def _separate_poles_from_samples(poles: np.ndarray, svals: np.ndarray,
                                 real_mode: bool) -> np.ndarray:
    """Keep poles a minimal distance away from the evaluation points.

    A relocated pole that lands (numerically) on a sample makes the Cauchy
    basis singular and the least-squares solve blows up.  This mostly matters
    when fitting along a *state* axis, where nothing prevents a pole from
    drifting onto the sampled interval; frequency-axis fits with stable poles
    are unaffected.  In real-coefficient mode the adjustment keeps the pole
    set closed under conjugation (real poles stay real).
    """
    poles = np.array(poles, dtype=complex, copy=True)
    scale = float(np.max(np.abs(svals))) or 1.0
    min_distance = 1e-6 * scale
    moved = False
    for i, pole in enumerate(poles):
        distances = np.abs(svals - pole)
        j = int(np.argmin(distances))
        if distances[j] < min_distance:
            moved = True
            direction = pole - svals[j]
            if real_mode and pole.imag == 0.0:
                # Keep real poles real: push along the real axis.
                sign = 1.0 if direction.real >= 0.0 else -1.0
                poles[i] = complex(svals[j].real + sign * min_distance, 0.0)
                continue
            if abs(direction) == 0.0:
                direction = 1j if pole.imag >= 0 else -1j
            else:
                direction = direction / abs(direction)
            poles[i] = svals[j] + direction * min_distance
    if moved and real_mode:
        # Re-symmetrise conjugate pairs that may have been nudged unevenly.
        poles = sort_poles(poles)
    return poles


def _sigma_zeros(poles: np.ndarray, sigma_coeffs: np.ndarray, d_tilde: complex,
                 real_mode: bool) -> np.ndarray:
    """Zeros of sigma(s), i.e. the relocated poles (eigenvalue formulation)."""
    n = len(poles)
    if n == 0:
        return poles
    if real_mode:
        a_mat = np.zeros((n, n))
        b_vec = np.zeros(n)
        c_vec = np.zeros(n)
        real_idx, pair_idx = split_real_complex(poles)
        cursor = 0
        positions: list[int] = []
        for i in real_idx:
            a_mat[cursor, cursor] = poles[i].real
            b_vec[cursor] = 1.0
            positions.append(cursor)
            cursor += 1
        coeff_cursor = len(real_idx)
        for j, i in enumerate(real_idx):
            c_vec[positions[j]] = np.real(sigma_coeffs[j])
        for i in pair_idx:
            sigma_r = poles[i].real
            omega = poles[i].imag
            a_mat[cursor, cursor] = sigma_r
            a_mat[cursor, cursor + 1] = omega
            a_mat[cursor + 1, cursor] = -omega
            a_mat[cursor + 1, cursor + 1] = sigma_r
            b_vec[cursor] = 2.0
            c_vec[cursor] = np.real(sigma_coeffs[coeff_cursor])
            c_vec[cursor + 1] = np.real(sigma_coeffs[coeff_cursor + 1])
            coeff_cursor += 2
            cursor += 2
        h_mat = a_mat - np.outer(b_vec, c_vec) / d_tilde
        return np.linalg.eigvals(h_mat).astype(complex)
    # Complex mode: sigma(s) = d_tilde + sum c_p/(s - a_p); zeros are the
    # eigenvalues of diag(a) - (1/d_tilde) * ones * c^T.
    h_mat = np.diag(poles) - np.outer(np.ones(n, dtype=complex), sigma_coeffs) / d_tilde
    return np.linalg.eigvals(h_mat)


def _identify_residues(svals: np.ndarray, data: np.ndarray, weights: np.ndarray,
                       poles: np.ndarray, opts: VectorFitOptions
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, float, float]:
    """Least-squares residues/constants for fixed poles; returns errors too."""
    real_mode = opts.real_coefficients
    phi = _numerator_columns(svals, poles, real_mode,
                             opts.fit_constant, opts.fit_proportional)
    n_responses = data.shape[0]
    n_basis = basis_matrix(svals, poles, real_mode).shape[1]

    residues = np.zeros((n_responses, len(poles)), dtype=complex)
    constants = np.zeros(n_responses, dtype=complex)
    proportionals = np.zeros(n_responses, dtype=complex)

    uniform = np.allclose(weights, weights[0])
    if uniform:
        lhs = phi * weights[0][:, None]
        rhs = (data * weights[0][None, :]).T
        if real_mode:
            lhs = _stack_real(lhs)
            rhs = np.vstack([rhs.real, rhs.imag])
        solution, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
        solution = solution.T                                  # (K, n_cols)
    else:
        rows = []
        for k in range(n_responses):
            lhs = phi * weights[k][:, None]
            rhs = data[k] * weights[k]
            if real_mode:
                lhs = _stack_real(lhs)
                rhs = np.concatenate([rhs.real, rhs.imag])
            sol, *_ = np.linalg.lstsq(lhs, rhs, rcond=None)
            rows.append(sol)
        solution = np.array(rows)

    cursor = n_basis
    for k in range(n_responses):
        residues[k] = coefficients_to_residues(solution[k, :n_basis], poles, real_mode)
    if opts.fit_constant:
        constants = solution[:, cursor].astype(complex)
        cursor += 1
    if opts.fit_proportional:
        proportionals = solution[:, cursor].astype(complex)

    model = evaluate_model(svals, poles, residues, constants, proportionals)
    deviation = (model - data) * weights
    rms = float(np.sqrt(np.mean(np.abs(deviation) ** 2)))
    scale = float(np.sqrt(np.mean(np.abs(data * weights) ** 2)))
    relative = rms / scale if scale > 0 else rms
    return residues, constants, proportionals, rms, relative


# --------------------------------------------------------------------------- #
# public entry point
# --------------------------------------------------------------------------- #

def vector_fit(svals: np.ndarray, data: np.ndarray, initial_poles: np.ndarray,
               options: VectorFitOptions | None = None) -> VectorFitResult:
    """Fit a common-pole rational model to a family of responses.

    Parameters
    ----------
    svals:
        Complex evaluation points (``j*2*pi*f`` for frequency responses, or
        ``j*x`` when fitting along a state axis), shape ``(L,)``.
    data:
        Response samples, shape ``(K, L)`` (a 1-D array is treated as a single
        response).
    initial_poles:
        Starting poles; see :mod:`repro.vectfit.poles` for generators.
    options:
        :class:`VectorFitOptions`.
    """
    opts = options or VectorFitOptions()
    opts.validate()

    svals = np.asarray(svals, dtype=complex).ravel()
    data = np.atleast_2d(np.asarray(data, dtype=complex))
    if data.shape[1] != svals.size:
        raise FittingError(
            f"data has {data.shape[1]} samples per response but {svals.size} svals given")
    poles = _canonical_order(np.asarray(initial_poles, dtype=complex),
                             opts.real_coefficients)
    if opts.real_coefficients:
        # Real-coefficient mode requires poles closed under conjugation.
        _, pair_idx = split_real_complex(poles)
        n_complex = int(np.sum(poles.imag != 0))
        if n_complex != 2 * len(pair_idx):
            raise FittingError("real-coefficient mode needs conjugate-closed poles")
    n_samples_needed = len(poles) + int(opts.fit_constant) + int(opts.fit_proportional)
    if svals.size < n_samples_needed:
        raise FittingError(
            f"{svals.size} samples cannot determine {n_samples_needed} coefficients; "
            "reduce the model order or supply more samples")

    weights = _compute_weights(data, opts.weighting)

    iterations_used = 0
    poles = _separate_poles_from_samples(poles, svals, opts.real_coefficients)
    for iteration in range(opts.n_iterations):
        iterations_used = iteration + 1
        new_poles, _ = _relocate_poles(svals, data, weights, poles, opts)
        new_poles = _separate_poles_from_samples(new_poles, svals, opts.real_coefficients)
        movement = _pole_movement(poles, new_poles)
        poles = new_poles
        if movement < opts.pole_convergence_tol:
            break

    residues, constants, proportionals, rms, relative = _identify_residues(
        svals, data, weights, poles, opts)

    return VectorFitResult(
        poles=poles,
        residues=residues,
        constants=constants,
        proportionals=proportionals,
        rms_error=rms,
        relative_error=relative,
        iterations=iterations_used,
        real_mode=opts.real_coefficients,
        svals=svals,
    )


def _pole_movement(old: np.ndarray, new: np.ndarray) -> float:
    """Relative pole displacement between iterations (for convergence checks)."""
    if old.size != new.size or old.size == 0:
        return np.inf
    old_sorted = np.sort_complex(old)
    new_sorted = np.sort_complex(new)
    scale = np.maximum(np.abs(old_sorted), 1e-30)
    return float(np.max(np.abs(old_sorted - new_sorted) / scale))
