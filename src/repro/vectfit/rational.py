"""Scalar pole-residue rational functions.

:class:`RationalFunction` is the lightweight value type used to pass around a
single fitted response (one state snapshot, one residue trajectory, ...).  It
knows how to evaluate itself, how to report stability and how to convert to
the real state-space forms of the paper's Section III.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ModelError
from .poles import sort_poles, split_real_complex

__all__ = ["RationalFunction"]


@dataclass
class RationalFunction:
    """``H(s) = sum_p residues[p]/(s - poles[p]) + constant + proportional*s``."""

    poles: np.ndarray
    residues: np.ndarray
    constant: complex = 0.0
    proportional: complex = 0.0

    def __post_init__(self) -> None:
        self.poles = np.asarray(self.poles, dtype=complex)
        self.residues = np.asarray(self.residues, dtype=complex)
        if self.poles.shape != self.residues.shape:
            raise ModelError("poles and residues must have the same shape")

    @property
    def order(self) -> int:
        return int(self.poles.size)

    # ---------------------------------------------------------------- evaluate
    def __call__(self, svals: np.ndarray | complex) -> np.ndarray | complex:
        scalar = np.isscalar(svals)
        s = np.atleast_1d(np.asarray(svals, dtype=complex))
        values = np.full(s.shape, complex(self.constant), dtype=complex)
        values += complex(self.proportional) * s
        for pole, residue in zip(self.poles, self.residues):
            values += residue / (s - pole)
        return complex(values[0]) if scalar else values

    def dc_value(self) -> complex:
        """Value at ``s = 0``."""
        return self(0.0)

    # --------------------------------------------------------------- stability
    def is_stable(self) -> bool:
        return bool(np.all(self.poles.real < 0.0))

    def is_real(self, tolerance: float = 1e-9) -> bool:
        """True when the function maps the imaginary axis conjugate-symmetrically.

        Equivalent to the poles/residues being closed under conjugation and the
        constant/proportional terms being real, i.e. the impulse response is a
        real signal.
        """
        poles = sort_poles(self.poles)
        if not np.allclose(np.sort_complex(poles), np.sort_complex(self.poles.conj()),
                           atol=tolerance * (1 + np.abs(poles).max(initial=0.0))):
            return False
        if abs(np.imag(self.constant)) > tolerance or abs(np.imag(self.proportional)) > tolerance:
            return False
        test = np.array([0.7j, 2.3j, 17.1j])
        return bool(np.allclose(self(test), np.conj(self(-test)), atol=1e-8,
                                rtol=1e-6))

    # ------------------------------------------------------------- state space
    def to_state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Real state-space realisation ``(A, B, C, E)`` of the strictly proper part.

        Follows the paper's eqs. (9)-(10): real poles give scalar sections
        ``(a, 1, r)``; each complex pair gives the 2x2 rotation block with
        ``B = [2, 0]`` and ``C = [Re r, Im r]``.  The direct term ``E`` is the
        constant; a non-zero ``proportional`` term cannot be realised in this
        form and raises :class:`~repro.exceptions.ModelError`.
        """
        if abs(self.proportional) > 0.0:
            raise ModelError("proportional (s*E) terms have no minimal realisation here")
        poles = sort_poles(self.poles)
        residues = self._residues_for(poles)
        real_idx, pair_idx = split_real_complex(poles)
        n_states = len(real_idx) + 2 * len(pair_idx)
        a_mat = np.zeros((n_states, n_states))
        b_vec = np.zeros(n_states)
        c_vec = np.zeros(n_states)
        cursor = 0
        for i in real_idx:
            a_mat[cursor, cursor] = poles[i].real
            b_vec[cursor] = 1.0
            c_vec[cursor] = residues[i].real
            cursor += 1
        for i in pair_idx:
            sigma, omega = poles[i].real, poles[i].imag
            a_mat[cursor:cursor + 2, cursor:cursor + 2] = [[sigma, omega], [-omega, sigma]]
            b_vec[cursor] = 2.0
            c_vec[cursor] = residues[i].real
            c_vec[cursor + 1] = residues[i].imag
            cursor += 2
        return a_mat, b_vec, c_vec, float(np.real(self.constant))

    def to_input_shifted_state_space(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
        """Input-shifted realisation ``(A, R, D, E)`` of the paper's eqs. (12)-(14).

        The state-dependent residue is moved in front of the linear filter
        (paper Fig. 4, bottom), which is the form compatible with the parallel
        Hammerstein model: ``B`` becomes the residue-dependent vector ``R`` and
        the output row ``D`` becomes constant.
        """
        if abs(self.proportional) > 0.0:
            raise ModelError("proportional (s*E) terms have no minimal realisation here")
        poles = sort_poles(self.poles)
        residues = self._residues_for(poles)
        real_idx, pair_idx = split_real_complex(poles)
        n_states = len(real_idx) + 2 * len(pair_idx)
        a_mat = np.zeros((n_states, n_states))
        r_vec = np.zeros(n_states)
        d_vec = np.zeros(n_states)
        cursor = 0
        for i in real_idx:
            a_mat[cursor, cursor] = poles[i].real
            r_vec[cursor] = residues[i].real
            d_vec[cursor] = 1.0
            cursor += 1
        for i in pair_idx:
            sigma, omega = poles[i].real, poles[i].imag
            a_mat[cursor:cursor + 2, cursor:cursor + 2] = [[sigma, omega], [-omega, sigma]]
            # Paper eq. (14): R = [Re r + Im r, Re r - Im r], D = [1, 1].
            r_vec[cursor] = residues[i].real + residues[i].imag
            r_vec[cursor + 1] = residues[i].real - residues[i].imag
            d_vec[cursor] = 1.0
            d_vec[cursor + 1] = 1.0
            cursor += 2
        return a_mat, r_vec, d_vec, float(np.real(self.constant))

    # ---------------------------------------------------------------- utilities
    def _residues_for(self, sorted_poles: np.ndarray) -> np.ndarray:
        """Residues re-ordered to match ``sorted_poles``."""
        residues = np.zeros(len(sorted_poles), dtype=complex)
        available = list(range(len(self.poles)))
        for i, pole in enumerate(sorted_poles):
            best_j = min(available, key=lambda j: abs(self.poles[j] - pole))
            residues[i] = self.residues[best_j]
            available.remove(best_j)
        return residues

    def without_constant(self) -> "RationalFunction":
        """Copy with the direct (constant) term removed — the "dynamic part"."""
        return RationalFunction(self.poles.copy(), self.residues.copy(), 0.0,
                                self.proportional)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"RationalFunction(order={self.order}, stable={self.is_stable()}, "
                f"constant={self.constant:+.3e})")
