"""Push telemetry for the serving stack: broker, events, durable run store.

Three pieces compose the observability layer added in PR 7:

* :class:`TopicBroker` — thread-safe bounded pub/sub; publishers never block,
  slow subscribers drop (counted), no subscribers costs one truthiness test;
* the typed event dataclasses of :mod:`~repro.telemetry.events`, each with a
  monotonic timestamp and (where applicable) propagated trace ids;
* :class:`RunStore` + :class:`RunRecorder` — a stdlib-``sqlite3`` journal of
  runs/snapshots/events whose :meth:`~RunStore.replay` re-derives the
  recorded request schedule for regression replay.
"""

from .alerts import AlertManager, AlertRule, AlertState
from .broker import Subscription, TopicBroker
from .events import (SCHEMA_VERSION, AlertCleared, AlertRaised, BatchClosed,
                     BatchServed, CacheEvicted, ChunkStreamError,
                     ConnectionClosed, ConnectionOpened, EngineProfile,
                     JobTimedOut, MetricsWindowClosed, ProtocolError,
                     RequestRejected, RequestSubmitted, ScenarioCompleted,
                     SpanClosed, SweepCompleted, SweepStarted,
                     TelemetryEvent, WorkerCrashed, WorkerRespawned,
                     event_from_dict, event_topics, register_event)
from .metrics import (MetricsAggregator, MetricsReport, ModelWindowMetrics,
                      WindowMetrics)
from .recorder import RunRecorder
from .runstore import STORE_VERSION, ReplayRequest, RunRecord, RunStore
from .spans import (ROOT_SPAN, SpanBatch, SpanNode, TraceAssembler, Tracer,
                    TracerConfig, describe_trace, subscribe_spans)

__all__ = [
    "SCHEMA_VERSION",
    "TelemetryEvent",
    "TopicBroker",
    "Subscription",
    "event_from_dict",
    "event_topics",
    "register_event",
    "RequestSubmitted",
    "RequestRejected",
    "BatchClosed",
    "BatchServed",
    "WorkerCrashed",
    "WorkerRespawned",
    "JobTimedOut",
    "CacheEvicted",
    "ConnectionOpened",
    "ConnectionClosed",
    "ProtocolError",
    "ChunkStreamError",
    "SweepStarted",
    "ScenarioCompleted",
    "SweepCompleted",
    "MetricsWindowClosed",
    "AlertRaised",
    "AlertCleared",
    "SpanClosed",
    "EngineProfile",
    "ROOT_SPAN",
    "Tracer",
    "TracerConfig",
    "SpanBatch",
    "TraceAssembler",
    "SpanNode",
    "describe_trace",
    "subscribe_spans",
    "MetricsAggregator",
    "MetricsReport",
    "ModelWindowMetrics",
    "WindowMetrics",
    "AlertManager",
    "AlertRule",
    "AlertState",
    "RunStore",
    "STORE_VERSION",
    "RunRecord",
    "RunRecorder",
    "ReplayRequest",
]
