"""Windowed operational metrics folded from the telemetry event stream.

:class:`MetricsAggregator` is the first *consumer* tier over the push
telemetry of PR 7: it subscribes to the serving-layer events of a
:class:`~repro.telemetry.broker.TopicBroker` and folds them into
fixed-duration windows kept in a ring buffer — per-model throughput,
p50/p95/p99 queue and end-to-end latency (reconstructed from trace-chained
``RequestSubmitted`` → ``BatchClosed`` → ``BatchServed`` pairs), batch-fill
ratio against ``max_batch``, and rejection / crash / timeout / eviction /
subscriber-drop rates.

Windowing is **event-time** on the publisher's monotonic clock (every event
carries ``t`` stamped at construction), so the aggregator computes the same
windows whether it runs live behind the broker or replays a journaled
stream through :meth:`ingest`.  Out-of-order events that arrive after their
window closed are clamped into the current window and counted (``n_late``)
rather than dropped; trace ids whose ``RequestSubmitted`` was lost to a
slow-subscriber drop are counted (``n_unmatched``) and skipped, so a lossy
stream degrades the sample population, never the aggregator.

On every window close the aggregator republishes a schema-versioned
:class:`~repro.telemetry.events.MetricsWindowClosed` event through the same
broker, which makes pre-aggregated metrics available to every existing
transport for free: in-process subscriptions, the gateway's
``EVENTS_SUBSCRIBE`` wire frames, and :class:`RunRecorder` journals.  The
:mod:`~repro.telemetry.alerts` rules evaluate exactly these events.

All shared state sits behind a ``lockwatch``-monitored lock
(``telemetry.metrics``); republishing happens strictly outside it, keeping
both the REP102 linter and the runtime lock sanitizer clean.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..checks import lockwatch
from ..serve.stats import LatencySummary
from .broker import TopicBroker
from .events import MetricsWindowClosed

__all__ = ["MetricsAggregator", "MetricsReport", "ModelWindowMetrics",
           "WindowMetrics"]

#: The zeroed latency summary (shared default — LatencySummary is frozen).
_EMPTY_SUMMARY = LatencySummary.of(())

#: How long the consuming thread blocks before checking for idle windows.
_POLL_S = 0.1


@dataclass(frozen=True)
class ModelWindowMetrics:
    """One model's slice of one closed metrics window."""

    key: str
    n_batches: int = 0
    n_rows: int = 0
    n_served: int = 0
    n_failed: int = 0
    max_batch: int = 0
    queue_latency: LatencySummary = _EMPTY_SUMMARY
    e2e_latency: LatencySummary = _EMPTY_SUMMARY

    @property
    def mean_batch_size(self) -> float:
        return (self.n_rows / self.n_batches) if self.n_batches else 0.0

    @property
    def fill_ratio(self) -> float:
        """Mean batch occupancy vs ``max_batch`` (0.0 when unknown)."""
        if not self.max_batch or not self.n_batches:
            return 0.0
        return self.mean_batch_size / self.max_batch

    def as_dict(self) -> dict:
        return {"key": self.key, "n_batches": self.n_batches,
                "n_rows": self.n_rows, "n_served": self.n_served,
                "n_failed": self.n_failed, "max_batch": self.max_batch,
                "mean_batch_size": self.mean_batch_size,
                "fill_ratio": self.fill_ratio,
                "queue_latency": self.queue_latency.as_dict(),
                "e2e_latency": self.e2e_latency.as_dict()}


@dataclass(frozen=True)
class WindowMetrics:
    """One closed fixed-duration window of aggregated serving metrics.

    The typed twin of the :class:`MetricsWindowClosed` event (built from it
    via :meth:`as_event`): the ring buffer keeps these so rolling reports
    can merge :class:`LatencySummary` values without round-tripping through
    dicts.  A window nobody sent traffic through is all zeros — never NaN.
    """

    index: int
    t_start: float
    t_end: float
    n_submitted: int = 0
    n_served: int = 0
    n_failed: int = 0
    n_batches: int = 0
    n_rejected: int = 0
    n_crashes: int = 0
    n_respawns: int = 0
    n_timeouts: int = 0
    n_evictions: int = 0
    n_subscriber_dropped: int = 0
    n_late: int = 0
    n_unmatched: int = 0
    n_events: int = 0
    queue_depth: int = 0
    max_batch: int = 0
    queue_latency: LatencySummary = _EMPTY_SUMMARY
    e2e_latency: LatencySummary = _EMPTY_SUMMARY
    #: Per-model slices keyed by model key (:class:`ModelWindowMetrics`).
    per_model: dict = field(default_factory=dict)
    #: Per-stage latency keyed by span stage name (:class:`LatencySummary`),
    #: fed by ``SpanClosed`` events when the server's tracer is sampling.
    stages: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.t_end - self.t_start

    @property
    def throughput_rps(self) -> float:
        """Served rows per second over the window."""
        return (self.n_served / self.duration_s) if self.duration_s else 0.0

    @property
    def mean_batch_size(self) -> float:
        rows = sum(m.n_rows for m in self.per_model.values())
        return (rows / self.n_batches) if self.n_batches else 0.0

    @property
    def fill_ratio(self) -> float:
        if not self.max_batch or not self.n_batches:
            return 0.0
        return self.mean_batch_size / self.max_batch

    def as_event(self) -> MetricsWindowClosed:
        """The wire/journal form republished on window close."""
        return MetricsWindowClosed(
            window_index=self.index, t_start=self.t_start, t_end=self.t_end,
            n_submitted=self.n_submitted, n_served=self.n_served,
            n_failed=self.n_failed, n_batches=self.n_batches,
            throughput_rps=self.throughput_rps, fill_ratio=self.fill_ratio,
            queue_latency=self.queue_latency.as_dict(),
            e2e_latency=self.e2e_latency.as_dict(),
            per_model={key: m.as_dict() for key, m in self.per_model.items()},
            stages={name: summary.as_dict()
                    for name, summary in self.stages.items()},
            n_rejected=self.n_rejected, n_crashes=self.n_crashes,
            n_respawns=self.n_respawns, n_timeouts=self.n_timeouts,
            n_evictions=self.n_evictions,
            n_subscriber_dropped=self.n_subscriber_dropped,
            n_late=self.n_late, n_unmatched=self.n_unmatched,
            queue_depth=self.queue_depth, n_events=self.n_events)


@dataclass(frozen=True)
class MetricsReport:
    """Rolling roll-up over the last N closed windows (typed snapshot)."""

    window_s: float
    n_windows: int
    t_start: float = 0.0
    t_end: float = 0.0
    n_submitted: int = 0
    n_served: int = 0
    n_failed: int = 0
    n_batches: int = 0
    n_rejected: int = 0
    n_crashes: int = 0
    n_respawns: int = 0
    n_timeouts: int = 0
    n_evictions: int = 0
    n_subscriber_dropped: int = 0
    n_late: int = 0
    n_unmatched: int = 0
    queue_depth: int = 0
    max_batch: int = 0
    throughput_rps: float = 0.0
    fill_ratio: float = 0.0
    queue_latency: LatencySummary = _EMPTY_SUMMARY
    e2e_latency: LatencySummary = _EMPTY_SUMMARY
    #: Merged per-model slices keyed by model key.
    per_model: dict = field(default_factory=dict)
    #: Merged per-stage latency keyed by span stage name.
    stages: dict = field(default_factory=dict)
    #: The closed windows the report was merged from (oldest first).
    windows: tuple = ()

    @classmethod
    def of(cls, windows, window_s: float, queue_depth: int = 0,
           max_batch: int = 0) -> "MetricsReport":
        """Merge closed windows into one rolling report (zeros when none)."""
        windows = tuple(windows)
        if not windows:
            return cls(window_s=window_s, n_windows=0,
                       queue_depth=queue_depth, max_batch=max_batch)
        span_s = sum(w.duration_s for w in windows)
        totals = {name: sum(getattr(w, name) for w in windows)
                  for name in ("n_submitted", "n_served", "n_failed",
                               "n_batches", "n_rejected", "n_crashes",
                               "n_respawns", "n_timeouts", "n_evictions",
                               "n_subscriber_dropped", "n_late",
                               "n_unmatched")}
        per_model: dict = {}
        for window in windows:
            for key, m in window.per_model.items():
                per_model.setdefault(key, []).append(m)
        merged_models = {}
        for key, slices in per_model.items():
            n_batches = sum(m.n_batches for m in slices)
            merged_models[key] = ModelWindowMetrics(
                key=key, n_batches=n_batches,
                n_rows=sum(m.n_rows for m in slices),
                n_served=sum(m.n_served for m in slices),
                n_failed=sum(m.n_failed for m in slices),
                max_batch=max_batch or max(m.max_batch for m in slices),
                queue_latency=LatencySummary.merge(
                    m.queue_latency for m in slices),
                e2e_latency=LatencySummary.merge(
                    m.e2e_latency for m in slices))
        per_stage: dict = {}
        for window in windows:
            for stage, summary in window.stages.items():
                per_stage.setdefault(stage, []).append(summary)
        merged_stages = {stage: LatencySummary.merge(summaries)
                         for stage, summaries in per_stage.items()}
        rows = sum(m.n_rows for m in merged_models.values())
        mean_batch = (rows / totals["n_batches"]) if totals["n_batches"] else 0.0
        fill = (mean_batch / max_batch) if max_batch else 0.0
        return cls(
            window_s=window_s, n_windows=len(windows),
            t_start=windows[0].t_start, t_end=windows[-1].t_end,
            queue_depth=queue_depth, max_batch=max_batch,
            throughput_rps=(totals["n_served"] / span_s) if span_s else 0.0,
            fill_ratio=fill,
            queue_latency=LatencySummary.merge(
                w.queue_latency for w in windows),
            e2e_latency=LatencySummary.merge(w.e2e_latency for w in windows),
            per_model=merged_models, stages=merged_stages,
            windows=windows, **totals)

    def as_dict(self) -> dict:
        return {
            "window_s": self.window_s, "n_windows": self.n_windows,
            "t_start": self.t_start, "t_end": self.t_end,
            "n_submitted": self.n_submitted, "n_served": self.n_served,
            "n_failed": self.n_failed, "n_batches": self.n_batches,
            "n_rejected": self.n_rejected, "n_crashes": self.n_crashes,
            "n_respawns": self.n_respawns, "n_timeouts": self.n_timeouts,
            "n_evictions": self.n_evictions,
            "n_subscriber_dropped": self.n_subscriber_dropped,
            "n_late": self.n_late, "n_unmatched": self.n_unmatched,
            "queue_depth": self.queue_depth, "max_batch": self.max_batch,
            "throughput_rps": self.throughput_rps,
            "fill_ratio": self.fill_ratio,
            "queue_latency": self.queue_latency.as_dict(),
            "e2e_latency": self.e2e_latency.as_dict(),
            "per_model": {key: m.as_dict()
                          for key, m in self.per_model.items()},
            "stages": {name: summary.as_dict()
                       for name, summary in self.stages.items()},
        }

    def describe(self) -> str:
        lines = [
            f"{self.n_windows} window(s) x {self.window_s:g} s: "
            f"{self.throughput_rps:.0f} rows/s "
            f"(fill {self.fill_ratio * 100.0:.0f}%), depth {self.queue_depth}; "
            f"e2e p50 {self.e2e_latency.p50 * 1e3:.2f} / "
            f"p95 {self.e2e_latency.p95 * 1e3:.2f} / "
            f"p99 {self.e2e_latency.p99 * 1e3:.2f} ms; "
            f"queue p95 {self.queue_latency.p95 * 1e3:.2f} ms; "
            f"{self.n_rejected} rejected, {self.n_crashes} crash(es), "
            f"{self.n_timeouts} timeout(s), {self.n_evictions} eviction(s), "
            f"{self.n_subscriber_dropped} dropped"]
        for key, m in self.per_model.items():
            lines.append(
                f"  model {key[:12]}...: {m.n_served} served / "
                f"{m.n_failed} failed in {m.n_batches} batch(es) "
                f"(fill {m.fill_ratio * 100.0:.0f}%), "
                f"e2e p95 {m.e2e_latency.p95 * 1e3:.2f} ms")
        if self.stages:
            ranked = sorted(self.stages.items(),
                            key=lambda item: item[1].p95, reverse=True)
            lines.append("  stage p95: " + ", ".join(
                f"{name} {summary.p95 * 1e3:.2f} ms"
                for name, summary in ranked[:6]))
        return "\n".join(lines)


class _ModelAcc:
    """Mutable per-model accumulator of the open window."""

    __slots__ = ("n_batches", "n_rows", "n_served", "n_failed", "queue",
                 "e2e")

    def __init__(self) -> None:
        self.n_batches = 0
        self.n_rows = 0
        self.n_served = 0
        self.n_failed = 0
        self.queue: list = []
        self.e2e: list = []


class _WindowAcc:
    """Mutable accumulator of the currently open window."""

    __slots__ = ("n_submitted", "n_served", "n_failed", "n_batches",
                 "n_rejected", "n_crashes", "n_respawns", "n_timeouts",
                 "n_evictions", "n_subscriber_dropped", "n_late",
                 "n_unmatched", "n_events", "queue", "e2e", "models",
                 "stages")

    def __init__(self) -> None:
        for name in ("n_submitted", "n_served", "n_failed", "n_batches",
                     "n_rejected", "n_crashes", "n_respawns", "n_timeouts",
                     "n_evictions", "n_subscriber_dropped", "n_late",
                     "n_unmatched", "n_events"):
            setattr(self, name, 0)
        self.queue: list = []
        self.e2e: list = []
        self.models: dict = {}
        self.stages: dict = {}

    def model(self, key: str) -> _ModelAcc:
        acc = self.models.get(key)
        if acc is None:
            acc = self.models[key] = _ModelAcc()
        return acc


class MetricsAggregator:
    """Fold the serving event stream into fixed-duration metric windows.

    Two modes share one code path:

    * **live** — pass a ``broker``; the aggregator opens a topic-filtered
      subscription and consumes it on a daemon thread, closing windows as
      the monotonic clock passes their boundary (idle windows close too,
      zeroed);
    * **synchronous** — pass ``broker=None`` and feed events through
      :meth:`ingest` (and :meth:`close_window` to force a boundary), which
      is deterministic for tests and replayed journals.

    Windows are ``window_s`` seconds of *event time*; the ring keeps the
    last ``n_windows`` closed windows for :meth:`report`.  ``max_batch``
    (normally ``ServePolicy.max_batch``) is the fill-ratio denominator.
    """

    #: Topics the aggregator consumes — its own ``MetricsWindowClosed``
    #: republications are deliberately not in this set.
    TOPICS = ("RequestSubmitted", "RequestRejected", "BatchClosed",
              "BatchServed", "WorkerCrashed", "WorkerRespawned",
              "JobTimedOut", "CacheEvicted", "SpanClosed")

    def __init__(self, broker: TopicBroker | None = None,
                 window_s: float = 1.0, n_windows: int = 60,
                 max_batch: int = 0, maxsize: int = 65536,
                 max_pending: int = 100_000, republish: bool = True,
                 t0: float | None = None) -> None:
        self.window_s = max(1e-3, float(window_s))
        self.n_windows = max(1, int(n_windows))
        self.max_batch = int(max_batch)
        self.max_pending = max(1, int(max_pending))
        self._republish = bool(republish)
        self._broker = broker
        self._lock = lockwatch.monitored_lock("telemetry.metrics")
        #: trace id -> (t_submit, model key); survives window boundaries so
        #: a request submitted in window k and served in k+1 still pairs.
        self._pending: dict = {}
        self._ring: deque = deque(maxlen=self.n_windows)
        self._index = 0
        self._t0 = None if t0 is None else float(t0)
        self._acc: _WindowAcc | None = None
        self._drops_seen = 0
        self._closed = False
        self._sub = None
        self._stop = threading.Event()
        self._thread = None
        if broker is not None:
            self._sub = broker.subscribe(topics=self.TOPICS, maxsize=maxsize)
            self._thread = threading.Thread(
                target=self._loop, name="metrics-aggregator", daemon=True)
            self._thread.start()

    # ------------------------------------------------------------- properties
    @property
    def n_dropped(self) -> int:
        """Events lost because the aggregator fell behind the publishers."""
        return self._sub.n_dropped if self._sub is not None else 0

    @property
    def n_windows_closed(self) -> int:
        with self._lock:
            return self._index

    # -------------------------------------------------------------- ingestion
    def ingest(self, event) -> list:
        """Fold one event; returns the ``MetricsWindowClosed`` events of any
        windows its timestamp closed (already republished when configured).
        """
        with self._lock:
            windows = self._ingest_locked(event)
        return self._emit(windows)

    def close_window(self) -> list:
        """Force-close the open window (zeroed if idle); returns its event.

        No-op (empty list) before the first event/tick establishes the
        window epoch.
        """
        with self._lock:
            windows = [] if self._t0 is None else [self._close_locked()]
        return self._emit(windows)

    def tick(self, t: float | None = None) -> list:
        """Close every window whose boundary ``t`` (monotonic now when
        ``None``) has passed — how idle windows keep flowing."""
        t = time.monotonic() if t is None else float(t)
        with self._lock:
            windows = self._advance_locked(t)
        return self._emit(windows)

    def note_dropped(self, n: int = 1) -> None:
        """Attribute ``n`` externally observed subscriber drops to the open
        window (for consumers that pre-filter the stream themselves)."""
        with self._lock:
            self._open_acc().n_subscriber_dropped += int(n)

    # --------------------------------------------------------------- reporting
    def report(self, last: int | None = None) -> MetricsReport:
        """Rolling :class:`MetricsReport` over the last ``last`` closed
        windows (all ring windows when ``None``); zeroed when none closed."""
        with self._lock:
            windows = tuple(self._ring)
            queue_depth = len(self._pending)
        if last is not None:
            windows = windows[-max(0, int(last)):]
        return MetricsReport.of(windows, window_s=self.window_s,
                                queue_depth=queue_depth,
                                max_batch=self.max_batch)

    # ---------------------------------------------------------------- plumbing
    def _emit(self, windows) -> list:
        events = [w.as_event() for w in windows]
        broker = self._broker
        if events and self._republish and broker is not None and broker:
            for event in events:
                broker.publish(event)
        return events

    def _open_acc(self) -> _WindowAcc:
        if self._t0 is None:
            self._t0 = time.monotonic()
        if self._acc is None:
            self._acc = _WindowAcc()
        return self._acc

    def _advance_locked(self, t: float) -> list:
        """Close every window whose end lies at or before ``t``."""
        if self._t0 is None:
            self._t0 = t
            return []
        target = int((t - self._t0) // self.window_s)
        if target <= self._index:
            return []
        if target - self._index > self.n_windows:
            # A gap longer than the ring: the middle windows would be both
            # all-zero and immediately evicted, so skip straight to the
            # last ``n_windows`` of it instead of publishing them all.
            self._index = target - self.n_windows
        closed = []
        while self._index < target:
            closed.append(self._close_locked())
        return closed

    def _close_locked(self) -> WindowMetrics:
        acc = self._acc or _WindowAcc()
        if self._t0 is None:
            self._t0 = time.monotonic()
        if self._sub is not None:
            total = self._sub.n_dropped
            acc.n_subscriber_dropped += total - self._drops_seen
            self._drops_seen = total
        t_start = self._t0 + self._index * self.window_s
        per_model = {
            key: ModelWindowMetrics(
                key=key, n_batches=m.n_batches, n_rows=m.n_rows,
                n_served=m.n_served, n_failed=m.n_failed,
                max_batch=self.max_batch,
                queue_latency=LatencySummary.of(m.queue),
                e2e_latency=LatencySummary.of(m.e2e))
            for key, m in acc.models.items()}
        window = WindowMetrics(
            index=self._index, t_start=t_start,
            t_end=t_start + self.window_s,
            n_submitted=acc.n_submitted, n_served=acc.n_served,
            n_failed=acc.n_failed, n_batches=acc.n_batches,
            n_rejected=acc.n_rejected, n_crashes=acc.n_crashes,
            n_respawns=acc.n_respawns, n_timeouts=acc.n_timeouts,
            n_evictions=acc.n_evictions,
            n_subscriber_dropped=acc.n_subscriber_dropped,
            n_late=acc.n_late, n_unmatched=acc.n_unmatched,
            n_events=acc.n_events, queue_depth=len(self._pending),
            max_batch=self.max_batch,
            queue_latency=LatencySummary.of(acc.queue),
            e2e_latency=LatencySummary.of(acc.e2e),
            per_model=per_model,
            stages={stage: LatencySummary.of(samples)
                    for stage, samples in acc.stages.items()})
        self._ring.append(window)
        self._index += 1
        self._acc = None
        return window

    def _ingest_locked(self, event) -> list:
        t = float(event.t)
        closed = self._advance_locked(t)
        acc = self._open_acc()
        acc.n_events += 1
        if t < self._t0 + self._index * self.window_s:
            # Arrived after its window already closed: clamp, and count so
            # dashboards can see reordering pressure.
            acc.n_late += 1
        name = type(event).__name__
        if name == "RequestSubmitted":
            acc.n_submitted += 1
            self._pending[event.trace_id] = (t, event.key)
            while len(self._pending) > self.max_pending:
                self._pending.pop(next(iter(self._pending)))
                acc.n_unmatched += 1
        elif name == "RequestRejected":
            acc.n_rejected += 1
        elif name == "BatchClosed":
            for trace_id in event.trace_ids:
                info = self._pending.get(trace_id)
                if info is None:
                    acc.n_unmatched += 1
                    continue
                sample = max(0.0, t - info[0])
                acc.queue.append(sample)
                acc.model(event.key).queue.append(sample)
        elif name == "BatchServed":
            acc.n_batches += 1
            model = acc.model(event.key)
            model.n_batches += 1
            model.n_rows += event.n_rows
            if event.ok:
                acc.n_served += event.n_rows
                model.n_served += event.n_rows
            else:
                acc.n_failed += event.n_rows
                model.n_failed += event.n_rows
            for trace_id in event.trace_ids:
                info = self._pending.pop(trace_id, None)
                if info is None:
                    acc.n_unmatched += 1
                    continue
                sample = max(0.0, t - info[0])
                acc.e2e.append(sample)
                model.e2e.append(sample)
        elif name == "SpanClosed":
            acc.stages.setdefault(event.name, []).append(
                float(event.duration_s))
        elif name == "WorkerCrashed":
            acc.n_crashes += 1
        elif name == "WorkerRespawned":
            acc.n_respawns += 1
        elif name == "JobTimedOut":
            acc.n_timeouts += 1
        elif name == "CacheEvicted":
            acc.n_evictions += 1
        return closed

    # ----------------------------------------------------------------- thread
    def _loop(self) -> None:
        poll = min(_POLL_S, self.window_s / 2.0)
        while not self._stop.is_set():
            event = self._sub.get(timeout=poll)
            batch = [event] + self._sub.drain() if event is not None else []
            with self._lock:
                windows = []
                for item in batch:
                    windows.extend(self._ingest_locked(item))
                windows.extend(self._advance_locked(time.monotonic()))
            self._emit(windows)

    def close(self) -> list:
        """Stop consuming, fold whatever is still queued, close the open
        window; returns the final ``MetricsWindowClosed`` event(s)."""
        if self._closed:
            return []
        self._closed = True
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
        remainder = []
        if self._sub is not None:
            self._sub.close()
            remainder = self._sub.drain()
        with self._lock:
            windows = []
            for item in remainder:
                windows.extend(self._ingest_locked(item))
            if self._t0 is not None:
                windows.append(self._close_locked())
        return self._emit(windows)

    def __enter__(self) -> "MetricsAggregator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
