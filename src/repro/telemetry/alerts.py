"""Declarative threshold alerting over closed metrics windows.

An :class:`AlertRule` names one metric of the
:class:`~repro.telemetry.events.MetricsWindowClosed` payload (dotted paths
reach into the nested latency summaries, e.g. ``e2e_latency.p95_s``), a
threshold, and a **hysteresis pair**: the rule must breach for
``raise_after`` consecutive windows before :class:`AlertRaised` fires, and
must then stay within bounds for ``clear_after`` consecutive windows before
:class:`AlertCleared` follows — one noisy window neither raises nor clears
an alert, so a flapping metric debounces into a stable alert state.

:class:`AlertManager` evaluates a rule set against every closed window —
live, by subscribing to the broker's ``MetricsWindowClosed`` republications
on a daemon thread, or synchronously through :meth:`evaluate` for
deterministic tests and replays.  Raised/cleared events go back through the
same broker, which puts them on the gateway's existing ``EVENTS_SUBSCRIBE``
wire frames with no protocol change: remote dashboards simply subscribe to
the ``AlertRaised`` / ``AlertCleared`` topics.

State sits behind a ``lockwatch``-monitored lock (``telemetry.alerts``);
publication happens strictly outside it (REP102).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..checks import lockwatch
from .broker import TopicBroker
from .events import AlertCleared, AlertRaised

__all__ = ["AlertManager", "AlertRule", "AlertState"]

_POLL_S = 0.1


@dataclass(frozen=True)
class AlertRule:
    """One declarative threshold over a closed-window metric.

    ``metric`` is an attribute of :class:`MetricsWindowClosed`, with dots
    descending into dict-valued fields (``"e2e_latency.p95_s"``).  ``op``
    is the breach comparison: ``">"`` (value above threshold breaches,
    the default) or ``"<"`` (value below threshold breaches).
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    #: Consecutive breaching windows before ``AlertRaised`` fires.
    raise_after: int = 1
    #: Consecutive in-bounds windows before ``AlertCleared`` fires.
    clear_after: int = 1
    detail: str = ""

    def __post_init__(self) -> None:
        if self.op not in (">", "<"):
            raise ValueError(f"AlertRule.op must be '>' or '<', got "
                             f"{self.op!r}")
        if self.raise_after < 1 or self.clear_after < 1:
            raise ValueError("AlertRule raise_after/clear_after must be >= 1")

    # ------------------------------------------------------------ constructors
    @classmethod
    def p95_latency(cls, bound_s: float, *, queue: bool = False,
                    raise_after: int = 2, clear_after: int = 2) -> "AlertRule":
        """End-to-end (or queue) p95 latency above ``bound_s`` seconds."""
        which = "queue" if queue else "e2e"
        return cls(name=f"{which}_p95_latency",
                   metric=f"{which}_latency.p95_s", threshold=float(bound_s),
                   raise_after=raise_after, clear_after=clear_after,
                   detail=f"{which} p95 above {bound_s * 1e3:.1f} ms")

    @classmethod
    def crash_rate(cls, max_per_window: float = 0.0, *, raise_after: int = 1,
                   clear_after: int = 2) -> "AlertRule":
        """Worker crashes per window above ``max_per_window``."""
        return cls(name="crash_rate", metric="n_crashes",
                   threshold=float(max_per_window), raise_after=raise_after,
                   clear_after=clear_after,
                   detail=f"worker crashes above {max_per_window:g}/window")

    @classmethod
    def queue_depth(cls, max_depth: int, *, raise_after: int = 2,
                    clear_after: int = 2) -> "AlertRule":
        """Unserved submitted requests at window close above ``max_depth``."""
        return cls(name="queue_depth", metric="queue_depth",
                   threshold=float(max_depth), raise_after=raise_after,
                   clear_after=clear_after,
                   detail=f"queue depth above {max_depth}")

    @classmethod
    def subscriber_drops(cls, max_per_window: float = 0.0, *,
                         raise_after: int = 1,
                         clear_after: int = 2) -> "AlertRule":
        """Telemetry subscriber drops per window above ``max_per_window``."""
        return cls(name="subscriber_drops", metric="n_subscriber_dropped",
                   threshold=float(max_per_window), raise_after=raise_after,
                   clear_after=clear_after,
                   detail=f"subscriber drops above {max_per_window:g}/window")

    # ------------------------------------------------------------- evaluation
    def value_of(self, window) -> float:
        """Extract this rule's metric from a window event (or its dict).

        Missing paths answer 0.0 — a rule must tolerate older payload
        layouts rather than crash the evaluator.
        """
        head, _, rest = self.metric.partition(".")
        if isinstance(window, dict):
            value = window.get(head, 0.0)
        else:
            value = getattr(window, head, 0.0)
        for part in rest.split(".") if rest else ():
            if not isinstance(value, dict):
                return 0.0
            value = value.get(part, 0.0)
        try:
            return float(value)
        except (TypeError, ValueError):
            return 0.0

    def breached(self, value: float) -> bool:
        return value > self.threshold if self.op == ">" else \
            value < self.threshold


class AlertState:
    """Mutable evaluation state of one rule (owned by the manager)."""

    __slots__ = ("rule", "active", "breach_streak", "ok_streak",
                 "last_value", "n_raised", "n_cleared")

    def __init__(self, rule: AlertRule) -> None:
        self.rule = rule
        self.active = False
        self.breach_streak = 0
        self.ok_streak = 0
        self.last_value = 0.0
        self.n_raised = 0
        self.n_cleared = 0


class AlertManager:
    """Evaluate alert rules against every closed metrics window.

    Live mode (``broker`` given): subscribes to ``MetricsWindowClosed`` and
    evaluates on a daemon thread, publishing ``AlertRaised`` /
    ``AlertCleared`` back through the broker.  Synchronous mode
    (``broker=None``): feed windows through :meth:`evaluate`, which returns
    the alert events deterministically.
    """

    def __init__(self, rules, broker: TopicBroker | None = None,
                 maxsize: int = 1024) -> None:
        rules = tuple(rules)
        names = [rule.name for rule in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate alert rule names: {names}")
        self._broker = broker
        self._lock = lockwatch.monitored_lock("telemetry.alerts")
        self._states = {rule.name: AlertState(rule) for rule in rules}
        self._closed = False
        self._sub = None
        self._stop = threading.Event()
        self._thread = None
        if broker is not None:
            self._sub = broker.subscribe(topics=("MetricsWindowClosed",),
                                         maxsize=maxsize)
            self._thread = threading.Thread(
                target=self._loop, name="alert-manager", daemon=True)
            self._thread.start()

    @property
    def rules(self) -> tuple:
        return tuple(state.rule for state in self._states.values())

    def active(self) -> dict:
        """Currently raised alerts: rule name → last observed value."""
        with self._lock:
            return {name: state.last_value
                    for name, state in self._states.items() if state.active}

    def states(self) -> dict:
        """Snapshot of every rule's state (name → dict), for dashboards."""
        with self._lock:
            return {name: {"active": state.active,
                           "last_value": state.last_value,
                           "breach_streak": state.breach_streak,
                           "ok_streak": state.ok_streak,
                           "n_raised": state.n_raised,
                           "n_cleared": state.n_cleared,
                           "threshold": state.rule.threshold,
                           "metric": state.rule.metric}
                    for name, state in self._states.items()}

    # ------------------------------------------------------------- evaluation
    def evaluate(self, window) -> list:
        """Fold one closed window (:class:`MetricsWindowClosed` event or its
        dict payload) through every rule; returns (and publishes, in live
        mode) the resulting ``AlertRaised`` / ``AlertCleared`` events."""
        with self._lock:
            events = self._evaluate_locked(window)
        broker = self._broker
        if events and broker is not None and broker:
            for event in events:
                broker.publish(event)
        return events

    def _evaluate_locked(self, window) -> list:
        if isinstance(window, dict):
            index = int(window.get("window_index", 0))
        else:
            index = int(getattr(window, "window_index", 0))
        events = []
        for state in self._states.values():
            rule = state.rule
            value = rule.value_of(window)
            state.last_value = value
            if rule.breached(value):
                state.breach_streak += 1
                state.ok_streak = 0
                if not state.active and \
                        state.breach_streak >= rule.raise_after:
                    state.active = True
                    state.n_raised += 1
                    events.append(AlertRaised(
                        name=rule.name, metric=rule.metric, value=value,
                        threshold=rule.threshold, window_index=index,
                        detail=rule.detail))
            else:
                state.ok_streak += 1
                state.breach_streak = 0
                if state.active and state.ok_streak >= rule.clear_after:
                    state.active = False
                    state.n_cleared += 1
                    events.append(AlertCleared(
                        name=rule.name, metric=rule.metric, value=value,
                        threshold=rule.threshold, window_index=index,
                        detail=rule.detail))
        return events

    # ----------------------------------------------------------------- thread
    def _loop(self) -> None:
        while not self._stop.is_set():
            event = self._sub.get(timeout=_POLL_S)
            if event is None:
                continue
            for window in [event] + self._sub.drain():
                self.evaluate(window)

    def close(self) -> None:
        """Stop evaluating; drains queued windows through the rules first."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=5.0)
        if self._sub is not None:
            self._sub.close()
            for window in self._sub.drain():
                self.evaluate(window)

    def __enter__(self) -> "AlertManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
