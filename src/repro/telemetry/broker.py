"""Bounded pub/sub event broker: slow subscribers drop, never block.

The :class:`TopicBroker` is the fan-out point of the serving stack's push
telemetry.  Its contract is shaped entirely by where it sits — inside
``ModelServer.submit``, the dispatch lanes, the shard pool and the gateway's
event loop, i.e. on hot paths that must never be held hostage by an
observer:

* **publishing never blocks** — each subscriber owns a bounded deque; when
  it is full the *oldest* queued event is dropped (and counted on the
  subscription's ``n_dropped``) so the stream stays recent, and the
  publisher's cost stays two appends regardless of consumer speed;
* **publishing with no subscribers is near-free** — the broker is *falsy*
  while nobody is subscribed, so instrumentation sites guard with
  ``if broker: broker.publish(Event(...))`` and skip even the event
  construction on the un-observed fast path;
* **subscribers cannot break the publisher** — the optional per-subscription
  ``wakeup`` callback (how an asyncio consumer gets poked across threads)
  is invoked outside every lock and any exception it raises is swallowed.

Subscriptions filter by **topic** — the event's class name (see
:mod:`repro.telemetry.events`); ``topics=None`` receives everything.
Consumption is pull-based and thread-safe: blocking :meth:`Subscription.get`
(with timeout), non-blocking :meth:`~Subscription.get_nowait`, bulk
:meth:`~Subscription.drain`, or plain iteration until :meth:`close`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable

from ..checks import lockwatch

__all__ = ["Subscription", "TopicBroker"]


class Subscription:
    """One subscriber's bounded event queue (created by ``subscribe``)."""

    __slots__ = ("topics", "maxsize", "n_dropped", "n_delivered", "_events",
                 "_cond", "_closed", "_wakeup", "_broker")

    def __init__(self, broker: "TopicBroker", topics, maxsize: int,
                 wakeup: Callable[[], None] | None) -> None:
        self._broker = broker
        #: Topic filter (frozenset of event class names); ``None`` = all.
        self.topics = frozenset(topics) if topics else None
        self.maxsize = max(1, int(maxsize))
        #: Events discarded because this subscriber fell behind.
        self.n_dropped = 0
        #: Events ever enqueued for this subscriber (dropped ones included).
        self.n_delivered = 0
        self._events: deque = deque()
        self._cond = lockwatch.monitored_condition("telemetry.subscription")
        self._closed = False
        self._wakeup = wakeup

    # ------------------------------------------------------------ broker side
    def _offer(self, event) -> None:
        """Enqueue one event; never blocks (drop-oldest when full)."""
        with self._cond:
            if self._closed:
                return
            was_empty = not self._events
            if len(self._events) >= self.maxsize:
                self._events.popleft()
                self.n_dropped += 1
            self._events.append(event)
            self.n_delivered += 1
            if was_empty:
                # A consumer only ever blocks on an *empty* queue, so the
                # empty -> non-empty edge is the only one that needs a
                # wakeup (``get`` passes the baton on for further waiters).
                # Skipping the per-event notify keeps a hot publisher from
                # being preempted once per event by the woken consumer —
                # the difference between ~5% and ~40% serving overhead.
                self._cond.notify()
        if was_empty and self._wakeup is not None:
            # Outside the lock, exceptions swallowed: a subscriber raising
            # mid-delivery must never propagate into the publishing hot path.
            try:
                self._wakeup()
            except Exception:   # repro: allow[REP104] a raising subscriber must never break the publishing hot path
                pass

    def _offer_many(self, events: list) -> None:
        """Enqueue a pre-matched batch in one lock hop (drop-oldest)."""
        with self._cond:
            if self._closed:
                return
            was_empty = not self._events
            self._events.extend(events)
            self.n_delivered += len(events)
            overflow = len(self._events) - self.maxsize
            if overflow > 0:
                for _ in range(overflow):
                    self._events.popleft()
                self.n_dropped += overflow
            if was_empty:
                self._cond.notify()
        if was_empty and self._wakeup is not None:
            try:
                self._wakeup()
            except Exception:   # repro: allow[REP104] a raising subscriber must never break the publishing hot path
                pass

    # -------------------------------------------------------- consumer side
    def __len__(self) -> int:
        with self._cond:
            return len(self._events)

    @property
    def closed(self) -> bool:
        return self._closed

    def get(self, timeout: float | None = None):
        """Next event; blocks up to ``timeout`` (``None`` = forever).

        Returns ``None`` on timeout or once the subscription is closed and
        drained — iteration-friendly, never raises on shutdown.
        """
        with self._cond:
            while not self._events:
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None
            event = self._events.popleft()
            if self._events:
                self._cond.notify()   # baton for any other blocked consumer
            return event

    def get_nowait(self):
        """Next event without blocking (``None`` when empty)."""
        with self._cond:
            return self._events.popleft() if self._events else None

    def drain(self) -> list:
        """Every queued event at once (cheapest way to consume in bulk)."""
        with self._cond:
            events = list(self._events)
            self._events.clear()
        return events

    def __iter__(self):
        """Blocking iteration until :meth:`close` (then drains and stops)."""
        while True:
            event = self.get(timeout=0.25)
            if event is not None:
                yield event
            elif self._closed:
                remaining = self.drain()
                yield from remaining
                return

    def close(self) -> None:
        """Unsubscribe; queued events stay readable, new ones stop arriving."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._broker._unsubscribe(self)

    def __enter__(self) -> "Subscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TopicBroker:
    """Thread-safe bounded pub/sub broker over telemetry events.

    Truthiness is the fast-path gate: ``bool(broker)`` is ``True`` only
    while at least one subscription is live, so instrumentation sites write
    ``if broker: broker.publish(...)`` and pay one attribute read plus one
    tuple truth test when nobody is watching.
    """

    def __init__(self) -> None:
        self._lock = lockwatch.monitored_lock("telemetry.broker")
        #: Immutable snapshot, replaced wholesale on (un)subscribe — publish
        #: iterates it without taking the broker lock.
        self._subs: tuple[Subscription, ...] = ()
        #: Events ever published while at least one subscriber was attached
        #: (approximate under heavy contention — it is telemetry, not money).
        self.n_published = 0

    def __bool__(self) -> bool:
        return bool(self._subs)

    @property
    def n_subscribers(self) -> int:
        return len(self._subs)

    def subscribe(self, topics: Iterable[str] | None = None,
                  maxsize: int = 4096,
                  wakeup: Callable[[], None] | None = None) -> Subscription:
        """Open a subscription.

        Parameters
        ----------
        topics:
            Event class names to receive (``None`` = every event).
        maxsize:
            Queue bound; beyond it the oldest queued event is dropped and
            counted on ``n_dropped`` — the publisher never blocks.
        wakeup:
            Optional callable fired (outside all locks, exceptions
            swallowed) when the queue transitions empty → non-empty; the
            hook an asyncio consumer uses to ``call_soon_threadsafe`` itself
            awake instead of polling.
        """
        sub = Subscription(self, topics, maxsize, wakeup)
        with self._lock:
            self._subs = self._subs + (sub,)
        return sub

    def _unsubscribe(self, sub: Subscription) -> None:
        with self._lock:
            self._subs = tuple(s for s in self._subs if s is not sub)

    def publish(self, event) -> int:
        """Offer ``event`` to every matching subscription; never blocks.

        Returns the number of subscriptions it was enqueued to (0 with no
        subscribers — though call sites should have skipped the call, and
        the event's construction, via the truthiness gate).
        """
        subs = self._subs
        if not subs:
            return 0
        lockwatch.note_publish()
        topic = type(event).__name__
        n = 0
        for sub in subs:
            if sub.topics is None or topic in sub.topics:
                sub._offer(event)
                n += 1
        self.n_published += 1
        return n

    def publish_many(self, events: list) -> int:
        """Offer a batch of events in one queue hop per subscription.

        Semantically ``for e in events: publish(e)``, but each matching
        subscription's queue lock is taken once for the whole batch — the
        difference that keeps span-heavy publishers (five spans close per
        request at resolve time) off the per-event lock treadmill.
        Returns the number of subscriptions that received at least one
        event of the batch.
        """
        subs = self._subs
        if not subs or not events:
            return 0
        lockwatch.note_publish()
        n = 0
        for sub in subs:
            if sub.topics is None:
                matched = events
            else:
                matched = [event for event in events
                           if type(event).__name__ in sub.topics]
            if matched:
                sub._offer_many(matched)
                n += 1
        self.n_published += len(events)
        return n
