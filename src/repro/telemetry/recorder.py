"""Background bridge from a :class:`TopicBroker` to a :class:`RunStore`.

:class:`RunRecorder` owns one subscription and a daemon thread: events are
pulled in batches (one blocking ``get`` then a ``drain``, so bursts land in
a single transaction) and journaled under a freshly opened run; an optional
``stats_source`` callable is sampled every ``snapshot_interval`` seconds and
journaled as snapshots.  ``close()`` drains whatever is still queued, takes
a final snapshot and closes the run, recording the subscription's
``n_dropped`` in the run meta so a lossy recording is visible as such.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from .broker import TopicBroker
from .runstore import RunStore

__all__ = ["RunRecorder"]

_POLL_S = 0.1


class RunRecorder:
    """Journal a broker's event stream (and periodic stats) into a store."""

    def __init__(self, broker: TopicBroker, store: RunStore, name: str = "run",
                 stats_source: Callable[[], dict] | None = None,
                 snapshot_interval: float = 1.0,
                 topics=None, maxsize: int = 65536,
                 meta: dict | None = None) -> None:
        self._store = store
        self._stats_source = stats_source
        self._snapshot_interval = max(1e-3, float(snapshot_interval))
        self.run_id = store.open_run(name, meta=meta)
        self._sub = broker.subscribe(topics=topics, maxsize=maxsize)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=f"run-recorder-{self.run_id}", daemon=True)
        self._thread.start()

    @property
    def n_dropped(self) -> int:
        """Events lost because the recorder fell behind the publishers."""
        return self._sub.n_dropped

    def _flush(self) -> None:
        batch = self._sub.drain()
        if batch:
            self._store.record_events(self.run_id, batch)

    def _snapshot(self) -> None:
        if self._stats_source is None:
            return
        try:
            stats = self._stats_source()
        except Exception:   # repro: allow[REP104] a failing stats source must not kill the recording thread
            return
        if stats:
            self._store.record_snapshot(self.run_id, stats)

    def _loop(self) -> None:
        next_snapshot = time.monotonic() + self._snapshot_interval
        while not self._stop.is_set():
            event = self._sub.get(timeout=_POLL_S)
            if event is not None:
                batch = [event] + self._sub.drain()
                self._store.record_events(self.run_id, batch)
            if time.monotonic() >= next_snapshot:
                self._snapshot()
                next_snapshot = time.monotonic() + self._snapshot_interval

    def close(self) -> None:
        """Stop recording: final drain, final snapshot, close the run."""
        if self._stop.is_set():
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._sub.close()
        self._flush()
        self._snapshot()
        self._store.close_run(self.run_id,
                              meta={"n_dropped": self._sub.n_dropped})

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
